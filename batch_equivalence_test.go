package nvmwear

import (
	"fmt"
	"testing"

	"nvmwear/internal/fault"
	"nvmwear/internal/lifetime"
	"nvmwear/internal/nvm"
	"nvmwear/internal/wl"
)

// TestBatchScalarEquivalence pins the batched epoch-stepped access path to
// the scalar path: for every registered scheme, the same seeds must produce
// identical Result structs, identical scheme/device accounting and
// identical per-line wear vectors — with and without fault injection, on a
// run-heavy workload (BPA) and a mixed read/write one (Uniform). Endurance
// is set low enough that some combinations kill the device mid-run, so the
// death orderings of nvm.WriteRun/ReadRun are exercised too.
func TestBatchScalarEquivalence(t *testing.T) {
	workloads := []WorkloadSpec{
		{Kind: WorkloadBPA, Seed: 9},
		{Kind: WorkloadUniform, WriteRatio: 0.7, Seed: 9},
	}
	faults := []fault.Config{
		{},
		{TransientWriteRate: 0.002, StuckAtRate: 0.0005, ReadDisturbRate: 0.003, MetadataRate: 0.002, Seed: 11},
	}
	for _, scheme := range Schemes() {
		for fi, fc := range faults {
			for _, w := range workloads {
				cfg := SystemConfig{
					Scheme:     scheme,
					Lines:      1 << 12,
					SpareLines: 48,
					Endurance:  60,
					Period:     8,
					Regions:    64,
					CMTEntries: 256,
					// Tight adaptation windows so SAWL actually cycles
					// through merge and split modes within the run.
					ObservationWindow: 20000,
					SettlingWindow:    10000,
					CheckEvery:        5000,
					Seed:              7,
					Fault:             fc,
				}
				name := fmt.Sprintf("%s/fault=%v/%s", scheme, fi == 1, workloadName(t, w, cfg.Lines))
				t.Run(name, func(t *testing.T) {
					scalar := runOnePath(t, cfg, w, true)
					batched := runOnePath(t, cfg, w, false)
					if scalar.res != batched.res {
						t.Errorf("results diverge:\n scalar : %+v\n batched: %+v", scalar.res, batched.res)
					}
					if scalar.st != batched.st {
						t.Errorf("scheme stats diverge:\n scalar : %+v\n batched: %+v", scalar.st, batched.st)
					}
					if scalar.ds != batched.ds {
						t.Errorf("device stats diverge:\n scalar : %+v\n batched: %+v", scalar.ds, batched.ds)
					}
					if len(scalar.wear) != len(batched.wear) {
						t.Fatalf("wear vector length %d vs %d", len(scalar.wear), len(batched.wear))
					}
					for i := range scalar.wear {
						if scalar.wear[i] != batched.wear[i] {
							t.Fatalf("wear diverges at line %d: scalar %d, batched %d",
								i, scalar.wear[i], batched.wear[i])
						}
					}
				})
			}
		}
	}
}

// pathOutcome is everything one run exposes: the Result, the scheme's and
// device's full accounting, and the final per-line wear vector.
type pathOutcome struct {
	res  lifetime.Result
	st   wl.Stats
	ds   nvm.Stats
	wear []uint32
}

// runOnePath runs one (config, workload) lifetime with the batched path
// forced off or on. Timing is disabled so Result structs compare exactly.
func runOnePath(t *testing.T, cfg SystemConfig, w WorkloadSpec, disableBatch bool) pathOutcome {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	stream, name, err := w.Build(cfg.Lines)
	if err != nil {
		t.Fatalf("Build workload: %v", err)
	}
	res := lifetime.Run(sys.dev, sys.lv, stream, lifetime.Options{
		MaxWrites:    120_000,
		Workload:     name,
		NoTiming:     true,
		DisableBatch: disableBatch,
	})
	return pathOutcome{
		res:  res,
		st:   sys.lv.Stats(),
		ds:   sys.dev.Stats(),
		wear: sys.dev.WearCountsCopy(),
	}
}

// workloadName resolves the label a spec builds under (test naming only).
func workloadName(t *testing.T, w WorkloadSpec, lines uint64) string {
	t.Helper()
	_, name, err := w.Build(lines)
	if err != nil {
		t.Fatalf("Build workload: %v", err)
	}
	return name
}
