package nvmwear

// This file is the benchmark harness required by DESIGN.md: one testing.B
// benchmark per data-bearing table and figure of the paper, each running
// the corresponding experiment at the small scale and reporting the
// headline quantities as custom metrics. `go test -bench=. -benchmem`
// regenerates every result; cmd/wlsim runs the larger-scale counterparts.
//
// Benchmarks report the measured values via b.ReportMetric so the bench
// log doubles as the experiment record (see EXPERIMENTS.md for the
// paper-vs-measured comparison).

import (
	"fmt"
	"runtime"
	"testing"

	"nvmwear/internal/core"
	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
)

// benchScale is the scale every figure bench runs at.
func benchScale() Scale {
	return ScaleSmall
}

// reportSeries emits each series' final Y value (the paper's headline
// point) as a custom metric.
func reportSeries(b *testing.B, series []Series, unit string) {
	b.Helper()
	for _, s := range series {
		if len(s.Y) == 0 {
			continue
		}
		b.ReportMetric(s.Y[len(s.Y)-1], sanitize(s.Label)+"_"+unit)
	}
}

// sanitize makes a series label usable as a metric name.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkTable1_Config renders the simulated-system configuration. It is
// trivially fast; it exists so every table has a bench target.
func BenchmarkTable1_Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if RunTable1().Render() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig3_TLSRLifetime regenerates Fig 3: TLSR normalized lifetime
// under BPA vs number of regions, swapping periods 8-64, two endurance
// levels.
func BenchmarkFig3_TLSRLifetime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series := must(RunFig3(sc))
		if i == b.N-1 {
			reportSeries(b, series, "pctLife")
		}
	}
}

// BenchmarkParallelFig3 measures the parallel experiment engine on the
// Fig 3 sweep (56 independent lifetime runs): the serial baseline (-j1)
// against fixed worker counts and every available core. On a multicore
// host the jN variants approach n-fold speedup (the acceptance target is
// >=3x at 4 workers); on a single-core host they all collapse to the
// serial time. Tables are byte-identical across variants — only the
// wall-clock changes.
func BenchmarkParallelFig3(b *testing.B) {
	seen := map[int]bool{}
	for _, j := range []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)} {
		if seen[j] || (j > runtime.GOMAXPROCS(0) && j != 1) {
			continue // dedupe; don't report fake speedups on smaller hosts
		}
		seen[j] = true
		sc := benchScale()
		sc.Parallelism = j
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			var jobs int
			sc.Progress = func(done, total int) { jobs = total }
			for i := 0; i < b.N; i++ {
				if series := must(RunFig3(sc)); len(series) == 0 {
					b.Fatal("empty fig3")
				}
			}
			b.ReportMetric(float64(jobs), "jobs")
		})
	}
}

// BenchmarkFig4_HybridLifetime regenerates Fig 4: PCM-S and MWSR lifetime
// under BPA vs number of regions.
func BenchmarkFig4_HybridLifetime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series := must(RunFig4(sc))
		if i == b.N-1 {
			reportSeries(b, series, "pctLife")
		}
	}
}

// BenchmarkFig5_CacheBudget regenerates Fig 5: hybrid lifetime vs on-chip
// cache budget.
func BenchmarkFig5_CacheBudget(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series := must(RunFig5(sc))
		if i == b.N-1 {
			reportSeries(b, series, "pctLife")
		}
	}
}

// BenchmarkFig12_ObservationWindow regenerates Fig 12: the hit-rate trace
// under soplex for four observation-window sizes. The reported metric is
// the hit-rate fluctuation (stddev), which the paper's panels contrast.
func BenchmarkFig12_ObservationWindow(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series := must(RunFig12(sc))
		if i == b.N-1 {
			for _, s := range series {
				// Sample-to-sample fluctuation: the paper's Fig 12 point is
				// that small observation windows make the measured hit rate
				// jitter; slow drift from adaptation is not noise.
				var jitter float64
				for j := 1; j < len(s.Y); j++ {
					d := s.Y[j] - s.Y[j-1]
					if d < 0 {
						d = -d
					}
					jitter += d
				}
				if len(s.Y) > 1 {
					jitter /= float64(len(s.Y) - 1)
				}
				b.ReportMetric(jitter, sanitize(s.Label)+"_jitterPct")
			}
		}
	}
}

// BenchmarkFig13_SettlingWindow regenerates Fig 13: the region-size
// trajectory under soplex for four settling-window sizes, reporting each
// run's average hit rate (the paper's per-panel annotation).
func BenchmarkFig13_SettlingWindow(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		_, avg, err := RunFig13(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for label, v := range avg {
				b.ReportMetric(v, sanitize(label)+"_avgHitPct")
			}
		}
	}
}

// BenchmarkFig14_HitRates regenerates Fig 14: NWL-4 / NWL-64 / SAWL
// average CMT hit rates for bzip2, cactusADM and gcc.
func BenchmarkFig14_HitRates(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := must(RunFig14(sc))
		if i == b.N-1 {
			for _, r := range res {
				b.ReportMetric(r.AvgNWL4, r.Bench+"_NWL4_hitPct")
				b.ReportMetric(r.AvgNWL64, r.Bench+"_NWL64_hitPct")
				b.ReportMetric(r.AvgSAWL, r.Bench+"_SAWL_hitPct")
			}
		}
	}
}

// BenchmarkFig15_BPALifetime regenerates Fig 15: PCM-S / MWSR / SAWL
// normalized lifetime under BPA vs swapping period.
func BenchmarkFig15_BPALifetime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series := must(RunFig15(sc))
		if i == b.N-1 {
			reportSeries(b, series, "pctLife")
		}
	}
}

// BenchmarkFig16_SpecLifetime regenerates Fig 16: normalized lifetime of
// Baseline / RBSG / TLSR / SAWL under the 14 SPEC-like applications, both
// region configurations. The reported metrics are the harmonic means (the
// paper's Hmean bars).
func BenchmarkFig16_SpecLifetime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		for _, coarse := range []bool{true, false} {
			series := must(RunFig16(sc, coarse))
			if i == b.N-1 {
				suffix := "_fine_HmeanPct"
				if coarse {
					suffix = "_coarse_HmeanPct"
				}
				for _, s := range series {
					b.ReportMetric(s.Y[len(s.Y)-1], sanitize(s.Label)+suffix)
				}
			}
		}
	}
}

// BenchmarkFig17_IPC regenerates Fig 17: IPC degradation of BWL / NWL-4 /
// SAWL relative to the no-wear-leveling baseline, harmonic mean across the
// 14 applications.
func BenchmarkFig17_IPC(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series := must(RunFig17(sc))
		if i == b.N-1 {
			for _, s := range series {
				b.ReportMetric(s.Y[len(s.Y)-1], sanitize(s.Label)+"_degrPct")
			}
		}
	}
}

// BenchmarkTable_HardwareOverhead regenerates the Sec 4.5 arithmetic for
// the paper's full-size 64 GB / 64M-region configuration.
func BenchmarkTable_HardwareOverhead(b *testing.B) {
	var r OverheadReport
	for i := 0; i < b.N; i++ {
		r = RunOverhead(64<<30, 64<<20, 32)
	}
	b.ReportMetric(float64(r.IMTBytes)/(1<<20), "IMT_MB")
	b.ReportMetric(float64(r.GTDBytes)/(1<<10), "GTD_KB")
	b.ReportMetric(100*r.IMTFraction, "IMT_pctOfCapacity")
}

// BenchmarkRAA_Vulnerability quantifies the Sec 2.2 RAA analysis: the
// normalized lifetime of each scheme class under a repeated-address
// attack.
func BenchmarkRAA_Vulnerability(b *testing.B) {
	kinds := []SchemeKind{Baseline, SegmentSwap, RBSG, TLSR, PCMS, SAWL}
	results := map[SchemeKind]float64{}
	for i := 0; i < b.N; i++ {
		for _, kind := range kinds {
			sys, err := NewSystem(SystemConfig{
				Scheme: kind, Lines: 1 << 12, SpareLines: 1 << 7,
				Endurance: 2000, Period: 8,
				RegionLines: 4, Regions: 16, CMTEntries: 1024, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.RunLifetime(WorkloadSpec{Kind: WorkloadRAA, Target: 99}, 0)
			if err != nil {
				b.Fatal(err)
			}
			results[kind] = 100 * res.Normalized
		}
	}
	for kind, v := range results {
		b.ReportMetric(v, string(kind)+"_RAA_pctLife")
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblation_NoAdapt contrasts SAWL against fixed granularities
// (NWL-4 / NWL-64) on the gcc workload: the adaptive scheme should land
// between them on hit rate while keeping the finer effective wear
// granularity.
func BenchmarkAblation_NoAdapt(b *testing.B) {
	sc := benchScale()
	var hit4, hit64, hitSAWL float64
	for i := 0; i < b.N; i++ {
		hit4 = must(runNWLHitRate(sc, "gcc", 4))
		hit64 = must(runNWLHitRate(sc, "gcc", 64))
		_, _, hitSAWL, _ = runTrace(sc, "gcc", sc.Requests/128, sc.Requests/128)
	}
	b.ReportMetric(hit4, "NWL4_hitPct")
	b.ReportMetric(hit64, "NWL64_hitPct")
	b.ReportMetric(hitSAWL, "SAWL_hitPct")
}

// BenchmarkAblation_SplitTrigger compares the paper's LRU-half imbalance
// split trigger against a hit-rate-only trigger: with the imbalance
// condition disabled (SubQueueThreshold > 1 is unreachable), SAWL splits
// whenever the hit rate is high, trading extra wear-granularity for the
// same hit rate.
func BenchmarkAblation_SplitTrigger(b *testing.B) {
	run := func(subQueue float64) (splits float64) {
		sys, err := NewSystem(SystemConfig{
			Scheme: SAWL, Lines: 1 << 18, SpareLines: 1, Endurance: 1 << 30,
			Period: 64, CMTEntries: 1024,
			ObservationWindow: 1 << 12, SettlingWindow: 1 << 12,
			SubQueueThreshold: subQueue, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Hot phase after a scattered phase: forces merge then split
		// pressure.
		stream, _, _ := WorkloadSpec{Kind: WorkloadUniform, WriteRatio: 1, Seed: 3}.Build(1 << 18)
		for i := 0; i < 400000; i++ {
			sys.Write(stream.Next().Addr)
		}
		for i := uint64(0); i < 400000; i++ {
			sys.Write(i % 256)
		}
		return float64(sys.Splits())
	}
	var paper, hitOnly float64
	for i := 0; i < b.N; i++ {
		paper = run(0.99)
		hitOnly = run(0.000001) // imbalance condition always satisfied
	}
	b.ReportMetric(paper, "splits_paperTrigger")
	b.ReportMetric(hitOnly, "splits_hitRateOnly")
}

// BenchmarkAblation_XORSplitCost verifies the zero-data-movement split
// claim (Fig 9): a merge costs ~2Q line writes, the split back costs only
// translation-table writes.
func BenchmarkAblation_XORSplitCost(b *testing.B) {
	var mergeCost, splitCost float64
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(SystemConfig{
			Scheme: SAWL, Lines: 1 << 12, SpareLines: 1, Endurance: 1 << 30,
			Period: 1 << 20, CMTEntries: 256, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		core := sys.coreScheme()
		// Randomize region placement first: with the initial identity
		// mapping a buddy merge happens to need no movement.
		core.ForceExchange(0)
		core.ForceExchange(4)
		before := sys.Stats()
		core.ForceMerge(0)
		mid := sys.Stats()
		core.ForceSplit(0)
		after := sys.Stats()
		mergeCost = float64(mid.SwapWrites + mid.MergeWrites - before.SwapWrites - before.MergeWrites)
		splitCost = float64(after.SwapWrites + after.MergeWrites - mid.SwapWrites - mid.MergeWrites)
	}
	b.ReportMetric(mergeCost, "merge_lineWrites")
	b.ReportMetric(splitCost, "split_lineWrites")
	if mergeCost == 0 {
		b.Fatal("merge unexpectedly free after randomized placement")
	}
	if splitCost != 0 {
		b.Fatalf("split moved data: %v line writes", splitCost)
	}
}

// BenchmarkScheme_AccessThroughput measures raw Access cost per scheme —
// the simulator's own performance envelope.
func BenchmarkScheme_AccessThroughput(b *testing.B) {
	for _, kind := range []SchemeKind{Baseline, RBSG, TLSR, PCMS, MWSR, NWL, SAWL} {
		b.Run(string(kind), func(b *testing.B) {
			sys, err := NewSystem(SystemConfig{
				Scheme: kind, Lines: 1 << 16, SpareLines: 1 << 30, Endurance: 1 << 30,
				RegionLines: 16, Regions: 256, Period: 16, CMTEntries: 4096, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			mask := uint64(1<<16 - 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Write(uint64(i*2654435761) & mask)
			}
		})
	}
}

// BenchmarkAblation_LazyMerge contrasts the paper's lazy merging (merge
// traffic spread across accesses, bounded per access) against the naive
// stop-the-world alternative (merge every region at once): the reported
// metrics are the single-burst line writes of stop-the-world versus the
// largest per-access merge cost the lazy scheme ever incurs.
func BenchmarkAblation_LazyMerge(b *testing.B) {
	var burst, lazyMax float64
	for i := 0; i < b.N; i++ {
		// Stop-the-world variant.
		stw, err := NewSystem(SystemConfig{
			Scheme: SAWL, Lines: 1 << 12, SpareLines: 1, Endurance: 1 << 30,
			Period: 1 << 20, CMTEntries: 256, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Randomize placement first (fresh identity layouts make buddy
		// merges accidentally free).
		for r := uint64(0); r < 1<<10; r += 8 {
			stw.coreScheme().ForceExchange(r)
		}
		burst = float64(stw.coreScheme().MergeAllOnce())

		// Lazy variant: drive a low-locality workload through merge mode
		// and record the largest per-access write burst.
		lazy, err := NewSystem(SystemConfig{
			Scheme: SAWL, Lines: 1 << 12, SpareLines: 1, Endurance: 1 << 30,
			Period: 8, CMTEntries: 64, Seed: 9,
			ObservationWindow: 1 << 10, SettlingWindow: 1 << 10, CheckEvery: 1 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		stream, _, _ := WorkloadSpec{Kind: WorkloadUniform, WriteRatio: 1, Seed: 9}.Build(1 << 12)
		prev := lazy.Stats()
		lazyMax = 0
		for j := 0; j < 50000; j++ {
			lazy.Write(stream.Next().Addr)
			st := lazy.Stats()
			delta := float64(st.MergeWrites + st.SwapWrites - prev.MergeWrites - prev.SwapWrites)
			if delta > lazyMax {
				lazyMax = delta
			}
			prev = st
		}
	}
	b.ReportMetric(burst, "stopTheWorld_burstWrites")
	b.ReportMetric(lazyMax, "lazy_maxPerAccessWrites")
	if burst <= lazyMax {
		b.Fatalf("stop-the-world burst %v not worse than lazy max %v", burst, lazyMax)
	}
}

// BenchmarkCrashRecovery measures checkpoint + recovery cost for a 64K-line
// tiered system — the Sec 3.1 durability mechanism this repository
// implements concretely.
func BenchmarkCrashRecovery(b *testing.B) {
	sys, err := NewSystem(SystemConfig{
		Scheme: SAWL, Lines: 1 << 16, SpareLines: 1, Endurance: 1 << 30,
		Period: 8, CMTEntries: 1024, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 200000; i++ {
		sys.Write(i * 2654435761 % (1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ckpt := sys.Checkpoint()
		if _, err := RecoverSystem(sys, ckpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_GTDWearLeveling justifies wear-leveling the reserved
// translation-line area itself (the GTD's second job): with the GTD's
// exchanges disabled, hot translation lines concentrate all the
// table-update wear.
func BenchmarkAblation_GTDWearLeveling(b *testing.B) {
	run := func(gtdPeriod uint64) float64 {
		cfg := core.Config{
			Lines: 1 << 12, InitGran: 4, Period: 2, CMTEntries: 256,
			GTDPeriod: gtdPeriod, Seed: 3,
		}
		dev := nvm.New(nvm.Config{Lines: cfg.DeviceLines(), Endurance: 1 << 30})
		s := core.New(dev, cfg)
		// Hammer one region so its translation line updates repeatedly.
		for i := 0; i < 300000; i++ {
			s.Access(trace.Write, uint64(i)%16)
		}
		// Gini over the reserved area only.
		return metrics.GiniUint32(dev.WearCounts()[1<<12:])
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(64)
		without = run(1 << 30)
	}
	b.ReportMetric(with, "giniReserved_withGTD")
	b.ReportMetric(without, "giniReserved_noGTD")
	if with >= without {
		b.Fatalf("GTD wear leveling did not flatten reserved-area wear: %.3f >= %.3f", with, without)
	}
}

// BenchmarkShardedLifetime measures the intra-run sharding speedup: one
// SAWL BPA lifetime run decomposed across the bank geometry, at 1/2/4/8
// shards with matching parallelism. On an 8-core host the 8-shard variant
// approaches the per-shard work ratio (the acceptance target is >=3x over
// shards1); on fewer cores the variants collapse toward the serial time.
// The reported pctLife metric shows the shard layouts agreeing within the
// documented tolerance — the speedup does not change what is simulated.
func BenchmarkShardedLifetime(b *testing.B) {
	cfg := SystemConfig{
		Scheme:     SAWL,
		Lines:      1 << 14,
		SpareLines: 1 << 9,
		Endurance:  2500,
		Period:     8,
		CMTEntries: 1 << 12,
		Seed:       42,
	}
	w := WorkloadSpec{Kind: WorkloadBPA, Seed: 42}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			var res LifetimeResult
			for i := 0; i < b.N; i++ {
				var plan ShardPlan
				var err error
				res, plan, err = RunShardedLifetime(cfg, w, 0, ShardedRunOptions{
					Shards: shards, Parallelism: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if shards > 1 && plan.Shards != shards {
					b.Fatalf("plan fell back to %d shards: %s", plan.Shards, plan.Reason)
				}
			}
			b.ReportMetric(100*res.Normalized, "pctLife")
		})
	}
}
