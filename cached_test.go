package nvmwear

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvmwear/internal/store"
)

// This file holds the checkpoint/resume guarantees at the figure level: a
// warm or partially-populated cache must reproduce the exact table a cold,
// cache-less run prints — resuming is an optimisation, never a different
// experiment.

// openCache opens a result store in dir for the test, failing fast and
// closing on cleanup.
func openCache(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Logf = t.Logf
	t.Cleanup(func() { st.Close() })
	return st
}

// cacheObjects lists the entry files a cached run left in dir.
func cacheObjects(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestCachedRunByteIdenticalToUncached(t *testing.T) {
	sc := tinyScale()
	uncached := renderFig(RunFig3(sc))

	dir := t.TempDir()
	st := openCache(t, dir)
	sc.Cache = st
	cold := renderFig(RunFig3(sc))
	if cold != uncached {
		t.Fatalf("cold cached table differs from uncached:\n--- uncached ---\n%s\n--- cached ---\n%s",
			uncached, cold)
	}
	if st.Stats().Puts == 0 {
		t.Fatal("cold cached run persisted nothing")
	}
	warm := renderFig(RunFig3(sc))
	if warm != uncached {
		t.Fatalf("warm cached table differs from uncached:\n--- uncached ---\n%s\n--- cached ---\n%s",
			uncached, warm)
	}
	if hits := st.Stats().Hits; hits == 0 {
		t.Fatal("warm run served no cache hits")
	}
}

// TestPartialCacheResumesByteIdentical models a killed sweep: some results
// persisted, some gone. The resumed run — at a different worker count — must
// recompute only the gaps and still render the identical table.
func TestPartialCacheResumesByteIdentical(t *testing.T) {
	sc := tinyScale()
	uncached := renderFig(RunFig3(withParallelism(sc, 1)))

	dir := t.TempDir()
	st := openCache(t, dir)
	sc.Cache = st
	if got := renderFig(RunFig3(withParallelism(sc, 4))); got != uncached {
		t.Fatal("cold cached run differs from uncached")
	}

	// "Crash": drop every third persisted result.
	objects := cacheObjects(t, dir)
	if len(objects) < 3 {
		t.Fatalf("only %d cache entries, expected one per job", len(objects))
	}
	for i, p := range objects {
		if i%3 == 0 {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
		}
	}

	before := st.Stats()
	if got := renderFig(RunFig3(withParallelism(sc, 8))); got != uncached {
		t.Fatalf("resumed table differs from uncached:\n--- uncached ---\n%s\n--- resumed ---\n%s",
			uncached, got)
	}
	after := st.Stats()
	if after.Hits == before.Hits {
		t.Fatal("resume served no hits despite surviving entries")
	}
	if after.Misses == before.Misses {
		t.Fatal("resume recomputed nothing despite deleted entries")
	}
}

// TestCorruptCacheEntryRecoversEndToEnd flips bits in a persisted result;
// the next run must quarantine it, recompute, and print the same table.
func TestCorruptCacheEntryRecoversEndToEnd(t *testing.T) {
	sc := tinyScale()
	uncached := renderFig(RunFig3(sc))

	dir := t.TempDir()
	st := openCache(t, dir)
	sc.Cache = st
	if got := renderFig(RunFig3(sc)); got != uncached {
		t.Fatal("cold cached run differs from uncached")
	}

	objects := cacheObjects(t, dir)
	data, err := os.ReadFile(objects[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x55
	if err := os.WriteFile(objects[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if got := renderFig(RunFig3(sc)); got != uncached {
		t.Fatalf("table differs after corrupt entry:\n--- uncached ---\n%s\n--- got ---\n%s",
			uncached, got)
	}
	stats := st.Stats()
	if stats.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", stats.Quarantined)
	}
	// The evidence file survives for inspection.
	entries, err := os.ReadDir(filepath.Join(dir, "corrupt"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("corrupt/ holds %d entries (err %v), want 1", len(entries), err)
	}
}

// TestCacheKeysCarryVersionSalt pins the invalidation contract: every key
// starts with resultsVersion, so bumping the salt orphans old entries
// instead of serving stale results.
func TestCacheKeysCarryVersionSalt(t *testing.T) {
	sc := tinyScale()
	key := sc.cacheKey("fig3", true, 7)
	if !strings.HasPrefix(key, resultsVersion+"|") {
		t.Fatalf("cache key %q lacks the %q salt prefix", key, resultsVersion)
	}
	other := sc.cacheKey("fig3", true, 8)
	if key == other {
		t.Fatal("distinct job indices share a cache key")
	}
	scaled := sc
	scaled.Requests *= 2
	if scaled.cacheKey("fig3", true, 7) == key {
		t.Fatal("distinct scales share a cache key")
	}
	seeded := sc
	seeded.Seed++
	if seeded.cacheKey("fig3", true, 7) == key {
		t.Fatal("distinct seeds share a cache key")
	}

	// Shard-layout salting is per experiment: a sharded sweep's keys change
	// with the shard count, while an experiment the sharder never touches
	// keeps the same (serial) keys at every -shards value.
	sharded := sc
	sharded.Shards = 4
	if sharded.cacheKey("fig3", true, 7) == key {
		t.Fatal("sharded layout shares the serial cache key")
	}
	if sharded.cacheKey("fig3", false, 7) != key {
		t.Fatal("unsharded experiment's key varies with the shard layout")
	}
}

// TestWearModelSaltsCacheKeys pins the -wear invalidation contract at both
// levels. Key level: a non-default wear model salts the lifetime sweeps'
// keys while the default keeps the historical keys and experiments the
// sharder never touches ignore the model entirely. Store level: against
// one warm cache, a -wear override forces a full recompute (no stale
// default-physics results can be served), produces a different table, and
// leaves the default entries warm for the next default run.
func TestWearModelSaltsCacheKeys(t *testing.T) {
	sc := tinyScale()
	key := sc.cacheKey("fig15", true, 3)
	worn := sc
	worn.WearModel = "compress"
	if worn.cacheKey("fig15", true, 3) == key {
		t.Fatal("wear model does not salt the sharded cache key")
	}
	if worn.cacheKey("fig12", false, 3) != sc.cacheKey("fig12", false, 3) {
		t.Fatal("wear model salts an experiment the sharder never touches")
	}

	dir := t.TempDir()
	st := openCache(t, dir)
	sc.Cache = st
	worn.Cache = st
	def := renderFig(RunFig15(sc))
	defMisses := st.Stats().Misses
	if defMisses == 0 {
		t.Fatal("cold default run persisted nothing")
	}
	compressed := renderFig(RunFig15(worn))
	wornStats := st.Stats()
	if got := wornStats.Misses - defMisses; got != defMisses {
		t.Fatalf("-wear compress recomputed %d of %d jobs; wear-salted keys must force a full recompute", got, defMisses)
	}
	if compressed == def {
		t.Fatal("compression-aware wear rendered the default-physics table")
	}
	if again := renderFig(RunFig15(sc)); again != def {
		t.Fatal("default re-run after the -wear run lost byte identity")
	}
	final := st.Stats()
	if final.Misses != wornStats.Misses {
		t.Fatalf("default re-run recomputed %d jobs; its entries should have stayed warm", final.Misses-wornStats.Misses)
	}
	if final.Hits == wornStats.Hits {
		t.Fatal("default re-run served no cache hits")
	}
}

// TestOpenCacheWiring exercises Scale.OpenCache, the path wlsim uses.
func TestOpenCacheWiring(t *testing.T) {
	sc := tinyScale()
	closer, err := sc.OpenCache()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cache != nil {
		t.Fatal("OpenCache with empty CacheDir attached a store")
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}

	sc.CacheDir = t.TempDir()
	closer, err = sc.OpenCache()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cache == nil {
		t.Fatal("OpenCache left Cache nil")
	}
	if _, err := store.Open(sc.CacheDir); err == nil {
		t.Fatal("open cache dir not locked against concurrent use")
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
}
