// Command tracegen generates, converts and inspects memory-request traces
// in this repository's binary trace format.
//
// Usage:
//
//	tracegen -workload spec -name gcc -n 1000000 -lines 4194304 -o gcc.trace
//	tracegen -inspect gcc.trace
//	tracegen -workload bpa -n 100000 -lines 65536 -text -o bpa.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nvmwear"
	"nvmwear/internal/trace"
)

func main() {
	workload := flag.String("workload", "spec", "workload kind: raa|bpa|uniform|sequential|spec")
	name := flag.String("name", "gcc", "SPEC profile name (workload=spec)")
	n := flag.Uint64("n", 1<<20, "requests to generate")
	lines := flag.Uint64("lines", 1<<22, "logical address space in lines")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	text := flag.Bool("text", false, "emit human-readable text instead of binary")
	inspect := flag.String("inspect", "", "summarize an existing binary trace file instead of generating")
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	spec := nvmwear.WorkloadSpec{
		Kind: nvmwear.WorkloadKind(*workload),
		Name: *name,
		Seed: *seed,
	}
	stream, label, err := spec.Build(*lines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if *text {
		reqs := make([]trace.Request, 0, *n)
		for i := uint64(0); i < *n; i++ {
			reqs = append(reqs, stream.Next())
		}
		if err := trace.WriteText(w, reqs); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	} else {
		tw := trace.NewWriter(w)
		for i := uint64(0); i < *n; i++ {
			if err := tw.Write(stream.Next()); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
		}
		if err := tw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d %s requests\n", *n, label)
}

// inspectTrace prints summary statistics of a binary trace file.
func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var reqs, writes uint64
	minA, maxA := ^uint64(0), uint64(0)
	unique := make(map[uint64]struct{})
	const uniqueCap = 1 << 22
	saturated := false
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		reqs++
		if req.Op == trace.Write {
			writes++
		}
		if req.Addr < minA {
			minA = req.Addr
		}
		if req.Addr > maxA {
			maxA = req.Addr
		}
		if !saturated {
			unique[req.Addr] = struct{}{}
			if len(unique) >= uniqueCap {
				saturated = true
			}
		}
	}
	if reqs == 0 {
		fmt.Println("empty trace")
		return nil
	}
	uniq := fmt.Sprintf("%d", len(unique))
	if saturated {
		uniq = ">= " + uniq
	}
	fmt.Printf("requests      %d\n", reqs)
	fmt.Printf("writes        %d (%.1f%%)\n", writes, 100*float64(writes)/float64(reqs))
	fmt.Printf("address range [%#x, %#x]\n", minA, maxA)
	fmt.Printf("unique addrs  %s\n", uniq)
	return nil
}
