// Command wearviz runs a workload through a wear-leveling scheme and
// renders the resulting per-line wear distribution as an ASCII heat map —
// a quick way to *see* why a repeated-address attack destroys Start-Gap
// but not SAWL.
//
// Usage:
//
//	wearviz -scheme sawl -workload raa -n 2000000
//	wearviz -scheme rbsg -workload raa -n 2000000
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmwear"
)

// shades maps a wear bucket to a glyph, cold to hot.
var shades = []byte(" .:-=+*#%@")

func main() {
	scheme := flag.String("scheme", "sawl", "scheme: baseline|segswap|startgap|rbsg|tlsr|pcms|mwsr|nwl|sawl")
	workloadKind := flag.String("workload", "raa", "workload: raa|bpa|uniform|sequential|spec")
	name := flag.String("name", "gcc", "SPEC profile (workload=spec)")
	n := flag.Uint64("n", 1<<21, "requests to run")
	lines := flag.Uint64("lines", 1<<14, "device data lines")
	period := flag.Uint64("period", 16, "swapping period")
	seed := flag.Uint64("seed", 42, "seed")
	width := flag.Int("width", 64, "heat map width in cells")
	flag.Parse()

	sys, err := nvmwear.NewSystem(nvmwear.SystemConfig{
		Scheme:     nvmwear.SchemeKind(*scheme),
		Lines:      *lines,
		SpareLines: 1 << 30, // observe wear without device death
		Endurance:  1 << 30,
		Period:     *period,
		Regions:    *lines >> 8,
		CMTEntries: 4096,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wearviz:", err)
		os.Exit(1)
	}
	stream, label, err := nvmwear.WorkloadSpec{
		Kind: nvmwear.WorkloadKind(*workloadKind), Name: *name, Seed: *seed,
	}.Build(*lines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wearviz:", err)
		os.Exit(1)
	}
	for i := uint64(0); i < *n; i++ {
		r := stream.Next()
		if r.Op == 1 {
			sys.Write(r.Addr)
		} else {
			sys.Read(r.Addr)
		}
	}

	counts := sys.WearCounts()
	cells := *width * 16
	if cells > len(counts) {
		cells = len(counts)
	}
	per := len(counts) / cells
	sums := make([]uint64, cells)
	var maxSum uint64
	for i := 0; i < cells; i++ {
		for j := i * per; j < (i+1)*per; j++ {
			sums[i] += uint64(counts[j])
		}
		if sums[i] > maxSum {
			maxSum = sums[i]
		}
	}
	st := sys.Stats()
	fmt.Printf("scheme=%s workload=%s requests=%d\n", sys.SchemeName(), label, *n)
	fmt.Printf("wear: max=%d gini=%.3f overhead=%.2f%% cmt-hit=%.1f%%\n",
		st.MaxWear, st.WearGini, 100*st.WriteOverhead, 100*st.CMTHitRate)
	fmt.Printf("heat map (%d lines per cell, @=hottest):\n", per)
	for i := 0; i < cells; i++ {
		if i%*width == 0 && i > 0 {
			fmt.Println()
		}
		idx := 0
		if maxSum > 0 {
			idx = int(sums[i] * uint64(len(shades)-1) / maxSum)
		}
		fmt.Printf("%c", shades[idx])
	}
	fmt.Println()
}
