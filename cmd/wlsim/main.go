// Command wlsim regenerates the paper's tables and figures from the
// command line.
//
// Usage:
//
//	wlsim [-scale small|medium|large] [-seed N] [-j N] <experiment>
//
// where <experiment> is one of: table1, fig3, fig4, fig5, fig12, fig13,
// fig14, fig15, fig16, fig17, overhead, fault, all.
//
// Sweeps fan out across -j worker goroutines (default: all cores). Output
// tables are byte-identical for every -j value: jobs are independent
// simulations, collected in submission order, each seeded from
// (seed, job index). -shards N additionally decomposes every single
// lifetime run across N per-bank shards where the scheme allows it; a
// fixed -shards value is equally deterministic, but sharded and serial
// tables differ (different simulated geometry) and are cached separately.
//
// SIGINT/SIGTERM cancel the running sweep: completed points are flushed as
// a partial table and the process exits with status 130.
//
// Each experiment prints the same rows/series the paper reports, on a
// scaled-down device (see EXPERIMENTS.md for the scaling rules and the
// paper-vs-measured record).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"nvmwear"
	"nvmwear/internal/metrics"
	"nvmwear/internal/store"
)

func main() {
	scaleName := flag.String("scale", "medium", "experiment scale: small|medium|large")
	seed := flag.Uint64("seed", 42, "experiment seed")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel sweep jobs (0 = all cores)")
	shards := flag.Int("shards", 1, "per-bank shards per lifetime run (0 = auto: min(cores, 32))")
	quiet := flag.Bool("q", false, "suppress per-job progress on stderr")
	format := flag.String("format", "text", "output format: text|csv|json")
	normalized := flag.Float64("normalized", 0.85, "project: measured normalized lifetime")
	endurance := flag.Float64("endurance", 1e5, "project: cell endurance Wmax")
	capacityGB := flag.Uint64("capacity", 64, "project: device capacity in GB")
	bandwidthGB := flag.Float64("bandwidth", 1, "project: write traffic in GB/s")
	svgDir := flag.String("svg", "", "also write each figure as an SVG into this directory")
	sweepScheme := flag.String("scheme", "pcms", "sweep: scheme to sweep")
	cacheDir := flag.String("cache", "", "crash-safe result cache directory (enables checkpoint/resume)")
	cacheClear := flag.Bool("cache-clear", false, "empty the -cache store before running")
	flag.Usage = usage
	flag.Parse()
	if *cacheClear && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-cache-clear requires -cache <dir>")
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		// `-cache-clear -cache DIR` with no experiment is a valid
		// maintenance invocation: empty the store and stop.
		if *cacheClear && flag.NArg() == 0 {
			if err := store.Clear(*cacheDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		usage()
		os.Exit(2)
	}
	sc, err := nvmwear.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.Seed = *seed
	sc.Parallelism = *workers
	// -shards: the default is 1 — machine-independent, so the default
	// output is reproducible everywhere. 0 opts into machine-sized shards.
	switch {
	case *shards == 0:
		sc.Shards = runtime.GOMAXPROCS(0)
		if sc.Shards > nvmwear.MaxShards {
			sc.Shards = nvmwear.MaxShards
		}
	case *shards > nvmwear.MaxShards:
		sc.Shards = nvmwear.MaxShards
	default:
		sc.Shards = *shards
	}
	// Diagnostics (shard fallbacks, staleness) go to stderr so stdout stays
	// machine-readable; clear any live progress counter first.
	sc.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "\r\033[K"+format+"\n", args...)
	}

	// -cache: open (or create) the crash-safe result store. Completed
	// sweep jobs persist across process lifetimes, so an interrupted or
	// killed run resumes with only the missing jobs re-executed. The
	// store's lockfile serializes whole processes; a lock left by a dead
	// process (SIGKILL) is reclaimed automatically.
	var cache *store.Store
	if *cacheDir != "" {
		if *cacheClear {
			if err := store.Clear(*cacheDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		st, err := store.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		cache = st
		sc.CacheDir = *cacheDir
		sc.Cache = st
	}
	closeCache := func() {
		if cache != nil {
			cache.Close()
			cache = nil
		}
	}
	defer closeCache()

	// SIGINT/SIGTERM cancel the sweep through the scale's context; the
	// completed prefix of the running figure is flushed as a partial table
	// before exiting nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	sc.Context = ctx

	var currentFig string
	var jobsDone, jobsTotal int
	if !*quiet {
		// Per-job progress on stderr: one carriage-returned counter line
		// per sweep, cleared when the sweep completes.
		sc.Progress = func(done, total int) {
			jobsDone, jobsTotal = done, total
			fmt.Fprintf(os.Stderr, "\r%s: job %d/%d", currentFig, done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		}
	} else {
		sc.Progress = func(done, total int) { jobsDone, jobsTotal = done, total }
	}
	// WLSIM_JOB_DELAY_MS inserts a pause after every completed sweep job —
	// a test hook that widens the window for signal-delivery integration
	// tests without slowing real runs.
	if ms, _ := strconv.Atoi(os.Getenv("WLSIM_JOB_DELAY_MS")); ms > 0 {
		inner := sc.Progress
		sc.Progress = func(done, total int) {
			time.Sleep(time.Duration(ms) * time.Millisecond)
			inner(done, total)
		}
	}
	// Pipeline rendering: each completed series streams to stderr — and,
	// with -svg, into an accumulating <fig>.partial.svg — the moment its
	// last job finishes, instead of waiting for the whole sweep. The final
	// emit replaces the partial file with the complete figure.
	partialSeries := map[string][]nvmwear.Series{}
	partialFiles := map[string]bool{}
	removePartials := func() {
		for path := range partialFiles {
			os.Remove(path)
		}
		partialSeries = map[string][]nvmwear.Series{}
		partialFiles = map[string]bool{}
	}
	sc.SeriesDone = func(fig string, s nvmwear.Series) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r\033[K%s: series %q complete\n", fig, s.Label)
		}
		if *svgDir == "" {
			return
		}
		// Best-effort: a failed partial render never fails the sweep.
		partialSeries[fig] = append(partialSeries[fig], s)
		path := *svgDir + "/" + fig + ".partial.svg"
		f, err := os.Create(path)
		if err != nil {
			return
		}
		if nvmwear.WriteSeriesSVG(f, fig+" (partial)", "x", "value", false, partialSeries[fig]) == nil {
			partialFiles[path] = true
		}
		f.Close()
	}

	// Per-job wall times, fed by the pool after each completed job (zero
	// for cache hits, which are excluded from the percentiles below).
	var jobTimes []float64
	sc.JobTime = func(elapsed time.Duration) {
		if elapsed > 0 {
			jobTimes = append(jobTimes, float64(elapsed)/float64(time.Millisecond))
		}
	}
	// fail finishes an experiment that returned an error, after its partial
	// results (if any) were emitted: interruption exits 130, anything else 1.
	// The cache is closed first so its lock releases cleanly; completed jobs
	// were already persisted individually, so the next run resumes from them.
	fail := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "\n%v\n", err)
		if errors.Is(err, nvmwear.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "partial results flushed")
			closeCache()
			os.Exit(130)
		}
		closeCache()
		os.Exit(1)
	}
	emit := func(title, xName string, series []nvmwear.Series) {
		if err := nvmwear.FormatSeries(os.Stdout, *format, title, xName, series); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *svgDir != "" {
			logX := xName == "regions"
			path := *svgDir + "/" + currentFig + ".svg"
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := nvmwear.WriteSeriesSVG(f, title, xName, "value", logX, series); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	run := func(name string) bool {
		start := time.Now()
		currentFig = name
		jobsDone, jobsTotal = 0, 0
		jobTimes = jobTimes[:0]
		var cacheBefore store.Stats
		if cache != nil {
			cacheBefore = cache.Stats()
		}
		ok := true
		switch name {
		case "table1":
			fmt.Print(nvmwear.RunTable1().Render())
		case "fig3":
			series, err := nvmwear.RunFig3(sc)
			emit("Fig 3: TLSR normalized lifetime (%) vs number of regions, BPA",
				"regions", series)
			fail(err)
		case "fig4":
			series, err := nvmwear.RunFig4(sc)
			emit("Fig 4: PCM-S/MWSR normalized lifetime (%) vs number of regions, BPA",
				"regions", series)
			fail(err)
		case "fig5":
			series, err := nvmwear.RunFig5(sc)
			emit("Fig 5: hybrid lifetime (%) vs on-chip cache budget (KB), BPA",
				"budgetKB", series)
			fail(err)
		case "fig12":
			series, err := nvmwear.RunFig12(sc)
			emit("Fig 12: CMT hit rate (%) vs runtime for observation-window sizes (soplex)",
				"requests", series)
			fail(err)
		case "fig13":
			series, avg, err := nvmwear.RunFig13(sc)
			emit("Fig 13: region size (lines) vs runtime for settling-window sizes (soplex)",
				"requests", series)
			for _, s := range series {
				fmt.Printf("avg cache hit rate %s: %.1f%%\n", s.Label, avg[s.Label])
			}
			fail(err)
		case "fig14":
			res, err := nvmwear.RunFig14(sc)
			for _, r := range res {
				fmt.Printf("== Fig 14 (%s) ==\n", r.Bench)
				fmt.Printf("avg hit rate: NWL-4 %.1f%%  NWL-64 %.1f%%  SAWL %.1f%%\n",
					r.AvgNWL4, r.AvgNWL64, r.AvgSAWL)
				fmt.Print(nvmwear.SeriesTable("SAWL region-size trace",
					"requests", []nvmwear.Series{r.RegionSize}, "%.1f").Render())
			}
			fail(err)
		case "fig15":
			series, err := nvmwear.RunFig15(sc)
			emit("Fig 15: normalized lifetime (%) vs swapping period, BPA",
				"period", series)
			fail(err)
		case "fig16":
			fail(printFig16(sc, true))
			fail(printFig16(sc, false))
		case "fig17":
			series, err := nvmwear.RunFig17(sc)
			tab := nvmwear.SeriesTable(
				"Fig 17: IPC degradation (%) vs baseline without wear leveling",
				"bench#", series, "%.1f")
			relabelBenches(&tab)
			fmt.Print(tab.Render())
			fail(err)
		case "fault":
			life, loss, err := nvmwear.RunFault(sc)
			emit("Fault sweep: normalized lifetime (%) vs injected fault rate, uniform 50% writes",
				"rate", life)
			currentFig = "fault-loss"
			emit("Fault sweep: uncorrectable losses per 1M reads vs injected fault rate",
				"rate", loss)
			fail(err)
		case "overhead":
			fmt.Print(nvmwear.RunOverhead(64<<30, 64<<20, 32).Render())
		case "attack":
			runAttack(sc)
		case "sweep":
			series, err := nvmwear.RunSweep(sc, nvmwear.SchemeKind(*sweepScheme),
				[]uint64{4, 16, 64, 256}, []uint64{8, 16, 32, 64})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			emit(fmt.Sprintf("BPA lifetime (%%) sweep: %s", *sweepScheme),
				"regionLines", series)
		case "project":
			p := nvmwear.ProjectLifetime(*capacityGB<<30, uint64(*endurance),
				*bandwidthGB*float64(1<<30), *normalized)
			fmt.Printf("%s\n", p)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			ok = false
		}
		if ok {
			// The full figure was emitted: the accumulated partial SVGs are
			// now superseded.
			removePartials()
			elapsed := time.Since(start)
			if jobsTotal > 0 {
				fmt.Printf("[%s completed in %v at scale %s: %d jobs, %.1f jobs/s%s, -j %d%s]\n\n",
					name, elapsed.Round(time.Millisecond), sc.Name,
					jobsDone, float64(jobsDone)/elapsed.Seconds(),
					jobTimeSummary(jobTimes), effectiveWorkers(sc.Parallelism),
					cacheSummary(cache, cacheBefore))
			} else {
				fmt.Printf("[%s completed in %v at scale %s]\n\n", name, elapsed.Round(time.Millisecond), sc.Name)
			}
		}
		return ok
	}

	target := flag.Arg(0)
	if target == "all" {
		names := []string{
			"table1", "fig3", "fig4", "fig5", "fig12", "fig13",
			"fig14", "fig15", "fig16", "fig17", "overhead",
		}
		// Staleness report: with a cache open, probe every experiment's job
		// keys up front so fully-cached experiments are visibly skipped
		// before any simulation starts.
		if cache != nil {
			for _, name := range names {
				for _, f := range sc.CacheFreshness(name) {
					fmt.Fprintf(os.Stderr, "cache: %-7s %3d/%3d jobs cached, %d stale\n",
						f.Fig, f.Cached, f.Jobs, f.Stale())
				}
			}
		}
		for _, name := range names {
			if !run(name) {
				os.Exit(1)
			}
		}
		return
	}
	if !run(target) {
		usage()
		os.Exit(1)
	}
}

// printFig16 renders one panel of Fig 16, returning the sweep's error (if
// any) after the completed rows were printed.
func printFig16(sc nvmwear.Scale, coarse bool) error {
	panel := "(a) coarse regions"
	if !coarse {
		panel = "(b) fine regions"
	}
	series, err := nvmwear.RunFig16(sc, coarse)
	tab := nvmwear.SeriesTable(
		fmt.Sprintf("Fig 16 %s: normalized lifetime (%%) under SPEC-like applications", panel),
		"bench#", series, "%.1f")
	relabelBenches(&tab)
	fmt.Print(tab.Render())
	return err
}

// relabelBenches replaces numeric benchmark indices with names (the last
// index is the harmonic mean).
func relabelBenches(tab *nvmwear.Table) {
	names := nvmwear.SpecBenchmarks()
	for i := range tab.Rows {
		if i < len(names) {
			tab.Rows[i][0] = names[i]
		} else {
			tab.Rows[i][0] = "Hmean"
		}
	}
}

// effectiveWorkers resolves the -j value the pool actually used.
func effectiveWorkers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// jobTimeSummary renders the per-job wall-time percentiles of one sweep
// (cache hits excluded — they measure the disk, not the simulator).
func jobTimeSummary(ms []float64) string {
	if len(ms) == 0 {
		return ""
	}
	toDur := func(q float64) time.Duration {
		return time.Duration(metrics.Quantile(ms, q) * float64(time.Millisecond)).Round(100 * time.Microsecond)
	}
	return fmt.Sprintf(", job p50 %v p99 %v", toDur(0.50), toDur(0.99))
}

// cacheSummary renders the result-store delta of one sweep: how many jobs
// were served from cache, how many missed, and how many freshly computed
// results were durably stored ("recomputed"). Quarantined counts corrupt
// entries that were detected, moved aside, and recomputed.
func cacheSummary(cache *store.Store, before store.Stats) string {
	if cache == nil {
		return ""
	}
	now := cache.Stats()
	s := fmt.Sprintf(", cache: %d hits, %d misses, %d recomputed",
		now.Hits-before.Hits, now.Misses-before.Misses, now.Puts-before.Puts)
	if q := now.Quarantined - before.Quarantined; q > 0 {
		s += fmt.Sprintf(", %d quarantined", q)
	}
	return s
}

// runAttack prints each scheme's RAA/BPA lifetimes and a verdict. The
// seven schemes are scored concurrently on the scale's pool.
func runAttack(sc nvmwear.Scale) {
	kinds := []nvmwear.SchemeKind{
		nvmwear.Baseline, nvmwear.SegmentSwap, nvmwear.RBSG,
		nvmwear.TLSR, nvmwear.PCMS, nvmwear.MWSR, nvmwear.SAWL,
	}
	scores, err := nvmwear.RunAttackScores(sc, kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-12s  %12s  %12s  verdict\n", "scheme", "RAA life%", "BPA life%")
	for i, kind := range kinds {
		fmt.Printf("%-12s  %11.1f%%  %11.1f%%  %s\n", kind,
			100*scores[i].RAANormalized, 100*scores[i].BPANormalized, scores[i].Verdict())
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `wlsim regenerates the SAWL paper's tables and figures.

usage: wlsim [-scale small|medium|large] [-seed N] [-j N] [-shards N] [-q]
             [-cache DIR [-cache-clear]] <experiment>

Sweeps run as -j parallel jobs (default: all cores; each sweep reports
wall-clock, jobs/s and per-job p50/p99). Tables are byte-identical for
every -j value: jobs are independent, results are collected in submission
order, and job i is seeded deterministically from (seed, i). -q silences
the per-job progress counter printed to stderr. SIGINT/SIGTERM cancel the
running sweep, flush the completed points as a partial table, and exit 130.

-shards N decomposes every single lifetime run across N per-bank shards
(capped at the device's 32-bank geometry; 0 = one shard per core), using
all cores even when a sweep has few points. Schemes that level within
independent regions (Baseline, RBSG, NWL, SAWL) shard exactly; globally
coupled schemes (segment swap, start-gap, TLSR, PCM-S, MWSR) fall back to
serial with a reason on stderr. A fixed -shards value is deterministic for
every -j, but sharded tables differ from serial ones (per-bank devices,
spare pools and RNG substreams — see DESIGN.md par.10); the default is
therefore 1, and sharded results are cached under separate keys.

As each series of a figure completes, a notice goes to stderr and (with
-svg) an accumulating <fig>.partial.svg is updated, so long sweeps render
progressively; the final figure replaces the partial file. With -cache,
"wlsim all" first prints a per-figure staleness report (jobs cached vs
stale) so fully-cached experiments are visibly skipped.

-cache DIR memoizes completed sweep jobs in a crash-safe disk store:
re-running the same experiment re-executes only the missing jobs, so an
interrupted (even SIGKILLed) sweep resumes where it stopped and emits the
identical table. Corrupt entries are detected, quarantined and recomputed,
never trusted. -cache-clear empties the store first (alone, with no
experiment, it just empties and exits). Each sweep's summary line reports
cache hits/misses/recomputed.

experiments:
  table1    simulated system configuration (Table 1)
  fig3      TLSR lifetime vs number of regions (BPA)
  fig4      PCM-S/MWSR lifetime vs number of regions (BPA)
  fig5      hybrid lifetime vs on-chip cache budget (BPA)
  fig12     hit rate vs runtime for observation-window sizes
  fig13     region size vs runtime for settling-window sizes
  fig14     NWL-4 / NWL-64 / SAWL hit rates (bzip2, cactusADM, gcc)
  fig15     PCM-S / MWSR / SAWL lifetime vs swapping period (BPA)
  fig16     lifetime under 14 SPEC-like applications
  fig17     IPC degradation vs no-wear-leveling baseline
  overhead  hardware overhead arithmetic (Sec 4.5)
  fault     lifetime + uncorrectable-loss curves vs injected fault rate
  attack    RAA + BPA resilience verdict per scheme (Sec 2.2)
  sweep     BPA lifetime over region-size x period grid (-scheme)
  project   wall-clock lifetime projection (-normalized, -endurance,
            -capacity GB, -bandwidth GB/s)
  all       everything above
`)
}
