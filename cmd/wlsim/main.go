// Command wlsim regenerates the paper's tables and figures from the
// command line.
//
// Usage:
//
//	wlsim [-scale tiny|small|medium|large] [-seed N] [-j N] <experiment>
//
// where <experiment> is any name in the package registry (`wlsim list`
// prints the catalogue), or `all` for every experiment marked for it.
//
// Sweeps fan out across -j worker goroutines (default: all cores). Output
// tables are byte-identical for every -j value: jobs are independent
// simulations, collected in submission order, each seeded from
// (seed, job index). -shards N additionally decomposes every single
// lifetime run across N per-bank shards where the scheme allows it; a
// fixed -shards value is equally deterministic, but sharded and serial
// tables differ (different simulated geometry) and are cached separately.
//
// SIGINT/SIGTERM cancel the running sweep: completed points are flushed as
// a partial table and the process exits with status 130.
//
// Each experiment prints the same rows/series the paper reports, on a
// scaled-down device (see EXPERIMENTS.md for the scaling rules and the
// paper-vs-measured record). All per-experiment behavior — dispatch, job
// planning, cache freshness, rendering — comes from the nvmwear experiment
// registry through nvmwear.Driver; this file only parses flags and wires
// signals and stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nvmwear"
	"nvmwear/internal/serve"
	"nvmwear/internal/store"
)

// runServe runs the long-lived experiment service until it drains — via
// SIGINT/SIGTERM or POST /quitquitquit — then exits 0. In-flight sweep
// jobs checkpoint to the -cache store during the drain (forcibly canceled
// after -drain-timeout), so a restarted server resumes runs warm.
func runServe(cfg serve.Config) int {
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		s.Drain("signal")
	}()
	s.Wait()
	return 0
}

func main() {
	scaleName := flag.String("scale", "medium", "experiment scale: tiny|small|medium|large")
	seed := flag.Uint64("seed", 42, "experiment seed")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel sweep jobs (0 = all cores)")
	shards := flag.Int("shards", 1, "per-bank shards per lifetime run (0 = auto: min(cores, 32))")
	quiet := flag.Bool("q", false, "suppress per-job progress on stderr")
	format := flag.String("format", "text", "output format: text|csv|json")
	normalized := flag.Float64("normalized", 0.85, "project: measured normalized lifetime")
	endurance := flag.Float64("endurance", 1e5, "project: cell endurance Wmax")
	capacityGB := flag.Uint64("capacity", 64, "project: device capacity in GB")
	bandwidthGB := flag.Float64("bandwidth", 1, "project: write traffic in GB/s")
	svgDir := flag.String("svg", "", "also write each figure as an SVG into this directory")
	sweepScheme := flag.String("scheme", "pcms", "sweep: scheme to sweep")
	wearModel := flag.String("wear", "", "wear model for lifetime runs: uniform|variation|compress (default: historical behavior)")
	devices := flag.String("devices", "", "fleet: devices per scheme: N, scheme=N overrides, or both (\"32,rbsg=64\"; default 16)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	cacheDir := flag.String("cache", "", "crash-safe result cache directory (enables checkpoint/resume)")
	cacheClear := flag.Bool("cache-clear", false, "empty the -cache store before running")
	force := flag.Bool("force", false, "all: re-run experiments even when fully cached")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (partial results flushed, exit 130)")
	addr := flag.String("addr", "127.0.0.1:8377", "serve: listen address")
	queueDepth := flag.Int("queue", 16, "serve: bounded run-queue depth (full queue answers 503)")
	serveWorkers := flag.Int("serve-workers", 2, "serve: concurrent experiment runs")
	maxRunJobs := flag.Int("max-run-jobs", 0, "reject runs planning more sweep jobs than this (0 = unlimited; CLI and serve)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "serve: in-flight grace period on shutdown before force-cancel")
	flag.Usage = usage
	flag.Parse()
	if *cacheClear && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-cache-clear requires -cache <dir>")
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		// `-cache-clear -cache DIR` with no experiment is a valid
		// maintenance invocation: empty the store and stop.
		if *cacheClear && flag.NArg() == 0 {
			if err := store.Clear(*cacheDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		usage()
		os.Exit(2)
	}
	sc, err := nvmwear.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.Seed = *seed
	sc.Parallelism = *workers
	// -shards: the default is 1 — machine-independent, so the default
	// output is reproducible everywhere. 0 opts into machine-sized shards.
	switch {
	case *shards == 0:
		sc.Shards = runtime.GOMAXPROCS(0)
		if sc.Shards > nvmwear.MaxShards {
			sc.Shards = nvmwear.MaxShards
		}
	case *shards > nvmwear.MaxShards:
		sc.Shards = nvmwear.MaxShards
	default:
		sc.Shards = *shards
	}
	// -wear is validated up front — both the CLI and serve paths inherit the
	// checked name, so a typo fails fast instead of erroring per sweep job.
	if err := nvmwear.CheckWearModel(*wearModel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.WearModel = *wearModel
	// Diagnostics (shard fallbacks, staleness, skip notices) go to stderr so
	// stdout stays machine-readable; clear any live progress counter first.
	sc.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "\r\033[K"+format+"\n", args...)
	}
	// `wlsim serve` hands the whole registry to a long-lived HTTP service;
	// it opens (and arbitrates) its own result store, so it dispatches
	// before the CLI's cache handling below.
	if flag.Arg(0) == "serve" {
		os.Exit(runServe(serve.Config{
			Addr:         *addr,
			Scale:        *scaleName,
			Seed:         *seed,
			Parallelism:  *workers,
			Shards:       sc.Shards,
			Wear:         *wearModel,
			CacheDir:     *cacheDir,
			Format:       *format,
			QueueDepth:   *queueDepth,
			Workers:      *serveWorkers,
			MaxRunJobs:   *maxRunJobs,
			RunTimeout:   *timeout,
			DrainTimeout: *drainTimeout,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}))
	}
	sc.SweepScheme = nvmwear.SchemeKind(*sweepScheme)
	base, overrides, err := parseDevices(*devices)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.FleetDevices = base
	sc.FleetDeviceOverrides = overrides
	// WLSIM_FLEET_POISON=N poisons fleet device job N (1-based): the job
	// panics mid-run so integration tests can prove quarantine isolation
	// end to end. Unset or 0 poisons nothing.
	if n, _ := strconv.Atoi(os.Getenv("WLSIM_FLEET_POISON")); n > 0 {
		sc.FleetPoison = n
	}
	sc.Project = nvmwear.ProjectParams{
		Normalized:    *normalized,
		Endurance:     uint64(*endurance),
		CapacityGB:    *capacityGB,
		BandwidthGBps: *bandwidthGB,
	}

	// -cache: open (or create) the crash-safe result store. Completed
	// sweep jobs persist across process lifetimes, so an interrupted or
	// killed run resumes with only the missing jobs re-executed. The
	// store's lockfile serializes whole processes; a lock left by a dead
	// process (SIGKILL) is reclaimed automatically.
	var cache *store.Store
	if *cacheDir != "" {
		if *cacheClear {
			if err := store.Clear(*cacheDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		st, err := store.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		cache = st
		sc.CacheDir = *cacheDir
		sc.Cache = st
	}
	closeCache := func() {
		if cache != nil {
			cache.Close()
			cache = nil
		}
	}
	defer closeCache()

	// SIGINT/SIGTERM cancel the sweep through the scale's context; the
	// completed prefix of the running figure is flushed as a partial table
	// before exiting nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// -timeout bounds the whole run with the same cancellation path as
	// SIGINT: the sweep stops, completed points flush as a partial table,
	// and the process exits 130.
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeoutCause(ctx, *timeout,
			fmt.Errorf("run timed out after %v", *timeout))
		defer cancelTimeout()
	}
	sc.Context = ctx

	d := &nvmwear.Driver{
		Scale:      sc,
		Out:        os.Stdout,
		Format:     *format,
		SVGDir:     *svgDir,
		Force:      *force,
		CPUProfile: *cpuProfile,
		MemProfile: *memProfile,
	}
	if err := d.StartProfiling(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		closeCache()
		os.Exit(1)
	}
	stopProfiles := func() {
		if err := d.StopProfiling(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if !*quiet {
		// Per-job progress on stderr: one carriage-returned counter line
		// per sweep, cleared when the sweep completes; plus a notice as
		// each series of a figure completes (pipeline rendering).
		d.Progress = func(name string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: job %d/%d", name, done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		}
		d.SeriesDone = func(fig string, s nvmwear.Series) {
			fmt.Fprintf(os.Stderr, "\r\033[K%s: series %q complete\n", fig, s.Label)
		}
	}
	// WLSIM_JOB_DELAY_MS inserts a pause after every completed sweep job —
	// a test hook that widens the window for signal-delivery integration
	// tests without slowing real runs.
	if ms, _ := strconv.Atoi(os.Getenv("WLSIM_JOB_DELAY_MS")); ms > 0 {
		inner := d.Progress
		d.Progress = func(name string, done, total int) {
			time.Sleep(time.Duration(ms) * time.Millisecond)
			if inner != nil {
				inner(name, done, total)
			}
		}
	}

	// fail finishes a run that returned an error, after its partial results
	// (if any) were emitted: interruption exits 130, anything else 1. The
	// cache is closed first so its lock releases cleanly; completed jobs
	// were already persisted individually, so the next run resumes from
	// them.
	fail := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "\n%v\n", err)
		stopProfiles()
		if errors.Is(err, nvmwear.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "partial results flushed")
			closeCache()
			os.Exit(130)
		}
		closeCache()
		os.Exit(1)
	}

	switch target := flag.Arg(0); target {
	case "all":
		fail(d.RunAll())
	case "list":
		fail(d.List())
	default:
		e, ok := nvmwear.LookupExperiment(target)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", target)
			usage()
			closeCache()
			os.Exit(1)
		}
		// -max-run-jobs guards the CLI too: an oversized plan (say a fat
		// -devices override) is rejected before any job runs, with the same
		// message shape the serve admission check produces.
		if *maxRunJobs > 0 && e.Plan != nil {
			if n := len(e.Plan(sc)); n > *maxRunJobs {
				fmt.Fprintln(os.Stderr, nvmwear.PlanCapError(target, n, sc.Name, *maxRunJobs))
				closeCache()
				os.Exit(2)
			}
		}
		fail(d.Run(target))
	}
	stopProfiles()
}

// parseDevices parses the -devices flag: "" (defaults), a bare count "32"
// (uniform per-scheme population), "scheme=N" overrides, or a mix —
// "32,rbsg=64,pcms=16" plans 64 rbsg devices, 16 pcms, 32 of everything
// else. Scheme names must exist in the catalogue.
func parseDevices(s string) (base int, overrides map[nvmwear.SchemeKind]int, err error) {
	if s == "" {
		return 0, nil, nil
	}
	known := make(map[nvmwear.SchemeKind]bool)
	for _, k := range nvmwear.Schemes() {
		known[k] = true
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, isOverride := strings.Cut(part, "=")
		if !isOverride {
			n, err := strconv.Atoi(part)
			if err != nil || n <= 0 {
				return 0, nil, fmt.Errorf("-devices: bad count %q (want a positive integer or scheme=N)", part)
			}
			base = n
			continue
		}
		kind := nvmwear.SchemeKind(strings.TrimSpace(name))
		if !known[kind] {
			return 0, nil, fmt.Errorf("-devices: unknown scheme %q (see `wlsim list`)", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return 0, nil, fmt.Errorf("-devices: bad count %q for scheme %s (want a positive integer)", val, kind)
		}
		if overrides == nil {
			overrides = make(map[nvmwear.SchemeKind]int)
		}
		overrides[kind] = n
	}
	return base, overrides, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `wlsim regenerates the SAWL paper's tables and figures.

usage: wlsim [-scale tiny|small|medium|large] [-seed N] [-j N] [-shards N]
             [-q] [-cache DIR [-cache-clear]] [-force] <experiment>

Sweeps run as -j parallel jobs (default: all cores; each sweep reports
wall-clock, jobs/s and per-job p50/p99). Tables are byte-identical for
every -j value: jobs are independent, results are collected in submission
order, and job i is seeded deterministically from (seed, i). -q silences
the per-job progress counter printed to stderr. SIGINT/SIGTERM cancel the
running sweep, flush the completed points as a partial table, and exit 130.

-shards N decomposes every single lifetime run across N per-bank shards
(capped at the device's 32-bank geometry; 0 = one shard per core), using
all cores even when a sweep has few points. Every scheme in the catalogue
shards: schemes that level within independent regions (Baseline, RBSG,
NWL, SAWL) decompose exactly, while globally coupled schemes (segment
swap, start-gap, TLSR, PCM-S, MWSR) run bank-locally — one scheme
instance per bank, a documented modeling change (DESIGN.md par.15). Only
geometry misfits and unsplittable workloads (RAA attack halves, file
traces) fall back to serial with a reason on stderr. A fixed -shards
value is deterministic for every -j, but sharded tables differ from
serial ones (per-bank devices, spare pools and RNG substreams — see
DESIGN.md par.10); the default is therefore 1, and sharded results are
cached under separate keys (only for the experiments whose lifetime runs
the sharder actually touches).

-wear NAME selects the device's per-line endurance model for every
lifetime run: "uniform" (every line gets Wmax), "variation" (Gaussian
process variation, the default whenever a run draws a variation) or
"compress" (compression-aware wear: a line's effective endurance scales
inversely with how compressible its data is, so incompressible lines wear
at full rate while compressible ones last up to 4x longer). The default
("") keeps historical behavior, and its results stay cached under the
historical keys; non-default models are cached under wear-salted keys.

As each series of a figure completes, a notice goes to stderr and (with
-svg) an accumulating <fig>.partial.svg is updated, so long sweeps render
progressively; the final figure replaces the partial file. With -cache,
"wlsim all" first prints a per-figure staleness report (jobs cached vs
stale), then skips — with a "skipped <name>" notice — every experiment
whose entire job plan is already cached; -force re-runs them anyway.

-cache DIR memoizes completed sweep jobs in a crash-safe disk store:
re-running the same experiment re-executes only the missing jobs, so an
interrupted (even SIGKILLed) sweep resumes where it stopped and emits the
identical table. Corrupt entries are detected, quarantined and recomputed,
never trusted. -cache-clear empties the store first (alone, with no
experiment, it just empties and exits). Each sweep's summary line reports
cache hits/misses/recomputed.

-cpuprofile FILE / -memprofile FILE write pprof profiles for `+"`go tool pprof`"+`:
the CPU profile covers the whole run, the heap profile is a post-GC snapshot
taken after the last experiment finishes.

The fleet experiment runs a population Monte Carlo over the complete
scheme catalogue: -devices N simulated devices per scheme (default 16),
each drawing endurance, variation, fault rate and workload from its own
seed substream; -devices scheme=N resizes individual schemes (mixable:
"32,rbsg=64,pcms=16"). Known-expensive devices (fault-heavy, then
high-variation) dispatch first so the sweep's tail is short. A device job
that fails or panics is quarantined — reported with its cause in a table —
while the rest of the population completes; with -cache, every finished
device checkpoints individually, so a killed fleet sweep resumes warm.
-max-run-jobs M rejects any run (CLI or serve) planning more than M jobs
before the first job executes.

experiments (from the package registry; * = part of "all"):
`)
	for _, e := range nvmwear.Experiments() {
		star := " "
		if e.InAll {
			star = "*"
		}
		fmt.Fprintf(os.Stderr, "  %s %-9s %s\n", star, e.Name, e.Description)
	}
	fmt.Fprintf(os.Stderr, `    %-9s describe every registered experiment (jobs, cache freshness)
    %-9s every experiment marked * above (cached ones skip; -force re-runs)
    %-9s expose the registry as a long-lived HTTP service on -addr:
              POST /runs queues experiments (bounded queue; full = 503),
              GET /runs/{id}/events streams progress (SSE), /healthz //readyz
              report state, /quitquitquit drains gracefully (in-flight jobs
              checkpoint to -cache; force-cancel after -drain-timeout)
`, "list", "all", "serve")

	fmt.Fprintf(os.Stderr, `
-timeout D cancels a run after duration D through the same path as SIGINT:
completed points flush as a partial table and the process exits 130 (with
-cache, a later run resumes from the flushed jobs).
`)
}
