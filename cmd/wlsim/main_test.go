package main

import (
	"bytes"
	"os"
	osexec "os/exec"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"nvmwear"
)

// TestMain lets this test binary stand in for the wlsim executable: when
// re-executed with WLSIM_RUN_MAIN=1 it runs main() instead of the tests,
// so the signal-handling integration test below needs no separate build.
func TestMain(m *testing.M) {
	if os.Getenv("WLSIM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestSIGINTFlushesPartialTable interrupts a multi-job sweep mid-run and
// checks the contract the usage text states: the completed points are
// flushed as a partial table on stdout and the process exits 130.
func TestSIGINTFlushesPartialTable(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal test")
	}
	// WLSIM_JOB_DELAY_MS stretches the 56-job fig3 sweep so the signal
	// reliably lands mid-run; -j1 keeps the completed prefix contiguous.
	cmd := osexec.Command(os.Args[0], "-scale", "small", "-j", "1", "-q", "fig3")
	cmd.Env = append(os.Environ(), "WLSIM_RUN_MAIN=1", "WLSIM_JOB_DELAY_MS=300")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the sweep time to complete a couple of jobs, then interrupt.
	time.Sleep(1500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	var err error
	select {
	case err = <-waitErr:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("wlsim did not exit after SIGINT; stderr:\n%s", stderr.String())
	}
	ee, ok := err.(*osexec.ExitError)
	if !ok {
		t.Fatalf("expected nonzero exit after SIGINT, got err=%v; stdout:\n%s", err, stdout.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fig 3") {
		t.Errorf("partial table missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("no interruption notice on stderr:\n%s", stderr.String())
	}
}

func TestRelabelBenches(t *testing.T) {
	var tab nvmwear.Table
	names := nvmwear.SpecBenchmarks()
	for i := 0; i <= len(names); i++ {
		tab.Rows = append(tab.Rows, []string{"x", "y"})
	}
	relabelBenches(&tab)
	if tab.Rows[0][0] != names[0] {
		t.Fatalf("first row label %q", tab.Rows[0][0])
	}
	if tab.Rows[len(names)][0] != "Hmean" {
		t.Fatalf("last row label %q", tab.Rows[len(names)][0])
	}
}
