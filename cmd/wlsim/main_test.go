package main

import (
	"testing"

	"nvmwear"
)

func TestRelabelBenches(t *testing.T) {
	var tab nvmwear.Table
	names := nvmwear.SpecBenchmarks()
	for i := 0; i <= len(names); i++ {
		tab.Rows = append(tab.Rows, []string{"x", "y"})
	}
	relabelBenches(&tab)
	if tab.Rows[0][0] != names[0] {
		t.Fatalf("first row label %q", tab.Rows[0][0])
	}
	if tab.Rows[len(names)][0] != "Hmean" {
		t.Fatalf("last row label %q", tab.Rows[len(names)][0])
	}
}
