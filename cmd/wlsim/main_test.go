package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	osexec "os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"nvmwear"
)

// TestMain lets this test binary stand in for the wlsim executable: when
// re-executed with WLSIM_RUN_MAIN=1 it runs main() instead of the tests,
// so the signal-handling integration test below needs no separate build.
func TestMain(m *testing.M) {
	if os.Getenv("WLSIM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestSIGINTFlushesPartialTable interrupts a multi-job sweep mid-run and
// checks the contract the usage text states: the completed points are
// flushed as a partial table on stdout and the process exits 130.
func TestSIGINTFlushesPartialTable(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal test")
	}
	// WLSIM_JOB_DELAY_MS stretches the 56-job fig3 sweep so the signal
	// reliably lands mid-run; -j1 keeps the completed prefix contiguous.
	cmd := osexec.Command(os.Args[0], "-scale", "small", "-j", "1", "-q", "fig3")
	cmd.Env = append(os.Environ(), "WLSIM_RUN_MAIN=1", "WLSIM_JOB_DELAY_MS=300")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the sweep time to complete a couple of jobs, then interrupt.
	time.Sleep(1500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	var err error
	select {
	case err = <-waitErr:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("wlsim did not exit after SIGINT; stderr:\n%s", stderr.String())
	}
	ee, ok := err.(*osexec.ExitError)
	if !ok {
		t.Fatalf("expected nonzero exit after SIGINT, got err=%v; stdout:\n%s", err, stdout.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fig 3") {
		t.Errorf("partial table missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("no interruption notice on stderr:\n%s", stderr.String())
	}
}

// TestTimeoutFlushesPartialTable is -timeout's contract: the deadline
// cancels the sweep through the same path as SIGINT — completed points
// flush as a partial table and the process exits 130 — with no signal
// involved, so it holds on any platform and under any supervisor.
func TestTimeoutFlushesPartialTable(t *testing.T) {
	// The per-job delay stretches the 48-job fig3 sweep well past the
	// 1.5s deadline; -j1 keeps the completed prefix contiguous.
	env := []string{"WLSIM_JOB_DELAY_MS=300"}
	stdout, stderr, err := wlsim(t, env, "-scale", "small", "-j", "1", "-q", "-timeout", "1500ms", "fig3")
	ee, ok := err.(*osexec.ExitError)
	if !ok {
		t.Fatalf("expected nonzero exit after -timeout, got err=%v; stdout:\n%s", err, stdout)
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Fig 3") {
		t.Errorf("partial table missing from stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "timed out") {
		t.Errorf("stderr does not report the timeout cause:\n%s", stderr)
	}
	if !strings.Contains(stderr, "partial results flushed") {
		t.Errorf("no partial-flush notice on stderr:\n%s", stderr)
	}
}

// tableLines strips the per-sweep summary ("[fault completed in ...]")
// from captured stdout, leaving only the experiment tables — the bytes the
// determinism and resume guarantees are stated over. Summary lines report
// wall-clock and cache statistics, which legitimately differ between runs.
func tableLines(stdout string) string {
	var keep []string
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "[") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// wlsim re-executes the test binary as the wlsim CLI and returns its
// captured stdout/stderr and exit error.
func wlsim(t *testing.T, env []string, args ...string) (string, string, error) {
	t.Helper()
	cmd := osexec.Command(os.Args[0], args...)
	cmd.Env = append(append(os.Environ(), "WLSIM_RUN_MAIN=1"), env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

// TestSIGKILLedSweepResumesByteIdentical is the crash-safety acceptance
// test: SIGKILL a cached sweep mid-run (no signal handler runs, the store
// lock is left behind), then re-run. The resumed process must reclaim the
// stale lock, serve the persisted jobs as cache hits, recompute only the
// rest, and print byte-identical tables to a cold cache-less run.
func TestSIGKILLedSweepResumesByteIdentical(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal test")
	}
	reference, _, err := wlsim(t, nil, "-scale", "small", "-j", "4", "-q", "fault")
	if err != nil {
		t.Fatalf("uncached reference run: %v", err)
	}

	dir := t.TempDir()
	// The per-job delay stretches the sweep past the kill point so some
	// jobs are persisted and some are not.
	cmd := osexec.Command(os.Args[0], "-scale", "small", "-j", "4", "-q", "-cache", dir, "fault")
	cmd.Env = append(os.Environ(), "WLSIM_RUN_MAIN=1", "WLSIM_JOB_DELAY_MS=300")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * time.Second)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: nothing runs, nothing is flushed
		t.Fatal(err)
	}
	cmd.Wait()

	stdout, stderr, err := wlsim(t, nil, "-scale", "small", "-j", "4", "-q", "-cache", dir, "fault")
	if err != nil {
		t.Fatalf("resume run failed: %v\nstderr:\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "reclaiming stale lock") {
		t.Errorf("no stale-lock reclaim notice on stderr:\n%s", stderr)
	}
	if got, want := tableLines(stdout), tableLines(reference); got != want {
		t.Errorf("resumed tables differ from uncached run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	var hits, misses, recomputed int
	if _, err := fmt.Sscanf(stdout[strings.Index(stdout, "cache: "):],
		"cache: %d hits, %d misses, %d recomputed", &hits, &misses, &recomputed); err != nil {
		t.Fatalf("no cache summary in stdout:\n%s", stdout)
	}
	if hits < 1 {
		t.Errorf("resume served %d cache hits, want >= 1 (kill landed after %d jobs persisted?)", hits, hits)
	}
	if want := len(nvmwear.FaultSchemes) * len(nvmwear.FaultRates); hits+misses != want {
		t.Errorf("cache summary covers %d jobs, want %d", hits+misses, want)
	}

	// -cache-clear with no experiment is the maintenance mode: empty the
	// store and exit 0. A rerun after it starts cold again.
	if _, stderr, err := wlsim(t, nil, "-cache", dir, "-cache-clear"); err != nil {
		t.Fatalf("-cache-clear maintenance run: %v\nstderr:\n%s", err, stderr)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err == nil {
		for _, e := range entries {
			sub, _ := os.ReadDir(filepath.Join(dir, "objects", e.Name()))
			if len(sub) != 0 {
				t.Fatal("-cache-clear left entries behind")
			}
		}
	}
}

// TestAllSkipsFullyCachedExperiments is the whole-experiment skip
// acceptance test: `wlsim all` against a warm cache must consult the store
// up front, skip every experiment whose entire job plan is cached (with a
// notice), and -force must re-run them all — printing tables byte-identical
// to the cold run and to the checked-in goldens.
func TestAllSkipsFullyCachedExperiments(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scale", "tiny", "-j", "4", "-q", "-cache", dir}

	cold, _, err := wlsim(t, nil, append(args, "all")...)
	if err != nil {
		t.Fatalf("cold `all` run: %v", err)
	}
	golden, err := os.ReadFile("testdata/all_tiny.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := tableLines(cold); got != string(golden) {
		t.Errorf("cold `all` tables deviate from testdata/all_tiny.golden:\n--- got ---\n%s\n--- want ---\n%s",
			got, golden)
	}

	warm, warmStderr, err := wlsim(t, nil, append(args, "all")...)
	if err != nil {
		t.Fatalf("warm `all` run: %v\nstderr:\n%s", err, warmStderr)
	}
	// Every `all` experiment with a job plan must be skipped; the planless
	// ones (table1, overhead) have nothing to cache and always run.
	for _, e := range nvmwear.Experiments() {
		if !e.InAll || e.Plan == nil {
			continue
		}
		if !strings.Contains(warmStderr, "skipped "+e.Name+" (") {
			t.Errorf("no skip notice for %s on stderr:\n%s", e.Name, warmStderr)
		}
	}
	warmGolden, err := os.ReadFile("testdata/all_tiny_warm.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := tableLines(warm); got != string(warmGolden) {
		t.Errorf("warm `all` tables deviate from testdata/all_tiny_warm.golden:\n--- got ---\n%s\n--- want ---\n%s",
			got, warmGolden)
	}

	// -force re-runs every experiment against the warm cache: all hits,
	// byte-identical tables to the cold run.
	forced, forcedStderr, err := wlsim(t, nil, append(args, "-force", "all")...)
	if err != nil {
		t.Fatalf("forced `all` run: %v", err)
	}
	if strings.Contains(forcedStderr, "skipped ") {
		t.Errorf("-force still skipped experiments:\n%s", forcedStderr)
	}
	if got, want := tableLines(forced), tableLines(cold); got != want {
		t.Errorf("-force tables differ from the cold run:\n--- cold ---\n%s\n--- forced ---\n%s", want, got)
	}
}

// TestSIGKILLedFleetResumesByteIdentical is the fleet experiment's
// crash-safety acceptance test: SIGKILL a cached fleet sweep mid-population,
// re-run, and require the resumed process to reclaim the stale lock, serve
// the persisted devices as cache hits, and print tables byte-identical to an
// uncached run.
func TestSIGKILLedFleetResumesByteIdentical(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal test")
	}
	args := []string{"-scale", "tiny", "-j", "1", "-devices", "4", "-q"}
	reference, _, err := wlsim(t, nil, append(args, "fleet")...)
	if err != nil {
		t.Fatalf("uncached reference run: %v", err)
	}

	dir := t.TempDir()
	// -j1 plus the per-job delay stretches the whole-catalogue sweep (4
	// devices per scheme) past the kill point, so some devices are persisted
	// and some are not.
	cmd := osexec.Command(os.Args[0], append(append([]string{}, args...), "-cache", dir, "fleet")...)
	cmd.Env = append(os.Environ(), "WLSIM_RUN_MAIN=1", "WLSIM_JOB_DELAY_MS=300")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: nothing runs, nothing is flushed
		t.Fatal(err)
	}
	cmd.Wait()

	stdout, stderr, err := wlsim(t, nil, append(args, "-cache", dir, "fleet")...)
	if err != nil {
		t.Fatalf("resume run failed: %v\nstderr:\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "reclaiming stale lock") {
		t.Errorf("no stale-lock reclaim notice on stderr:\n%s", stderr)
	}
	if got, want := tableLines(stdout), tableLines(reference); got != want {
		t.Errorf("resumed fleet tables differ from uncached run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	var hits, misses, recomputed int
	if _, err := fmt.Sscanf(stdout[strings.Index(stdout, "cache: "):],
		"cache: %d hits, %d misses, %d recomputed", &hits, &misses, &recomputed); err != nil {
		t.Fatalf("no cache summary in stdout:\n%s", stdout)
	}
	if hits < 1 {
		t.Errorf("resume served %d cache hits, want >= 1 (kill landed before any device persisted?)", hits)
	}
	if want := 4 * len(nvmwear.Schemes()); hits+misses != want {
		t.Errorf("cache summary covers %d devices, want %d", hits+misses, want)
	}
}

// TestParseDevices covers the -devices grammar: empty (defaults), a bare
// uniform count, per-scheme overrides, the mixed form, and the rejections
// (unknown scheme, non-positive or non-numeric counts).
func TestParseDevices(t *testing.T) {
	cases := []struct {
		in        string
		base      int
		overrides map[nvmwear.SchemeKind]int
		wantErr   string
	}{
		{in: "", base: 0},
		{in: "32", base: 32},
		{in: "rbsg=64", overrides: map[nvmwear.SchemeKind]int{nvmwear.RBSG: 64}},
		{in: "32,rbsg=64,pcms=16", base: 32,
			overrides: map[nvmwear.SchemeKind]int{nvmwear.RBSG: 64, nvmwear.PCMS: 16}},
		{in: " 8 , sawl = 2 ", base: 8, overrides: map[nvmwear.SchemeKind]int{nvmwear.SAWL: 2}},
		{in: "bogus=4", wantErr: "unknown scheme"},
		{in: "rbsg=0", wantErr: "bad count"},
		{in: "rbsg=x", wantErr: "bad count"},
		{in: "-3", wantErr: "bad count"},
	}
	for _, c := range cases {
		base, overrides, err := parseDevices(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parseDevices(%q) err = %v, want %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDevices(%q): %v", c.in, err)
			continue
		}
		if base != c.base {
			t.Errorf("parseDevices(%q) base = %d, want %d", c.in, base, c.base)
		}
		if len(overrides) != len(c.overrides) {
			t.Errorf("parseDevices(%q) overrides = %v, want %v", c.in, overrides, c.overrides)
			continue
		}
		for k, v := range c.overrides {
			if overrides[k] != v {
				t.Errorf("parseDevices(%q) overrides[%s] = %d, want %d", c.in, k, overrides[k], v)
			}
		}
	}
}

// TestDevicesFlagValidatedViaCLI drives the -devices satellite end to end:
// an unknown scheme override is rejected before anything runs, and a fat
// override that blows the -max-run-jobs plan cap is rejected with the same
// message shape the serve admission check produces.
func TestDevicesFlagValidatedViaCLI(t *testing.T) {
	_, stderr, err := wlsim(t, nil, "-scale", "tiny", "-devices", "bogus=4", "fleet")
	if err == nil {
		t.Fatalf("unknown -devices scheme accepted; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, `unknown scheme "bogus"`) {
		t.Errorf("no unknown-scheme diagnostic on stderr:\n%s", stderr)
	}

	_, stderr, err = wlsim(t, nil, "-scale", "tiny", "-devices", "rbsg=64",
		"-max-run-jobs", "10", "fleet")
	if err == nil {
		t.Fatalf("over-cap fleet plan accepted; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, `experiment "fleet" plans`) ||
		!strings.Contains(stderr, "over the 10-job cap (-max-run-jobs)") {
		t.Errorf("plan-cap rejection lacks the shared message shape:\n%s", stderr)
	}

	// Under the cap, the plan passes validation: a 1-device fleet runs.
	stdout, stderr, err := wlsim(t, nil, "-scale", "tiny", "-j", "4", "-q",
		"-devices", "1", "-max-run-jobs", "64", "fleet")
	if err != nil {
		t.Fatalf("under-cap fleet run failed: %v\nstderr:\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "1 devices/scheme") {
		t.Errorf("population summary lacks the planned count:\n%s", stdout)
	}
}

// TestFleetPoisonQuarantinesViaCLI drives the quarantine path through the
// real binary: WLSIM_FLEET_POISON panics one device job mid-sweep, and the
// process must still exit 0 with the device reported in the quarantine
// table and population statistics for the rest.
func TestFleetPoisonQuarantinesViaCLI(t *testing.T) {
	stdout, stderr, err := wlsim(t, []string{"WLSIM_FLEET_POISON=3"},
		"-scale", "tiny", "-j", "4", "-devices", "4", "-q", "fleet")
	if err != nil {
		t.Fatalf("poisoned fleet run failed: %v\nstderr:\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "Quarantined devices") ||
		!strings.Contains(stdout, "poisoned device") {
		t.Fatalf("quarantine report missing from stdout:\n%s", stdout)
	}
	if !strings.Contains(stdout, "4/4") {
		t.Fatalf("population summary does not account for all planned devices:\n%s", stdout)
	}
}

// TestServeRunsExperimentAndDrains is the `wlsim serve` end-to-end smoke:
// boot the service as a subprocess, run a real experiment over HTTP, pull
// its artifacts, then drain via /quitquitquit and require exit 0.
func TestServeRunsExperimentAndDrains(t *testing.T) {
	dir := t.TempDir()
	cmd := osexec.Command(os.Args[0], "-scale", "tiny", "-addr", "127.0.0.1:0", "-cache", dir, "serve")
	cmd.Env = append(os.Environ(), "WLSIM_RUN_MAIN=1")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server logs its bound address (the ":0" port) on stderr.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("server never logged its listen address")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	resp, err := http.Post(base+"/runs", "application/json",
		strings.NewReader(`{"experiment": "fault"}`))
	if err != nil {
		t.Fatal(err)
	}
	var run struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("POST /runs: %d (%+v)", resp.StatusCode, run)
	}
	deadline := time.Now().Add(60 * time.Second)
	for run.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %q", run.ID, run.State)
		}
		if run.State == "failed" || run.State == "canceled" {
			t.Fatalf("run %s ended %q: %s", run.ID, run.State, run.Error)
		}
		time.Sleep(100 * time.Millisecond)
		code, body := get("/runs/" + run.ID)
		if code != 200 {
			t.Fatalf("GET /runs/%s: %d", run.ID, code)
		}
		if err := json.Unmarshal([]byte(body), &run); err != nil {
			t.Fatal(err)
		}
	}
	if code, out := get("/runs/" + run.ID + "/artifacts/output.txt"); code != 200 ||
		!strings.Contains(out, "fault") {
		t.Fatalf("output.txt: %d\n%s", code, out)
	}

	if code, _ := get("/quitquitquit"); code != 200 {
		t.Fatalf("quitquitquit: %d", code)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("serve exited nonzero after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after /quitquitquit")
	}
}

// TestListDescribesRegistry pins the `list` subcommand against its golden:
// every registered experiment with its job count at the selected scale,
// plus the scheme shard analysis. The golden doubles as the catalogue-wide
// shardability assertion — every scheme row says "yes" with an empty
// "serial because" cell, so a scheme regressing to a scheme-level serial
// fallback shows up as a golden diff.
func TestListDescribesRegistry(t *testing.T) {
	stdout, stderr, err := wlsim(t, nil, "-scale", "tiny", "list")
	if err != nil {
		t.Fatalf("list: %v\nstderr:\n%s", err, stderr)
	}
	for _, e := range nvmwear.Experiments() {
		if !strings.Contains(stdout, e.Name) {
			t.Errorf("list output lacks experiment %q:\n%s", e.Name, stdout)
		}
	}
	// The catalogue carries the sharded column, and the shard analysis
	// explains per scheme whether -shards decomposes its lifetime runs.
	if !strings.Contains(stdout, "sharded") {
		t.Errorf("list output lacks the sharded column:\n%s", stdout)
	}
	if !strings.Contains(stdout, "partitionable") || !strings.Contains(stdout, "serial because") {
		t.Errorf("list output lacks the scheme shard analysis:\n%s", stdout)
	}
	want, err := os.ReadFile("testdata/list_tiny.golden")
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("list output deviates from testdata/list_tiny.golden:\n--- got ---\n%s--- want ---\n%s",
			stdout, want)
	}
}
