package nvmwear

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"nvmwear/internal/metrics"
	"nvmwear/internal/store"
)

// Driver executes registered experiments with the shared presentation
// pipeline cmd/wlsim fronts: rendering in the selected format, SVG export
// with progressive partial figures, per-sweep telemetry summaries, and the
// whole-experiment cache skip in RunAll. It exists so the CLI holds no
// per-experiment logic at all — `wlsim <name>` is LookupExperiment plus
// Driver.Run for every name the registry knows.
//
// Run/RunAll drive the Driver's own Scale and sinks — the single-run CLI
// shape. RunAt is the concurrency-safe entry point behind wlsim serve: it
// takes an explicit Scale and per-run RunSinks, keeps every piece of
// per-run mutable state (job counters, partial-SVG accumulation) on the
// invocation, and never writes a Driver field, so one Driver can execute
// any number of experiments concurrently as long as each call gets its own
// sinks. (The profiling fields remain single-run CLI conveniences.)
type Driver struct {
	Scale  Scale
	Out    io.Writer // experiment output; nil means os.Stdout
	Format string    // text|csv|json ("" = text)
	SVGDir string    // when non-empty, each figure is also written as SVGDir/<name>.svg
	Force  bool      // RunAll: re-run experiments even when fully cached

	// Progress, when non-nil, observes every completed sweep job of the
	// running experiment (the driver chains it behind its own job counter).
	Progress func(name string, done, total int)
	// SeriesDone, when non-nil, observes each completed series before the
	// driver updates the experiment's accumulating partial SVG.
	SeriesDone func(fig string, s Series)

	// CPUProfile and MemProfile name pprof output files. StartProfiling
	// begins the CPU profile; StopProfiling ends it and snapshots the heap.
	// Empty fields disable the respective profile.
	CPUProfile string
	MemProfile string

	cpuFile  *os.File
	profDone bool
}

// RunSinks carries one run's output destinations. Every field is optional;
// the zero value discards everything except the error RunAt returns.
type RunSinks struct {
	// Out receives the rendered tables and the completion summary — what
	// the CLI prints to stdout. Nil discards.
	Out io.Writer
	// SVGDir, when non-empty, receives each figure as <fig>.svg plus the
	// accumulating <fig>.partial.svg while the sweep is running.
	SVGDir string
	// Progress observes every completed sweep job.
	Progress func(name string, done, total int)
	// SeriesDone observes each completed series before the partial SVG is
	// updated.
	SeriesDone func(fig string, s Series)
	// Rendered observes the run's rendered artifacts — after Render, before
	// Out/SVGDir emission, and even when the run errs (the tables then hold
	// the completed prefix of an interrupted sweep). wlsim serve captures
	// artifacts for HTTP delivery here.
	Rendered func(tables []Table, svgs []SVG)
}

// runState is the mutable state of one experiment invocation: job
// counters, per-job wall times, partial-SVG accumulation. It lives on the
// RunAt call, not the Driver, so concurrent runs never share it.
type runState struct {
	d     *Driver
	sc    Scale
	sinks RunSinks

	// Partial-SVG accumulation: series land here as they complete and are
	// superseded by the final figures on success.
	partialSeries map[string][]Series
	partialFiles  map[string]bool
}

// StartProfiling opens CPUProfile (if set) and starts the CPU profile.
// Callers must pair it with StopProfiling on every exit path, or the
// profile file is truncated and unusable.
func (d *Driver) StartProfiling() error {
	if d.CPUProfile == "" {
		return nil
	}
	f, err := os.Create(d.CPUProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	d.cpuFile = f
	return nil
}

// StopProfiling flushes the running CPU profile and, with MemProfile set,
// writes a post-GC heap snapshot. Idempotent: only the first call writes.
func (d *Driver) StopProfiling() error {
	if d.profDone {
		return nil
	}
	d.profDone = true
	var first error
	if d.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := d.cpuFile.Close(); err != nil {
			first = err
		}
		d.cpuFile = nil
	}
	if d.MemProfile != "" {
		f, err := os.Create(d.MemProfile)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC() // settle allocations so the snapshot reflects live heap
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (d *Driver) out() io.Writer {
	if d.Out != nil {
		return d.Out
	}
	return os.Stdout
}

// logf reports through the Driver's own Scale — the single-run CLI paths
// (RunAll staleness report, skip notices). Per-run diagnostics go through
// the Scale each runState carries instead.
func (d *Driver) logf(format string, args ...any) {
	if d.Scale.Logf != nil {
		d.Scale.Logf(format, args...)
	}
}

// sinks assembles the Driver-level sinks — the CLI shape Run/RunAll use.
func (d *Driver) sinks() RunSinks {
	return RunSinks{
		Out:        d.out(),
		SVGDir:     d.SVGDir,
		Progress:   d.Progress,
		SeriesDone: d.SeriesDone,
	}
}

// Run executes one registered experiment end to end: run, render, emit,
// summary line. An interrupted or failed sweep still emits the completed
// prefix of its tables and figures (partial flush) before the error is
// returned; the telemetry summary is printed only on success.
func (d *Driver) Run(name string) error {
	return d.RunAt(name, d.Scale, d.sinks())
}

// RunAt executes one registered experiment at an explicit scale with
// explicit per-run sinks — the concurrency-safe entry point behind wlsim
// serve. The Driver contributes only read-only presentation config
// (Format); all mutable run state lives on this call, so concurrent RunAt
// calls on one Driver are safe provided each gets its own Scale sinks
// (Logf, Context, Drain) and RunSinks.
func (d *Driver) RunAt(name string, sc Scale, sinks RunSinks) error {
	e, ok := LookupExperiment(name)
	if !ok {
		return fmt.Errorf("nvmwear: unknown experiment %q", name)
	}
	return d.runAt(e, sc, sinks)
}

func (d *Driver) run(e *Experiment) error {
	return d.runAt(e, d.Scale, d.sinks())
}

func (d *Driver) runAt(e *Experiment, sc Scale, sinks RunSinks) error {
	if sinks.Out == nil {
		sinks.Out = io.Discard
	}
	rs := &runState{d: d, sc: sc, sinks: sinks}
	return rs.run(e)
}

func (rs *runState) logf(format string, args ...any) {
	if rs.sc.Logf != nil {
		rs.sc.Logf(format, args...)
	}
}

func (rs *runState) run(e *Experiment) error {
	sc := rs.sc
	start := time.Now()
	var jobsDone, jobsTotal int
	var jobTimes []float64
	sc.Progress = func(done, total int) {
		jobsDone, jobsTotal = done, total
		if rs.sinks.Progress != nil {
			rs.sinks.Progress(e.Name, done, total)
		}
	}
	// Per-job wall times for the summary percentiles (zero for cache hits,
	// which measure the disk, not the simulator — excluded).
	sc.JobTime = func(elapsed time.Duration) {
		if elapsed > 0 {
			jobTimes = append(jobTimes, float64(elapsed)/float64(time.Millisecond))
		}
	}
	sc.SeriesDone = func(fig string, s Series) {
		if rs.sinks.SeriesDone != nil {
			rs.sinks.SeriesDone(fig, s)
		}
		rs.writePartial(fig, s)
	}
	var cacheBefore store.Stats
	stats, hasStats := sc.Cache.(interface{ Stats() store.Stats })
	if hasStats {
		cacheBefore = stats.Stats()
	}

	res, runErr := e.Run(sc)
	// Render even on error: runners return the completed prefix of their
	// payload, so an interrupted sweep still flushes partial tables.
	tables, svgs := e.Render(res)
	if rs.sinks.Rendered != nil {
		rs.sinks.Rendered(tables, svgs)
	}
	if err := rs.emit(tables, svgs); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}

	// The full figures were emitted: the accumulated partials are superseded.
	rs.removePartials()
	elapsed := time.Since(start)
	if jobsTotal > 0 {
		cacheLine := ""
		if hasStats {
			cacheLine = cacheSummary(stats.Stats(), cacheBefore)
		}
		fmt.Fprintf(rs.sinks.Out, "[%s completed in %v at scale %s: %d jobs, %.1f jobs/s%s, -j %d%s]\n\n",
			e.Name, elapsed.Round(time.Millisecond), sc.Name,
			jobsDone, float64(jobsDone)/elapsed.Seconds(),
			jobTimeSummary(jobTimes), effectiveWorkers(sc.Parallelism), cacheLine)
	} else {
		fmt.Fprintf(rs.sinks.Out, "[%s completed in %v at scale %s]\n\n",
			e.Name, elapsed.Round(time.Millisecond), sc.Name)
	}
	return nil
}

// emit writes an experiment's rendered output. Text mode prints every
// table (series figures print their text-table twin). csv/json emit the
// series streams via FormatSeries and print only the tables that carry
// data no series holds (Fig 13's averages, Fig 14's summary, table1,
// overhead). With the sinks' SVGDir set, every figure is also written as
// an SVG file.
func (rs *runState) emit(tables []Table, svgs []SVG) error {
	w := rs.sinks.Out
	text := rs.d.Format == "" || rs.d.Format == "text"
	for _, t := range tables {
		if !text && t.fromSeries {
			continue // the series stream below carries this table's data
		}
		if _, err := io.WriteString(w, t.Render()); err != nil {
			return err
		}
	}
	if !text {
		for _, g := range svgs {
			if err := FormatSeries(w, rs.d.Format, g.Title, g.XName, g.Series); err != nil {
				return err
			}
		}
	}
	if rs.sinks.SVGDir != "" {
		for _, g := range svgs {
			path := filepath.Join(rs.sinks.SVGDir, g.Name+".svg")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			werr := g.WriteSVG(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			rs.logf("wrote %s", path)
		}
	}
	return nil
}

// writePartial updates the experiment's accumulating <fig>.partial.svg with
// one more completed series — pipeline rendering for long sweeps. Best
// effort: a failed partial render never fails the sweep.
func (rs *runState) writePartial(fig string, s Series) {
	if rs.sinks.SVGDir == "" {
		return
	}
	if rs.partialSeries == nil {
		rs.partialSeries = map[string][]Series{}
		rs.partialFiles = map[string]bool{}
	}
	rs.partialSeries[fig] = append(rs.partialSeries[fig], s)
	path := filepath.Join(rs.sinks.SVGDir, fig+".partial.svg")
	f, err := os.Create(path)
	if err != nil {
		return
	}
	if WriteSeriesSVG(f, fig+" (partial)", "x", "value", false, rs.partialSeries[fig]) == nil {
		rs.partialFiles[path] = true
	}
	f.Close()
}

func (rs *runState) removePartials() {
	for path := range rs.partialFiles {
		os.Remove(path)
	}
	rs.partialSeries, rs.partialFiles = nil, nil
}

// RunAll executes every experiment registered with InAll, in catalogue
// order. With a probing cache open it first logs the per-figure staleness
// report, then skips — with a notice — each experiment whose entire job
// plan is already cached (Force re-runs them anyway); emitted output is
// exactly what running those experiments against the warm cache would have
// printed, minus the skipped tables.
func (d *Driver) RunAll() error {
	var list []*Experiment
	for _, e := range Experiments() {
		if e.InAll {
			list = append(list, e)
		}
	}
	return d.runAll(list)
}

// runAll is RunAll over an explicit experiment list (tests drive it with a
// single experiment to exercise the skip path cheaply).
func (d *Driver) runAll(list []*Experiment) error {
	fresh := map[string][]FigFreshness{}
	for _, e := range list {
		fs := d.Scale.CacheFreshness(e.Name)
		fresh[e.Name] = fs
		for _, f := range fs {
			d.logf("cache: %-7s %3d/%3d jobs cached, %d stale",
				f.Fig, f.Cached, f.Jobs, f.Stale())
		}
	}
	for _, e := range list {
		if !d.Force {
			jobs, cached := 0, 0
			for _, f := range fresh[e.Name] {
				jobs += f.Jobs
				cached += f.Cached
			}
			if jobs > 0 && cached == jobs {
				d.logf("skipped %s (%d/%d cached)", e.Name, cached, jobs)
				continue
			}
		}
		if err := d.run(e); err != nil {
			return err
		}
	}
	return nil
}

// List writes the registered catalogue as a table — name, paper figure,
// `all` membership, whether the experiment's lifetime runs shard under
// -shards, job count at the driver's scale, cache freshness (with a
// probing cache open), and description — followed by the per-scheme shard
// analysis, so users can predict which experiments and schemes decompose
// across banks before launching a large run.
func (d *Driver) List() error {
	tab := Table{
		Title:   "registered experiments",
		Columns: []string{"name", "figure", "all", "sharded", "jobs", "cached", "description"},
	}
	for _, e := range Experiments() {
		jobs, cached := "-", "-"
		if e.Plan != nil {
			n := len(e.Plan(d.Scale))
			jobs = fmt.Sprintf("%d", n)
			if fs := d.Scale.CacheFreshness(e.Name); fs != nil {
				c := 0
				for _, f := range fs {
					c += f.Cached
				}
				cached = fmt.Sprintf("%d/%d", c, n)
			}
		}
		inAll, sharded := "", ""
		if e.InAll {
			inAll = "*"
		}
		if e.Sharded {
			sharded = "*"
		}
		tab.Rows = append(tab.Rows, []string{e.Name, e.Figure, inAll, sharded, jobs, cached, e.Description})
	}
	if _, err := io.WriteString(d.out(), tab.Render()); err != nil {
		return err
	}

	schemes := Table{
		Title:   "scheme shard analysis (-shards)",
		Columns: []string{"scheme", "partitionable", "model", "serial because"},
	}
	for _, kind := range Schemes() {
		ok, model, reason := SchemeShardability(kind)
		part := "yes"
		if !ok {
			part = "no"
		}
		schemes.Rows = append(schemes.Rows, []string{string(kind), part, model, reason})
	}
	_, err := io.WriteString(d.out(), schemes.Render())
	return err
}

// effectiveWorkers resolves the -j value the pool actually used.
func effectiveWorkers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// jobTimeSummary renders the per-job wall-time percentiles of one sweep.
func jobTimeSummary(ms []float64) string {
	if len(ms) == 0 {
		return ""
	}
	toDur := func(q float64) time.Duration {
		return time.Duration(metrics.Quantile(ms, q) * float64(time.Millisecond)).Round(100 * time.Microsecond)
	}
	return fmt.Sprintf(", job p50 %v p99 %v", toDur(0.50), toDur(0.99))
}

// cacheSummary renders the result-store delta of one sweep: how many jobs
// were served from cache, how many missed, and how many freshly computed
// results were durably stored ("recomputed"). Quarantined counts corrupt
// entries that were detected, moved aside, and recomputed.
func cacheSummary(now, before store.Stats) string {
	s := fmt.Sprintf(", cache: %d hits, %d misses, %d recomputed",
		now.Hits-before.Hits, now.Misses-before.Misses, now.Puts-before.Puts)
	if q := now.Quarantined - before.Quarantined; q > 0 {
		s += fmt.Sprintf(", %d quarantined", q)
	}
	return s
}
