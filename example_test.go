package nvmwear_test

// Godoc examples for the public API.

import (
	"fmt"

	"nvmwear"
)

// ExampleNewSystem builds a SAWL-protected system and serves a few
// accesses.
func ExampleNewSystem() {
	sys, err := nvmwear.NewSystem(nvmwear.SystemConfig{
		Scheme:    nvmwear.SAWL,
		Lines:     1 << 12,
		Endurance: 1 << 30,
	})
	if err != nil {
		panic(err)
	}
	sys.Write(100)
	fmt.Println(sys.SchemeName(), sys.Alive())
	// Output: SAWL true
}

// ExampleSystem_RunLifetime measures how much of the ideal lifetime a
// scheme achieves under attack.
func ExampleSystem_RunLifetime() {
	sys, _ := nvmwear.NewSystem(nvmwear.SystemConfig{
		Scheme:      nvmwear.PCMS,
		Lines:       1 << 10,
		SpareLines:  32,
		Endurance:   500,
		RegionLines: 4,
		Period:      4,
		Seed:        1,
	})
	res, _ := sys.RunLifetime(nvmwear.WorkloadSpec{
		Kind: nvmwear.WorkloadRAA, Target: 7,
	}, 0)
	fmt.Println(res.Normalized > 0.2) // hybrid schemes survive RAA
	// Output: true
}

// ExampleProjectLifetime reproduces the paper's Sec 2.2 arithmetic.
func ExampleProjectLifetime() {
	p := nvmwear.ProjectLifetime(64<<30, 1e5, float64(1<<30), 1.0)
	fmt.Printf("%.1f months\n", p.Ideal().Hours()/(24*30))
	// Output: 2.5 months
}

// ExampleWorkloadSpec_Build instantiates a SPEC-like workload generator.
func ExampleWorkloadSpec_Build() {
	stream, name, _ := nvmwear.WorkloadSpec{
		Kind: nvmwear.WorkloadSPEC, Name: "gcc", Seed: 1,
	}.Build(1 << 20)
	r := stream.Next()
	fmt.Println(name, r.Addr < 1<<20)
	// Output: gcc true
}
