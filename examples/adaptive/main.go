// Adaptive granularity in action: watch SAWL's region size respond to a
// workload whose locality changes at runtime (the behaviour behind the
// paper's Figs 12-14).
//
// The program drives three phases through one SAWL system:
//
//  1. a tight hot set that fits the CMT easily — SAWL holds (or splits to)
//     fine regions for maximal wear leveling;
//  2. a scattered sweep over a footprint far beyond the CMT's reach at
//     fine granularity — the hit rate collapses, SAWL merges regions to
//     recover it;
//  3. the tight hot set again — the hit rate saturates and the LRU stack's
//     second half goes quiet, so SAWL splits regions back down.
package main

import (
	"fmt"
	"log"

	"nvmwear"
	"nvmwear/internal/core"
	"nvmwear/internal/rng"
)

func main() {
	var lastSample core.Sample
	sys, err := nvmwear.NewSystem(nvmwear.SystemConfig{
		Scheme:            nvmwear.SAWL,
		Lines:             1 << 20,
		SpareLines:        1,
		Endurance:         1 << 30, // observe adaptation, not wear-out
		Period:            64,
		CMTEntries:        512,
		ObservationWindow: 1 << 14,
		SettlingWindow:    1 << 14,
		Seed:              11,
		OnSample:          func(s core.Sample) { lastSample = s },
	})
	if err != nil {
		log.Fatal(err)
	}

	src := rng.New(13)
	hot := func() uint64 { return src.Uint64n(1 << 11) }  // 2K hot lines
	cold := func() uint64 { return src.Uint64n(1 << 20) } // full space
	phases := []struct {
		name     string
		requests int
		addr     func() uint64
	}{
		{"phase 1: tight hot set", 400000, hot},
		{"phase 2: scattered sweep", 800000, cold},
		{"phase 3: tight hot set again", 800000, hot},
	}

	fmt.Println("requests   hit-rate   avg-region-size   mode")
	total := 0
	for _, ph := range phases {
		fmt.Printf("--- %s ---\n", ph.name)
		for i := 0; i < ph.requests; i++ {
			sys.Write(ph.addr())
			total++
			if total%100000 == 0 {
				fmt.Printf("%8d   %7.1f%%   %10.1f lines   %s\n",
					lastSample.Requests, 100*lastSample.HitRate,
					lastSample.AvgRegionLines, lastSample.Mode)
			}
		}
	}

	st := sys.Stats()
	fmt.Printf("\nfinal: CMT hit rate %.1f%%, write overhead %.2f%%, wear gini %.3f\n",
		100*st.CMTHitRate, 100*st.WriteOverhead, st.WearGini)
}
