// Attack resilience: reproduce the paper's Sec 2.2 threat analysis by
// running the Repeated Address Attack (RAA) and the Birthday Paradox
// Attack (BPA) against every wear-leveling scheme and comparing how much
// of the ideal lifetime each one salvages.
//
// Expected outcome (the paper's Table-less claims):
//   - Baseline and Segment Swapping collapse under RAA (one line / one
//     offset absorbs everything).
//   - RBSG collapses too: the attacked line never leaves its region.
//   - TLSR, PCM-S, MWSR and SAWL disperse RAA across the whole device.
//   - Under trigger-aware BPA, the hybrid schemes separate by how fast
//     their remapping disperses deposits — SAWL's fine NVM-resident table
//     wins.
package main

import (
	"fmt"
	"log"

	"nvmwear"
)

const (
	lines     = 1 << 12
	endurance = 3000
	period    = 8
)

func run(kind nvmwear.SchemeKind, w nvmwear.WorkloadSpec) nvmwear.LifetimeResult {
	cfg := nvmwear.SystemConfig{
		Scheme:     kind,
		Lines:      lines,
		SpareLines: lines / 32,
		Endurance:  endurance,
		Period:     period,
		// PCM-S/MWSR must hold their whole table on chip, which caps how
		// fine their regions can be on a real device (Sec 2.2 item 4);
		// SAWL's table lives in NVM, so it wear-levels at 4-line regions.
		RegionLines: 64,
		Regions:     16,
		InitGran:    4,
		CMTEntries:  1024,
		Seed:        7,
	}
	sys, err := nvmwear.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunLifetime(w, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	schemes := []nvmwear.SchemeKind{
		nvmwear.Baseline, nvmwear.SegmentSwap, nvmwear.RBSG,
		nvmwear.TLSR, nvmwear.PCMS, nvmwear.MWSR, nvmwear.SAWL,
	}

	fmt.Printf("device: %d lines, endurance %d, swapping period %d\n\n", lines, endurance, period)
	fmt.Printf("%-12s  %14s  %14s\n", "scheme", "RAA lifetime", "BPA lifetime")
	fmt.Printf("%-12s  %14s  %14s\n", "------", "------------", "------------")
	for _, kind := range schemes {
		raa := run(kind, nvmwear.WorkloadSpec{Kind: nvmwear.WorkloadRAA, Target: 99})
		// Trigger-aware attacker: each burst deposits one swapping period
		// of wear before the mapping can move (Sec 2.2). The attacker
		// adapts the burst length to the victim's remap granularity.
		repeats := uint64(period * 64)
		if kind == nvmwear.SAWL {
			repeats = period * 4
		}
		bpa := run(kind, nvmwear.WorkloadSpec{
			Kind: nvmwear.WorkloadBPA, Seed: 3, Repeats: repeats,
		})
		fmt.Printf("%-12s  %13.1f%%  %13.1f%%\n", kind, 100*raa.Normalized, 100*bpa.Normalized)
	}
	fmt.Println("\n(percent of ideal lifetime; higher is better)")
}
