// Quickstart: build an MLC NVM system with SAWL wear leveling, run a
// SPEC-like workload against it, and report the lifetime and cache
// behaviour — the minimal end-to-end use of the nvmwear public API.
package main

import (
	"fmt"
	"log"

	"nvmwear"
)

func main() {
	// A 4 MB device of 64 B lines with MLC-class endurance, protected by
	// the paper's self-adaptive wear-leveling scheme.
	sys, err := nvmwear.NewSystem(nvmwear.SystemConfig{
		Scheme:     nvmwear.SAWL,
		Lines:      1 << 16, // 65536 lines = 4 MB
		SpareLines: 1 << 10,
		Endurance:  2000,
		Period:     16,
		CMTEntries: 4096,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system: %s over %d lines\n", sys.SchemeName(), sys.Lines())

	// Individual accesses translate transparently.
	pma := sys.Write(12345)
	fmt.Printf("logical line 12345 currently lives at physical line %d\n", pma)

	// Run a gcc-like workload until the device wears out.
	res, err := sys.RunLifetime(nvmwear.WorkloadSpec{
		Kind: nvmwear.WorkloadSPEC,
		Name: "gcc",
		Seed: 1,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("normalized lifetime: %.1f%% of ideal (%d writes served)\n",
		100*res.Normalized, res.Served)
	fmt.Printf("write overhead:      %.2f%%\n", 100*st.WriteOverhead)
	fmt.Printf("CMT hit rate:        %.1f%%\n", 100*st.CMTHitRate)
	fmt.Printf("wear Gini:           %.3f (0 = perfectly uniform)\n", st.WearGini)
}
