// SPEC comparison: for each of the paper's 14 SPEC CPU2006-like workloads,
// measure both the lifetime (normalized to ideal) and the IPC cost of
// three wear-leveling configurations — the combined view behind the
// paper's Figs 16 and 17.
package main

import (
	"fmt"
	"log"

	"nvmwear"
)

const (
	lines     = 1 << 12
	endurance = 1200
)

func lifetimeOf(kind nvmwear.SchemeKind, bench string) float64 {
	sys, err := nvmwear.NewSystem(nvmwear.SystemConfig{
		Scheme:     kind,
		Lines:      lines,
		SpareLines: lines / 32,
		Endurance:  endurance,
		Period:     8,
		Regions:    lines / 8,
		InitGran:   8,
		CMTEntries: 1024,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunLifetime(nvmwear.WorkloadSpec{
		Kind: nvmwear.WorkloadSPEC, Name: bench, Seed: 5,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	return 100 * res.Normalized
}

func ipcOf(kind nvmwear.SchemeKind, bench string) float64 {
	sys, err := nvmwear.NewSystem(nvmwear.SystemConfig{
		Scheme:     kind,
		Lines:      1 << 20,
		SpareLines: 1,
		Endurance:  1 << 30,
		Period:     128,
		InitGran:   4,
		CMTEntries: 2048,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunTiming(nvmwear.WorkloadSpec{
		Kind: nvmwear.WorkloadSPEC, Name: bench, Seed: 5,
	}, 300000, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res.IPC
}

func main() {
	fmt.Printf("%-12s | %9s %9s %9s | %9s %9s %9s\n",
		"", "lifetime%", "", "", "IPC", "", "")
	fmt.Printf("%-12s | %9s %9s %9s | %9s %9s %9s\n",
		"bench", "TLSR", "NWL", "SAWL", "base", "NWL", "SAWL")
	fmt.Println("-------------+-------------------------------+------------------------------")
	for _, bench := range nvmwear.SpecBenchmarks() {
		fmt.Printf("%-12s | %9.1f %9.1f %9.1f | %9.2f %9.2f %9.2f\n",
			bench,
			lifetimeOf(nvmwear.TLSR, bench),
			lifetimeOf(nvmwear.NWL, bench),
			lifetimeOf(nvmwear.SAWL, bench),
			ipcOf(nvmwear.Baseline, bench),
			ipcOf(nvmwear.NWL, bench),
			ipcOf(nvmwear.SAWL, bench),
		)
	}
	fmt.Println("\nlifetime: percent of ideal (higher is better); IPC: instructions/cycle")
}
