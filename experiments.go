package nvmwear

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"nvmwear/internal/exec"
	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/store"
)

// wearGini computes the Gini coefficient of the device's per-line wear.
func wearGini(dev *nvm.Device) float64 {
	return metrics.GiniUint32(dev.WearCounts())
}

// Series is one labeled curve of an experiment — the unit every figure
// runner returns. X holds the independent variable (number of regions,
// request count, benchmark index), Y the measured value.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string

	// fromSeries marks a table that is the text rendering of an SVG's
	// series (figTable): csv/json output emits the series stream and
	// drops the redundant table.
	fromSeries bool
}

// Render formats the table as aligned ASCII text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SeriesTable renders a set of series sharing an X axis as one table.
func SeriesTable(title, xName string, series []Series, fmtY string) Table {
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	tab := Table{Title: title, Columns: append([]string{xName}, labels(series)...)}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf(fmtY, s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Scale sizes an experiment. The paper simulates 64 GB devices with
// 10^5-10^6 endurance for months of traffic; these presets shrink the
// device and endurance proportionally so every figure regenerates in
// seconds to minutes while preserving the paper's qualitative shape
// (DESIGN.md, substitution table). Lifetime experiments keep the paper's
// governing ratio — cell endurance over the writes between two remaps of a
// hot line — in the regime where the paper's crossovers appear.
type Scale struct {
	Name string

	// Attack experiments (Figs 3, 4, 5, 15): device lines and endurance
	// for BPA lifetime runs.
	AttackLines     uint64
	AttackEndurance uint32

	// SPEC lifetime experiment (Fig 16).
	SpecLines     uint64
	SpecEndurance uint32
	// SpecPeriod is the swapping period for Fig 16 runs. The paper uses
	// 128 with Wmax 1e5; scaled endurance needs a proportionally shorter
	// period to preserve endurance/remap-interval.
	SpecPeriod uint64

	// TraceLines sizes the logical space for fixed-length runs (hit-rate
	// and IPC figures), which need realistic footprints but no wear-out.
	TraceLines uint64
	// Requests drives fixed-length runs.
	Requests uint64

	// CMTEntries for tiered schemes.
	CMTEntries int
	// SpareFrac: spares = lines/SpareFrac.
	SpareFrac uint64
	Seed      uint64

	// Parallelism bounds the number of sweep jobs running concurrently
	// (cmd/wlsim's -j flag). 0 selects runtime.GOMAXPROCS(0). Results are
	// identical for every value: jobs are independent, returned in
	// submission order, and seeded from (Seed, job index) — see
	// internal/exec.
	Parallelism int

	// Progress, when non-nil, is called after each completed sweep job
	// with the finished and total job counts. Calls are serialized by the
	// pool; cmd/wlsim wires this to stderr.
	Progress func(done, total int)

	// Context, when non-nil, cancels in-flight sweeps: unstarted jobs are
	// skipped and figure runners return the completed prefix of their
	// series together with an error wrapping ErrInterrupted. cmd/wlsim
	// wires SIGINT/SIGTERM to this so an interrupted sweep still flushes a
	// partial table. A nil Context never cancels.
	Context context.Context

	// Drain, when non-nil, is the sweep's graceful-drain signal (soft
	// cancel): once it is done, no further jobs are dispatched, but jobs
	// already running complete and persist to Cache before the runner
	// returns the completed prefix with an error wrapping ErrInterrupted.
	// wlsim serve wires its shutdown drain here so in-flight work is
	// checkpointed rather than discarded; Context remains the hard cancel
	// that abandons it. A nil Drain never drains.
	Drain context.Context

	// CacheDir, when non-empty, names the on-disk result store that
	// memoizes completed sweep jobs across process lifetimes (cmd/wlsim's
	// -cache flag). Call OpenCache to open it into Cache; runners consult
	// only Cache, so a CacheDir that was never opened stays inert.
	CacheDir string

	// Cache is the opened result store. When non-nil, every sweep job is
	// keyed by a digest of (results version salt, scale parameters,
	// figure, job index, seed stream) and completed results are persisted
	// write-atomically; a later run — including one resumed after SIGINT
	// or SIGKILL — re-executes only the missing jobs. Cache hits bypass
	// the workers but still drive Progress and JobTime, so telemetry
	// stays truthful. See EXPERIMENTS.md for the keying/invalidation
	// contract.
	Cache ResultCache

	// JobTime, when non-nil, receives each completed sweep job's wall
	// time after Progress (zero for cache hits). Calls are serialized by
	// the pool; cmd/wlsim aggregates these into p50/p99 summaries.
	JobTime func(elapsed time.Duration)

	// Shards decomposes every single lifetime run into this many per-bank
	// shards (cmd/wlsim's -shards flag) where the scheme and workload allow
	// it — see PlanShards; runs that cannot shard fall back to serial with
	// a Logf notice. <= 1 keeps the serial path everywhere. Sharded results
	// are cached under shard-salted keys (cacheKey), so the store never
	// mixes sharded and serial entries.
	Shards int

	// SeriesDone, when non-nil, receives each completed series of a sweep
	// the moment its last job finishes — before the runner returns — so
	// long sweeps can stream partial figures to the formatter (pipeline
	// rendering). The runner's returned slice is unaffected. Calls are
	// serialized; fig names match the runner's cache identity.
	SeriesDone func(fig string, s Series)

	// Logf, when non-nil, receives diagnostic notices (serial-fallback
	// reasons under Shards > 1, cache staleness lines). cmd/wlsim wires it
	// to stderr so stdout stays machine-readable.
	Logf func(format string, args ...any)

	// SweepScheme selects the scheme the generic `sweep` experiment
	// explores (cmd/wlsim's -scheme flag). Empty selects PCMS. The scheme
	// is folded into the sweep's cache identity, not the cache key salt.
	SweepScheme SchemeKind

	// WearModel names the nvm.WearModel every lifetime run simulates under
	// (cmd/wlsim's -wear flag), resolved by nvm.WearModelByName. Empty keeps
	// the historical default (variation wear when the config draws a
	// variation, uniform otherwise). Non-default models salt the lifetime
	// sweeps' cache keys (cacheKey), so results under different wear physics
	// never collide in the store.
	WearModel string

	// Project parameterizes the `project` experiment's wall-clock lifetime
	// projection (cmd/wlsim's -normalized/-endurance/-capacity/-bandwidth
	// flags). Zero fields take the paper-derived defaults.
	Project ProjectParams

	// FleetDevices sizes the `fleet` experiment's per-scheme device
	// population (cmd/wlsim's -devices flag). 0 selects the default (16).
	// The population size is part of the fleet's cache identity, not the
	// cache key salt: resizing the fleet re-keys its jobs without
	// disturbing any other experiment's cache.
	FleetDevices int

	// FleetDeviceOverrides resizes individual schemes' fleet populations
	// (cmd/wlsim's `-devices scheme=N,...` form); schemes not listed keep
	// FleetDevices. Like FleetDevices it is part of the fleet's cache
	// identity via fleetFig, so a ragged fleet never collides with a
	// uniform one.
	FleetDeviceOverrides map[SchemeKind]int

	// FleetPoison, when > 0, makes fleet device job FleetPoison-1 panic
	// mid-draw — the failure-isolation test hook behind WLSIM_FLEET_POISON.
	// Deliberately excluded from cache identity: a poisoned job never
	// produces a result, so it can never poison the cache either.
	FleetPoison int
}

// ProjectParams sizes the `project` experiment: the full-scale device whose
// wall-clock lifetime is projected from a measured normalized fraction.
type ProjectParams struct {
	Normalized    float64 // measured fraction of ideal (default 0.85)
	Endurance     uint64  // cell endurance Wmax (default 1e5)
	CapacityGB    uint64  // device capacity in GB (default 64)
	BandwidthGBps float64 // write traffic in GB/s (default 1)
}

// withDefaults fills zero fields with the paper's reference point.
func (p ProjectParams) withDefaults() ProjectParams {
	if p.Normalized == 0 {
		p.Normalized = 0.85
	}
	if p.Endurance == 0 {
		p.Endurance = 1e5
	}
	if p.CapacityGB == 0 {
		p.CapacityGB = 64
	}
	if p.BandwidthGBps == 0 {
		p.BandwidthGBps = 1
	}
	return p
}

// ResultCache memoizes completed sweep jobs across runs. It mirrors
// internal/exec.Store; internal/store.Store is the durable, crash-safe
// implementation behind Scale.CacheDir.
type ResultCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

// OpenCache opens (creating it if needed) the crash-safe result store at
// sc.CacheDir and installs it as sc.Cache, returning a close function that
// releases the store's cross-process lock. A Scale without a CacheDir gets
// a no-op closer. Opening fails with *store.BusyError while another live
// process holds the same cache directory.
func (sc *Scale) OpenCache() (func() error, error) {
	if sc.CacheDir == "" {
		return func() error { return nil }, nil
	}
	st, err := store.Open(sc.CacheDir)
	if err != nil {
		return nil, err
	}
	sc.Cache = st
	return st.Close, nil
}

// resultsVersion salts every cache key with the simulation code version.
// Bump it whenever a change alters any experiment's numeric output (new
// RNG draws, changed defaults, fixed simulation bugs): entries under the
// old salt simply stop matching and age out, so a stale cache can never
// leak pre-change results into post-change tables.
const resultsVersion = "wlsim-results-v2"

// cacheKey builds the canonical cache key of one sweep job: the results
// version salt, every Scale parameter that can influence a result, the
// figure identity (which must itself encode any non-Scale sweep
// parameters), the job index, and the job's derived seed stream. The
// store content-addresses the string, so readability costs nothing.
//
// sharded declares whether the sweep's lifetime runs go through the
// intra-run sharder — the per-experiment capability flag of the registry
// (Experiment.Sharded), which now covers every lifetime experiment (figure
// sweeps, sweep, fault, attack, fleet). Only those sweeps salt their keys
// with the shard layout: the layout changes the simulated geometry
// (per-bank devices and RNG substreams), so sharded results live under
// their own keys, while runs the sharder never touches (the fixed-length
// trace figures, overhead, table1) keep the same results — and the same
// keys — at every -shards value.
func (sc Scale) cacheKey(fig string, sharded bool, i int) string {
	key := fmt.Sprintf(
		"%s|fig=%s|job=%d|seed=%d|stream=%#x|attack=%d/%d|spec=%d/%d/%d|trace=%d|req=%d|cmt=%d|spare=%d",
		resultsVersion, fig, i, sc.Seed, rng.SeedStream(sc.Seed, uint64(i)),
		sc.AttackLines, sc.AttackEndurance,
		sc.SpecLines, sc.SpecEndurance, sc.SpecPeriod,
		sc.TraceLines, sc.Requests, sc.CMTEntries, sc.SpareFrac)
	// Serial runs keep the historical unsalted key: existing caches stay
	// warm across this refactor.
	if sharded && sc.Shards > 1 {
		key += fmt.Sprintf("|shards=%d", sc.Shards)
	}
	// Only lifetime sweeps feel the wear model (fixed-length trace figures
	// never wear lines out), and the default stays unsalted so existing
	// caches remain warm; a -wear override re-keys exactly the runs whose
	// physics it changes.
	if sharded && sc.WearModel != "" {
		key += "|wear=" + sc.WearModel
	}
	return key
}

// ScaleTiny is the smallest preset: every figure in seconds, meant for
// smoke tests and CI (`wlsim -scale tiny`), not for paper-shaped curves.
// The root package's testdata/ goldens are rendered at this scale with
// Seed 7, so its parameters are pinned by the golden regression tests.
var ScaleTiny = Scale{
	Name:            "tiny",
	AttackLines:     1 << 10,
	AttackEndurance: 800,
	SpecLines:       1 << 10,
	SpecEndurance:   600,
	SpecPeriod:      8,
	TraceLines:      1 << 18,
	Requests:        1 << 17,
	CMTEntries:      256,
	SpareFrac:       32,
	Seed:            7,
}

// ScaleSmall regenerates every figure in seconds to a few minutes — the
// default for `go test -bench`.
var ScaleSmall = Scale{
	Name:            "small",
	AttackLines:     1 << 12,
	AttackEndurance: 2500,
	SpecLines:       1 << 12,
	SpecEndurance:   2500,
	SpecPeriod:      8,
	TraceLines:      1 << 22,
	Requests:        1 << 22,
	CMTEntries:      1 << 12,
	SpareFrac:       32,
	Seed:            42,
}

// ScaleMedium is the cmd/wlsim default: minutes per figure, smoother
// curves.
var ScaleMedium = Scale{
	Name:            "medium",
	AttackLines:     1 << 14,
	AttackEndurance: 5000,
	SpecLines:       1 << 14,
	SpecEndurance:   5000,
	SpecPeriod:      16,
	TraceLines:      1 << 23,
	Requests:        1 << 24,
	CMTEntries:      1 << 13,
	SpareFrac:       32,
	Seed:            42,
}

// ScaleLarge approaches the paper's region-count ranges (tens of minutes
// to hours per figure).
var ScaleLarge = Scale{
	Name:            "large",
	AttackLines:     1 << 17,
	AttackEndurance: 20000,
	SpecLines:       1 << 16,
	SpecEndurance:   20000,
	SpecPeriod:      32,
	TraceLines:      1 << 25,
	Requests:        1 << 26,
	CMTEntries:      1 << 15,
	SpareFrac:       32,
	Seed:            42,
}

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "large":
		return ScaleLarge, nil
	default:
		return Scale{}, fmt.Errorf("nvmwear: unknown scale %q (tiny|small|medium|large)", name)
	}
}

// attackSpares returns the spare-line count for attack devices.
func (sc Scale) attackSpares() uint64 { return sc.AttackLines / sc.SpareFrac }

// specSpares returns the spare-line count for SPEC lifetime devices.
func (sc Scale) specSpares() uint64 { return sc.SpecLines / sc.SpareFrac }

// lowAttackEndurance is the scaled "10^5 panel" endurance for attack
// figures (one fifth of the high panel, keeping small runs meaningful).
func (sc Scale) lowAttackEndurance() uint32 {
	e := sc.AttackEndurance / 5
	if e < 100 {
		e = 100
	}
	return e
}

// traceLines returns the logical space for fixed-length trace experiments.
func (sc Scale) traceLines() uint64 {
	if sc.TraceLines != 0 {
		return sc.TraceLines
	}
	return sc.SpecLines
}

// pool builds the scale's experiment engine: Parallelism workers and
// per-job seeds derived from Seed.
func (sc Scale) pool() *exec.Pool {
	p := &exec.Pool{Workers: sc.Parallelism, BaseSeed: sc.Seed, Context: sc.Context, SoftContext: sc.Drain}
	if sc.Progress != nil || sc.JobTime != nil {
		p.OnDone = func(done, total int, elapsed time.Duration) {
			if sc.Progress != nil {
				sc.Progress(done, total)
			}
			if sc.JobTime != nil {
				sc.JobTime(elapsed)
			}
		}
	}
	return p
}

// cachedPool is pool() plus the sweep-level refinements: the disk result
// cache keyed under the figure identity (when Scale.Cache is open) and an
// optional longest-job-first cost hint. sharded is the sweep's cache-key
// shard salting, see cacheKey.
func (sc Scale) cachedPool(fig string, sharded bool, cost func(i int) float64) *exec.Pool {
	p := sc.pool()
	p.Cost = cost
	if sc.Cache != nil && fig != "" {
		p.Store = sc.Cache
		p.Key = func(i int) string { return sc.cacheKey(fig, sharded, i) }
	}
	return p
}

// ErrInterrupted marks a sweep cut short by Scale.Context (SIGINT in
// cmd/wlsim). Runners that return it also return every series point whose
// job completed, so callers can flush a partial table before exiting.
var ErrInterrupted = errors.New("nvmwear: sweep interrupted")

// runJobs fans n experiment jobs out on the scale's pool and returns their
// results in submission order. fig is the sweep's cache identity (see
// cacheKey): it must be unique per figure and must encode every sweep
// parameter that is not already part of Scale. If the scale's context is
// cancelled mid-sweep, the longest completed prefix of results is returned
// together with an error wrapping ErrInterrupted; any other job error is
// returned as-is with the earliest-dispatched failing job winning
// (deterministic regardless of scheduling).
//
// Seeding convention: lifetime sweeps pass the job's derived seed into the
// workload and scheme they build, giving every point an independent random
// stream regardless of worker count. Fixed-length trace figures (12-14, 17)
// instead keep sc.Seed so all panels of one figure observe the identical
// request stream — those figures compare configurations on the same trace.
// sharded declares whether the sweep's lifetime runs go through the
// intra-run sharder; it must match the registering experiment's Sharded
// capability flag, which decides the cache keys' shard salting (cacheKey).
func runJobs[T any](sc Scale, fig string, sharded bool, n int, fn func(i int, seed uint64) (T, error)) ([]T, error) {
	return runJobsCost(sc, fig, sharded, nil, n, fn)
}

// runJobsCost is runJobs with a longest-job-first cost hint: jobs are
// dispatched in descending cost order while results keep submission order.
func runJobsCost[T any](sc Scale, fig string, sharded bool, cost func(i int) float64, n int, fn func(i int, seed uint64) (T, error)) ([]T, error) {
	return runJobsStream(sc, fig, sharded, cost, n, nil, fn)
}

// runJobsStream is runJobsCost plus a per-job completion hook: onJob, when
// non-nil, observes each job's result as it lands (cache hits included, in
// completion order) so runners can stream series to Scale.SeriesDone while
// the sweep is still running. onJob calls are serialized by the pool.
func runJobsStream[T any](sc Scale, fig string, sharded bool, cost func(i int) float64, n int, onJob func(i int, v T), fn func(i int, seed uint64) (T, error)) ([]T, error) {
	p := sc.cachedPool(fig, sharded, cost)
	if onJob != nil {
		p.OnJob = func(i int, v any, _ time.Duration) {
			if tv, ok := v.(T); ok {
				onJob(i, tv)
			}
		}
	}
	out, err := exec.Map(p, n, fn)
	var ce *exec.CanceledError
	if errors.As(err, &ce) {
		done := 0
		for done < len(ce.Done) && ce.Done[done] {
			done++
		}
		return out[:done], fmt.Errorf("%w after %d/%d jobs (%v)", ErrInterrupted, done, n, ce.Err)
	}
	return out, err
}

// runJobsIsolated is runJobs with per-job failure isolation
// (exec.Pool.Quarantine): a job that errors or panics is reported through
// the quarantine callback and leaves a zero-valued result slot instead of
// aborting the sweep — the fleet experiment's poisoned-device containment.
// Because quarantined slots can sit anywhere, results are returned
// full-length together with a validity mask rather than as a truncated
// prefix: valid == nil means every non-quarantined slot is live; on
// cancellation the mask marks the jobs that completed and the error wraps
// ErrInterrupted (quarantined jobs read as not-done in the mask too — the
// caller's quarantine records tell the two apart).
func runJobsIsolated[T any](sc Scale, fig string, sharded bool, cost func(i int) float64, n int, quarantine func(i int, err error), fn func(i int, seed uint64) (T, error)) ([]T, []bool, error) {
	p := sc.cachedPool(fig, sharded, cost)
	p.Quarantine = quarantine
	out, err := exec.Map(p, n, fn)
	var ce *exec.CanceledError
	if errors.As(err, &ce) {
		done := 0
		for _, d := range ce.Done {
			if d {
				done++
			}
		}
		return out, ce.Done, fmt.Errorf("%w after %d/%d jobs (%v)", ErrInterrupted, done, n, ce.Err)
	}
	return out, nil, err
}

// seriesStreamer assembles per-job results into labeled curves as jobs
// finish and fires Scale.SeriesDone the moment a curve's last point lands.
// Runners declare every series (label + point count) up front, then report
// points from the pool's per-job hook; a sweep interrupted mid-series
// simply never fires that series. A nil streamer (SeriesDone unset) makes
// every method a no-op, so runners call it unconditionally.
type seriesStreamer struct {
	sc   Scale
	fig  string
	mu   sync.Mutex
	ser  []Series
	left []int
}

// newSeriesStreamer returns a streamer for the sweep, or nil when the scale
// has no SeriesDone sink.
func newSeriesStreamer(sc Scale, fig string) *seriesStreamer {
	if sc.SeriesDone == nil {
		return nil
	}
	return &seriesStreamer{sc: sc, fig: fig}
}

// series declares a labeled curve with n points and returns its id.
func (st *seriesStreamer) series(label string, n int) int {
	if st == nil {
		return -1
	}
	st.ser = append(st.ser, Series{Label: label, X: make([]float64, n), Y: make([]float64, n)})
	st.left = append(st.left, n)
	return len(st.ser) - 1
}

// point records point p of series s; the last point fires SeriesDone.
func (st *seriesStreamer) point(s, p int, x, y float64) {
	if st == nil || s < 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ser[s].X[p] = x
	st.ser[s].Y[p] = y
	if st.left[s]--; st.left[s] == 0 {
		out := Series{Label: st.ser[s].Label}
		out.X = append(out.X, st.ser[s].X...)
		out.Y = append(out.Y, st.ser[s].Y...)
		st.sc.SeriesDone(st.fig, out)
	}
}
