package nvmwear

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"nvmwear/internal/plot"
)

// This file provides machine-readable export of experiment results so the
// regenerated figures can be plotted or diffed outside the CLI's ASCII
// tables: CSV (one row per X value, one column per series) and JSON.

// WriteSeriesCSV writes a set of series sharing an X axis as CSV.
func WriteSeriesCSV(w io.Writer, xName string, series []Series) error {
	cw := csv.NewWriter(w)
	header := append([]string{xName}, labels(series)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range unionX(series) {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = strconv.FormatFloat(s.Y[i], 'g', -1, 64)
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesJSON writes series as a JSON document:
// {"x": "...", "series": [{"label": ..., "x": [...], "y": [...]}, ...]}.
func WriteSeriesJSON(w io.Writer, xName string, series []Series) error {
	type jsSeries struct {
		Label string    `json:"label"`
		X     []float64 `json:"x"`
		Y     []float64 `json:"y"`
	}
	doc := struct {
		XName  string     `json:"x"`
		Series []jsSeries `json:"series"`
	}{XName: xName}
	for _, s := range series {
		doc.Series = append(doc.Series, jsSeries{Label: s.Label, X: s.X, Y: s.Y})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteTableCSV writes a rendered Table as CSV.
func WriteTableCSV(w io.Writer, t Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// unionX returns the sorted union of all X values.
func unionX(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// FormatSeries renders series in the requested format ("text", "csv" or
// "json") — the cmd/wlsim -format switch.
func FormatSeries(w io.Writer, format, title, xName string, series []Series) error {
	switch format {
	case "", "text":
		_, err := io.WriteString(w, SeriesTable(title, xName, series, "%.2f").Render())
		return err
	case "csv":
		return WriteSeriesCSV(w, xName, series)
	case "json":
		return WriteSeriesJSON(w, xName, series)
	default:
		return fmt.Errorf("nvmwear: unknown format %q (text|csv|json)", format)
	}
}

// WriteSVG renders the experiment figure as an SVG line chart with its
// registered axis metadata (wlsim -svg).
func (g SVG) WriteSVG(w io.Writer) error {
	return WriteSeriesSVG(w, g.Title, g.XName, g.YName, g.LogX, g.Series)
}

// WriteSeriesSVG renders series as an SVG line chart (wlsim -svg).
func WriteSeriesSVG(w io.Writer, title, xName, yName string, logX bool, series []Series) error {
	c := plot.Chart{Title: title, XLabel: xName, YLabel: yName, LogX: logX}
	for _, s := range series {
		c.Series = append(c.Series, plot.Line{Label: s.Label, X: s.X, Y: s.Y})
	}
	return c.Render(w)
}
