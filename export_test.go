package nvmwear

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
)

func demoSeries() []Series {
	a := Series{Label: "A"}
	a.Append(1, 10.5)
	a.Append(2, 20)
	b := Series{Label: "B"}
	b.Append(2, 99)
	return []Series{a, b}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "x", demoSeries()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0][0] != "x" || rows[0][1] != "A" || rows[0][2] != "B" {
		t.Fatalf("header: %v", rows[0])
	}
	if rows[1][1] != "10.5" || rows[1][2] != "" {
		t.Fatalf("row 1: %v", rows[1])
	}
	if rows[2][1] != "20" || rows[2][2] != "99" {
		t.Fatalf("row 2: %v", rows[2])
	}
}

func TestWriteSeriesJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesJSON(&buf, "regions", demoSeries()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		XName  string `json:"x"`
		Series []struct {
			Label string    `json:"label"`
			X     []float64 `json:"x"`
			Y     []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.XName != "regions" || len(doc.Series) != 2 {
		t.Fatalf("doc: %+v", doc)
	}
	if doc.Series[0].Label != "A" || doc.Series[0].Y[0] != 10.5 {
		t.Fatalf("series: %+v", doc.Series[0])
	}
}

func TestWriteTableCSV(t *testing.T) {
	var buf bytes.Buffer
	tab := Table{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if err := WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Fatalf("csv: %q", got)
	}
}

func TestFormatSeries(t *testing.T) {
	for _, format := range []string{"", "text", "csv", "json"} {
		var buf bytes.Buffer
		if err := FormatSeries(&buf, format, "t", "x", demoSeries()); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
	}
	if err := FormatSeries(&bytes.Buffer{}, "xml", "t", "x", nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestCrashRecoveryFacade(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Scheme: SAWL, Lines: 1 << 12, SpareLines: 1, Endurance: 1 << 30,
		Period: 8, CMTEntries: 256, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50000; i++ {
		sys.Write(i * 2654435761 % (1 << 12))
	}
	ckpt := sys.Checkpoint()
	if ckpt == nil {
		t.Fatal("nil checkpoint for SAWL")
	}
	rec, err := RecoverSystem(sys, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for lma := uint64(0); lma < 1<<12; lma++ {
		if rec.Translate(lma) != sys.Translate(lma) {
			t.Fatalf("mapping diverged at %d", lma)
		}
	}
	// Non-tiered schemes refuse.
	base, _ := NewSystem(SystemConfig{Scheme: Baseline, Lines: 1 << 10, SpareLines: 1, Endurance: 1})
	if base.Checkpoint() != nil {
		t.Fatal("baseline produced a checkpoint")
	}
	if _, err := RecoverSystem(base, nil); err == nil {
		t.Fatal("baseline recovery accepted")
	}
	// Corrupted checkpoint refused at the facade too.
	if _, err := RecoverSystem(sys, ckpt[:10]); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
