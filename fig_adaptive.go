package nvmwear

import (
	"fmt"

	"nvmwear/internal/core"
	"nvmwear/internal/trace"
)

// This file implements the adaptive-behavior experiments: the sensitivity
// studies of Sec 4.2 (Figs 12 and 13) and the per-benchmark hit-rate /
// region-size traces of Fig 14.
//
// These runs are fixed-length (no device wear-out needed), so the device is
// built with effectively unlimited endurance and the figures plot the
// runtime evolution of the CMT hit rate and the wear-leveling granularity.

// sawlTraceConfig builds the SystemConfig used by the Sec 4.2 experiments:
// SAWL over the scaled device with a given observation/settling window.
func sawlTraceConfig(sc Scale, sow, ssw uint64, onSample func(core.Sample)) SystemConfig {
	return SystemConfig{
		Scheme:            SAWL,
		Lines:             sc.traceLines(),
		SpareLines:        1, // never exhausted: Endurance below is huge
		Endurance:         1 << 30,
		Period:            128,
		CMTEntries:        sc.CMTEntries,
		ObservationWindow: sow,
		SettlingWindow:    ssw,
		CheckEvery:        checkEvery(sc),
		Seed:              sc.Seed,
		OnSample:          onSample,
	}
}

// runTrace drives `requests` of the named SPEC profile through SAWL and
// returns the sampled (hit rate, region size) trajectories.
func runTrace(sc Scale, bench string, sow, ssw uint64) (hit, size Series, avgHit float64, err error) {
	hit = Series{Label: fmt.Sprintf("SOW=%d", sow)}
	size = Series{Label: fmt.Sprintf("SSW=%d", ssw)}
	var sum float64
	var n int
	sys, err := NewSystem(sawlTraceConfig(sc, sow, ssw, func(s core.Sample) {
		hit.Append(float64(s.Requests), 100*s.HitRate)
		size.Append(float64(s.Requests), s.AvgRegionLines)
		sum += s.HitRate
		n++
	}))
	if err != nil {
		return hit, size, 0, err
	}
	stream, _, err := WorkloadSpec{Kind: WorkloadSPEC, Name: bench, Seed: sc.Seed}.Build(sc.traceLines())
	if err != nil {
		return hit, size, 0, err
	}
	for i := uint64(0); i < sc.Requests; i++ {
		r := stream.Next()
		if r.Op == trace.Write {
			sys.Write(r.Addr)
		} else {
			sys.Read(r.Addr)
		}
	}
	if n > 0 {
		avgHit = 100 * sum / float64(n)
	}
	return hit, size, avgHit, nil
}

// RunFig12 reproduces Fig 12: the sampled cache hit rate as a function of
// runtime for different observation-window sizes, under the soplex-like
// benchmark. Small windows fluctuate; large windows flatten and miss the
// adjustment points (Sec 4.2 item 1). Window sizes are scaled from the
// paper's 2^20-2^26 sweep proportionally to Scale.Requests.
//
// The four window sizes run as parallel jobs. Each job keeps sc.Seed (not
// the job-derived seed): the figure compares window sizes on the identical
// soplex request stream, as the serial loops did.
func RunFig12(sc Scale) ([]Series, error) {
	windows := scaledWindows(sc)
	// Each job produces one complete series, so streaming is per-job.
	var onJob func(i int, s Series)
	if sc.SeriesDone != nil {
		onJob = func(_ int, s Series) { sc.SeriesDone("fig12", s) }
	}
	return runJobsStream(sc, "fig12", false, nil, len(windows), onJob, func(i int, _ uint64) (Series, error) {
		sow := windows[i]
		hit, _, _, err := runTrace(sc, "soplex", sow, sc.Requests/4)
		if err != nil {
			return Series{}, err
		}
		hit.Label = fmt.Sprintf("SOW=2^%d", log2u(sow))
		return hit, nil
	})
}

// RunFig13 reproduces Fig 13: the region-size trajectory for different
// settling-window sizes under soplex, each annotated (via the returned
// avg map) with the average cache hit rate — the paper's per-panel labels.
// Parallelized like RunFig12, sharing sc.Seed across jobs.
func RunFig13(sc Scale) ([]Series, map[string]float64, error) {
	windows := scaledWindows(sc)
	// Exported fields: job results round-trip through the gob-encoded
	// result cache (internal/exec).
	type point struct {
		Size   Series
		AvgHit float64
	}
	var onJob func(i int, p point)
	if sc.SeriesDone != nil {
		onJob = func(_ int, p point) { sc.SeriesDone("fig13", p.Size) }
	}
	res, err := runJobsStream(sc, "fig13", false, nil, len(windows), onJob, func(i int, _ uint64) (point, error) {
		ssw := windows[i]
		_, size, avgHit, err := runTrace(sc, "soplex", sc.Requests/8, ssw)
		if err != nil {
			return point{}, err
		}
		size.Label = fmt.Sprintf("SSW=2^%d", log2u(ssw))
		return point{size, avgHit}, nil
	})
	var out []Series
	avg := make(map[string]float64)
	for _, p := range res {
		out = append(out, p.Size)
		avg[p.Size.Label] = p.AvgHit
	}
	return out, avg, err
}

// scaledWindows returns four window sizes spanning a 64x range scaled to
// the run length, mirroring the paper's 2^20/2^22/2^24/2^26 sweep against
// 7e8 requests.
func scaledWindows(sc Scale) []uint64 {
	base := sc.Requests / 512
	if base < 1024 {
		base = 1024
	}
	return []uint64{base, base * 4, base * 16, base * 64}
}

// checkEvery scales the hit-rate sampling interval to the run length (the
// paper samples every 100k requests against 7e8-request runs).
func checkEvery(sc Scale) uint64 {
	c := sc.Requests / 1024
	if c < 1024 {
		c = 1024
	}
	return c
}

func log2u(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Experiment registrations for the adaptive-behavior figures. These are
// fixed-length trace runs the intra-run sharder never touches, so they
// are not Sharded: their cache keys are the same at every -shards value.
func init() {
	Register(Experiment{
		Name:        "fig12",
		Description: "hit rate vs runtime for observation-window sizes",
		Figure:      "Fig 12",
		Order:       120, InAll: true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs("fig12", len(scaledWindows(sc)))
		},
		Run: func(sc Scale) (Result, error) {
			s, err := RunFig12(sc)
			return Result{s}, err
		},
		Render: renderSeries("fig12",
			"Fig 12: CMT hit rate (%) vs runtime for observation-window sizes (soplex)",
			"requests", false),
	})
	Register(Experiment{
		Name:        "fig13",
		Description: "region size vs runtime for settling-window sizes",
		Figure:      "Fig 13",
		Order:       130, InAll: true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs("fig13", len(scaledWindows(sc)))
		},
		Run: func(sc Scale) (Result, error) {
			series, avg, err := RunFig13(sc)
			return Result{fig13Result{Series: series, Avg: avg}}, err
		},
		Render: renderFig13,
	})
	Register(Experiment{
		Name:        "fig14",
		Description: "NWL-4 / NWL-64 / SAWL hit rates (bzip2, cactusADM, gcc)",
		Figure:      "Fig 14",
		Order:       140, InAll: true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs("fig14", 3*len(fig14Benches)) // NWL-4, NWL-64, SAWL per bench
		},
		Run: func(sc Scale) (Result, error) {
			res, err := RunFig14(sc)
			return Result{res}, err
		},
		Render: renderFig14,
	})
}

// fig13Result is the fig13 experiment's payload: the region-size
// trajectories plus the per-window average hit rates (the paper's panel
// labels).
type fig13Result struct {
	Series []Series
	Avg    map[string]float64
}

// renderFig13 renders the trajectories and a companion average-hit-rate
// table (one row per settling window).
func renderFig13(r Result) ([]Table, []SVG) {
	res, _ := r.Value.(fig13Result)
	g := SVG{Name: "fig13",
		Title: "Fig 13: region size (lines) vs runtime for settling-window sizes (soplex)",
		XName: "requests", YName: "value", Series: res.Series}
	avg := Table{
		Title:   "Fig 13: average cache hit rate per settling window",
		Columns: []string{"window", "avg hit rate %"},
	}
	for _, s := range res.Series {
		avg.Rows = append(avg.Rows, []string{s.Label, fmt.Sprintf("%.1f", res.Avg[s.Label])})
	}
	return []Table{figTable(g, "%.2f"), avg}, []SVG{g}
}

// renderFig14 renders the per-benchmark panels: one summary table of
// average hit rates plus each benchmark's SAWL region-size trace.
func renderFig14(r Result) ([]Table, []SVG) {
	res, _ := r.Value.([]Fig14Result)
	summary := Table{
		Title:   "Fig 14: average CMT hit rate (%)",
		Columns: []string{"bench", "NWL-4", "NWL-64", "SAWL"},
	}
	tables := []Table{summary}
	var svgs []SVG
	for _, p := range res {
		tables[0].Rows = append(tables[0].Rows, []string{p.Bench,
			fmt.Sprintf("%.1f", p.AvgNWL4),
			fmt.Sprintf("%.1f", p.AvgNWL64),
			fmt.Sprintf("%.1f", p.AvgSAWL)})
		g := SVG{Name: "fig14-" + p.Bench,
			Title: fmt.Sprintf("Fig 14 (%s): SAWL region-size trace", p.Bench),
			XName: "requests", YName: "value", Series: []Series{p.RegionSize}}
		tables = append(tables, figTable(g, "%.1f"))
		svgs = append(svgs, g)
	}
	return tables, svgs
}

// fig14Benches are Fig 14's three representative benchmarks.
var fig14Benches = []string{"bzip2", "cactusADM", "gcc"}

// Fig14Result holds one benchmark's panel of Fig 14.
type Fig14Result struct {
	Bench      string
	RegionSize Series  // SAWL region-size trajectory
	HitRate    Series  // SAWL hit-rate trajectory
	AvgNWL4    float64 // average hit rate, NWL with 4-line granularity
	AvgNWL64   float64 // average hit rate, NWL with 64-line granularity
	AvgSAWL    float64
}

// RunFig14 reproduces Fig 14: for each of the three representative
// benchmarks (bzip2, cactusADM, gcc), the SAWL hit-rate and region-size
// trajectories plus the average hit rates of NWL-4, NWL-64 and SAWL.
//
// The three measurements per benchmark (NWL-4, NWL-64, SAWL) are
// independent fixed-length runs, so all nine fan out as one job list.
func RunFig14(sc Scale) ([]Fig14Result, error) {
	benches := fig14Benches
	// Per-bench job triplet: NWL-4 avg, NWL-64 avg, SAWL trace.
	const perBench = 3
	// Exported fields: results round-trip through the gob result cache.
	type measure struct {
		Avg       float64
		Hit, Size Series
	}
	res, err := runJobs(sc, "fig14", false, perBench*len(benches), func(i int, _ uint64) (measure, error) {
		bench := benches[i/perBench]
		switch i % perBench {
		case 0:
			avg, err := runNWLHitRate(sc, bench, 4)
			return measure{Avg: avg}, err
		case 1:
			avg, err := runNWLHitRate(sc, bench, 64)
			return measure{Avg: avg}, err
		default:
			hit, size, avg, err := runTrace(sc, bench, sc.Requests/128, sc.Requests/128)
			if err != nil {
				return measure{}, err
			}
			hit.Label = "SAWL " + bench
			size.Label = "SAWL " + bench
			return measure{Avg: avg, Hit: hit, Size: size}, nil
		}
	})
	var out []Fig14Result
	for bi, bench := range benches {
		if (bi+1)*perBench > len(res) {
			break // interrupted sweep: only complete benchmark panels
		}
		nwl4, nwl64, sawl := res[bi*perBench], res[bi*perBench+1], res[bi*perBench+2]
		out = append(out, Fig14Result{
			Bench:      bench,
			AvgNWL4:    nwl4.Avg,
			AvgNWL64:   nwl64.Avg,
			AvgSAWL:    sawl.Avg,
			HitRate:    sawl.Hit,
			RegionSize: sawl.Size,
		})
	}
	return out, err
}

// runNWLHitRate measures the average CMT hit rate of the fixed-granularity
// tiered scheme on a benchmark.
func runNWLHitRate(sc Scale, bench string, gran uint64) (float64, error) {
	sys, err := NewSystem(SystemConfig{
		Scheme:     NWL,
		Lines:      sc.traceLines(),
		SpareLines: 1,
		Endurance:  1 << 30,
		Period:     128,
		InitGran:   gran,
		CMTEntries: sc.CMTEntries,
		Seed:       sc.Seed,
	})
	if err != nil {
		return 0, err
	}
	stream, _, err := WorkloadSpec{Kind: WorkloadSPEC, Name: bench, Seed: sc.Seed}.Build(sc.traceLines())
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < sc.Requests; i++ {
		r := stream.Next()
		if r.Op == trace.Write {
			sys.Write(r.Addr)
		} else {
			sys.Read(r.Addr)
		}
	}
	return 100 * sys.Stats().CMTHitRate, nil
}
