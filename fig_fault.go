package nvmwear

import (
	"fmt"

	"nvmwear/internal/fault"
)

// This file implements the fault-injection sweep behind `wlsim fault`: how
// gracefully each scheme degrades as the device gets less reliable. It is
// not a figure from the paper — the paper assumes fault-free media — but
// exercises the recovery machinery (write retry, spare remap, ECC scrub,
// metadata rebuild) end to end under the same deterministic-parallel
// contract as the paper figures.

// faultResult is the fault experiment's payload: both series sets share
// the fault-rate X axis.
type faultResult struct {
	Life []Series // normalized lifetime, percent
	Loss []Series // uncorrectable read losses per 1M reads
}

func init() {
	Register(Experiment{
		Name:        "fault",
		Description: "fault-injection sweep: lifetime and data loss vs fault rate",
		Figure:      "Sec 4.6",
		Order:       210,
		Plan: func(sc Scale) []JobSpec {
			fig := fmt.Sprintf("fault:%v:%v", FaultSchemes, FaultRates)
			return planJobs(fig, len(FaultSchemes)*len(FaultRates))
		},
		Run: func(sc Scale) (Result, error) {
			life, loss, err := RunFault(sc)
			return Result{faultResult{Life: life, Loss: loss}}, err
		},
		Render: func(r Result) ([]Table, []SVG) {
			fr, _ := r.Value.(faultResult)
			// Linear X: the rate sweep starts at the fault-free control
			// point 0, which a log axis cannot place.
			gl := SVG{Name: "fault",
				Title:  "Fault sweep: normalized lifetime (%) vs injected fault rate, uniform 50% writes",
				XName:  "rate", YName: "value", Series: fr.Life,
			}
			gd := SVG{Name: "fault-loss",
				Title:  "Fault sweep: uncorrectable losses per 1M reads vs injected fault rate",
				XName:  "rate", YName: "value", Series: fr.Loss,
			}
			return []Table{figTable(gl, "%.2f"), figTable(gd, "%.2f")}, []SVG{gl, gd}
		},
	})
}

// FaultRates is the per-access fault-probability sweep the `fault`
// experiment evaluates. Rate 0 is the fault-free control point: it must
// reproduce the unfaulted simulation bit for bit (the injector performs no
// RNG draws when disabled).
var FaultRates = []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}

// FaultSchemes are the schemes the fault sweep compares: the non-tiered
// hybrid baseline plus both tiered schemes (whose NVM-resident metadata
// adds a failure surface the others do not have).
var FaultSchemes = []SchemeKind{PCMS, NWL, SAWL}

// RunFault sweeps fault rate x scheme under a uniform 50%-write workload
// until device failure. Each job's injected rate drives transient write
// faults and read disturbs directly, hard stuck-at faults at a tenth of the
// rate, and (tiered schemes only) metadata corruption at the full rate.
//
// Two series sets come back on the same X axis (fault rate): `life` is the
// normalized lifetime in percent, `loss` the uncorrectable read losses per
// million device reads. An interrupted sweep returns the completed points
// plus an error wrapping ErrInterrupted.
func RunFault(sc Scale) (life, loss []Series, err error) {
	schemes := FaultSchemes
	rates := FaultRates
	// Exported fields: results round-trip through the gob result cache.
	// The scheme and rate lists are sweep parameters outside Scale, so
	// they are folded into the cache identity.
	fig := fmt.Sprintf("fault:%v:%v", schemes, rates)
	type point struct {
		Life    float64
		LossPPM float64
	}
	res, err := runJobs(sc, fig, false, len(schemes)*len(rates), func(i int, seed uint64) (point, error) {
		scheme, rate := schemes[i/len(rates)], rates[i%len(rates)]
		sys, err := NewSystem(SystemConfig{
			Scheme: scheme, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: sc.AttackEndurance, Period: 8,
			RegionLines: 64, InitGran: 4, CMTEntries: sc.CMTEntries,
			Seed: seed,
			Fault: fault.Config{
				TransientWriteRate: rate,
				StuckAtRate:        rate / 10,
				ReadDisturbRate:    rate,
				MetadataRate:       rate,
			},
		})
		if err != nil {
			return point{}, err
		}
		r, err := sys.RunLifetime(WorkloadSpec{
			Kind: WorkloadUniform, WriteRatio: 0.5, Seed: seed,
		}, 0)
		if err != nil {
			return point{}, err
		}
		p := point{Life: 100 * r.Normalized}
		if r.Reads > 0 {
			p.LossPPM = float64(r.Uncorrectable) / float64(r.Reads) * 1e6
		}
		return p, nil
	})
	life = make([]Series, len(schemes))
	loss = make([]Series, len(schemes))
	for si, scheme := range schemes {
		life[si].Label = string(scheme)
		loss[si].Label = string(scheme)
	}
	for i, p := range res {
		si, ri := i/len(rates), i%len(rates)
		life[si].Append(rates[ri], p.Life)
		loss[si].Append(rates[ri], p.LossPPM)
	}
	return life, loss, err
}
