package nvmwear

import (
	"fmt"

	"nvmwear/internal/fault"
)

// This file implements the fault-injection sweep behind `wlsim fault`: how
// gracefully each scheme degrades as the device gets less reliable. It is
// not a figure from the paper — the paper assumes fault-free media — but
// exercises the recovery machinery (write retry, spare remap, ECC scrub,
// metadata rebuild) end to end under the same deterministic-parallel
// contract as the paper figures.

// faultResult is the fault experiment's payload: both series sets share
// the fault-rate X axis; Recovery carries the per-point fault/recovery
// counters (a completed prefix when the sweep was interrupted).
type faultResult struct {
	Life     []Series        // normalized lifetime, percent
	Loss     []Series        // uncorrectable read losses per 1M reads
	Recovery []FaultRecovery // one row per completed (scheme, rate) job
}

// FaultRecovery is one sweep point's fault and recovery accounting — the
// per-run counters internal/nvm and internal/fault maintain, surfaced in
// the fault table instead of staying internal-only.
type FaultRecovery struct {
	Scheme        string
	Rate          float64
	Transients    uint64 // transient write faults observed
	Retries       uint64 // extra programming pulses issued
	SpareRemaps   uint64 // fault-forced remaps (retry escalations + stuck-at)
	ECCScrubs     uint64 // lines scrubbed to a spare at the ECC limit
	MetaRebuilds  uint64 // mapping entries rebuilt after metadata corruption
	Uncorrectable uint64 // reads lost beyond the ECC budget
}

func init() {
	Register(Experiment{
		Name:        "fault",
		Description: "fault-injection sweep: lifetime, data loss and recovery counters vs fault rate",
		Figure:      "Sec 4.6",
		Order:       210,
		Sharded:     true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs(faultFig(), len(FaultSchemes)*len(FaultRates))
		},
		Run: func(sc Scale) (Result, error) {
			life, loss, rec, err := RunFault(sc)
			return Result{faultResult{Life: life, Loss: loss, Recovery: rec}}, err
		},
		Render: func(r Result) ([]Table, []SVG) {
			fr, _ := r.Value.(faultResult)
			// Linear X: the rate sweep starts at the fault-free control
			// point 0, which a log axis cannot place.
			gl := SVG{Name: "fault",
				Title:  "Fault sweep: normalized lifetime (%) vs injected fault rate, uniform 50% writes",
				XName:  "rate", YName: "value", Series: fr.Life,
			}
			gd := SVG{Name: "fault-loss",
				Title:  "Fault sweep: uncorrectable losses per 1M reads vs injected fault rate",
				XName:  "rate", YName: "value", Series: fr.Loss,
			}
			rec := Table{
				Title: "Fault recovery counters",
				Columns: []string{"scheme", "rate", "transients", "retries",
					"spare remaps", "ECC scrubs", "meta rebuilds", "uncorrectable"},
			}
			for _, p := range fr.Recovery {
				rec.Rows = append(rec.Rows, []string{
					p.Scheme, trimFloat(p.Rate),
					fmt.Sprintf("%d", p.Transients),
					fmt.Sprintf("%d", p.Retries),
					fmt.Sprintf("%d", p.SpareRemaps),
					fmt.Sprintf("%d", p.ECCScrubs),
					fmt.Sprintf("%d", p.MetaRebuilds),
					fmt.Sprintf("%d", p.Uncorrectable),
				})
			}
			return []Table{figTable(gl, "%.2f"), figTable(gd, "%.2f"), rec}, []SVG{gl, gd}
		},
	})
}

// FaultRates is the per-access fault-probability sweep the `fault`
// experiment evaluates. Rate 0 is the fault-free control point: it must
// reproduce the unfaulted simulation bit for bit (the injector performs no
// RNG draws when disabled).
var FaultRates = []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}

// FaultSchemes are the schemes the fault sweep compares: the full
// registered catalogue, so every scheme's recovery machinery — including
// the NVM-resident metadata of the tiered schemes and the decoder-folded
// spare remaps of wolfram — degrades under the same injected rates.
var FaultSchemes = Schemes()

// faultFig is the sweep's cache identity. The "v2" marks the result type
// growing the recovery counters: the lifetime numbers are unchanged, but
// v1 cache entries would gob-decode with all counters zero, so they get
// their own namespace and age out instead.
func faultFig() string {
	return fmt.Sprintf("faultv2:%v:%v", FaultSchemes, FaultRates)
}

// RunFault sweeps fault rate x scheme under a uniform 50%-write workload
// until device failure. Each job's injected rate drives transient write
// faults and read disturbs directly, hard stuck-at faults at a tenth of the
// rate, and (tiered schemes only) metadata corruption at the full rate.
//
// Two series sets come back on the same X axis (fault rate): `life` is the
// normalized lifetime in percent, `loss` the uncorrectable read losses per
// million device reads. rec carries each completed point's fault/recovery
// counters in job order. An interrupted sweep returns the completed points
// plus an error wrapping ErrInterrupted.
func RunFault(sc Scale) (life, loss []Series, rec []FaultRecovery, err error) {
	schemes := FaultSchemes
	rates := FaultRates
	// Exported fields: results round-trip through the gob result cache.
	// The scheme and rate lists are sweep parameters outside Scale, so
	// they are folded into the cache identity.
	fig := faultFig()
	type point struct {
		Life     float64
		LossPPM  float64
		Recovery FaultRecovery
	}
	sh := newSharder(sc)
	res, err := runJobs(sc, fig, true, len(schemes)*len(rates), func(i int, seed uint64) (point, error) {
		scheme, rate := schemes[i/len(rates)], rates[i%len(rates)]
		cfg := SystemConfig{
			Scheme: scheme, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: sc.AttackEndurance, Period: 8,
			RegionLines: 64, InitGran: 4, CMTEntries: sc.CMTEntries,
			Seed: seed,
			Fault: fault.Config{
				TransientWriteRate: rate,
				StuckAtRate:        rate / 10,
				ReadDisturbRate:    rate,
				MetadataRate:       rate,
				// The sharder derives per-bank fault substreams from
				// Fault.Seed; anchor it to the job seed explicitly (serial
				// runs default it to Seed, see SystemConfig.Fault).
				Seed: seed,
			},
		}
		r, err := sh.run(cfg, WorkloadSpec{
			Kind: WorkloadUniform, WriteRatio: 0.5, Seed: seed,
		}, 0)
		if err != nil {
			return point{}, err
		}
		ds, ws := r.DeviceStats, r.SchemeStats
		p := point{Life: 100 * r.Normalized, Recovery: FaultRecovery{
			Scheme:        string(scheme),
			Rate:          rate,
			Transients:    ds.TransientWriteFaults,
			Retries:       ds.WriteRetries,
			SpareRemaps:   ds.RetryEscalations + ds.StuckLineFaults,
			ECCScrubs:     ds.ECCRemaps,
			MetaRebuilds:  ws.MetaRebuilds,
			Uncorrectable: ds.Uncorrectable,
		}}
		if r.Reads > 0 {
			p.LossPPM = float64(r.Uncorrectable) / float64(r.Reads) * 1e6
		}
		return p, nil
	})
	life = make([]Series, len(schemes))
	loss = make([]Series, len(schemes))
	for si, scheme := range schemes {
		life[si].Label = string(scheme)
		loss[si].Label = string(scheme)
	}
	for i, p := range res {
		si, ri := i/len(rates), i%len(rates)
		life[si].Append(rates[ri], p.Life)
		loss[si].Append(rates[ri], p.LossPPM)
		rec = append(rec, p.Recovery)
	}
	return life, loss, rec, err
}
