package nvmwear

import (
	"nvmwear/internal/metrics"
	"nvmwear/internal/sim"
	"nvmwear/internal/workload"
)

// instrFor returns the benchmark's compute intensity.
func instrFor(name string) float64 {
	if v, ok := sim.InstrPerMemReq[name]; ok {
		return v
	}
	return 30
}

// This file implements the performance experiment of Sec 4.4 (Fig 17):
// IPC degradation of the wear-leveling schemes relative to a baseline
// without wear leveling, across the 14 SPEC-like applications.

func init() {
	Register(Experiment{
		Name:        "fig17",
		Description: "IPC degradation vs no-wear-leveling baseline",
		Figure:      "Fig 17",
		Order:       170, InAll: true,
		Plan: func(sc Scale) []JobSpec {
			// One baseline row plus one row per scheme, benchmark-major.
			return planJobs("fig17", (1+len(Fig17Schemes))*len(workload.Names()))
		},
		Run: func(sc Scale) (Result, error) {
			s, err := RunFig17(sc)
			return Result{s}, err
		},
		Render: func(r Result) ([]Table, []SVG) {
			series, _ := r.Value.([]Series)
			g := SVG{Name: "fig17",
				Title:  "Fig 17: IPC degradation (%) vs baseline without wear leveling",
				XName:  "bench#",
				YName:  "value",
				Series: series,
			}
			t := figTable(g, "%.1f")
			relabelBenchRows(&t)
			return []Table{t}, []SVG{g}
		},
	})
}

// Fig17Schemes are the compared configurations: BWL is the basic non-tiered
// hybrid (PCM-S with its whole table on chip at 4-line granularity), NWL-4
// the naive tiered scheme, and SAWL the adaptive one.
var Fig17Schemes = []SchemeKind{PCMS, NWL, SAWL}

// Fig17Labels maps the scheme kinds to the paper's bar labels.
func Fig17Labels(k SchemeKind) string {
	switch k {
	case PCMS:
		return "BWL"
	case NWL:
		return "NWL-4"
	default:
		return "SAWL"
	}
}

// RunFig17 reproduces Fig 17: per-benchmark IPC degradation (percent,
// relative to the no-wear-leveling baseline) for BWL, NWL-4 and SAWL, with
// the harmonic-mean summary appended as the final X point.
//
// All (1 + len(Fig17Schemes)) × 14 timing runs fan out as one flat job
// list: the baseline runs occupy indices 0..13, scheme runs follow
// scheme-major. Every run keeps sc.Seed so a scheme and its baseline
// measure the identical request stream — the degradation comparison the
// figure is about.
func RunFig17(sc Scale) ([]Series, error) {
	names := workload.Names()
	schemes := Fig17Schemes
	// Benchmark footprint drives per-job wall time (the paper's ~10x
	// spread), so it is the longest-job-first hint; the layout is
	// benchmark-major within each scheme row, which metrics.CycleCost
	// assumes.
	results, err := runJobsCost(sc, "fig17", false, metrics.CycleCost(workload.Footprints(names)), (1+len(schemes))*len(names),
		func(i int, _ uint64) (TimingResult, error) {
			scheme, name := Baseline, names[i%len(names)]
			if i >= len(names) {
				scheme = schemes[i/len(names)-1]
			}
			return runTiming(sc, scheme, name)
		})
	if len(results) < len(names) {
		// Interrupted before the baseline row finished: no degradation can
		// be computed at all.
		return nil, err
	}
	baseline := results[:len(names)]

	out := make([]Series, len(schemes))
	for si, scheme := range schemes {
		out[si].Label = Fig17Labels(scheme)
		if (2+si)*len(names) > len(results) {
			continue // interrupted sweep: this scheme's row is incomplete
		}
		rows := results[(1+si)*len(names) : (2+si)*len(names)]
		var ipcs, baseIPCs []float64
		for bi, res := range rows {
			deg := 100 * res.Degradation(baseline[bi])
			if deg < 0 {
				deg = 0
			}
			out[si].Append(float64(bi), deg)
			ipcs = append(ipcs, res.IPC)
			baseIPCs = append(baseIPCs, baseline[bi].IPC)
		}
		// The paper reports the harmonic-mean IPC comparison.
		hm := metrics.HarmonicMean(ipcs)
		hmBase := metrics.HarmonicMean(baseIPCs)
		deg := 0.0
		if hmBase > 0 {
			deg = 100 * (1 - hm/hmBase)
			if deg < 0 {
				deg = 0
			}
		}
		out[si].Append(float64(len(names)), deg)
	}
	return out, err
}

// runTiming executes one timing simulation of `sc.Requests/4` memory
// requests for the scheme/benchmark pair.
func runTiming(sc Scale, scheme SchemeKind, bench string) (TimingResult, error) {
	requests := sc.Requests / 4
	// A quarter of the hit-rate experiments' trace space: the IPC runs must
	// reach adaptation steady state within the warmup budget (every region
	// merges at most log2(MaxGran/P) times, so convergence needs warmup
	// proportional to the footprint's region count).
	cfg := SystemConfig{
		Scheme:     scheme,
		Lines:      sc.traceLines() / 4,
		SpareLines: 1,
		Endurance:  1 << 30,
		Period:     128,
		CMTEntries: sc.CMTEntries,
		Seed:       sc.Seed,
		// Adaptation windows scaled to the run length (the paper's 2^22
		// against 7e8-request runs).
		ObservationWindow: requests / 256,
		SettlingWindow:    requests / 256,
	}
	if scheme == PCMS || scheme == NWL {
		cfg.RegionLines = 4
		cfg.InitGran = 4
	}
	if scheme == PCMS {
		// The non-tiered BWL needs a short swapping period to reach a
		// lifetime comparable to the tiered schemes (Sec 4.3 evaluates it
		// at periods 8-64); 16 is the midpoint used here.
		cfg.Period = 16
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return TimingResult{}, err
	}
	stream, name, err := WorkloadSpec{Kind: WorkloadSPEC, Name: bench, Seed: sc.Seed}.Build(sys.Lines())
	if err != nil {
		return TimingResult{}, err
	}
	// Warm up untimed (standard simulation methodology): caches fill and
	// SAWL's granularity adaptation converges before measurement begins.
	for i := uint64(0); i < sc.Requests; i++ {
		r := stream.Next()
		sys.lv.Access(r.Op, r.Addr)
	}
	return sim.Run(sys.lv, stream, sim.Config{
		Requests:           requests,
		InstrPerMemReq:     instrFor(name),
		GlobalSwapBlocking: scheme == PCMS,
	}), nil
}
