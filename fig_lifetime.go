package nvmwear

import (
	"fmt"

	"nvmwear/internal/analysis"
	"nvmwear/internal/lifetime"
	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/wl"
	"nvmwear/internal/wl/mwsr"
	"nvmwear/internal/wl/pcms"
	"nvmwear/internal/wl/secref"
	"nvmwear/internal/workload"
)

// This file implements the lifetime experiments: Figs 3, 4, 5, 15 and 16.
// Every runner returns Series of normalized lifetime (percent of ideal).

// bpaLifetime runs one BPA lifetime measurement on a fresh device. The
// attacker writes each randomly selected address "precisely" (Sec 2.2):
// `repeats` is tuned to the scheme's remap trigger, so every burst deposits
// one full swap period of wear on a single physical line before the scheme
// can move it — the worst case the paper evaluates.
func bpaLifetime(build func(dev *nvm.Device) wl.Leveler, lines, spares uint64, endurance uint32, repeats, seed uint64) float64 {
	dev := nvm.New(nvm.Config{Lines: lines, SpareLines: spares, Endurance: endurance})
	lv := build(dev)
	bpa := workload.NewBPA(seed, lv.Lines(), repeats)
	res := lifetime.Run(dev, lv, bpa, lifetime.Options{Workload: "BPA"})
	return 100 * res.Normalized
}

// regionSweep returns the paper-shaped region-count sweep for a device:
// seven points doubling from lines>>10 to lines>>4 (the paper sweeps
// 16K..2M regions — region sizes 16K down to 128 lines — on a 256M-line
// device; the scaled sweep covers region sizes 1024 down to 16 lines so
// the rising/falling shape appears within the scaled endurance).
func regionSweep(lines uint64) []uint64 {
	var out []uint64
	for shift := uint(10); ; shift-- {
		r := lines >> shift
		if r >= 2 {
			out = append(out, r)
		}
		if shift == 4 {
			break
		}
	}
	return out
}

// RunFig3 reproduces Fig 3: normalized lifetime of TLSR under BPA as a
// function of the number of regions, for inner swapping periods 8-64 and
// two endurance levels (outer period fixed at 32, as in Sec 2.2).
func RunFig3(sc Scale) []Series {
	var out []Series
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, period := range []uint64{8, 16, 32, 64} {
			s := Series{Label: fmt.Sprintf("Wmax=%d ψ=%d", endurance, period)}
			for _, regions := range regionSweep(sc.AttackLines) {
				regions := regions
				repeats := period * (sc.AttackLines / regions) / 2
				if repeats == 0 {
					repeats = 1
				}
				norm := bpaLifetime(func(dev *nvm.Device) wl.Leveler {
					return secref.New(dev, secref.Config{
						Lines: sc.AttackLines, Regions: regions,
						InnerPeriod: period, OuterPeriod: 32, Seed: sc.Seed,
					})
				}, sc.AttackLines, sc.attackSpares(), endurance, repeats, sc.Seed)
				s.Append(float64(regions), norm)
			}
			out = append(out, s)
		}
	}
	return out
}

// RunFig4 reproduces Fig 4: normalized lifetime of the hybrid schemes
// (PCM-S and MWSR) under BPA versus the number of regions, for swapping
// periods 8-64 and two endurance levels.
func RunFig4(sc Scale) []Series {
	var out []Series
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, scheme := range []SchemeKind{PCMS, MWSR} {
			for _, period := range []uint64{8, 16, 32, 64} {
				s := Series{Label: fmt.Sprintf("%s Wmax=%d ψ=%d", scheme, endurance, period)}
				for _, regions := range regionSweep(sc.AttackLines) {
					q := sc.AttackLines / regions
					norm := bpaLifetime(func(dev *nvm.Device) wl.Leveler {
						if scheme == PCMS {
							return pcms.New(dev, pcms.Config{
								Lines: sc.AttackLines, RegionLines: q, Period: period, Seed: sc.Seed,
							})
						}
						return mwsr.New(dev, mwsr.Config{
							Lines: sc.AttackLines, RegionLines: q, Period: period, Seed: sc.Seed,
						})
					}, sc.AttackLines, sc.attackSpares(), endurance, period*q, sc.Seed)
					s.Append(float64(regions), norm)
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// RunFig5 reproduces Fig 5: normalized lifetime of PCM-S and MWSR under
// BPA as a function of the on-chip cache budget. A budget of B bytes
// limits the number of regions each scheme can track (MWSR entries are
// about twice the size of PCM-S entries, which is why it does worse at
// equal budget). Budgets are scaled: the paper sweeps 64 KB-4 MB on 64 GB.
func RunFig5(sc Scale) []Series {
	budgets := []uint64{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15}
	var out []Series
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, scheme := range []SchemeKind{PCMS, MWSR} {
			s := Series{Label: fmt.Sprintf("%s Wmax=%d", scheme, endurance)}
			for _, budget := range budgets {
				regions := regionsForBudget(scheme, budget, sc.AttackLines)
				q := sc.AttackLines / regions
				norm := bpaLifetime(func(dev *nvm.Device) wl.Leveler {
					if scheme == PCMS {
						return pcms.New(dev, pcms.Config{
							Lines: sc.AttackLines, RegionLines: q, Period: 32, Seed: sc.Seed,
						})
					}
					return mwsr.New(dev, mwsr.Config{
						Lines: sc.AttackLines, RegionLines: q, Period: 32, Seed: sc.Seed,
					})
				}, sc.AttackLines, sc.attackSpares(), endurance, 32*q, sc.Seed)
				s.Append(float64(budget)/1024, norm) // x in KB
			}
			out = append(out, s)
		}
	}
	return out
}

// regionsForBudget returns the largest power-of-two region count whose
// mapping table fits in `budget` bytes of SRAM for the scheme.
func regionsForBudget(scheme SchemeKind, budget uint64, lines uint64) uint64 {
	best := uint64(2)
	for r := uint64(2); r <= lines/4; r <<= 1 {
		var entry uint64
		if scheme == PCMS {
			entry = pcms.EntryBits(r, lines/r) + 24
		} else {
			entry = mwsr.EntryBits(r, lines/r) + 24
		}
		if r*entry <= budget*8 {
			best = r
		}
	}
	return best
}

// RunFig15 reproduces Fig 15: normalized BPA lifetime of PCM-S, MWSR and
// SAWL versus swapping period, for two endurance levels. PCM-S and MWSR
// must keep their whole table on chip, which caps their region count (the
// paper's Sec 2.2 item 4): scaled here to 64-line regions for PCM-S and —
// entries twice the size — 128-line regions for MWSR. SAWL stores the full
// table in NVM and wear-levels at the initial 4-line granularity with no
// such bound, which is why it wins by the paper's 25-51% (50-78% at low
// endurance).
func RunFig15(sc Scale) []Series {
	var out []Series
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, scheme := range []SchemeKind{PCMS, MWSR, SAWL} {
			s := Series{Label: fmt.Sprintf("%s Wmax=%d", scheme, endurance)}
			for _, period := range []uint64{8, 16, 32, 64} {
				var norm float64
				if scheme == SAWL {
					sys, err := NewSystem(SystemConfig{
						Scheme: SAWL, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
						Endurance: endurance, Period: period,
						CMTEntries: sc.CMTEntries, Seed: sc.Seed,
					})
					if err != nil {
						panic(err)
					}
					res, err := sys.RunLifetime(WorkloadSpec{
						Kind: WorkloadBPA, Seed: sc.Seed, Repeats: period * 4,
					}, 0)
					if err != nil {
						panic(err)
					}
					norm = 100 * res.Normalized
				} else {
					// On-chip bound, scaled: PCM-S affords 16-line regions,
					// MWSR (double-size entries) 32-line regions.
					q := uint64(16)
					if scheme == MWSR {
						q = 32
					}
					norm = bpaLifetime(func(dev *nvm.Device) wl.Leveler {
						if scheme == PCMS {
							return pcms.New(dev, pcms.Config{
								Lines: sc.AttackLines, RegionLines: q, Period: period, Seed: sc.Seed,
							})
						}
						return mwsr.New(dev, mwsr.Config{
							Lines: sc.AttackLines, RegionLines: q, Period: period, Seed: sc.Seed,
						})
					}, sc.AttackLines, sc.attackSpares(), endurance, period*q, sc.Seed)
				}
				s.Append(float64(period), norm)
			}
			out = append(out, s)
		}
	}
	return out
}

// RunFig16 reproduces Fig 16: normalized lifetime under the 14 SPEC-like
// applications for Baseline, RBSG, TLSR and SAWL, in two region
// configurations — (a) few large regions, (b) many small regions. The
// final point of each series is the harmonic mean, the paper's "Hmean"
// bar. X values index the benchmark in SpecBenchmarks() order (the Hmean
// point is appended at index len(benchmarks)).
func RunFig16(sc Scale, coarse bool) []Series {
	// (a) coarse: 64-line regions (the paper's 4096-region config, where
	// RBSG/TLSR regions are large); (b) fine: 8-line regions (the paper's
	// 1M-region config).
	var regions uint64
	if coarse {
		regions = sc.SpecLines / 64
	} else {
		regions = sc.SpecLines / 8
	}
	if regions < 4 {
		regions = 4
	}
	gran := sc.SpecLines / regions

	names := workload.Names()
	schemes := []SchemeKind{Baseline, RBSG, TLSR, SAWL}
	out := make([]Series, len(schemes))
	endurance := sc.SpecEndurance

	for si, scheme := range schemes {
		out[si].Label = string(scheme)
		var values []float64
		for bi, name := range names {
			cfg := SystemConfig{
				Scheme: scheme, Lines: sc.SpecLines, SpareLines: sc.specSpares(),
				Endurance: endurance, Period: sc.SpecPeriod, Seed: sc.Seed,
				Regions: regions, InitGran: gran, CMTEntries: sc.CMTEntries,
			}
			if scheme == SAWL {
				// Sec 4.1: SAWL's initial wear-leveling granularity is a few
				// memory lines regardless of the RBSG/TLSR region config;
				// the region sweep only affects the algebraic schemes.
				cfg.InitGran = 8
			}
			sys, err := NewSystem(cfg)
			if err != nil {
				panic(err)
			}
			res, err := sys.RunLifetime(WorkloadSpec{
				Kind: WorkloadSPEC, Name: name, Seed: sc.Seed,
			}, 0)
			if err != nil {
				panic(err)
			}
			v := 100 * res.Normalized
			values = append(values, v)
			out[si].Append(float64(bi), v)
		}
		out[si].Append(float64(len(names)), 100*hmeanPct(values))
	}
	return out
}

// hmeanPct computes the harmonic mean of percent values, returned as a
// fraction of 100.
func hmeanPct(vals []float64) float64 {
	return metrics.HarmonicMean(vals) / 100
}

// RunAttackScore measures one scheme's normalized lifetime under RAA and a
// trigger-aware BPA at the attack scale, returning the Sec 2.2-style
// resilience verdict.
func RunAttackScore(sc Scale, kind SchemeKind) (analysis.AttackScore, error) {
	run := func(w WorkloadSpec) (float64, error) {
		sys, err := NewSystem(SystemConfig{
			Scheme: kind, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: sc.AttackEndurance, Period: 8,
			RegionLines: 64, Regions: 16, InitGran: 4,
			CMTEntries: sc.CMTEntries, Seed: sc.Seed,
		})
		if err != nil {
			return 0, err
		}
		res, err := sys.RunLifetime(w, 0)
		if err != nil {
			return 0, err
		}
		return res.Normalized, nil
	}
	raa, err := run(WorkloadSpec{Kind: WorkloadRAA, Target: 99})
	if err != nil {
		return analysis.AttackScore{}, err
	}
	repeats := uint64(8 * 64)
	if kind == SAWL || kind == NWL {
		repeats = 8 * 4
	}
	bpa, err := run(WorkloadSpec{Kind: WorkloadBPA, Seed: sc.Seed, Repeats: repeats})
	if err != nil {
		return analysis.AttackScore{}, err
	}
	return analysis.AttackScore{RAANormalized: raa, BPANormalized: bpa}, nil
}

// RunSweep measures BPA lifetime for one scheme across region sizes and
// swapping periods — the generic parameter exploration behind cmd/wlsim's
// `sweep` experiment. Each series is one period; X is the region size in
// lines.
func RunSweep(sc Scale, kind SchemeKind, regionLines, periods []uint64) ([]Series, error) {
	out := make([]Series, 0, len(periods))
	for _, period := range periods {
		s := Series{Label: fmt.Sprintf("%s ψ=%d", kind, period)}
		for _, q := range regionLines {
			sys, err := NewSystem(SystemConfig{
				Scheme: kind, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
				Endurance: sc.AttackEndurance, Period: period,
				RegionLines: q, Regions: sc.AttackLines / q, InitGran: min64(q, 64),
				CMTEntries: sc.CMTEntries, Seed: sc.Seed,
			})
			if err != nil {
				return nil, err
			}
			res, err := sys.RunLifetime(WorkloadSpec{
				Kind: WorkloadBPA, Seed: sc.Seed, Repeats: period * q,
			}, 0)
			if err != nil {
				return nil, err
			}
			s.Append(float64(q), 100*res.Normalized)
		}
		out = append(out, s)
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
