package nvmwear

import (
	"fmt"

	"nvmwear/internal/analysis"
	"nvmwear/internal/exec"
	"nvmwear/internal/metrics"
	"nvmwear/internal/wl/mwsr"
	"nvmwear/internal/wl/pcms"
	"nvmwear/internal/workload"
)

// This file implements the lifetime experiments: Figs 3, 4, 5, 15 and 16.
// Every runner returns Series of normalized lifetime (percent of ideal).
//
// Each figure is a sweep of independent lifetime measurements (one fresh
// device + leveler per point), so the runners build a flat job list and
// fan it out on the scale's worker pool (internal/exec). Points land in
// their series in submission order, which keeps the emitted tables
// byte-identical whatever Scale.Parallelism is. Each measurement goes
// through the sweep's sharder, so under Scale.Shards a single run further
// decomposes across the bank geometry where the scheme allows it.

// bpaAttack is the BPA workload of the attack figures. The attacker writes
// each randomly selected address "precisely" (Sec 2.2): `repeats` is tuned
// to the scheme's remap trigger, so every burst deposits one full swap
// period of wear on a single physical line before the scheme can move it —
// the worst case the paper evaluates.
func bpaAttack(seed, repeats uint64) WorkloadSpec {
	if repeats == 0 {
		repeats = 1
	}
	return WorkloadSpec{Kind: WorkloadBPA, Seed: seed, Repeats: repeats}
}

// regionSweep returns the paper-shaped region-count sweep for a device:
// seven points doubling from lines>>10 to lines>>4 (the paper sweeps
// 16K..2M regions — region sizes 16K down to 128 lines — on a 256M-line
// device; the scaled sweep covers region sizes 1024 down to 16 lines so
// the rising/falling shape appears within the scaled endurance).
func regionSweep(lines uint64) []uint64 {
	var out []uint64
	for shift := uint(10); ; shift-- {
		r := lines >> shift
		if r >= 2 {
			out = append(out, r)
		}
		if shift == 4 {
			break
		}
	}
	return out
}

// sweepPoint ties one sweep job to its destination: series index and X
// value. appendPoints replays the pool's ordered results into the series,
// reproducing exactly what the serial nested loops appended. ys may be a
// completed prefix of pts (interrupted sweep); the remaining points are
// simply absent from the partial table.
type sweepPoint struct {
	series int
	x      float64
}

func appendPoints(out []Series, pts []sweepPoint, ys []float64) {
	for i, y := range ys {
		p := pts[i]
		out[p.series].Append(p.x, y)
	}
}

// streamSweep wires a sweepPoint job list into the scale's series streamer:
// it declares every series (labels must already be set on out) with its
// point count and returns the per-job completion hook, or nil when the
// scale has no SeriesDone sink.
func streamSweep(st *seriesStreamer, out []Series, pts []sweepPoint) func(i int, y float64) {
	if st == nil {
		return nil
	}
	counts := make([]int, len(out))
	pidx := make([]int, len(pts))
	for i, p := range pts {
		pidx[i] = counts[p.series]
		counts[p.series]++
	}
	for si := range out {
		st.series(out[si].Label, counts[si])
	}
	return func(i int, y float64) {
		st.point(pts[i].series, pidx[i], pts[i].x, y)
	}
}

// RunFig3 reproduces Fig 3: normalized lifetime of TLSR under BPA as a
// function of the number of regions, for inner swapping periods 8-64 and
// two endurance levels (outer period fixed at 32, as in Sec 2.2).
func RunFig3(sc Scale) ([]Series, error) {
	type job struct {
		endurance uint32
		period    uint64
		regions   uint64
	}
	var out []Series
	var jobs []job
	var pts []sweepPoint
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, period := range []uint64{8, 16, 32, 64} {
			si := len(out)
			out = append(out, Series{Label: fmt.Sprintf("Wmax=%d ψ=%d", endurance, period)})
			for _, regions := range regionSweep(sc.AttackLines) {
				jobs = append(jobs, job{endurance, period, regions})
				pts = append(pts, sweepPoint{si, float64(regions)})
			}
		}
	}
	sh := newSharder(sc)
	onJob := streamSweep(newSeriesStreamer(sc, "fig3"), out, pts)
	norms, err := runJobsStream(sc, "fig3", true, nil, len(jobs), onJob, func(i int, seed uint64) (float64, error) {
		j := jobs[i]
		repeats := j.period * (sc.AttackLines / j.regions) / 2
		res, err := sh.run(SystemConfig{
			Scheme: TLSR, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: j.endurance, Regions: j.regions,
			Period: j.period, OuterPeriod: 32, Seed: seed,
		}, bpaAttack(seed, repeats), 0)
		if err != nil {
			return 0, err
		}
		return 100 * res.Normalized, nil
	})
	appendPoints(out, pts, norms)
	return out, err
}

// RunFig4 reproduces Fig 4: normalized lifetime of the hybrid schemes
// (PCM-S and MWSR) under BPA versus the number of regions, for swapping
// periods 8-64 and two endurance levels.
func RunFig4(sc Scale) ([]Series, error) {
	type job struct {
		endurance uint32
		scheme    SchemeKind
		period    uint64
		regions   uint64
	}
	var out []Series
	var jobs []job
	var pts []sweepPoint
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, scheme := range []SchemeKind{PCMS, MWSR} {
			for _, period := range []uint64{8, 16, 32, 64} {
				si := len(out)
				out = append(out, Series{Label: fmt.Sprintf("%s Wmax=%d ψ=%d", scheme, endurance, period)})
				for _, regions := range regionSweep(sc.AttackLines) {
					jobs = append(jobs, job{endurance, scheme, period, regions})
					pts = append(pts, sweepPoint{si, float64(regions)})
				}
			}
		}
	}
	sh := newSharder(sc)
	onJob := streamSweep(newSeriesStreamer(sc, "fig4"), out, pts)
	norms, err := runJobsStream(sc, "fig4", true, nil, len(jobs), onJob, func(i int, seed uint64) (float64, error) {
		j := jobs[i]
		q := sc.AttackLines / j.regions
		res, err := sh.run(SystemConfig{
			Scheme: j.scheme, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: j.endurance, RegionLines: q, Period: j.period, Seed: seed,
		}, bpaAttack(seed, j.period*q), 0)
		if err != nil {
			return 0, err
		}
		return 100 * res.Normalized, nil
	})
	appendPoints(out, pts, norms)
	return out, err
}

// RunFig5 reproduces Fig 5: normalized lifetime of PCM-S and MWSR under
// BPA as a function of the on-chip cache budget. A budget of B bytes
// limits the number of regions each scheme can track (MWSR entries are
// about twice the size of PCM-S entries, which is why it does worse at
// equal budget). Budgets are scaled: the paper sweeps 64 KB-4 MB on 64 GB.
// fig5Budgets is the scaled on-chip SRAM budget sweep of Fig 5 (bytes).
var fig5Budgets = []uint64{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15}

func RunFig5(sc Scale) ([]Series, error) {
	budgets := fig5Budgets
	type job struct {
		endurance uint32
		scheme    SchemeKind
		budget    uint64
	}
	var out []Series
	var jobs []job
	var pts []sweepPoint
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, scheme := range []SchemeKind{PCMS, MWSR} {
			si := len(out)
			out = append(out, Series{Label: fmt.Sprintf("%s Wmax=%d", scheme, endurance)})
			for _, budget := range budgets {
				jobs = append(jobs, job{endurance, scheme, budget})
				pts = append(pts, sweepPoint{si, float64(budget) / 1024}) // x in KB
			}
		}
	}
	sh := newSharder(sc)
	onJob := streamSweep(newSeriesStreamer(sc, "fig5"), out, pts)
	norms, err := runJobsStream(sc, "fig5", true, nil, len(jobs), onJob, func(i int, seed uint64) (float64, error) {
		j := jobs[i]
		regions := regionsForBudget(j.scheme, j.budget, sc.AttackLines)
		q := sc.AttackLines / regions
		res, err := sh.run(SystemConfig{
			Scheme: j.scheme, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: j.endurance, RegionLines: q, Period: 32, Seed: seed,
		}, bpaAttack(seed, 32*q), 0)
		if err != nil {
			return 0, err
		}
		return 100 * res.Normalized, nil
	})
	appendPoints(out, pts, norms)
	return out, err
}

// regionsForBudget returns the largest power-of-two region count whose
// mapping table fits in `budget` bytes of SRAM for the scheme.
func regionsForBudget(scheme SchemeKind, budget uint64, lines uint64) uint64 {
	best := uint64(2)
	for r := uint64(2); r <= lines/4; r <<= 1 {
		var entry uint64
		if scheme == PCMS {
			entry = pcms.EntryBits(r, lines/r) + 24
		} else {
			entry = mwsr.EntryBits(r, lines/r) + 24
		}
		if r*entry <= budget*8 {
			best = r
		}
	}
	return best
}

// RunFig15 reproduces Fig 15: normalized BPA lifetime of PCM-S, MWSR and
// SAWL versus swapping period, for two endurance levels. PCM-S and MWSR
// must keep their whole table on chip, which caps their region count (the
// paper's Sec 2.2 item 4): scaled here to 64-line regions for PCM-S and —
// entries twice the size — 128-line regions for MWSR. SAWL stores the full
// table in NVM and wear-levels at the initial 4-line granularity with no
// such bound, which is why it wins by the paper's 25-51% (50-78% at low
// endurance).
func RunFig15(sc Scale) ([]Series, error) {
	type job struct {
		endurance uint32
		scheme    SchemeKind
		period    uint64
	}
	var out []Series
	var jobs []job
	var pts []sweepPoint
	for _, endurance := range []uint32{sc.AttackEndurance, sc.lowAttackEndurance()} {
		for _, scheme := range []SchemeKind{PCMS, MWSR, SAWL} {
			si := len(out)
			out = append(out, Series{Label: fmt.Sprintf("%s Wmax=%d", scheme, endurance)})
			for _, period := range []uint64{8, 16, 32, 64} {
				jobs = append(jobs, job{endurance, scheme, period})
				pts = append(pts, sweepPoint{si, float64(period)})
			}
		}
	}
	sh := newSharder(sc)
	onJob := streamSweep(newSeriesStreamer(sc, "fig15"), out, pts)
	norms, err := runJobsStream(sc, "fig15", true, nil, len(jobs), onJob, func(i int, seed uint64) (float64, error) {
		j := jobs[i]
		cfg := SystemConfig{
			Scheme: j.scheme, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: j.endurance, Period: j.period, Seed: seed,
		}
		repeats := j.period * 4
		switch j.scheme {
		case SAWL:
			cfg.CMTEntries = sc.CMTEntries
		case PCMS:
			// On-chip bound, scaled: PCM-S affords 16-line regions,
			// MWSR (double-size entries) 32-line regions.
			cfg.RegionLines = 16
			repeats = j.period * 16
		case MWSR:
			cfg.RegionLines = 32
			repeats = j.period * 32
		}
		res, err := sh.run(cfg, bpaAttack(seed, repeats), 0)
		if err != nil {
			return 0, err
		}
		return 100 * res.Normalized, nil
	})
	appendPoints(out, pts, norms)
	return out, err
}

// fig16Schemes are the schemes Fig 16 compares across the SPEC suite.
var fig16Schemes = []SchemeKind{Baseline, RBSG, TLSR, SAWL}

// RunFig16 reproduces Fig 16: normalized lifetime under the 14 SPEC-like
// applications for Baseline, RBSG, TLSR and SAWL, in two region
// configurations — (a) few large regions, (b) many small regions. The
// final point of each series is the harmonic mean, the paper's "Hmean"
// bar. X values index the benchmark in SpecBenchmarks() order (the Hmean
// point is appended at index len(benchmarks)).
func RunFig16(sc Scale, coarse bool) ([]Series, error) {
	// (a) coarse: 64-line regions (the paper's 4096-region config, where
	// RBSG/TLSR regions are large); (b) fine: 8-line regions (the paper's
	// 1M-region config).
	var regions uint64
	if coarse {
		regions = sc.SpecLines / 64
	} else {
		regions = sc.SpecLines / 8
	}
	if regions < 4 {
		regions = 4
	}
	gran := sc.SpecLines / regions

	names := workload.Names()
	schemes := fig16Schemes
	out := make([]Series, len(schemes))
	endurance := sc.SpecEndurance

	fig := "fig16a"
	if !coarse {
		fig = "fig16b"
	}
	// Streaming: each scheme's series completes once its 14 benchmark
	// points have landed; the Hmean point is computed and fired with them.
	// The pool serializes onJob calls, so the accumulators need no lock.
	var onJob func(i int, y float64)
	if st := newSeriesStreamer(sc, fig); st != nil {
		vals := make([][]float64, len(schemes))
		left := make([]int, len(schemes))
		for si, scheme := range schemes {
			st.series(string(scheme), len(names)+1)
			vals[si] = make([]float64, len(names))
			left[si] = len(names)
		}
		onJob = func(i int, y float64) {
			si, bi := i/len(names), i%len(names)
			st.point(si, bi, float64(bi), y)
			vals[si][bi] = y
			if left[si]--; left[si] == 0 {
				st.point(si, len(names), float64(len(names)), metrics.HarmonicMean(vals[si]))
			}
		}
	}
	sh := newSharder(sc)
	// One job per (scheme, benchmark) lifetime run, scheme-major so the
	// results slice regroups directly into series. Benchmarks vary ~10x in
	// run time with footprint, so the footprint is the longest-job-first
	// hint that keeps the parallel tail short.
	norms, err := runJobsStream(sc, fig, true, metrics.CycleCost(workload.Footprints(names)), len(schemes)*len(names), onJob, func(i int, seed uint64) (float64, error) {
		scheme, name := schemes[i/len(names)], names[i%len(names)]
		cfg := SystemConfig{
			Scheme: scheme, Lines: sc.SpecLines, SpareLines: sc.specSpares(),
			Endurance: endurance, Period: sc.SpecPeriod, Seed: seed,
			Regions: regions, InitGran: gran, CMTEntries: sc.CMTEntries,
		}
		if scheme == SAWL {
			// Sec 4.1: SAWL's initial wear-leveling granularity is a few
			// memory lines regardless of the RBSG/TLSR region config;
			// the region sweep only affects the algebraic schemes.
			cfg.InitGran = 8
		}
		res, err := sh.run(cfg, WorkloadSpec{
			Kind: WorkloadSPEC, Name: name, Seed: seed,
		}, 0)
		if err != nil {
			return 0, err
		}
		return 100 * res.Normalized, nil
	})
	for si := range schemes {
		out[si].Label = string(schemes[si])
		if (si+1)*len(names) > len(norms) {
			// Interrupted sweep: this scheme's row is incomplete, so its
			// benchmark points and Hmean would be wrong — leave it empty.
			continue
		}
		values := norms[si*len(names) : (si+1)*len(names)]
		for bi, v := range values {
			out[si].Append(float64(bi), v)
		}
		out[si].Append(float64(len(names)), metrics.HarmonicMean(values))
	}
	return out, err
}

// Experiment registrations for this file's runners. The lifetime sweeps
// all go through the intra-run sharder, so they carry the Sharded
// capability flag (shard-salted cache keys).
func init() {
	Register(Experiment{
		Name:        "fig3",
		Description: "TLSR lifetime vs number of regions (BPA)",
		Figure:      "Fig 3",
		Order:       30, InAll: true, Sharded: true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs("fig3", 2*4*len(regionSweep(sc.AttackLines)))
		},
		Run: func(sc Scale) (Result, error) {
			s, err := RunFig3(sc)
			return Result{s}, err
		},
		Render: renderSeries("fig3",
			"Fig 3: TLSR normalized lifetime (%) vs number of regions, BPA",
			"regions", true),
	})
	Register(Experiment{
		Name:        "fig4",
		Description: "PCM-S/MWSR lifetime vs number of regions (BPA)",
		Figure:      "Fig 4",
		Order:       40, InAll: true, Sharded: true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs("fig4", 2*2*4*len(regionSweep(sc.AttackLines)))
		},
		Run: func(sc Scale) (Result, error) {
			s, err := RunFig4(sc)
			return Result{s}, err
		},
		Render: renderSeries("fig4",
			"Fig 4: PCM-S/MWSR normalized lifetime (%) vs number of regions, BPA",
			"regions", true),
	})
	Register(Experiment{
		Name:        "fig5",
		Description: "hybrid lifetime vs on-chip cache budget (BPA)",
		Figure:      "Fig 5",
		Order:       50, InAll: true, Sharded: true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs("fig5", 2*2*len(fig5Budgets))
		},
		Run: func(sc Scale) (Result, error) {
			s, err := RunFig5(sc)
			return Result{s}, err
		},
		Render: renderSeries("fig5",
			"Fig 5: hybrid lifetime (%) vs on-chip cache budget (KB), BPA",
			"budgetKB", false),
	})
	Register(Experiment{
		Name:        "fig15",
		Description: "PCM-S / MWSR / SAWL lifetime vs swapping period (BPA)",
		Figure:      "Fig 15",
		Order:       150, InAll: true, Sharded: true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs("fig15", 2*3*4) // 2 panels x {PCMS,MWSR,SAWL} x 4 periods
		},
		Run: func(sc Scale) (Result, error) {
			s, err := RunFig15(sc)
			return Result{s}, err
		},
		Render: renderSeries("fig15",
			"Fig 15: normalized lifetime (%) vs swapping period, BPA",
			"period", false),
	})
	Register(Experiment{
		Name:        "fig16",
		Description: "lifetime under 14 SPEC-like applications",
		Figure:      "Fig 16",
		Order:       160, InAll: true, Sharded: true,
		Plan: func(sc Scale) []JobSpec {
			n := len(fig16Schemes) * len(workload.Names())
			return append(planJobs("fig16a", n), planJobs("fig16b", n)...)
		},
		Run: func(sc Scale) (Result, error) {
			var p fig16Panels
			var err error
			if p.Coarse, err = RunFig16(sc, true); err != nil {
				return Result{p}, err
			}
			p.Fine, err = RunFig16(sc, false)
			return Result{p}, err
		},
		Render: renderFig16,
	})
	Register(Experiment{
		Name:        "attack",
		Description: "RAA + BPA resilience verdict per scheme (Sec 2.2)",
		Figure:      "Sec 2.2",
		Order:       220,
		Sharded:     true,
		Plan: func(sc Scale) []JobSpec {
			return planJobs(attackFig(AttackKinds), len(AttackKinds))
		},
		Run: func(sc Scale) (Result, error) {
			scores, err := RunAttackScores(sc, AttackKinds)
			return Result{scores}, err
		},
		Render: renderAttack,
	})
	Register(Experiment{
		Name:        "sweep",
		Description: "BPA lifetime over region-size x period grid (-scheme)",
		Figure:      "-",
		Order:       230, Sharded: true,
		Plan: func(sc Scale) []JobSpec {
			kind, regionLines, periods := sweepParams(sc)
			return planJobs(sweepFig(kind, regionLines, periods), len(periods)*len(regionLines))
		},
		Run: func(sc Scale) (Result, error) {
			kind, regionLines, periods := sweepParams(sc)
			s, err := RunSweep(sc, kind, regionLines, periods)
			return Result{sweepResult{Kind: kind, Series: s}}, err
		},
		Render: func(r Result) ([]Table, []SVG) {
			res, _ := r.Value.(sweepResult)
			g := SVG{Name: "sweep",
				Title: fmt.Sprintf("BPA lifetime (%%) sweep: %s", res.Kind),
				XName: "regionLines", YName: "value", Series: res.Series}
			return []Table{figTable(g, "%.2f")}, []SVG{g}
		},
	})
}

// fig16Panels is the fig16 experiment's payload: panel (a) coarse regions,
// panel (b) fine regions. An interrupted run carries whatever completed.
type fig16Panels struct {
	Coarse, Fine []Series
}

// sweepResult is the sweep experiment's payload.
type sweepResult struct {
	Kind   SchemeKind
	Series []Series
}

// renderFig16 renders both Fig 16 panels: per-panel tables with benchmark
// rows relabeled to names, Hmean last, plus one SVG per panel.
func renderFig16(r Result) ([]Table, []SVG) {
	p, _ := r.Value.(fig16Panels)
	var tables []Table
	var svgs []SVG
	panel := func(name, sub string, series []Series) {
		if series == nil {
			return
		}
		g := SVG{Name: name,
			Title: fmt.Sprintf("Fig 16 %s: normalized lifetime (%%) under SPEC-like applications", sub),
			XName: "bench#", YName: "value", Series: series}
		t := figTable(g, "%.1f")
		relabelBenchRows(&t)
		tables = append(tables, t)
		svgs = append(svgs, g)
	}
	panel("fig16a", "(a) coarse regions", p.Coarse)
	panel("fig16b", "(b) fine regions", p.Fine)
	return tables, svgs
}

// renderAttack renders the per-scheme RAA/BPA scores and verdicts.
func renderAttack(r Result) ([]Table, []SVG) {
	scores, _ := r.Value.([]analysis.AttackScore)
	t := Table{
		Title:   "Attack resilience (Sec 2.2)",
		Columns: []string{"scheme", "RAA life%", "BPA life%", "verdict"},
	}
	for i, score := range scores {
		t.Rows = append(t.Rows, []string{
			string(AttackKinds[i]),
			fmt.Sprintf("%.1f%%", 100*score.RAANormalized),
			fmt.Sprintf("%.1f%%", 100*score.BPANormalized),
			score.Verdict(),
		})
	}
	return []Table{t}, nil
}

// RunAttackScore measures one scheme's normalized lifetime under RAA and a
// trigger-aware BPA at the attack scale, returning the Sec 2.2-style
// resilience verdict.
func RunAttackScore(sc Scale, kind SchemeKind) (analysis.AttackScore, error) {
	return attackScore(sc, newSharder(sc), kind, sc.Seed)
}

// attackScore is RunAttackScore with an explicit seed, so parallel sweeps
// can pass their per-job derived seed, and a shared sharder so the sweep's
// -shards policy applies (the RAA half always falls back — a workload-level
// reason — while the BPA half decomposes).
func attackScore(sc Scale, sh *sharder, kind SchemeKind, seed uint64) (analysis.AttackScore, error) {
	run := func(w WorkloadSpec) (float64, error) {
		res, err := sh.run(SystemConfig{
			Scheme: kind, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
			Endurance: sc.AttackEndurance, Period: 8,
			RegionLines: 64, Regions: 16, InitGran: 4,
			CMTEntries: sc.CMTEntries, Seed: seed,
		}, w, 0)
		if err != nil {
			return 0, err
		}
		return res.Normalized, nil
	}
	raa, err := run(WorkloadSpec{Kind: WorkloadRAA, Target: 99})
	if err != nil {
		return analysis.AttackScore{}, err
	}
	repeats := uint64(8 * 64)
	if kind == SAWL || kind == NWL {
		repeats = 8 * 4
	}
	bpa, err := run(WorkloadSpec{Kind: WorkloadBPA, Seed: seed, Repeats: repeats})
	if err != nil {
		return analysis.AttackScore{}, err
	}
	return analysis.AttackScore{RAANormalized: raa, BPANormalized: bpa}, nil
}

// AttackKinds are the schemes the `attack` experiment scores — the full
// registered catalogue, baseline first (Sec 2.2's resilience comparison).
// The scheme list is part of the sweep's cache identity (attackFig), so
// growing the catalogue re-keys the sweep rather than misreading old rows.
var AttackKinds = Schemes()

// attackFig is the attack sweep's cache identity: the scheme list is a
// sweep parameter outside Scale, so it is part of the identity.
func attackFig(kinds []SchemeKind) string { return fmt.Sprintf("attack:%v", kinds) }

// RunAttackScores fans RunAttackScore out over the given schemes on the
// scale's worker pool, returning one score per scheme in input order.
func RunAttackScores(sc Scale, kinds []SchemeKind) ([]analysis.AttackScore, error) {
	sh := newSharder(sc)
	return exec.Map(sc.cachedPool(attackFig(kinds), true, nil), len(kinds), func(i int, seed uint64) (analysis.AttackScore, error) {
		return attackScore(sc, sh, kinds[i], seed)
	})
}

// SweepRegionLines and SweepPeriods are the default region-size x period
// grid of the generic `sweep` experiment.
var (
	SweepRegionLines = []uint64{4, 16, 64, 256}
	SweepPeriods     = []uint64{8, 16, 32, 64}
)

// sweepParams resolves the registered `sweep` experiment's parameters from
// the scale: the selected scheme (Scale.SweepScheme, default PCMS) over the
// default grid.
func sweepParams(sc Scale) (SchemeKind, []uint64, []uint64) {
	kind := sc.SweepScheme
	if kind == "" {
		kind = PCMS
	}
	return kind, SweepRegionLines, SweepPeriods
}

// sweepFig is the sweep's cache identity: scheme and grid are sweep
// parameters outside Scale, so they are part of the identity.
func sweepFig(kind SchemeKind, regionLines, periods []uint64) string {
	return fmt.Sprintf("sweep:%s:q%v:p%v", kind, regionLines, periods)
}

// RunSweep measures BPA lifetime for one scheme across region sizes and
// swapping periods — the generic parameter exploration behind cmd/wlsim's
// `sweep` experiment. Each series is one period; X is the region size in
// lines.
func RunSweep(sc Scale, kind SchemeKind, regionLines, periods []uint64) ([]Series, error) {
	fig := sweepFig(kind, regionLines, periods)
	var onJob func(i int, y float64)
	if st := newSeriesStreamer(sc, fig); st != nil {
		for _, period := range periods {
			st.series(fmt.Sprintf("%s ψ=%d", kind, period), len(regionLines))
		}
		onJob = func(i int, y float64) {
			pi, qi := i/len(regionLines), i%len(regionLines)
			st.point(pi, qi, float64(regionLines[qi]), y)
		}
	}
	sh := newSharder(sc)
	norms, err := runJobsStream(sc, fig, true, nil, len(periods)*len(regionLines), onJob,
		func(i int, seed uint64) (float64, error) {
			period, q := periods[i/len(regionLines)], regionLines[i%len(regionLines)]
			res, err := sh.run(SystemConfig{
				Scheme: kind, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
				Endurance: sc.AttackEndurance, Period: period,
				RegionLines: q, Regions: sc.AttackLines / q, InitGran: min(q, 64),
				CMTEntries: sc.CMTEntries, Seed: seed,
			}, bpaAttack(seed, period*q), 0)
			if err != nil {
				return 0, err
			}
			return 100 * res.Normalized, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(periods))
	for pi, period := range periods {
		s := Series{Label: fmt.Sprintf("%s ψ=%d", kind, period)}
		for qi, q := range regionLines {
			s.Append(float64(q), norms[pi*len(regionLines)+qi])
		}
		out = append(out, s)
	}
	return out, nil
}
