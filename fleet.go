package nvmwear

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"nvmwear/internal/exec"
	"nvmwear/internal/fault"
	"nvmwear/internal/lifetime"
	"nvmwear/internal/metrics"
	"nvmwear/internal/plot"
	"nvmwear/internal/rng"
)

// This file implements the `fleet` experiment: a Monte Carlo over a
// population of simulated devices per scheme, where every device draws its
// own endurance process corner, per-cell variation, fault-rate vector and
// tenant workload mix from deterministic per-device seed substreams. Where
// the paper evaluates one device per configuration, a production deployment
// sees a population — and cares about the tail (p1 time-to-death, survival
// curves, uncorrectable-loss and spare-exhaustion rates), not the mean.
//
// The sweep is built to survive its own scale: a device run that errors or
// panics is quarantined (reported in the output, sweep continues), every
// completed device checkpoints through the result cache so a killed sweep
// resumes warm, cancellation yields a valid partial population with
// confidence-interval annotations, and a device whose geometry defeats the
// shard planner (workload-level fallbacks like RAA traces) runs serial
// instead of failing the sweep.

// FleetSchemes are the schemes the fleet sweep populates: the complete
// catalogue. Every scheme is wl.Partitionable (exact or bank-local, see
// DESIGN.md §15), so under -shards a population run decomposes every
// device across the bank geometry — no scheme-level serial fallback.
var FleetSchemes = Schemes()

// fleetDefaultDevices is the per-scheme population when Scale.FleetDevices
// is unset — small enough for CI, large enough for distinct percentiles.
const fleetDefaultDevices = 16

// fleetDevices resolves the uniform per-scheme population size.
func (sc Scale) fleetDevices() int {
	if sc.FleetDevices > 0 {
		return sc.FleetDevices
	}
	return fleetDefaultDevices
}

// fleetPopulation resolves the planned device count per scheme: the
// uniform -devices base, overridden per scheme by Scale.FleetDeviceOverrides
// (cmd/wlsim's `-devices rbsg=64,pcms=16` syntax).
func (sc Scale) fleetPopulation(schemes []SchemeKind) []int {
	out := make([]int, len(schemes))
	for i, s := range schemes {
		out[i] = sc.fleetDevices()
		if n, ok := sc.FleetDeviceOverrides[s]; ok && n > 0 {
			out[i] = n
		}
	}
	return out
}

// fleetOffsets returns each scheme block's starting row in the scheme-major
// job list, plus the total job count.
func fleetOffsets(counts []int) (offs []int, total int) {
	offs = make([]int, len(counts))
	for i, c := range counts {
		offs[i] = total
		total += c
	}
	return offs, total
}

// Per-device seed substreams: every device derives its independent RNG
// roots from its job seed, so draws, device cells, fault stream and
// workload never share randomness — and never depend on worker count.
const (
	fleetStreamDraw     = 0 // parameter draws (endurance, variation, fault, tenant)
	fleetStreamDevice   = 1 // device cell endurance + scheme randomization
	fleetStreamWorkload = 2 // tenant workload stream
	fleetStreamFault    = 3 // fault-injection stream
)

// fleetFig is the sweep's cache identity: the scheme list and per-scheme
// population sizes are sweep parameters outside Scale, so they are folded
// in here — resizing or reshaping the fleet re-keys only the fleet's own
// jobs. A uniform population keeps the historical nN form; per-scheme
// overrides spell the full count vector.
func fleetFig(schemes []SchemeKind, counts []int) string {
	if uniformCounts(counts) {
		return fmt.Sprintf("fleet:%v:n%d", schemes, counts[0])
	}
	return fmt.Sprintf("fleet:%v:n%v", schemes, counts)
}

// uniformCounts reports whether every scheme plans the same device count.
func uniformCounts(counts []int) bool {
	for _, c := range counts {
		if c != counts[0] {
			return false
		}
	}
	return len(counts) > 0
}

// FleetDevice is one device of the population: its drawn identity plus the
// outcome of its lifetime run. Exported fields: rows round-trip through the
// gob result cache. A zero row (empty Cause) is a device whose job never
// ran — an interrupted sweep's hole.
type FleetDevice struct {
	Desc          lifetime.Descriptor
	LifePct       float64 // normalized lifetime, percent of ideal
	Served        uint64  // demand writes served
	SparesUsed    uint64
	FaultRemaps   uint64 // spare consumptions forced by fault recovery
	Reads         uint64
	Uncorrectable uint64
	Cause         string // lifetime.DeathCause; "quarantined" for isolated failures
	Error         string // quarantine cause (empty for healthy devices)
}

// FleetResult is the fleet experiment's payload. Rows is indexed like the
// job list (scheme-major with per-scheme counts: scheme s's block starts at
// the prefix sum of Devices[:s]) and always full length; holes from an
// interrupted sweep stay zero.
type FleetResult struct {
	Schemes []string
	Devices []int // planned population per scheme (parallel to Schemes)
	Rows    []FleetDevice
}

func init() {
	Register(Experiment{
		Name:        "fleet",
		Description: "population Monte Carlo: per-device draws, survival and quarantine",
		Figure:      "-",
		Order:       215,
		Sharded:     true,
		Plan: func(sc Scale) []JobSpec {
			counts := sc.fleetPopulation(FleetSchemes)
			_, n := fleetOffsets(counts)
			return planJobs(fleetFig(FleetSchemes, counts), n)
		},
		Run: func(sc Scale) (Result, error) {
			fr, err := RunFleet(sc)
			return Result{fr}, err
		},
		Render: renderFleet,
	})
}

// RunFleet runs the fleet population sweep. Every device is one pool job:
// it draws its parameters from its seed substreams, builds the system and
// tenant workload, and runs to device death (or the 4x-ideal write budget)
// under the sweep's shard policy. With the whole catalogue Partitionable,
// every scheme's devices decompose across the bank geometry under -shards;
// only workload-level fallbacks (RAA, file traces) run serial, logged once,
// never failing the sweep. Device failures (errors or
// panics) are quarantined: recorded with their cause on the device's row
// while the rest of the population completes. An interrupted sweep returns
// every completed row plus an error wrapping ErrInterrupted.
func RunFleet(sc Scale) (FleetResult, error) {
	schemes := FleetSchemes
	counts := sc.fleetPopulation(schemes)
	offs, n := fleetOffsets(counts)
	fig := fleetFig(schemes, counts)

	// Scheme-major job layout with per-scheme counts: job i is device
	// deviceOf[i] of scheme schemeOf[i].
	schemeOf := make([]int, n)
	deviceOf := make([]int, n)
	for si, c := range counts {
		for d := 0; d < c; d++ {
			schemeOf[offs[si]+d] = si
			deviceOf[offs[si]+d] = d
		}
	}

	sh := newSharder(sc)
	quarantined := make(map[int]error, 1) // written under the pool's lock
	rows, _, err := runJobsIsolated(sc, fig, true, fleetCost(sc, schemes, schemeOf, deviceOf), n,
		func(i int, qerr error) { quarantined[i] = qerr },
		func(i int, seed uint64) (FleetDevice, error) {
			desc, cfg, w := fleetDraw(sc, schemes[schemeOf[i]], deviceOf[i], seed)
			if sc.FleetPoison == i+1 {
				panic(fmt.Sprintf("poisoned device %s (WLSIM_FLEET_POISON test hook)", desc))
			}
			res, err := sh.run(cfg, w, 0)
			if err != nil {
				return FleetDevice{}, fmt.Errorf("device %s: %w", desc, err)
			}
			return FleetDevice{
				Desc:          desc,
				LifePct:       100 * res.Normalized,
				Served:        res.Served,
				SparesUsed:    res.SparesUsed,
				FaultRemaps:   res.FaultRemaps,
				Reads:         res.Reads,
				Uncorrectable: res.Uncorrectable,
				Cause:         string(res.Cause),
			}, nil
		})

	out := FleetResult{Devices: counts, Rows: rows}
	for _, s := range schemes {
		out.Schemes = append(out.Schemes, string(s))
	}
	// Quarantined rows: recompute the draw (deterministic from the job
	// seed) so the report still identifies the device, and record the
	// cause. Panics are reported by their value alone — the stack is in the
	// pool's error, but tables must stay byte-deterministic.
	for i, qerr := range quarantined {
		desc, _, _ := fleetDraw(sc, schemes[schemeOf[i]], deviceOf[i],
			rng.SeedStream(sc.Seed, uint64(i)))
		cause := qerr.Error()
		var pe *exec.PanicError
		if errors.As(qerr, &pe) {
			cause = fmt.Sprintf("panic: %v", pe.Value)
		}
		out.Rows[i] = FleetDevice{
			Desc:  desc,
			Cause: string(lifetime.CauseQuarantined),
			Error: cause,
		}
	}
	return out, err
}

// fleetCost ranks fleet jobs for the pool's longest-job-first dispatch.
// A device's runtime is predictable before it runs: fault-heavy devices pay
// injector draws plus retry/recovery work on every faulting access (the
// dominant term), high-variation devices wear unevenly and churn spares,
// and high-endurance corners serve the most writes before dying. All three
// come out of the deterministic parameter draw, so ranking costs nothing.
// This is purely a dispatch-order hint: results are position-keyed and
// returned in submission order, so cost can never change the output.
func fleetCost(sc Scale, schemes []SchemeKind, schemeOf, deviceOf []int) func(i int) float64 {
	return func(i int) float64 {
		desc, _, _ := fleetDraw(sc, schemes[schemeOf[i]], deviceOf[i],
			rng.SeedStream(sc.Seed, uint64(i)))
		return desc.FaultRate*1e6 + desc.Variation +
			float64(desc.Endurance)/float64(uint64(1)<<32)
	}
}

// fleetDraw derives device (scheme, d)'s identity from its seed: an
// endurance process corner (±30% around the scale's attack endurance), a
// per-cell variation CoV in [0, 0.3), a fault-rate vector (half the fleet
// fault-free, the rest log-uniform in [1e-6, 1e-3) driving transient,
// read-disturb and metadata faults, stuck-at at a tenth), and a tenant mix
// (3:1 SPEC profile vs uniform with a drawn write ratio). Everything comes
// off the draw substream in a fixed order, so a device's identity depends
// only on (Scale.Seed, job index).
func fleetDraw(sc Scale, scheme SchemeKind, device int, seed uint64) (lifetime.Descriptor, SystemConfig, WorkloadSpec) {
	src := rng.New(rng.SeedStream(seed, fleetStreamDraw))
	endurance := uint32(float64(sc.AttackEndurance) * (0.7 + 0.6*src.Float64()))
	if endurance < 100 {
		endurance = 100
	}
	variation := 0.3 * src.Float64()
	rate := 0.0
	if src.Bool(0.5) {
		rate = math.Pow(10, -6+3*src.Float64())
	}
	w := WorkloadSpec{Seed: rng.SeedStream(seed, fleetStreamWorkload)}
	if names := SpecBenchmarks(); src.Bool(0.75) {
		w.Kind = WorkloadSPEC
		w.Name = names[src.Intn(len(names))]
	} else {
		w.Kind = WorkloadUniform
		w.WriteRatio = 0.3 + 0.4*src.Float64()
	}
	wname := w.Name
	if wname == "" {
		wname = fmt.Sprintf("uniform/%.2f", w.WriteRatio)
	}

	cfg := SystemConfig{
		Scheme: scheme, Lines: sc.AttackLines, SpareLines: sc.attackSpares(),
		Endurance: endurance, Variation: variation, Period: 8,
		RegionLines: 64, InitGran: 4, CMTEntries: sc.CMTEntries,
		Regions: maxU64(sc.AttackLines/64, 1),
		Seed:    rng.SeedStream(seed, fleetStreamDevice),
	}
	if rate > 0 {
		cfg.Fault = fault.Config{
			TransientWriteRate: rate,
			StuckAtRate:        rate / 10,
			ReadDisturbRate:    rate,
			MetadataRate:       rate,
			Seed:               rng.SeedStream(seed, fleetStreamFault),
		}
	}
	desc := lifetime.Descriptor{
		Scheme:    string(scheme),
		Device:    device,
		Workload:  wname,
		Endurance: endurance,
		Variation: variation,
		FaultRate: rate,
		Seed:      seed,
	}
	return desc, cfg, w
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// fleetPlanLabel renders the planned population for the summary title:
// "16 devices/scheme" for a uniform fleet, "rbsg=64, pcms=16, ..." when
// per-scheme overrides make it ragged.
func fleetPlanLabel(schemes []string, counts []int) string {
	if uniformCounts(counts) {
		return fmt.Sprintf("%d devices/scheme", counts[0])
	}
	parts := make([]string, 0, len(schemes))
	for i, s := range schemes {
		if i < len(counts) {
			parts = append(parts, fmt.Sprintf("%s=%d", s, counts[i]))
		}
	}
	return strings.Join(parts, ", ")
}

// renderFleet builds the fleet's output: a per-scheme population summary
// (counts by death cause, p1/p50/p99 lifetime, mean with its 95% CI,
// uncorrectable-loss and spare-exhaustion rates), a quarantine report when
// any device was isolated, and per-scheme survival step curves. Partial
// populations (interrupted sweeps) render from whatever rows exist — the
// ran/planned column and the widened CI carry the uncertainty.
func renderFleet(r Result) ([]Table, []SVG) {
	fr, _ := r.Value.(FleetResult)
	sum := Table{
		Title: fmt.Sprintf("Fleet population (%s planned)", fleetPlanLabel(fr.Schemes, fr.Devices)),
		Columns: []string{"scheme", "devices", "quar", "wearout", "faults", "alive",
			"dead%", "p1", "p50", "p99", "mean±95%", "uncorr/Mrd"},
	}
	quar := Table{
		Title:   "Quarantined devices",
		Columns: []string{"device", "cause"},
	}
	var curves, stepped []Series

	offs, _ := fleetOffsets(fr.Devices)
	for si, scheme := range fr.Schemes {
		planned := 0
		if si < len(fr.Devices) {
			planned = fr.Devices[si]
		}
		var lives, deaths []float64
		var reads, lost uint64
		counts := map[string]int{}
		for d := 0; d < planned; d++ {
			i := offs[si] + d
			if i >= len(fr.Rows) {
				break
			}
			row := fr.Rows[i]
			if row.Cause == "" {
				continue // job never ran (interrupted sweep)
			}
			if row.Cause == string(lifetime.CauseQuarantined) {
				counts["quar"]++
				quar.Rows = append(quar.Rows, []string{row.Desc.String(), row.Error})
				continue
			}
			counts[row.Cause]++
			lives = append(lives, row.LifePct)
			if row.Cause != string(lifetime.CauseAlive) {
				// Rounded to 0.01%: equal deaths group into one curve
				// step and the table's X column stays readable.
				deaths = append(deaths, math.Round(row.LifePct*100)/100)
			}
			reads += row.Reads
			lost += row.Uncorrectable
		}
		ran := len(lives) + counts["quar"]
		qs := metrics.Quantiles(lives, 0.01, 0.5, 0.99)
		mean, half := metrics.MeanCI95(lives)
		deadFrac, lossPPM := 0.0, 0.0
		if len(lives) > 0 {
			deadFrac = 100 * float64(len(deaths)) / float64(len(lives))
		}
		if reads > 0 {
			lossPPM = float64(lost) / float64(reads) * 1e6
		}
		sum.Rows = append(sum.Rows, []string{
			scheme,
			fmt.Sprintf("%d/%d", ran, planned),
			fmt.Sprintf("%d", counts["quar"]),
			fmt.Sprintf("%d", counts[string(lifetime.CauseWearout)]),
			fmt.Sprintf("%d", counts[string(lifetime.CauseFaults)]),
			fmt.Sprintf("%d", counts[string(lifetime.CauseAlive)]),
			fmt.Sprintf("%.1f", deadFrac),
			fmt.Sprintf("%.1f", qs[0]),
			fmt.Sprintf("%.1f", qs[1]),
			fmt.Sprintf("%.1f", qs[2]),
			fmt.Sprintf("%.1f ± %.1f", mean, half),
			fmt.Sprintf("%.2f", lossPPM),
		})

		// Survival curve over the whole observed population: alive devices
		// are censored survivors, so the curve floors at their fraction
		// instead of dropping to zero. The SVG gets the step-expanded form
		// (horizontal runs, vertical drops); the table the raw points.
		if x, y := metrics.Survival(deaths, len(lives)); x != nil {
			curves = append(curves, Series{Label: scheme, X: x, Y: y})
			sx, sy := plot.Steps(x, y, 1)
			stepped = append(stepped, Series{Label: scheme, X: sx, Y: sy})
		}
	}

	title := "Fleet survival: fraction of population alive vs normalized lifetime (%)"
	g := SVG{Name: "fleet-survival", Title: title,
		XName: "lifetime %", YName: "surviving fraction", Series: stepped,
	}
	tables := []Table{sum}
	if len(quar.Rows) > 0 {
		tables = append(tables, quar)
	}
	if len(curves) > 0 {
		raw := SVG{Name: g.Name, Title: title, XName: g.XName, YName: g.YName, Series: curves}
		tables = append(tables, figTable(raw, "%.3f"))
		return tables, []SVG{g}
	}
	return tables, nil
}

