package nvmwear

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"nvmwear/internal/lifetime"
	"nvmwear/internal/rng"
)

// renderFleetTables runs the fleet sweep and renders every output table —
// the byte stream the determinism contract is pinned on.
func renderFleetTables(t *testing.T, sc Scale) string {
	t.Helper()
	fr, err := RunFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	tables, _ := renderFleet(Result{fr})
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// fleetTestScale is the tiny scale with a population small enough for unit
// tests: 6 devices per scheme across the full catalogue.
func fleetTestScale() Scale {
	sc := tinyScale()
	sc.FleetDevices = 6
	return sc
}

func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := fleetTestScale()
	serial := renderFleetTables(t, withParallelism(sc, 1))
	parallel := renderFleetTables(t, withParallelism(sc, 8))
	if serial != parallel {
		t.Fatalf("fleet tables differ between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "Fleet population") {
		t.Fatalf("no population summary rendered:\n%s", serial)
	}
	if strings.Contains(serial, "Quarantined") {
		t.Fatalf("healthy fleet rendered a quarantine report:\n%s", serial)
	}
}

// TestFleetQuarantinesPoisonedDevice poisons one device job (the CLI's
// WLSIM_FLEET_POISON hook) and checks the isolation contract end to end:
// the sweep completes without error, the poisoned device is reported with
// its panic cause, and the remaining population's percentiles still render.
func TestFleetQuarantinesPoisonedDevice(t *testing.T) {
	sc := withParallelism(fleetTestScale(), 8)
	sc.FleetPoison = 5 // job index 4: scheme 0, device 4
	fr, err := RunFleet(sc)
	if err != nil {
		t.Fatalf("poisoned fleet sweep failed: %v", err)
	}
	row := fr.Rows[4]
	if row.Cause != string(lifetime.CauseQuarantined) {
		t.Fatalf("poisoned row cause = %q, want quarantined", row.Cause)
	}
	if !strings.Contains(row.Error, "poisoned device") || !strings.Contains(row.Error, "panic") {
		t.Fatalf("poisoned row error = %q", row.Error)
	}
	if row.Desc.Device != 4 || row.Desc.Scheme != string(FleetSchemes[0]) {
		t.Fatalf("quarantined row identifies %s, want %s/dev004", row.Desc, FleetSchemes[0])
	}
	healthy := 0
	for i, r := range fr.Rows {
		if i != 4 && r.Cause != "" && r.Cause != string(lifetime.CauseQuarantined) {
			healthy++
		}
	}
	if want := len(fr.Rows) - 1; healthy != want {
		t.Fatalf("%d healthy rows, want %d — quarantine leaked beyond the poisoned job", healthy, want)
	}

	tables, _ := renderFleet(Result{fr})
	var all strings.Builder
	for _, tb := range tables {
		all.WriteString(tb.Render())
	}
	out := all.String()
	if !strings.Contains(out, "Quarantined devices") || !strings.Contains(out, "poisoned device") {
		t.Fatalf("quarantine report missing:\n%s", out)
	}
	// The poisoned scheme's summary row still carries population statistics
	// from the surviving devices: 6/6 accounted for, 1 quarantined.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), string(FleetSchemes[0])+" ") {
			if !strings.Contains(line, "6/6") {
				t.Fatalf("poisoned scheme row does not account for all devices: %q", line)
			}
			return
		}
	}
	t.Fatalf("no summary row for %s:\n%s", FleetSchemes[0], out)
}

// TestFleetShardsWholeCatalogue runs the fleet under -shards: with every
// scheme in the catalogue Partitionable and the fleet geometry divisible,
// every device of every scheme must decompose — zero scheme-level serial
// fallbacks logged — and every row must complete cleanly.
func TestFleetShardsWholeCatalogue(t *testing.T) {
	sc := withParallelism(fleetTestScale(), 4)
	sc.Shards = 4
	var logs strings.Builder
	sc.Logf = func(f string, a ...any) { fmt.Fprintf(&logs, f+"\n", a...) }
	fr, err := RunFleet(sc)
	if err != nil {
		t.Fatalf("sharded fleet sweep failed: %v", err)
	}
	for i, r := range fr.Rows {
		if r.Cause == "" || r.Cause == string(lifetime.CauseQuarantined) {
			t.Fatalf("row %d (%s) did not complete cleanly: cause %q err %q",
				i, r.Desc, r.Cause, r.Error)
		}
	}
	if strings.Contains(logs.String(), "runs serial") {
		t.Fatalf("fully Partitionable catalogue still fell back to serial:\n%s", logs.String())
	}
}

// TestFleetDeviceOverrides checks the ragged-population plumbing: per-scheme
// -devices overrides resize only their scheme's block, the job layout stays
// scheme-major over the prefix sums, the cache identity distinguishes ragged
// from uniform fleets, and the renderer reports per-scheme planned counts.
func TestFleetDeviceOverrides(t *testing.T) {
	sc := fleetTestScale()
	sc.FleetDeviceOverrides = map[SchemeKind]int{RBSG: 9, PCMS: 2}

	counts := sc.fleetPopulation(FleetSchemes)
	offs, total := fleetOffsets(counts)
	wantTotal := 0
	for i, s := range FleetSchemes {
		want := 6
		if s == RBSG {
			want = 9
		}
		if s == PCMS {
			want = 2
		}
		if counts[i] != want {
			t.Errorf("%s plans %d devices, want %d", s, counts[i], want)
		}
		wantTotal += want
	}
	if total != wantTotal {
		t.Fatalf("total = %d, want %d", total, wantTotal)
	}

	uniform := fleetTestScale()
	if fleetFig(FleetSchemes, sc.fleetPopulation(FleetSchemes)) ==
		fleetFig(FleetSchemes, uniform.fleetPopulation(FleetSchemes)) {
		t.Fatalf("ragged and uniform fleets share a cache identity")
	}

	fr, err := RunFleet(withParallelism(sc, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != total {
		t.Fatalf("%d rows, want %d", len(fr.Rows), total)
	}
	// Every block holds its own scheme's devices, numbered from zero.
	for si, s := range FleetSchemes {
		for d := 0; d < counts[si]; d++ {
			row := fr.Rows[offs[si]+d]
			if row.Desc.Scheme != string(s) || row.Desc.Device != d {
				t.Fatalf("row %d is %s/dev%03d, want %s/dev%03d",
					offs[si]+d, row.Desc.Scheme, row.Desc.Device, s, d)
			}
		}
	}
	tables, _ := renderFleet(Result{fr})
	out := tables[0].Render()
	if !strings.Contains(out, "rbsg=9") || !strings.Contains(out, "pcms=2") {
		t.Fatalf("summary title does not spell the ragged plan:\n%s", out)
	}
	if !strings.Contains(out, "9/9") || !strings.Contains(out, "2/2") {
		t.Fatalf("summary lacks per-scheme ran/planned columns:\n%s", out)
	}
}

// TestFleetCostPrefersExpensiveDevices pins the dispatch hint: the drawn
// fault rate dominates, so any fault-injected device must rank above every
// fault-free one, and the hint must never perturb results (covered by the
// determinism test, which runs the same fleet at -j1 and -j8).
func TestFleetCostPrefersExpensiveDevices(t *testing.T) {
	sc := fleetTestScale()
	counts := sc.fleetPopulation(FleetSchemes)
	offs, n := fleetOffsets(counts)
	schemeOf := make([]int, n)
	deviceOf := make([]int, n)
	for si, c := range counts {
		for d := 0; d < c; d++ {
			schemeOf[offs[si]+d] = si
			deviceOf[offs[si]+d] = d
		}
	}
	cost := fleetCost(sc, FleetSchemes, schemeOf, deviceOf)
	minFaulty, maxClean := math.Inf(1), math.Inf(-1)
	faulty := 0
	for i := 0; i < n; i++ {
		desc, _, _ := fleetDraw(sc, FleetSchemes[schemeOf[i]], deviceOf[i],
			rng.SeedStream(sc.Seed, uint64(i)))
		c := cost(i)
		if desc.FaultRate > 0 {
			faulty++
			minFaulty = math.Min(minFaulty, c)
		} else {
			maxClean = math.Max(maxClean, c)
		}
	}
	if faulty == 0 || faulty == n {
		t.Fatalf("draws produced %d/%d faulty devices; the split test needs both kinds", faulty, n)
	}
	if minFaulty <= maxClean {
		t.Fatalf("cheapest faulty device (%g) does not outrank costliest clean one (%g)",
			minFaulty, maxClean)
	}
}

// TestFleetInterruptedReturnsPartialPopulation cancels a serial fleet sweep
// mid-run and checks the partial-result contract: the error wraps
// ErrInterrupted, completed rows are valid, unstarted rows are holes, and
// the renderer reports a partial population (ran < planned) without
// inventing data for the missing devices.
func TestFleetInterruptedReturnsPartialPopulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sc := withParallelism(fleetTestScale(), 1)
	sc.Context = ctx
	fired := false
	sc.Progress = func(done, total int) {
		if !fired && done >= 2 {
			fired = true
			cancel()
		}
	}
	fr, err := RunFleet(sc)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	n := len(FleetSchemes) * sc.FleetDevices
	if len(fr.Rows) != n {
		t.Fatalf("partial result has %d rows, want full-length %d with holes", len(fr.Rows), n)
	}
	completed := 0
	for _, r := range fr.Rows {
		if r.Cause != "" {
			completed++
		}
	}
	if completed < 2 || completed >= n {
		t.Fatalf("%d completed rows in an interrupted %d-device sweep", completed, n)
	}
	// Completed rows must match the same devices of an uninterrupted run.
	full, ferr := RunFleet(withParallelism(fleetTestScale(), 1))
	if ferr != nil {
		t.Fatal(ferr)
	}
	for i, r := range fr.Rows {
		if r.Cause != "" && r != full.Rows[i] {
			t.Fatalf("row %d: partial %+v != full %+v", i, r, full.Rows[i])
		}
	}
	tables, _ := renderFleet(Result{fr})
	out := tables[0].Render()
	if !strings.Contains(out, "/6") {
		t.Fatalf("summary lacks the ran/planned column:\n%s", out)
	}
}
