module nvmwear

go 1.22
