package nvmwear

import (
	"context"
	"errors"
	"os"
	"testing"
)

// This file holds the zero-fault regression guarantee: the fault-injection
// plumbing added across nvm/imt/core must leave fault-free simulations
// byte-identical to the pre-fault codebase. The testdata/*.golden tables
// were rendered from the tiny scale before any fault code existed; every
// run here — serial or parallel — must reproduce them exactly.

func TestZeroFaultGoldenTables(t *testing.T) {
	cases := []struct {
		name string
		file string
		run  func(Scale) ([]Series, error)
	}{
		{"fig3", "testdata/fig3_tiny.golden", RunFig3},
		{"fig4", "testdata/fig4_tiny.golden", RunFig4},
		{"fig15", "testdata/fig15_tiny.golden", RunFig15},
		{"fig16a", "testdata/fig16a_tiny.golden", func(sc Scale) ([]Series, error) {
			return RunFig16(sc, true)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := os.ReadFile(c.file)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range []int{1, 8} {
				got := renderFig(c.run(withParallelism(tinyScale(), j)))
				if got != string(want) {
					t.Errorf("-j%d table deviates from pre-fault golden %s:\n--- got ---\n%s--- want ---\n%s",
						j, c.file, got, want)
				}
			}
		})
	}
}

// TestFaultSweepDeterministic pins the new fault figure to the same
// contract as the paper figures: byte-identical tables across worker
// counts and across repeated same-seed runs (every fault draw comes from
// the per-job seeded substreams, never from shared state).
func TestFaultSweepDeterministic(t *testing.T) {
	render := func(j int) string {
		life, loss, _, err := RunFault(withParallelism(tinyScale(), j))
		if err != nil {
			t.Fatal(err)
		}
		return renderFig(life, nil) + renderFig(loss, nil)
	}
	first := render(1)
	if again := render(1); again != first {
		t.Fatalf("fault tables differ between repeated -j1 runs:\n%s\nvs\n%s", first, again)
	}
	if parallel := render(8); parallel != first {
		t.Fatalf("fault tables differ between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s", first, parallel)
	}
}

// TestFaultSweepDegrades sanity-checks the sweep's shape: the highest
// injected fault rate must cost every scheme most of its lifetime and
// produce uncorrectable losses, while the zero-rate point reports none.
func TestFaultSweepDegrades(t *testing.T) {
	life, loss, _, err := RunFault(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for si := range life {
		l := life[si]
		if len(l.Y) != len(FaultRates) {
			t.Fatalf("%s: %d lifetime points, want %d", l.Label, len(l.Y), len(FaultRates))
		}
		worst, clean := l.Y[len(l.Y)-1], l.Y[0]
		if worst >= clean/2 {
			t.Errorf("%s: lifetime %.1f%% at rate %v not below half the clean %.1f%%",
				l.Label, worst, FaultRates[len(FaultRates)-1], clean)
		}
		if loss[si].Y[0] != 0 {
			t.Errorf("%s: %.2f uncorrectable losses per 1M reads at rate 0", l.Label, loss[si].Y[0])
		}
		if loss[si].Y[len(loss[si].Y)-1] == 0 {
			t.Errorf("%s: no uncorrectable losses at the highest fault rate", l.Label)
		}
	}
}

// TestInterruptedSweepFlushesPrefix cancels a sweep mid-run through
// Scale.Context and checks the library-level contract wlsim builds on:
// the completed prefix of points comes back alongside an error wrapping
// ErrInterrupted.
func TestInterruptedSweepFlushesPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sc := tinyScale()
	sc.Parallelism = 1
	sc.Context = ctx
	fired := false
	sc.Progress = func(done, total int) {
		if !fired && done >= 2 {
			fired = true
			cancel()
		}
	}
	series, err := RunFig3(sc)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	points := 0
	for _, s := range series {
		points += len(s.Y)
	}
	// At least the two jobs that triggered cancellation flushed; the full
	// figure (which must not have completed) has 56 points.
	if points < 2 || points >= 56 {
		t.Fatalf("%d points flushed from an interrupted 56-job sweep", points)
	}
	// The flushed prefix must match the same jobs of an uninterrupted run.
	full := must(RunFig3(withParallelism(tinyScale(), 1)))
	for si, s := range series {
		for i, y := range s.Y {
			if full[si].X[i] != s.X[i] || full[si].Y[i] != y {
				t.Fatalf("series %d point %d: partial (%v,%v) != full (%v,%v)",
					si, i, s.X[i], y, full[si].X[i], full[si].Y[i])
			}
		}
	}
}
