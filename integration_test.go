package nvmwear

// Cross-module integration tests: whole-system scenarios that exercise
// workload generators, wear-leveling schemes, the tiered translation stack
// and the device model together.

import (
	"bytes"
	"io"
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

// TestEndToEndDataIntegrity drives a SPEC-like workload through every
// scheme on a data-tracking device and verifies that no logical line's
// data is ever lost or misplaced by the remapping machinery.
func TestEndToEndDataIntegrity(t *testing.T) {
	for _, kind := range Schemes() {
		t.Run(string(kind), func(t *testing.T) {
			sys, err := NewSystem(SystemConfig{
				Scheme: kind, Lines: 1 << 10, SpareLines: 1, Endurance: 1 << 30,
				Period: 4, RegionLines: 8, Regions: 16, CMTEntries: 64,
				TrackData: true, Seed: 9,
				ObservationWindow: 1 << 10, SettlingWindow: 1 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			wltest.Fill(sys.dev, sys.lv)
			stream, _, err := WorkloadSpec{Kind: WorkloadSPEC, Name: "gcc", Seed: 9}.Build(1 << 10)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40000; i++ {
				r := stream.Next()
				sys.lv.Access(r.Op, r.Addr)
			}
			wltest.CheckBijection(t, sys.dev, sys.lv)
			wltest.CheckIntegrity(t, sys.dev, sys.lv)
		})
	}
}

// TestDeterministicRuns verifies that identical configurations produce
// bit-identical results — the reproducibility contract every experiment
// depends on.
func TestDeterministicRuns(t *testing.T) {
	run := func() Stats {
		sys, err := NewSystem(SystemConfig{
			Scheme: SAWL, Lines: 1 << 12, SpareLines: 64, Endurance: 5000,
			Period: 8, CMTEntries: 256, Seed: 33,
			ObservationWindow: 1 << 12, SettlingWindow: 1 << 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		stream, _, _ := WorkloadSpec{Kind: WorkloadSPEC, Name: "soplex", Seed: 33}.Build(1 << 12)
		for i := 0; i < 200000; i++ {
			r := stream.Next()
			sys.lv.Access(r.Op, r.Addr)
		}
		return sys.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

// TestTraceReplayEquivalence verifies that recording a workload to the
// binary trace format and replaying it produces the same wear as driving
// the generator directly.
func TestTraceReplayEquivalence(t *testing.T) {
	const n = 50000
	mkSys := func() *System {
		sys, err := NewSystem(SystemConfig{
			Scheme: PCMS, Lines: 1 << 10, SpareLines: 1, Endurance: 1 << 30,
			RegionLines: 4, Period: 8, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// Record.
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	gen, _, _ := WorkloadSpec{Kind: WorkloadSPEC, Name: "milc", Seed: 5}.Build(1 << 10)
	direct := mkSys()
	for i := 0; i < n; i++ {
		r := gen.Next()
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
		direct.lv.Access(r.Op, r.Addr)
	}
	w.Flush()

	// Replay.
	replayed := mkSys()
	rd := trace.NewReader(&buf)
	for {
		r, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		replayed.lv.Access(r.Op, r.Addr)
	}

	da, db := direct.WearCounts(), replayed.WearCounts()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("wear diverged at line %d: %d vs %d", i, da[i], db[i])
		}
	}
}

// TestDeviceDeathIsGraceful verifies that schemes keep operating (no
// panics, stable translation) after the device dies mid-run.
func TestDeviceDeathIsGraceful(t *testing.T) {
	for _, kind := range []SchemeKind{Baseline, TLSR, PCMS, SAWL} {
		sys, err := NewSystem(SystemConfig{
			Scheme: kind, Lines: 1 << 10, SpareLines: 2, Endurance: 50,
			Period: 8, RegionLines: 4, Regions: 16, CMTEntries: 64, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100000 && sys.Alive(); i++ {
			sys.Write(5)
		}
		if sys.Alive() {
			t.Fatalf("%s: device survived the hammering", kind)
		}
		// Post-mortem accesses must not panic and must stay in range.
		for i := uint64(0); i < 1000; i++ {
			if pma := sys.Write(i % (1 << 10)); pma >= sys.dev.Lines() {
				t.Fatalf("%s: post-mortem access out of range", kind)
			}
		}
		if !sys.Stats().Dead {
			t.Fatalf("%s: stats not marked dead", kind)
		}
	}
}

// TestWearAccountingIsExact verifies the cross-module accounting identity:
// device total writes == demand writes + swap writes + merge writes +
// table writes for the tiered scheme.
func TestWearAccountingIsExact(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Scheme: SAWL, Lines: 1 << 10, SpareLines: 1, Endurance: 1 << 30,
		Period: 4, CMTEntries: 64, Seed: 11,
		ObservationWindow: 1 << 10, SettlingWindow: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, _ := WorkloadSpec{Kind: WorkloadUniform, WriteRatio: 1, Seed: 11}.Build(1 << 10)
	for i := 0; i < 100000; i++ {
		r := stream.Next()
		sys.lv.Access(r.Op, r.Addr)
	}
	st := sys.lv.Stats()
	dev := sys.dev.Stats()
	want := st.DataWrites + st.SwapWrites + st.MergeWrites + st.TableWrites
	if dev.TotalWrites != want {
		t.Fatalf("device writes %d != accounted %d (%+v)", dev.TotalWrites, want, st)
	}
}

// TestVariationDevicesStillWork runs a lifetime experiment on a device
// with per-cell endurance variation (MLC process variation).
func TestVariationDevicesStillWork(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Scheme: PCMS, Lines: 1 << 10, SpareLines: 64, Endurance: 500,
		Variation: 0.2, RegionLines: 4, Period: 4, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunLifetime(WorkloadSpec{Kind: WorkloadBPA, Seed: 17, Repeats: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Normalized <= 0 {
		t.Fatalf("variation run: %+v", res)
	}
}

// TestSAWLConsistencyAfterLongMixedRun is the heaviest structural stress:
// a long phase-changing workload with aggressive adaptation windows, with
// the engine's full invariant check at the end.
func TestSAWLConsistencyAfterLongMixedRun(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Scheme: SAWL, Lines: 1 << 12, SpareLines: 1, Endurance: 1 << 30,
		Period: 4, CMTEntries: 128, TrackData: true, Seed: 23,
		ObservationWindow: 1 << 11, SettlingWindow: 1 << 11, CheckEvery: 1 << 10,
		MaxGranLines: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	wltest.Fill(sys.dev, sys.lv)
	// Alternate scattered and hot phases to force merge and split storms.
	streamA, _, _ := WorkloadSpec{Kind: WorkloadUniform, WriteRatio: 0.7, Seed: 23}.Build(1 << 12)
	for phase := 0; phase < 6; phase++ {
		if phase%2 == 0 {
			for i := 0; i < 60000; i++ {
				r := streamA.Next()
				sys.lv.Access(r.Op, r.Addr)
			}
		} else {
			for i := uint64(0); i < 60000; i++ {
				sys.Write(i % 128)
			}
		}
		if err := sys.coreScheme().CheckConsistency(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
	}
	wltest.CheckBijection(t, sys.dev, sys.lv)
	wltest.CheckIntegrity(t, sys.dev, sys.lv)
	if sys.Merges() == 0 || sys.Splits() == 0 {
		t.Fatalf("adaptation did not exercise both directions: merges=%d splits=%d",
			sys.Merges(), sys.Splits())
	}
}

// TestSchemesShareDeviceContract: every scheme leaves the device usable
// for direct inspection (wear counts sized to device lines etc).
func TestSchemesShareDeviceContract(t *testing.T) {
	for _, kind := range Schemes() {
		sys, err := NewSystem(SystemConfig{
			Scheme: kind, Lines: 1 << 10, SpareLines: 1, Endurance: 1 << 30,
			Period: 16, RegionLines: 8, Regions: 16, CMTEntries: 64, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(sys.WearCounts())) != sys.dev.Lines() {
			t.Fatalf("%s: wear counts %d != device lines %d",
				kind, len(sys.WearCounts()), sys.dev.Lines())
		}
		if sys.dev.Lines() < sys.Lines() {
			t.Fatalf("%s: device smaller than logical space", kind)
		}
	}
}

// TestNVMDeviceAccessor sanity-checks the internal device wiring used by
// the integration tests themselves.
func TestNVMDeviceAccessor(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Scheme: Baseline, Lines: 1 << 10, SpareLines: 1, Endurance: 10})
	if err != nil {
		t.Fatal(err)
	}
	var dev *nvm.Device = sys.dev
	if dev.Lines() != 1<<10 {
		t.Fatal("device accessor")
	}
}
