// Package addr centralizes the address arithmetic shared by every
// wear-leveling scheme in this repository.
//
// The memory is modeled at line granularity: a line is the atomic access
// unit whose size equals a last-level cache line (64 B in the paper's
// Table 1). A logical memory address (lma) names a line in the application's
// address space; a physical memory address (pma) names a line on the NVM
// device. Wear leveling is the time-varying bijection lma -> pma.
//
// Hybrid schemes (PCM-S, MWSR, NWL, SAWL) split an address into a region
// number and an intra-region offset:
//
//	lma = lrn*Q + lao        pma = prn*Q + pao        pao = lao XOR key
//
// where Q is the wear-leveling granularity (lines per region, a power of
// two) and key is the per-region offset parameter. The paper's Integrated
// Mapping Table packs (prn, key) into a single value D = prn*Q + key
// (Sec 3.3 step 5: prn = D/Q, key = D%Q); Pack and Unpack implement exactly
// that encoding.
package addr

import "math/bits"

// Line is a line address, logical or physical depending on context.
type Line = uint64

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v uint64) bool {
	return v != 0 && v&(v-1) == 0
}

// Log2 returns floor(log2(v)). It panics if v == 0.
func Log2(v uint64) uint {
	if v == 0 {
		panic("addr: Log2 of zero")
	}
	return uint(63 - bits.LeadingZeros64(v))
}

// Split decomposes a line address into (region, offset) for a granularity of
// q lines per region. q must be a power of two.
func Split(a Line, q uint64) (region, offset uint64) {
	return a / q, a & (q - 1)
}

// Join recomposes a line address from (region, offset).
func Join(region, offset, q uint64) Line {
	return region*q + offset
}

// Map translates an intra-region logical offset with the region's XOR key.
// Because XOR with a constant is an involution over [0, q) when key < q,
// Map is its own inverse and is always a bijection on the region.
func Map(lao, key uint64) uint64 {
	return lao ^ key
}

// Pack encodes a (prn, key) pair into the single table value D used by IMT
// entries: D = prn*q + key. key must be < q.
func Pack(prn, key, q uint64) uint64 {
	return prn*q + key
}

// Unpack decodes D into (prn, key) for granularity q.
func Unpack(d, q uint64) (prn, key uint64) {
	return d / q, d % q
}

// Translate performs the full hybrid-scheme translation of a logical line
// address given the region's packed address info d and granularity q:
// steps 5-7 of the paper's Fig 11 workflow.
func Translate(lma Line, d, q uint64) Line {
	prn, key := Unpack(d, q)
	lao := lma & (q - 1)
	return prn*q + (lao ^ key)
}
