package addr

import (
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 8, 1 << 20, 1 << 63} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 3, 5, 6, 7, 9, 1<<20 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10, 1 << 40: 40}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Errorf("Log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestLog2PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Log2(0)
}

func TestSplitJoinRoundTrip(t *testing.T) {
	err := quick.Check(func(a uint64, qBits uint8) bool {
		q := uint64(1) << (qBits % 20)
		a %= 1 << 40
		r, o := Split(a, q)
		return o < q && Join(r, o, q) == a
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapIsInvolutionAndBijection(t *testing.T) {
	const q = 64
	for key := uint64(0); key < q; key++ {
		seen := make(map[uint64]bool)
		for lao := uint64(0); lao < q; lao++ {
			p := Map(lao, key)
			if p >= q {
				t.Fatalf("Map(%d,%d) = %d escapes region", lao, key, p)
			}
			if Map(p, key) != lao {
				t.Fatalf("Map not involution at lao=%d key=%d", lao, key)
			}
			if seen[p] {
				t.Fatalf("Map collision at key=%d", key)
			}
			seen[p] = true
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	err := quick.Check(func(prn, key uint64, qBits uint8) bool {
		q := uint64(1) << (qBits % 16)
		prn %= 1 << 30
		key &= q - 1
		p, k := Unpack(Pack(prn, key, q), q)
		return p == prn && k == key
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTranslateMatchesManualSteps(t *testing.T) {
	// Paper Fig 11 example arithmetic: Q=8, prn=5, key=3, lma=19.
	const q, prn, key = 8, 5, 3
	d := Pack(prn, key, q)
	lma := uint64(19) // lrn=2, lao=3
	want := uint64(prn*q + (3 ^ key))
	if got := Translate(lma, d, q); got != want {
		t.Fatalf("Translate = %d, want %d", got, want)
	}
}

func TestTranslateBijectionPerRegion(t *testing.T) {
	// For a fixed (d, q), Translate restricted to one logical region must be
	// a bijection onto one physical region.
	const q = 32
	d := Pack(7, 21, q)
	seen := make(map[uint64]bool)
	for lao := uint64(0); lao < q; lao++ {
		p := Translate(4*q+lao, d, q)
		if p/q != 7 {
			t.Fatalf("escaped physical region: %d", p)
		}
		if seen[p] {
			t.Fatalf("collision at %d", p)
		}
		seen[p] = true
	}
}
