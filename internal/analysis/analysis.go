// Package analysis turns raw simulation measurements into the derived
// quantities the paper reasons with: wall-clock lifetime projections
// ("the ideal lifetime of this NVM system can be derived to be 2.5 months
// and 25 months respectively with 1 GBps write traffic", Sec 2.2), wear
// distribution reports, and attack-resistance summaries.
package analysis

import (
	"fmt"
	"math"
	"time"

	"nvmwear/internal/metrics"
)

// Projection converts a normalized lifetime into wall-clock time for a
// full-size device under a given write bandwidth.
type Projection struct {
	CapacityBytes  uint64
	LineBytes      uint64
	Endurance      uint64
	WriteBandwidth float64 // bytes per second
	Normalized     float64 // measured fraction of ideal
}

// IdealWrites returns the total line writes a perfectly-leveled device
// absorbs.
func (p Projection) IdealWrites() float64 {
	lines := float64(p.CapacityBytes) / float64(p.LineBytes)
	return lines * float64(p.Endurance)
}

// Ideal returns the wall-clock lifetime of the perfectly-leveled device.
func (p Projection) Ideal() time.Duration {
	writesPerSec := p.WriteBandwidth / float64(p.LineBytes)
	if writesPerSec <= 0 {
		return 0
	}
	seconds := p.IdealWrites() / writesPerSec
	return time.Duration(seconds * float64(time.Second))
}

// Projected returns the wall-clock lifetime at the measured normalized
// fraction.
func (p Projection) Projected() time.Duration {
	return time.Duration(float64(p.Ideal()) * p.Normalized)
}

// Months renders a duration in months (30-day months, as the paper's
// "2.5 months" arithmetic implies).
func Months(d time.Duration) float64 {
	return d.Hours() / (24 * 30)
}

// String implements fmt.Stringer.
func (p Projection) String() string {
	return fmt.Sprintf("ideal %.1f months, projected %.1f months (%.1f%% of ideal)",
		Months(p.Ideal()), Months(p.Projected()), 100*p.Normalized)
}

// WearReport summarizes a device's per-line wear distribution.
type WearReport struct {
	Lines    int
	Max      uint32
	Mean     float64
	Median   uint32
	P99      uint32
	Gini     float64
	CoV      float64
	ZeroFrac float64 // fraction of lines never written
}

// Wear computes a WearReport from per-line write counts.
func Wear(counts []uint32) WearReport {
	r := WearReport{Lines: len(counts)}
	if len(counts) == 0 {
		return r
	}
	sorted := make([]uint32, len(counts))
	copy(sorted, counts)
	metrics.SortUint32(sorted)

	var sum, sumSq, cum float64
	zero := 0
	n := float64(len(sorted))
	for i, c := range sorted {
		f := float64(c)
		sum += f
		sumSq += f * f
		cum += f * (n - float64(i))
		if c == 0 {
			zero++
		}
	}
	r.Max = sorted[len(sorted)-1]
	r.Mean = sum / n
	r.Median = sorted[len(sorted)/2]
	r.P99 = sorted[int(0.99*n)]
	r.ZeroFrac = float64(zero) / n
	if sum > 0 {
		r.Gini = (n + 1 - 2*cum/sum) / n
	}
	if r.Mean > 0 {
		variance := sumSq/n - r.Mean*r.Mean
		if variance > 0 {
			r.CoV = math.Sqrt(variance) / r.Mean
		}
	}
	return r
}

// String implements fmt.Stringer.
func (r WearReport) String() string {
	return fmt.Sprintf("wear{max=%d mean=%.1f median=%d p99=%d gini=%.3f cov=%.3f zero=%.1f%%}",
		r.Max, r.Mean, r.Median, r.P99, r.Gini, r.CoV, 100*r.ZeroFrac)
}

// AttackScore grades a scheme's attack resistance from its normalized
// lifetimes under RAA and BPA, mirroring the paper's Sec 2.2 taxonomy:
// a scheme is only considered robust when it survives both.
type AttackScore struct {
	RAANormalized float64
	BPANormalized float64
}

// Verdict classifies the score.
func (a AttackScore) Verdict() string {
	worst := a.RAANormalized
	if a.BPANormalized < worst {
		worst = a.BPANormalized
	}
	switch {
	case worst >= 0.40:
		return "robust"
	case worst >= 0.10:
		return "degraded"
	default:
		return "vulnerable"
	}
}

// String implements fmt.Stringer.
func (a AttackScore) String() string {
	return fmt.Sprintf("RAA %.1f%% / BPA %.1f%% -> %s",
		100*a.RAANormalized, 100*a.BPANormalized, a.Verdict())
}
