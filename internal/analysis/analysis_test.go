package analysis

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestPaperProjection reproduces the paper's Sec 2.2 arithmetic: a 64 GB
// device at 10^5 (10^6) endurance under 1 GBps write traffic has an ideal
// lifetime of 2.5 (25) months.
func TestPaperProjection(t *testing.T) {
	p := Projection{
		CapacityBytes:  64 << 30,
		LineBytes:      64,
		Endurance:      1e5,
		WriteBandwidth: 1 << 30,
		Normalized:     1,
	}
	if m := Months(p.Ideal()); math.Abs(m-2.5) > 0.3 {
		t.Fatalf("ideal lifetime %.2f months, paper says 2.5", m)
	}
	p.Endurance = 1e6
	if m := Months(p.Ideal()); math.Abs(m-25) > 3 {
		t.Fatalf("ideal lifetime %.2f months, paper says 25", m)
	}
	p.Normalized = 0.5
	if got, want := Months(p.Projected()), Months(p.Ideal())/2; math.Abs(got-want) > 0.01 {
		t.Fatalf("projected %.2f, want %.2f", got, want)
	}
	if !strings.Contains(p.String(), "months") {
		t.Fatal("string")
	}
}

func TestProjectionZeroBandwidth(t *testing.T) {
	p := Projection{CapacityBytes: 1 << 30, LineBytes: 64, Endurance: 100}
	if p.Ideal() != 0 {
		t.Fatal("zero bandwidth should project zero")
	}
}

func TestWearReport(t *testing.T) {
	counts := make([]uint32, 100)
	for i := 0; i < 50; i++ {
		counts[i] = 10
	}
	r := Wear(counts)
	if r.Lines != 100 || r.Max != 10 || r.Mean != 5 || r.ZeroFrac != 0.5 {
		t.Fatalf("report: %+v", r)
	}
	if r.Gini < 0.45 || r.Gini > 0.55 {
		t.Fatalf("gini %.3f for half-zero wear", r.Gini)
	}
	if r.P99 != 10 || r.Median != 10 {
		t.Fatalf("quantiles: %+v", r)
	}
	if r.String() == "" {
		t.Fatal("string")
	}
}

func TestWearReportEdgeCases(t *testing.T) {
	if r := Wear(nil); r.Lines != 0 || r.Gini != 0 {
		t.Fatalf("empty: %+v", r)
	}
	if r := Wear([]uint32{0, 0}); r.Gini != 0 || r.ZeroFrac != 1 {
		t.Fatalf("zeros: %+v", r)
	}
	uniform := Wear([]uint32{7, 7, 7, 7})
	if uniform.Gini > 1e-9 || uniform.CoV != 0 {
		t.Fatalf("uniform: %+v", uniform)
	}
}

func TestAttackScoreVerdicts(t *testing.T) {
	cases := []struct {
		raa, bpa float64
		want     string
	}{
		{0.6, 0.5, "robust"},
		{0.6, 0.2, "degraded"},
		{0.03, 0.7, "vulnerable"},
		{0.05, 0.05, "vulnerable"},
	}
	for _, c := range cases {
		got := AttackScore{RAANormalized: c.raa, BPANormalized: c.bpa}.Verdict()
		if got != c.want {
			t.Errorf("RAA %.2f BPA %.2f: %s, want %s", c.raa, c.bpa, got, c.want)
		}
	}
	if !strings.Contains((AttackScore{0.5, 0.5}).String(), "robust") {
		t.Fatal("string")
	}
}

func TestMonths(t *testing.T) {
	if m := Months(30 * 24 * time.Hour); math.Abs(m-1) > 1e-9 {
		t.Fatalf("Months = %v", m)
	}
}
