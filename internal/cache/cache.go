// Package cache models a set-associative write-back, write-allocate cache
// with LRU replacement — the shared L2 that sits between the cores and the
// memory controller in the paper's simulated system (Table 1: 512 KB shared
// L2). The timing simulator filters the workload's line-address stream
// through it so only L2 misses and dirty evictions reach the NVM.
package cache

// Cache is a set-associative cache over line addresses. Not safe for
// concurrent use.
type Cache struct {
	ways    int
	sets    uint64
	tags    []uint64 // sets*ways entries
	valid   []bool
	dirty   []bool
	lruTick []uint64 // per-entry last-use stamp
	tick    uint64

	hits, misses, writebacks uint64
}

// New creates a cache with the given total line capacity and associativity.
// lines must be a multiple of ways and lines/ways a power of two.
func New(lines uint64, ways int) *Cache {
	if ways <= 0 || lines == 0 || lines%uint64(ways) != 0 {
		panic("cache: lines must be a positive multiple of ways")
	}
	sets := lines / uint64(ways)
	if sets&(sets-1) != 0 {
		panic("cache: number of sets must be a power of two")
	}
	n := sets * uint64(ways)
	return &Cache{
		ways:    ways,
		sets:    sets,
		tags:    make([]uint64, n),
		valid:   make([]bool, n),
		dirty:   make([]bool, n),
		lruTick: make([]uint64, n),
	}
}

// Result describes the outcome of one access.
type Result struct {
	Hit bool
	// Writeback is set when a dirty victim was evicted; its line address
	// must be written to memory.
	Writeback     bool
	WritebackAddr uint64
}

// Access performs a read or write of one line with write-allocate.
func (c *Cache) Access(line uint64, write bool) Result {
	c.tick++
	set := line & (c.sets - 1)
	base := set * uint64(c.ways)
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+uint64(c.ways); i++ {
		if c.valid[i] && c.tags[i] == line {
			c.hits++
			c.lruTick[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			return Result{Hit: true}
		}
		if !c.valid[i] {
			// Prefer an invalid slot; mark it "oldest possible".
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if c.lruTick[i] < oldest {
			victim, oldest = i, c.lruTick[i]
		}
	}
	c.misses++
	res := Result{}
	if c.valid[victim] && c.dirty[victim] {
		c.writebacks++
		res.Writeback = true
		res.WritebackAddr = c.tags[victim]
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = write
	c.lruTick[victim] = c.tick
	return res
}

// Stats reports cumulative counters.
type Stats struct {
	Hits, Misses, Writebacks uint64
}

// Stats returns the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Writebacks: c.writebacks}
}

// HitRate returns hits/(hits+misses), 0 if no accesses.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}
