package cache

import "testing"

func TestHitAfterFill(t *testing.T) {
	c := New(64, 4)
	if c.Access(5, false).Hit {
		t.Fatal("cold hit")
	}
	if !c.Access(5, false).Hit {
		t.Fatal("miss after fill")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	c := New(8, 2) // 4 sets, 2 ways
	// Addresses 0, 4, 8 share set 0 (sets=4).
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // 0 MRU, 4 LRU
	c.Access(8, false) // evicts 4
	if !c.Access(0, false).Hit {
		t.Fatal("0 evicted")
	}
	if c.Access(4, false).Hit {
		t.Fatal("4 survived")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(2, 1)            // 2 sets, direct-mapped
	c.Access(0, true)         // dirty
	res := c.Access(2, false) // same set, evicts 0
	if !res.Writeback || res.WritebackAddr != 0 {
		t.Fatalf("writeback: %+v", res)
	}
	// Clean eviction: no writeback.
	res = c.Access(4, false)
	if res.Writeback {
		t.Fatal("clean line written back")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("writeback count")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := New(2, 1)
	c.Access(0, false) // clean fill
	c.Access(0, true)  // dirty via write hit
	res := c.Access(2, false)
	if !res.Writeback {
		t.Fatal("write-hit dirtiness lost")
	}
}

func TestInvalidSlotPreferred(t *testing.T) {
	c := New(4, 2)
	c.Access(0, true)
	// Second fill to the same set must use the invalid way, not evict 0.
	if res := c.Access(2, false); res.Writeback {
		t.Fatal("evicted instead of using invalid way")
	}
	if !c.Access(0, false).Hit {
		t.Fatal("0 evicted prematurely")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(10, 0) },
		func() { New(10, 3) },
		func() { New(24, 2) }, // 12 sets, not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestEmptyHitRate(t *testing.T) {
	if New(4, 2).HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
}
