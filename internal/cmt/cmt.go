// Package cmt implements the Cached Mapping Table: the small on-chip SRAM
// cache of recently-used address-mapping entries that tiered wear-leveling
// (NWL, SAWL) relies on (paper Sec 3.1, Fig 6).
//
// Entries are kept in an LRU stack. Each entry covers one wear-leveling
// region, whose granularity may vary (SAWL's region-merge/split): an entry
// records the region's level (log2 of its size in initial-granularity
// units), the aligned base of the initial-region range it covers, and the
// region's physical mapping (prn, key).
//
// The cache also maintains exact first-half/second-half hit counters over
// the LRU stack — the signal SAWL's region-split trigger uses (Sec 3.2:
// "two registers to record the cache hit counts of the first and the
// second half of the CMT entries queue").
package cmt

import (
	"fmt"
)

// Entry is one cached mapping.
type Entry struct {
	Base  uint64 // first initial-region index covered (aligned to 1<<Level)
	Level uint8  // region size = InitGranularity << Level lines
	Prn   uint64 // physical region number, in units of the region's own size
	Key   uint64 // intra-region XOR key (line-granular)
}

// Span returns the number of initial-granularity regions the entry covers.
func (e Entry) Span() uint64 { return 1 << e.Level }

// node is an intrusive LRU list node.
type node struct {
	Entry
	prev, next *node
	firstHalf  bool
}

// Policy selects the replacement policy. The paper's design is an LRU
// stack (its split trigger depends on the LRU-half hit counters); FIFO
// exists as an ablation baseline.
type Policy uint8

// Replacement policies.
const (
	PolicyLRU Policy = iota
	PolicyFIFO
)

// Cache is a fixed-capacity mapping cache. Not safe for concurrent use.
type Cache struct {
	capacity int
	policy   Policy
	index    map[uint64]*node // (level, base) packed -> node
	levels   [64]int          // population count per level, to bound lookups
	maxLevel int

	head, tail *node // sentinels
	size       int
	mid        *node // first node of the second half (nil if size < 2)
	firstCount int   // nodes tagged firstHalf

	hits, misses          uint64
	firstHits, secondHits uint64
}

// New creates an LRU cache holding up to capacity entries.
func New(capacity int) *Cache { return NewWithPolicy(capacity, PolicyLRU) }

// NewWithPolicy creates a cache with an explicit replacement policy.
func NewWithPolicy(capacity int, policy Policy) *Cache {
	if capacity < 1 {
		panic("cmt: capacity must be positive")
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
		index:    make(map[uint64]*node, capacity),
		head:     &node{},
		tail:     &node{},
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c
}

// pack builds the index key for (level, base).
func pack(level uint8, base uint64) uint64 {
	return base<<6 | uint64(level)
}

// Capacity returns the entry capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the current entry count.
func (c *Cache) Len() int { return c.size }

// Lookup finds the entry covering initial-region index lrn0, trying every
// level currently present in the cache. It records a hit (with its LRU-half
// attribution) or a miss, promotes a found entry to MRU, and returns it.
func (c *Cache) Lookup(lrn0 uint64) (Entry, bool) {
	for lvl := 0; lvl <= c.maxLevel; lvl++ {
		if c.levels[lvl] == 0 {
			continue
		}
		base := lrn0 &^ (uint64(1)<<lvl - 1)
		if n, ok := c.index[pack(uint8(lvl), base)]; ok {
			c.hits++
			if n.firstHalf {
				c.firstHits++
			} else {
				c.secondHits++
			}
			c.touch(n)
			return n.Entry, true
		}
	}
	c.misses++
	return Entry{}, false
}

// Front returns the MRU entry without recording a hit or touching LRU
// order. The batched access path uses it to prove that a run of repeated
// lookups would all hit the same entry before folding them.
func (c *Cache) Front() (Entry, bool) {
	if c.size == 0 {
		return Entry{}, false
	}
	return c.head.next.Entry, true
}

// RepeatHits records n hits on the MRU entry at once — exactly what n
// Lookup calls resolving to the front node would record. The front node is
// always in the first half (firstCount == ceil(size/2) >= 1 and first-half
// nodes form a prefix of the stack), and promoting it is a no-op, so only
// the counters move.
func (c *Cache) RepeatHits(n uint64) {
	c.hits += n
	c.firstHits += n
}

// Peek returns the entry covering lrn0 without touching LRU order or
// counters.
func (c *Cache) Peek(lrn0 uint64) (Entry, bool) {
	for lvl := 0; lvl <= c.maxLevel; lvl++ {
		if c.levels[lvl] == 0 {
			continue
		}
		base := lrn0 &^ (uint64(1)<<lvl - 1)
		if n, ok := c.index[pack(uint8(lvl), base)]; ok {
			return n.Entry, true
		}
	}
	return Entry{}, false
}

// Insert adds an entry at the MRU position, evicting the LRU entry if the
// cache is full. It returns the evicted entry, if any. Inserting an entry
// that already exists updates it in place (promoting it).
func (c *Cache) Insert(e Entry) (evicted Entry, wasEvicted bool) {
	key := pack(e.Level, e.Base)
	if n, ok := c.index[key]; ok {
		n.Entry = e
		c.touch(n)
		return Entry{}, false
	}
	if c.size == c.capacity {
		lru := c.tail.prev
		c.removeNode(lru)
		evicted, wasEvicted = lru.Entry, true
	}
	n := &node{Entry: e, firstHalf: true}
	c.index[key] = n
	c.pushFront(n)
	c.size++
	c.firstCount++
	c.levels[e.Level]++
	if int(e.Level) > c.maxLevel {
		c.maxLevel = int(e.Level)
	}
	c.rebalance()
	return evicted, wasEvicted
}

// Remove deletes the entry with the given level and base, reporting whether
// it was present.
func (c *Cache) Remove(level uint8, base uint64) bool {
	n, ok := c.index[pack(level, base)]
	if !ok {
		return false
	}
	c.removeNode(n)
	return true
}

// Update rewrites the mapping of an existing entry in place without
// changing LRU order. Returns false if absent.
func (c *Cache) Update(level uint8, base uint64, prn, key uint64) bool {
	// Front fast path: exchanges update the region just accessed, whose
	// entry is almost always the MRU node — skip the map lookup.
	if f := c.head.next; c.size > 0 && f.Level == level && f.Base == base {
		f.Prn = prn
		f.Key = key
		return true
	}
	n, ok := c.index[pack(level, base)]
	if !ok {
		return false
	}
	n.Prn = prn
	n.Key = key
	return true
}

// Entries returns a snapshot of cached entries in MRU-to-LRU order.
func (c *Cache) Entries() []Entry {
	out := make([]Entry, 0, c.size)
	for n := c.head.next; n != c.tail; n = n.next {
		out = append(out, n.Entry)
	}
	return out
}

// removeNode unlinks n and fixes half bookkeeping.
func (c *Cache) removeNode(n *node) {
	if c.mid == n {
		c.mid = n.next
		if c.mid == c.tail {
			c.mid = nil
		}
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	if n.firstHalf {
		c.firstCount--
	}
	c.size--
	c.levels[n.Level]--
	delete(c.index, pack(n.Level, n.Base))
	c.rebalance()
}

// pushFront links n as the MRU node.
func (c *Cache) pushFront(n *node) {
	n.next = c.head.next
	n.prev = c.head
	c.head.next.prev = n
	c.head.next = n
}

// touch promotes n to MRU (LRU policy only), keeping the half split exact.
func (c *Cache) touch(n *node) {
	if c.policy == PolicyFIFO {
		return // FIFO: hits do not reorder
	}
	if c.head.next == n {
		return
	}
	fromSecond := !n.firstHalf
	if c.mid == n {
		c.mid = n.next
		if c.mid == c.tail {
			c.mid = nil
		}
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	c.pushFront(n)
	if fromSecond {
		n.firstHalf = true
		c.firstCount++
	}
	c.rebalance()
}

// rebalance restores the invariant firstCount == ceil(size/2) by demoting
// or promoting nodes at the half boundary. Each caller changes counts by at
// most one, so this loop runs at most once per operation.
func (c *Cache) rebalance() {
	target := (c.size + 1) / 2
	for c.firstCount > target {
		// Demote the last first-half node: it is mid.prev, or the overall
		// tail when there is no second half yet.
		var b *node
		if c.mid != nil {
			b = c.mid.prev
		} else {
			b = c.tail.prev
		}
		b.firstHalf = false
		c.firstCount--
		c.mid = b
	}
	for c.firstCount < target {
		// Promote the first second-half node.
		b := c.mid
		b.firstHalf = true
		c.firstCount++
		c.mid = b.next
		if c.mid == c.tail {
			c.mid = nil
		}
	}
	if c.size == 0 {
		c.mid = nil
	}
}

// Stats exposes the hit counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	FirstHits  uint64
	SecondHits uint64
}

// Stats returns cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, FirstHits: c.firstHits, SecondHits: c.secondHits}
}

// ResetHalfCounters clears the sub-queue hit counters (the split trigger
// samples them per observation interval).
func (c *Cache) ResetHalfCounters() {
	c.firstHits, c.secondHits = 0, 0
}

// HitRate returns the cumulative hit rate (1 when no lookups yet).
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 1
	}
	return float64(c.hits) / float64(t)
}

// AvgRegionLines returns the average region size (in initial-granularity
// units) over cached entries, 0 when empty — the quantity Fig 13/14 plot
// (scaled by the initial granularity).
func (c *Cache) AvgRegionUnits() float64 {
	if c.size == 0 {
		return 0
	}
	var sum uint64
	for n := c.head.next; n != c.tail; n = n.next {
		sum += n.Span()
	}
	return float64(sum) / float64(c.size)
}

// String implements fmt.Stringer.
func (c *Cache) String() string {
	return fmt.Sprintf("cmt{%d/%d entries, hit=%.1f%%}", c.size, c.capacity, 100*c.HitRate())
}

// checkInvariants validates internal bookkeeping (test hook).
func (c *Cache) checkInvariants() error {
	count, first := 0, 0
	sawMid := false
	for n := c.head.next; n != c.tail; n = n.next {
		count++
		if n == c.mid {
			sawMid = true
		}
		if n.firstHalf {
			if sawMid {
				return fmt.Errorf("first-half node after mid")
			}
			first++
		} else if !sawMid && c.mid != nil {
			return fmt.Errorf("second-half node before mid")
		}
	}
	if count != c.size {
		return fmt.Errorf("size %d, counted %d", c.size, count)
	}
	if first != c.firstCount {
		return fmt.Errorf("firstCount %d, counted %d", c.firstCount, first)
	}
	if c.size > 0 && first != (c.size+1)/2 {
		return fmt.Errorf("first half %d, want %d of %d", first, (c.size+1)/2, c.size)
	}
	if c.mid == nil && c.size-first > 0 {
		return fmt.Errorf("mid nil with %d second-half nodes", c.size-first)
	}
	return nil
}
