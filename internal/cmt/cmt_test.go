package cmt

import (
	"testing"

	"nvmwear/internal/rng"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(4)
	if _, ok := c.Lookup(5); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(Entry{Base: 5, Level: 0, Prn: 50, Key: 3})
	e, ok := c.Lookup(5)
	if !ok || e.Prn != 50 || e.Key != 3 {
		t.Fatalf("lookup: %+v ok=%v", e, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLevelCoverage(t *testing.T) {
	c := New(4)
	// A level-2 entry at base 8 covers initial regions 8..11.
	c.Insert(Entry{Base: 8, Level: 2, Prn: 2, Key: 7})
	for lrn := uint64(8); lrn < 12; lrn++ {
		if e, ok := c.Lookup(lrn); !ok || e.Base != 8 {
			t.Fatalf("lrn %d not covered: %+v ok=%v", lrn, e, ok)
		}
	}
	if _, ok := c.Lookup(12); ok {
		t.Fatal("lrn 12 wrongly covered")
	}
	if _, ok := c.Lookup(7); ok {
		t.Fatal("lrn 7 wrongly covered")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := uint64(0); i < 3; i++ {
		c.Insert(Entry{Base: i})
	}
	c.Lookup(0) // 0 becomes MRU; LRU is 1
	ev, was := c.Insert(Entry{Base: 9})
	if !was || ev.Base != 1 {
		t.Fatalf("evicted %+v (was=%v), want base 1", ev, was)
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("evicted entry still present")
	}
}

func TestInsertExistingUpdates(t *testing.T) {
	c := New(2)
	c.Insert(Entry{Base: 1, Prn: 10})
	c.Insert(Entry{Base: 2, Prn: 20})
	if _, was := c.Insert(Entry{Base: 1, Prn: 99}); was {
		t.Fatal("re-insert evicted")
	}
	if e, _ := c.Peek(1); e.Prn != 99 {
		t.Fatal("re-insert did not update")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestRemoveAndUpdate(t *testing.T) {
	c := New(4)
	c.Insert(Entry{Base: 4, Level: 1, Prn: 1, Key: 2})
	if !c.Update(1, 4, 9, 8) {
		t.Fatal("update failed")
	}
	if e, _ := c.Peek(4); e.Prn != 9 || e.Key != 8 {
		t.Fatal("update not applied")
	}
	if !c.Remove(1, 4) {
		t.Fatal("remove failed")
	}
	if c.Remove(1, 4) {
		t.Fatal("double remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatal("len after remove")
	}
	if c.Update(1, 4, 0, 0) {
		t.Fatal("update on absent entry")
	}
}

func TestHalfCounters(t *testing.T) {
	c := New(4)
	for i := uint64(0); i < 4; i++ {
		c.Insert(Entry{Base: i})
	}
	// MRU order: 3,2,1,0. First half = {3,2}.
	c.Lookup(3)
	c.Lookup(2)
	c.Lookup(0)
	st := c.Stats()
	if st.FirstHits != 2 || st.SecondHits != 1 {
		t.Fatalf("half hits: %+v", st)
	}
	c.ResetHalfCounters()
	if st := c.Stats(); st.FirstHits != 0 || st.SecondHits != 0 {
		t.Fatal("reset failed")
	}
}

// referenceLRU is a straightforward slice-based model.
type referenceLRU struct {
	keys []uint64 // MRU first
	cap  int
}

func (r *referenceLRU) lookup(k uint64) (hit bool, firstHalf bool) {
	for i, key := range r.keys {
		if key == k {
			firstHalf = i < (len(r.keys)+1)/2
			copy(r.keys[1:i+1], r.keys[:i])
			r.keys[0] = k
			return true, firstHalf
		}
	}
	return false, false
}

func (r *referenceLRU) insert(k uint64) {
	if hit, _ := r.lookup(k); hit {
		return
	}
	if len(r.keys) == r.cap {
		r.keys = r.keys[:len(r.keys)-1]
	}
	r.keys = append([]uint64{k}, r.keys...)
}

func (r *referenceLRU) remove(k uint64) {
	for i, key := range r.keys {
		if key == k {
			r.keys = append(r.keys[:i], r.keys[i+1:]...)
			return
		}
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	const capacity = 17
	c := New(capacity)
	ref := &referenceLRU{cap: capacity}
	src := rng.New(42)
	for i := 0; i < 50000; i++ {
		k := src.Uint64n(40)
		switch src.Uint64n(10) {
		case 0:
			c.Remove(0, k)
			ref.remove(k)
		case 1, 2, 3:
			c.Insert(Entry{Base: k})
			ref.insert(k)
		default:
			wantHit, wantFirst := ref.lookup(k)
			before := c.Stats()
			_, gotHit := c.Lookup(k)
			after := c.Stats()
			if gotHit != wantHit {
				t.Fatalf("op %d: hit=%v want %v (key %d)", i, gotHit, wantHit, k)
			}
			if gotHit {
				gotFirst := after.FirstHits > before.FirstHits
				if gotFirst != wantFirst {
					t.Fatalf("op %d: firstHalf=%v want %v (key %d, size %d)",
						i, gotFirst, wantFirst, k, c.Len())
				}
			}
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if c.Len() != len(ref.keys) {
			t.Fatalf("op %d: size %d, ref %d", i, c.Len(), len(ref.keys))
		}
	}
}

func TestEntriesOrder(t *testing.T) {
	c := New(3)
	c.Insert(Entry{Base: 1})
	c.Insert(Entry{Base: 2})
	c.Insert(Entry{Base: 3})
	c.Lookup(1)
	es := c.Entries()
	if len(es) != 3 || es[0].Base != 1 || es[1].Base != 3 || es[2].Base != 2 {
		t.Fatalf("order: %+v", es)
	}
}

func TestAvgRegionUnits(t *testing.T) {
	c := New(4)
	if c.AvgRegionUnits() != 0 {
		t.Fatal("empty avg")
	}
	c.Insert(Entry{Base: 0, Level: 0}) // 1 unit
	c.Insert(Entry{Base: 4, Level: 2}) // 4 units
	if got := c.AvgRegionUnits(); got != 2.5 {
		t.Fatalf("avg = %v", got)
	}
}

func TestHitRate(t *testing.T) {
	c := New(2)
	if c.HitRate() != 1 {
		t.Fatal("fresh hit rate")
	}
	c.Insert(Entry{Base: 1})
	c.Lookup(1)
	c.Lookup(2)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}

func TestCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

func TestMixedLevelsSameAddress(t *testing.T) {
	// Caller may briefly have entries at multiple levels; lookup prefers
	// the finest level (level scan order is ascending).
	c := New(4)
	c.Insert(Entry{Base: 4, Level: 2, Prn: 1})
	c.Insert(Entry{Base: 5, Level: 0, Prn: 2})
	e, ok := c.Lookup(5)
	if !ok || e.Level != 0 {
		t.Fatalf("wrong level preferred: %+v", e)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(1 << 15)
	for i := uint64(0); i < 1<<15; i++ {
		c.Insert(Entry{Base: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i) & (1<<15 - 1))
	}
}

func TestFIFOPolicyDoesNotPromote(t *testing.T) {
	c := NewWithPolicy(2, PolicyFIFO)
	c.Insert(Entry{Base: 1})
	c.Insert(Entry{Base: 2})
	c.Lookup(1)              // would promote under LRU
	c.Insert(Entry{Base: 3}) // FIFO evicts 1 (oldest insertion)
	if _, ok := c.Peek(1); ok {
		t.Fatal("FIFO promoted on hit")
	}
	if _, ok := c.Peek(2); !ok {
		t.Fatal("FIFO evicted wrong entry")
	}
}

// BenchmarkPolicyHitRate contrasts LRU vs FIFO hit rates on a skewed
// stream — the ablation justifying the paper's LRU stack.
func BenchmarkPolicyHitRate(b *testing.B) {
	run := func(p Policy) float64 {
		c := NewWithPolicy(256, p)
		src := rng.New(7)
		z := rng.NewZipf(src, 4096, 1.1)
		for i := 0; i < 400000; i++ {
			k := z.Next()
			if _, ok := c.Lookup(k); !ok {
				c.Insert(Entry{Base: k})
			}
		}
		return c.HitRate()
	}
	var lru, fifo float64
	for i := 0; i < b.N; i++ {
		lru = run(PolicyLRU)
		fifo = run(PolicyFIFO)
	}
	b.ReportMetric(100*lru, "LRU_hitPct")
	b.ReportMetric(100*fifo, "FIFO_hitPct")
	if lru <= fifo {
		b.Fatalf("LRU (%v) not better than FIFO (%v) on skewed stream", lru, fifo)
	}
}
