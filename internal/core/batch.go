package core

import (
	"nvmwear/internal/trace"
)

// This file implements the batched epoch-stepped access path for the tiered
// engine (wl.BatchLeveler). The contract is byte-identity with the scalar
// Access loop: batching folds the arithmetic of repeated accesses, it never
// changes which device writes, RNG draws, trigger firings or adaptation
// decisions happen, nor their order.
//
// The fold rests on three facts about the scalar path:
//
//   - Between structural events (exchange, merge, split) a region's mapping
//     is constant, so a run of accesses to one line hits one pma.
//   - A repeated CMT hit on the MRU entry is a pure counter increment: the
//     front node is always in the stack's first half, and promoting the
//     front node is a no-op.
//   - Every deferred action of the scalar loop fires at an exactly
//     computable counter boundary: the data exchange at ctr == ψ*Q, the
//     mode check at requests % CheckEvery == 0. Folding a chunk that stops
//     at the nearest boundary and then running the boundary's scalar-shaped
//     code reproduces the scalar sequence exactly.

// Advance implements wl.BatchLeveler: epochs sized from the swap interval
// of an initial-granularity region (ψ*P demand writes).
func (s *Scheme) Advance(k int) int {
	return clampEpoch(s.cfg.Period*s.p, k)
}

// clampEpoch mirrors wl.ClampEpoch (core cannot import wl's helper without
// widening the existing one-way dependency surface beyond interfaces).
func clampEpoch(interval uint64, k int) int {
	const lo, hi = 64, 4096
	e := hi
	if interval < hi/16 {
		e = int(interval) * 16
	}
	if e < lo {
		e = lo
	}
	if k < e {
		e = k
	}
	if e < 1 {
		e = 1
	}
	return e
}

// AccessBatch implements wl.BatchLeveler: requests are served in order, with
// maximal runs of identical (op, lma) folded through repeatAccess. The
// first access of each run goes through the full scalar Access — it may
// miss the CMT, trigger an exchange, or apply a merge/split — so the folded
// tail always starts from a state where the run's entry is the MRU entry.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		s.Access(op, lma)
		i++
		if i < j {
			i += s.repeatAccess(op, lma, j-i)
		}
	}
	return n
}

// repeatAccess applies up to k further accesses identical to (op, lma) and
// returns how many completed their bookkeeping (k, unless the device died).
// Chunks fold only when the fold is provably the scalar sequence:
//
//   - the MRU entry covers lma's initial region, so every access in the
//     chunk is a first-half CMT hit on that entry (at most one cached entry
//     can cover a region — cached regions are disjoint — so Lookup would
//     find exactly this one);
//   - in ModeSplit — where every scalar access calls trySplit — the
//     covering region is already at level 0 and metadata-fault injection is
//     off, so each per-access trySplit is provably a pure no-op (a level-0
//     region cannot split, and the lookup inside it only becomes observable
//     when the table verifies checksums). Otherwise split-mode accesses are
//     not foldable;
//   - the chunk stops at the nearest trigger boundary (ctr reaching ψ*Q)
//     and check boundary (requests reaching a CheckEvery multiple), where
//     the scalar-shaped boundary code runs.
//
// When a guard fails the access takes one scalar step, guaranteeing
// progress.
func (s *Scheme) repeatAccess(op trace.Op, lma uint64, k int) int {
	lrn0 := lma >> s.pShift
	done := 0
	for done < k {
		if !s.dev.Alive() {
			return done
		}
		e, ok := s.cache.Front()
		if !ok || e.Base != lrn0&^(uint64(1)<<e.Level-1) ||
			(s.mode == ModeSplit && (e.Level != 0 || s.metaFaults)) {
			s.Access(op, lma)
			done++
			continue
		}
		q := s.p << e.Level
		pma := e.Prn*q + ((lma & (q - 1)) ^ e.Key)

		c := uint64(k - done)
		if d := s.cfg.CheckEvery - s.requests%s.cfg.CheckEvery; d < c {
			c = d
		}
		if op == trace.Write {
			if d := s.cfg.Period*q - uint64(s.ctr[e.Base]); d < c {
				c = d
			}
		}

		var applied uint64
		if op == trace.Write {
			served := s.dev.WriteRun(pma, c)
			applied = c
			if served < c {
				applied = served + 1 // the killing write's bookkeeping still runs
			}
			s.stats.DataWrites += applied
		} else {
			applied = s.dev.ReadRun(pma, c)
			s.stats.DataReads += applied
		}
		s.cache.RepeatHits(applied)
		s.stats.CMTHits += applied
		if op == trace.Write {
			s.ctr[e.Base] += uint32(applied)
			if uint64(s.ctr[e.Base]) >= s.cfg.Period*q {
				s.ctr[e.Base] = 0
				if s.mode == ModeMerge {
					if !s.tryMerge(e.Base) {
						s.exchange(e.Base)
					}
				} else {
					s.exchange(e.Base)
				}
			}
		}
		s.window.RecordRun(true, applied)
		s.requests += applied
		if s.requests%s.cfg.CheckEvery == 0 {
			if s.cfg.Adaptive {
				s.check()
				// The boundary access's own post-check mode action. The
				// folded accesses before it had no-op mode actions (Steady
				// always; Merge hits never merge; Split only folds when
				// trySplit cannot act — see the guard above); the mode
				// cannot change mid-chunk because only check() changes it.
				if s.mode == ModeSplit {
					s.trySplit(lrn0)
				}
			} else {
				s.emitSample()
			}
		}
		done += int(applied)
	}
	return done
}
