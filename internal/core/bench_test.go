package core

import (
	"testing"

	"nvmwear/internal/wl"
	"nvmwear/internal/wl/wltest"
)

func benchConfig(adaptive bool) Config {
	return Config{
		Lines:      1 << 14,
		Period:     8,
		CMTEntries: 1 << 12,
		Adaptive:   adaptive,
		Seed:       1,
	}.withDefaults()
}

// BenchmarkAccess measures the fixed-granularity engine (NWL).
func BenchmarkAccess(b *testing.B) {
	wltest.BenchAccess(b, func() wl.Leveler {
		cfg := benchConfig(false)
		return New(wltest.BenchDevice(cfg.DeviceLines()), cfg)
	})
}

// BenchmarkAccessAdaptive measures the self-adaptive engine (SAWL).
func BenchmarkAccessAdaptive(b *testing.B) {
	wltest.BenchAccess(b, func() wl.Leveler {
		cfg := benchConfig(true)
		return New(wltest.BenchDevice(cfg.DeviceLines()), cfg)
	})
}
