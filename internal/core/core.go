// Package core implements the paper's contribution: the tiered wear-level
// architecture with Self-Adaptive Wear Leveling (SAWL), Sec 3.
//
// The architecture (Fig 6) stores the full Integrated Mapping Table (IMT)
// in a reserved area of the NVM, caches recently-used entries in a small
// on-chip Cached Mapping Table (CMT), and wear-levels the translation lines
// themselves through the Global Translation Directory (GTD). The data
// exchange module runs the PCM-S hybrid algorithm (the paper adopts PCM-S
// in its data exchange module, Sec 3.1) at whatever granularity each region
// currently has.
//
// SAWL's novelty is making the wear-leveling granularity adaptive
// (Sec 3.2): when the CMT hit rate stays below a low threshold for a
// settling window, adjacent regions merge (each entry then covers more
// addresses, raising the hit rate); when the hit rate stays high and the
// hits concentrate in the first half of the LRU stack, regions split back
// (finer granularity wears more evenly) — splits are free because the XOR
// intra-region mapping keeps both halves physically contiguous (Fig 9/10).
// With Adaptive=false the engine is exactly the paper's naive tiered
// scheme, NWL-P.
package core

import (
	"fmt"

	"nvmwear/internal/addr"
	"nvmwear/internal/cmt"
	"nvmwear/internal/fault"
	"nvmwear/internal/gtd"
	"nvmwear/internal/imt"
	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Sample is a periodic snapshot passed to Config.OnSample — the data behind
// Figs 12-14 (hit-rate and region-size trajectories).
type Sample struct {
	Requests       uint64  // total requests so far
	HitRate        float64 // observation-window CMT hit rate
	AvgRegionLines float64 // average cached region size in lines
	Mode           Mode    // current adaptation mode
}

// Mode is the adaptation state.
type Mode uint8

// Adaptation modes.
const (
	ModeSteady Mode = iota
	ModeMerge
	ModeSplit
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeMerge:
		return "merge"
	case ModeSplit:
		return "split"
	default:
		return "steady"
	}
}

// Config parameterizes the tiered engine.
type Config struct {
	Lines    uint64 // M: logical data lines (power of two)
	InitGran uint64 // P: initial wear-leveling granularity in lines (default 4)
	// MaxGranLines caps the region size merges can reach (default 256).
	MaxGranLines uint64
	// Period is the data-exchange swapping period ψ: a region of Q lines
	// exchanges after ψ*Q demand writes (default 128, the Sec 4.3/4.4
	// setting).
	Period uint64
	// CMTEntries is the on-chip cache capacity in entries (default 32768 —
	// a 256 KB CMT at 8 B per entry, Table 1).
	CMTEntries int

	// Adaptive enables region merge/split. Off = the naive tiered scheme
	// (NWL) at fixed granularity InitGran.
	Adaptive bool

	// Thresholds and windows (Sec 3.2 and 4.2 defaults).
	LowThreshold      float64 // region-merge threshold (default 0.90)
	HighThreshold     float64 // region-split threshold (default 0.95)
	SubQueueThreshold float64 // LRU sub-queue imbalance (default 0.99)
	ObservationWindow uint64  // SOW (default 1<<22)
	SettlingWindow    uint64  // SSW (default 1<<22)
	CheckEvery        uint64  // hit-rate sampling interval (default 100000)

	// Translation-table plumbing.
	EntriesPerTransLine uint64 // K (default 6)
	GTDGranularity      uint64 // Kt translation lines per GTD region (default 32)
	GTDPeriod           uint64 // GTD swapping period (default 128)

	Seed uint64

	// Fault enables metadata-fault injection on the NVM-resident mapping
	// table (internal/fault, StreamMetadata substream): translation-line
	// writes may corrupt one stored entry, detected by per-entry checksums
	// on fetch and rebuilt from the engine's inverse table. The zero value
	// disables injection and adds no work to any path.
	Fault fault.Config

	// OnSample, when set, is invoked every CheckEvery requests.
	OnSample func(Sample)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.InitGran == 0 {
		c.InitGran = 4
	}
	if c.MaxGranLines == 0 {
		c.MaxGranLines = 256
	}
	if c.Period == 0 {
		c.Period = 128
	}
	if c.CMTEntries == 0 {
		c.CMTEntries = 32768
	}
	if c.LowThreshold == 0 {
		c.LowThreshold = 0.90
	}
	if c.HighThreshold == 0 {
		c.HighThreshold = 0.95
	}
	if c.SubQueueThreshold == 0 {
		c.SubQueueThreshold = 0.99
	}
	if c.ObservationWindow == 0 {
		c.ObservationWindow = 1 << 22
	}
	if c.SettlingWindow == 0 {
		c.SettlingWindow = 1 << 22
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 100000
	}
	if c.EntriesPerTransLine == 0 {
		c.EntriesPerTransLine = 6
	}
	if c.GTDGranularity == 0 {
		c.GTDGranularity = 32
	}
	if c.GTDPeriod == 0 {
		c.GTDPeriod = 128
	}
	return c
}

// TranslationArea returns the reserved-space geometry implied by the
// configuration: the number of translation lines and the physical lines
// they occupy once rounded to GTD regions.
func (c Config) TranslationArea() (transLines, physLines uint64) {
	c = c.withDefaults()
	tl := imt.TranslationLines(c.Lines, c.InitGran, c.EntriesPerTransLine)
	g := gtd.Config{Lines: tl, Granularity: c.GTDGranularity}
	return tl, g.PhysLines()
}

// DeviceLines returns the total physical lines the engine needs: the data
// space plus the reserved translation area.
func (c Config) DeviceLines() uint64 {
	_, phys := c.TranslationArea()
	return c.Lines + phys
}

// Scheme is the tiered engine bound to a device.
type Scheme struct {
	cfg      Config
	dev      *nvm.Device
	p        uint64 // initial granularity in lines
	pShift   uint   // log2(p): the hot path shifts instead of dividing
	nRegions uint64 // R0: initial-granularity regions
	maxLevel uint8

	table *imt.Table
	dir   *gtd.Directory
	cache *cmt.Cache
	rev   []uint32 // physical initial slot -> logical initial region
	ctr   []uint32 // demand-write counter, valid at each region's base

	src    *rng.Source
	bufA   []uint64
	bufB   []uint64
	revBuf []uint32 // relocateOccupants snapshot scratch

	window   *metrics.HitWindow
	mode     Mode
	lowRun   uint64
	highRun  uint64
	requests uint64

	// metaFaults records whether the IMT runs with fault injection armed;
	// the batch path may only fold split-mode accesses when it is off
	// (trySplit's table lookup is observable under injection).
	metaFaults bool

	stats  wl.Stats
	merges uint64
	splits uint64
}

// New creates the engine over dev, which must provide cfg.DeviceLines()
// physical lines.
func New(dev *nvm.Device, cfg Config) *Scheme {
	cfg = cfg.withDefaults()
	if !addr.IsPow2(cfg.Lines) || !addr.IsPow2(cfg.InitGran) {
		panic("core: Lines and InitGran must be powers of two")
	}
	if cfg.InitGran > cfg.Lines {
		panic("core: granularity exceeds memory")
	}
	if !addr.IsPow2(cfg.MaxGranLines) || cfg.MaxGranLines < cfg.InitGran {
		panic("core: MaxGranLines must be a power of two >= InitGran")
	}
	if dev.Lines() < cfg.DeviceLines() {
		panic("core: device smaller than data + translation area")
	}
	transLines, _ := cfg.TranslationArea()
	dir := gtd.New(dev, gtd.Config{
		Base:        cfg.Lines,
		Lines:       transLines,
		Granularity: cfg.GTDGranularity,
		Period:      cfg.GTDPeriod,
		Seed:        cfg.Seed ^ 0x61d,
	})
	nRegions := cfg.Lines / cfg.InitGran
	maxLevel := uint8(addr.Log2(cfg.MaxGranLines / cfg.InitGran))
	// A region cannot outgrow the memory itself.
	if uint64(1)<<maxLevel > nRegions {
		maxLevel = uint8(addr.Log2(nRegions))
	}
	s := &Scheme{
		cfg:      cfg,
		dev:      dev,
		p:        cfg.InitGran,
		pShift:   uint(addr.Log2(cfg.InitGran)),
		nRegions: nRegions,
		maxLevel: maxLevel,
		table:    imt.New(dir, cfg.Lines, cfg.InitGran, cfg.EntriesPerTransLine),
		dir:      dir,
		cache:    cmt.New(cfg.CMTEntries),
		rev:      make([]uint32, nRegions),
		ctr:      make([]uint32, nRegions),
		src:      rng.New(cfg.Seed ^ 0x5a317a5317a53),
		bufA:     make([]uint64, cfg.MaxGranLines),
		bufB:     make([]uint64, cfg.MaxGranLines),
		revBuf:   make([]uint32, cfg.MaxGranLines),
		window:   metrics.NewHitWindow(cfg.ObservationWindow, 64),
	}
	for i := uint64(0); i < nRegions; i++ {
		s.rev[i] = uint32(i)
	}
	if inj := fault.NewInjector(cfg.Fault, fault.StreamMetadata); inj != nil {
		s.table.EnableFaults(inj, s.rebuildEntry)
		s.metaFaults = true
	}
	return s
}

// rebuildEntry recovers a corrupted IMT entry from the inverse table: it
// scans rev for any physical slot holding a sub-entry of the region
// covering idx, derives the region's physical number and the high (slot-
// level) key bits from that slot, and brute-forces the low
// (intra-initial-granularity) key bits — which rev cannot see — against the
// stored checksum. ok is false when no candidate reproduces the checksum;
// the returned fallback (low key bits zero) is still a valid bijection.
func (s *Scheme) rebuildEntry(idx uint64, level uint8, want uint16) (uint64, bool) {
	span := uint64(1) << level
	base := idx &^ (span - 1)
	q := s.p << level
	for slot := uint64(0); slot < s.nRegions; slot++ {
		lrn := uint64(s.rev[slot])
		if lrn < base || lrn >= base+span {
			continue
		}
		sub := lrn - base
		prn := slot / span
		keyHigh := (slot % span) ^ sub
		d0 := prn*q + keyHigh*s.p
		for k := uint64(0); k < s.p; k++ {
			if imt.EntrySum(idx, d0+k, level) == want {
				return d0 + k, true
			}
		}
		return d0, false
	}
	return base * s.p, false // unreachable while rev is consistent
}

// lookup resolves the mapping entry covering initial region lrn0, going to
// the IMT (and paying a translation-line read) on a CMT miss. It reports
// whether the lookup hit the cache.
func (s *Scheme) lookup(lrn0 uint64) (cmt.Entry, bool) {
	if e, ok := s.cache.Lookup(lrn0); ok {
		s.stats.CMTHits++
		return e, true
	}
	s.stats.CMTMisses++
	ent := s.table.Read(lrn0)
	span := uint64(1) << ent.Level
	qShift := s.pShift + uint(ent.Level)
	e := cmt.Entry{
		Base:  lrn0 &^ (span - 1),
		Level: ent.Level,
		Prn:   ent.D >> qShift,
		Key:   ent.D & (uint64(1)<<qShift - 1),
	}
	s.cache.Insert(e)
	return e, false
}

// Translate implements wl.Leveler (no side effects).
func (s *Scheme) Translate(lma uint64) uint64 {
	return s.table.Translate(lma)
}

// Access implements wl.Leveler: the 7-step workflow of Fig 11 plus the
// write-triggered data exchange and the adaptation hooks.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	lrn0 := lma >> s.pShift
	e, hit := s.lookup(lrn0)
	q := s.p << e.Level
	pma := e.Prn*q + ((lma & (q - 1)) ^ e.Key)

	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
	} else {
		s.stats.DataWrites++
		s.dev.Write(pma)
		s.ctr[e.Base]++
		if uint64(s.ctr[e.Base]) >= s.cfg.Period*q {
			s.ctr[e.Base] = 0
			// Sec 3.2 item 3: a pending region-merge is performed together
			// with the wear-leveling trigger, so merge traffic is bounded
			// by the swapping period instead of the miss rate.
			if s.mode == ModeMerge {
				if !s.tryMerge(e.Base) {
					s.exchange(e.Base)
				}
			} else {
				s.exchange(e.Base)
			}
		}
	}
	s.adapt(hit, lrn0)
	return pma
}

// adapt drives the observation window, the mode state machine, and the
// lazy merge/split application (Sec 3.2 item 3).
func (s *Scheme) adapt(hit bool, lrn0 uint64) {
	s.window.Record(hit)
	s.requests++
	if !s.cfg.Adaptive {
		if s.requests%s.cfg.CheckEvery == 0 {
			s.emitSample()
		}
		return
	}
	if s.requests%s.cfg.CheckEvery == 0 {
		s.check()
	}
	// Region merges apply lazily: on the miss that faulted the region in
	// (Sec 3.2 item 3 — merging only touches cached regions, and the
	// merged data is staged in the controller so demand requests are
	// served from the cached copy while the merge's writes drain in the
	// background) and piggybacked on the data-exchange trigger (see
	// Access). A region merges at most maxLevel times, so total merge
	// traffic is bounded. Splits are free (no data movement), so they
	// apply lazily on access.
	switch s.mode {
	case ModeMerge:
		if !hit {
			s.tryMerge(lrn0)
		}
	case ModeSplit:
		s.trySplit(lrn0)
	}
}

// check samples the runtime hit rate and updates the adaptation mode.
func (s *Scheme) check() {
	rate := s.window.Rate()
	st := s.cache.Stats()
	halves := st.FirstHits + st.SecondHits
	firstShare := 1.0
	if halves > 0 {
		firstShare = float64(st.FirstHits) / float64(halves)
	}
	imbalanced := firstShare >= s.cfg.SubQueueThreshold ||
		(1-firstShare) >= s.cfg.SubQueueThreshold
	s.cache.ResetHalfCounters()

	if rate < s.cfg.LowThreshold {
		s.lowRun += s.cfg.CheckEvery
	} else {
		s.lowRun = 0
	}
	if rate > s.cfg.HighThreshold && imbalanced {
		s.highRun += s.cfg.CheckEvery
	} else {
		s.highRun = 0
	}
	switch {
	case s.lowRun >= s.cfg.SettlingWindow:
		s.mode = ModeMerge
	case s.highRun >= s.cfg.SettlingWindow:
		s.mode = ModeSplit
	default:
		s.mode = ModeSteady
	}
	s.emitSample()
}

// emitSample invokes the sampling hook.
func (s *Scheme) emitSample() {
	if s.cfg.OnSample == nil {
		return
	}
	s.cfg.OnSample(Sample{
		Requests:       s.requests,
		HitRate:        s.window.Rate(),
		AvgRegionLines: s.cache.AvgRegionUnits() * float64(s.p),
		Mode:           s.mode,
	})
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string {
	if s.cfg.Adaptive {
		return "SAWL"
	}
	return fmt.Sprintf("NWL-%d", s.p)
}

// Stats implements wl.Leveler, folding GTD traffic into the table counters.
func (s *Scheme) Stats() wl.Stats {
	st := s.stats
	g := s.dir.Stats()
	st.TableWrites = g.Writes
	st.SwapWrites += g.SwapWrites // GTD exchanges are demand-blocking table maintenance
	cs := s.cache.Stats()
	st.CMTHits = cs.Hits
	st.CMTMisses = cs.Misses
	fs := s.table.FaultStats()
	st.MetaFaults = fs.Corruptions
	st.MetaRebuilds = fs.Rebuilds
	return st
}

// InverseTranslate maps a physical data line back to the logical line
// currently stored there, using the inverse table. It is the exact inverse
// of Translate (tests and the fuzz harness rely on this).
func (s *Scheme) InverseTranslate(pma uint64) uint64 {
	slot := pma / s.p
	lrn0 := uint64(s.rev[slot])
	base, _, e := s.table.Region(lrn0)
	q := s.p << e.Level
	prn := e.D / q
	key := e.D % q
	off := (pma - prn*q) ^ key
	return base*s.p + off
}

// Merges returns the number of region-merge operations performed.
func (s *Scheme) Merges() uint64 { return s.merges }

// Splits returns the number of region-split operations performed.
func (s *Scheme) Splits() uint64 { return s.splits }

// Mode returns the current adaptation mode.
func (s *Scheme) CurrentMode() Mode { return s.mode }

// AvgRegionLines returns the average cached region size in lines.
func (s *Scheme) AvgRegionLines() float64 {
	return s.cache.AvgRegionUnits() * float64(s.p)
}

// OverheadBits implements wl.Leveler: CMT entries plus the GTD table. Each
// CMT entry carries the lrn tag, level, prn and key — bounded by
// 2*log2(M) + levelBits; we charge a hardware-realistic 64 bits.
func (s *Scheme) OverheadBits() uint64 {
	const entryBits = 64
	return uint64(s.cfg.CMTEntries)*entryBits + s.dir.OverheadBits()
}

// Partitions implements wl.Partitionable: data exchange and region merging
// stay inside one maximum-granularity region (p << maxLevel lines), so the
// scheme is a product of independent units at that granularity. Sharding is
// exact when these units divide evenly across shards (each shard gets its
// own CMT/GTD — the per-bank-controller model).
func (s *Scheme) Partitions() uint64 { return s.cfg.Lines / (s.p << s.maxLevel) }

// PartitionExact implements wl.Partitionable: see Partitions.
func (s *Scheme) PartitionExact() bool { return true }

// Table exposes the IMT (read-only use by tests and the verifier).
func (s *Scheme) Table() *imt.Table { return s.table }

// CheckConsistency validates the engine's internal invariants: IMT level
// encoding, rev-map agreement, and CMT coherence with the IMT. Tests call
// it after stress runs.
func (s *Scheme) CheckConsistency() error {
	// With metadata faults enabled, scrub first: corruption injected since
	// the last fetch of an entry is by design only detected on fetch, and
	// the audit below reads the raw arrays.
	s.table.Scrub()
	if err := s.table.VerifyLevels(); err != nil {
		return err
	}
	// rev must be the inverse of the region mapping at initial granularity.
	for i := uint64(0); i < s.nRegions; i++ {
		base, _, e := s.table.Region(i)
		if i != base {
			continue
		}
		q := s.p << e.Level
		prn := e.D / q
		key := e.D % q
		keyHigh := (key &^ (s.p - 1)) / s.p
		span := uint64(1) << e.Level
		for sub := uint64(0); sub < span; sub++ {
			slot := prn*span + (sub ^ keyHigh)
			if uint64(s.rev[slot]) != base+sub {
				return fmt.Errorf("core: rev[%d] = %d, want %d (region %d level %d)",
					slot, s.rev[slot], base+sub, base, e.Level)
			}
		}
	}
	// Every cached entry must match the IMT.
	for _, ce := range s.cache.Entries() {
		ent := s.table.Get(ce.Base)
		if ent.Level != ce.Level {
			return fmt.Errorf("core: CMT level %d != IMT level %d at base %d",
				ce.Level, ent.Level, ce.Base)
		}
		q := s.p << ent.Level
		if ce.Prn != ent.D/q || ce.Key != ent.D%q {
			return fmt.Errorf("core: CMT entry stale at base %d", ce.Base)
		}
	}
	return nil
}

// ForceMerge merges the region covering initial-region index lrn0 with its
// buddy regardless of the adaptation mode (test/ablation hook). It reports
// whether a merge happened.
func (s *Scheme) ForceMerge(lrn0 uint64) bool { return s.tryMerge(lrn0) }

// ForceSplit splits the region covering lrn0 regardless of the adaptation
// mode (test/ablation hook).
func (s *Scheme) ForceSplit(lrn0 uint64) { s.trySplit(lrn0) }

// ForceExchange triggers the data exchange for the region covering lrn0
// regardless of its write counter (test/ablation hook).
func (s *Scheme) ForceExchange(lrn0 uint64) { s.exchange(lrn0) }

// MergeAllOnce performs the naive stop-the-world alternative to lazy
// merging that Sec 3.2 item 3 argues against: it merges every region one
// level in a single burst, and returns the number of line writes the burst
// cost. The lazy scheme spreads the same work across accesses instead of
// stalling the system; BenchmarkAblation_LazyMerge contrasts the two.
func (s *Scheme) MergeAllOnce() uint64 {
	st := s.stats
	before := st.MergeWrites + st.SwapWrites
	for base := uint64(0); base < s.nRegions; {
		b, span, e := s.table.Region(base)
		_ = b
		if e.Level < s.maxLevel {
			s.tryMerge(base)
			_, span, _ = s.table.Region(base)
		}
		base += span
	}
	st = s.stats
	return st.MergeWrites + st.SwapWrites - before
}
