package core

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

// newScheme builds a TrackData device + engine for testing. t may be nil
// (property tests construct schemes inside quick.Check closures).
func newScheme(t *testing.T, cfg Config) (*nvm.Device, *Scheme) {
	if t != nil {
		t.Helper()
	}
	cfg = cfg.withDefaults()
	dev := nvm.New(nvm.Config{
		Lines:     cfg.DeviceLines(),
		Endurance: 1 << 30,
		TrackData: true,
	})
	return dev, New(dev, cfg)
}

func small(adaptive bool) Config {
	return Config{
		Lines:        1 << 10,
		InitGran:     4,
		MaxGranLines: 64,
		Period:       4,
		CMTEntries:   32,
		Adaptive:     adaptive,
		// Aggressive adaptation windows so tests exercise merge/split fast.
		ObservationWindow: 1 << 10,
		SettlingWindow:    1 << 10,
		CheckEvery:        256,
		Seed:              7,
	}
}

func TestInitialIdentityMapping(t *testing.T) {
	_, s := newScheme(t, small(false))
	for lma := uint64(0); lma < 1<<10; lma++ {
		if s.Translate(lma) != lma {
			t.Fatalf("initial Translate(%d) != identity", lma)
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	_, nwl := newScheme(t, small(false))
	if nwl.Name() != "NWL-4" {
		t.Fatalf("name %q", nwl.Name())
	}
	_, sawl := newScheme(t, small(true))
	if sawl.Name() != "SAWL" {
		t.Fatalf("name %q", sawl.Name())
	}
}

func TestNWLBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(t, small(false))
	wltest.Exercise(t, dev, s, 30000, 11)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Remaps == 0 {
		t.Fatal("no data exchanges triggered")
	}
}

func TestSAWLBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(t, small(true))
	wltest.Exercise(t, dev, s, 60000, 13)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSAWLMergesUnderLowHitRate(t *testing.T) {
	// A footprint far larger than CMT reach at the initial granularity
	// drives the hit rate down; SAWL must respond by merging.
	cfg := small(true)
	cfg.CMTEntries = 16
	dev, s := newScheme(t, cfg)
	wltest.Fill(dev, s)
	src := rng.New(5)
	for i := 0; i < 200000; i++ {
		s.Access(trace.Write, src.Uint64n(1<<10))
	}
	if s.Merges() == 0 {
		t.Fatalf("no merges despite hit rate %.2f", s.Stats().HitRate())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestSAWLImprovesHitRateOverNWL(t *testing.T) {
	run := func(adaptive bool) float64 {
		cfg := small(adaptive)
		cfg.CMTEntries = 16
		cfg.Period = 64
		dev, s := newScheme(t, cfg)
		src := rng.New(21)
		z := rng.NewZipf(src, 1<<10, 0.9)
		var hits, total uint64
		for i := 0; i < 300000; i++ {
			s.Access(trace.Write, z.Next())
		}
		st := s.Stats()
		hits, total = st.CMTHits, st.CMTHits+st.CMTMisses
		_ = dev
		return float64(hits) / float64(total)
	}
	nwl := run(false)
	sawl := run(true)
	if sawl <= nwl {
		t.Fatalf("SAWL hit rate %.3f not above NWL %.3f", sawl, nwl)
	}
}

func TestSAWLSplitsWhenHitRateHighAndImbalanced(t *testing.T) {
	cfg := small(true)
	cfg.CMTEntries = 64
	dev, s := newScheme(t, cfg)
	wltest.Fill(dev, s)
	src := rng.New(31)
	// Phase 1: miss-heavy traffic to force merges.
	for i := 0; i < 150000; i++ {
		s.Access(trace.Write, src.Uint64n(1<<10))
	}
	merges := s.Merges()
	if merges == 0 {
		t.Skip("workload did not push hit rate below merge threshold")
	}
	// Phase 2: tiny hot set -> hit rate ~1, hits all in the first LRU half.
	for i := 0; i < 200000; i++ {
		s.Access(trace.Write, uint64(i)%64)
	}
	if s.Splits() == 0 {
		t.Fatalf("no splits; mode=%v hit=%.3f", s.CurrentMode(), s.Stats().HitRate())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestMergeDirectly(t *testing.T) {
	dev, s := newScheme(t, small(true))
	wltest.Fill(dev, s)
	// Merge regions 0 and 1.
	s.tryMerge(0)
	if s.Merges() != 1 {
		t.Fatal("merge not performed")
	}
	base, span, e := s.table.Region(0)
	if base != 0 || span != 2 || e.Level != 1 {
		t.Fatalf("merged region: base=%d span=%d level=%d", base, span, e.Level)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestMergeChainToMaxLevel(t *testing.T) {
	dev, s := newScheme(t, small(true))
	wltest.Fill(dev, s)
	// Repeated merges on region 0: 4 -> 8 -> 16 -> 32 -> 64 lines (max).
	for i := 0; i < 10; i++ {
		s.tryMerge(0)
		if err := s.CheckConsistency(); err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
	}
	_, _, e := s.table.Region(0)
	if wantLevel := uint8(4); e.Level != wantLevel { // 64 lines / gran 4
		t.Fatalf("level %d after merge chain, want %d", e.Level, wantLevel)
	}
	// Further merges must be refused at the cap.
	m := s.Merges()
	s.tryMerge(0)
	if s.Merges() != m {
		t.Fatal("merge beyond MaxGranLines")
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestMergeNormalizesBuddyLevel(t *testing.T) {
	dev, s := newScheme(t, small(true))
	wltest.Fill(dev, s)
	s.tryMerge(0) // regions {0,1} now level 1
	m := s.Merges()
	// Region {0,1}'s buddy {2,3} is still two level-0 regions; merging
	// region 0 again must first merge 2+3, then 0..3 — two merges.
	if !s.tryMerge(0) {
		t.Fatal("merge refused")
	}
	if s.Merges() != m+2 {
		t.Fatalf("merge chain: %d merges, want %d", s.Merges(), m+2)
	}
	_, span, _ := s.table.Region(0)
	if span != 4 {
		t.Fatalf("span %d", span)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestSplitIsFree(t *testing.T) {
	dev, s := newScheme(t, small(true))
	wltest.Fill(dev, s)
	s.tryMerge(0)
	preSwap := s.Stats().SwapWrites
	preWear := dev.Stats().TotalWrites
	s.trySplit(0)
	if s.Splits() != 1 {
		t.Fatal("split not performed")
	}
	if s.Stats().SwapWrites != preSwap {
		t.Fatal("split moved data (swap writes changed)")
	}
	// Only translation-line writes may have occurred.
	tableDelta := dev.Stats().TotalWrites - preWear
	if tableDelta > 4 {
		t.Fatalf("split cost %d device writes", tableDelta)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestSplitAfterExchangeRoundTrips(t *testing.T) {
	// merge -> exchange (re-key + relocate) -> split -> integrity.
	dev, s := newScheme(t, small(true))
	wltest.Fill(dev, s)
	s.tryMerge(8)
	s.exchange(8)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	s.trySplit(8)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestExchangeDisplacesMergedOccupant(t *testing.T) {
	// Build a large merged region, then exchange a small region into its
	// physical block: the occupant must be split and relocated correctly.
	dev, s := newScheme(t, small(true))
	wltest.Fill(dev, s)
	s.tryMerge(0)
	s.tryMerge(2)
	s.tryMerge(0) // region 0..3, 16 lines
	// Exchange region 16 repeatedly until it lands somewhere occupied by
	// the big region (random target; force determinism by many tries).
	for i := 0; i < 64; i++ {
		s.exchange(16 + uint64(i%4)*4/4)
		if err := s.CheckConsistency(); err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestRAADispersedAcrossDevice(t *testing.T) {
	cfg := small(false)
	cfg.Period = 2
	dev, s := newScheme(t, cfg)
	wltest.Fill(dev, s)
	touched := make(map[uint64]bool)
	for i := 0; i < 50000; i++ {
		touched[s.Access(trace.Write, 13)] = true
	}
	if len(touched) < 100 {
		t.Fatalf("RAA landed on only %d distinct lines", len(touched))
	}
	_ = dev
}

func TestTranslationTableWearIsAccounted(t *testing.T) {
	cfg := small(false)
	cfg.Period = 2
	dev, s := newScheme(t, cfg)
	for i := 0; i < 20000; i++ {
		s.Access(trace.Write, uint64(i)%(1<<10))
	}
	st := s.Stats()
	if st.TableWrites == 0 {
		t.Fatal("no table writes recorded")
	}
	// Reserved-area lines must show wear.
	worn := 0
	for _, w := range dev.WearCounts()[1<<10:] {
		if w > 0 {
			worn++
		}
	}
	if worn == 0 {
		t.Fatal("reserved area unworn despite table writes")
	}
}

func TestCMTMissPathReadsIMT(t *testing.T) {
	cfg := small(false)
	cfg.CMTEntries = 2
	dev, s := newScheme(t, cfg)
	s.Access(trace.Read, 0)
	s.Access(trace.Read, 512)
	s.Access(trace.Read, 900)
	s.Access(trace.Read, 0) // evicted by now (capacity 2)
	st := s.Stats()
	if st.CMTMisses < 3 {
		t.Fatalf("misses = %d", st.CMTMisses)
	}
	if dev.Stats().TotalReads < 4 {
		t.Fatal("IMT reads not accounted")
	}
}

func TestOverheadBitsAndAccessors(t *testing.T) {
	_, s := newScheme(t, small(true))
	if s.OverheadBits() == 0 {
		t.Fatal("zero overhead")
	}
	if s.Lines() != 1<<10 {
		t.Fatal("lines")
	}
	if s.Table() == nil {
		t.Fatal("table accessor")
	}
	if s.CurrentMode() != ModeSteady {
		t.Fatal("fresh mode")
	}
	if ModeMerge.String() != "merge" || ModeSplit.String() != "split" || ModeSteady.String() != "steady" {
		t.Fatal("mode strings")
	}
}

func TestOnSampleFires(t *testing.T) {
	cfg := small(true)
	var samples []Sample
	cfg.OnSample = func(s Sample) { samples = append(samples, s) }
	_, s := newScheme(t, cfg)
	for i := 0; i < 3000; i++ {
		s.Access(trace.Write, uint64(i)%64)
	}
	if len(samples) != 3000/int(cfg.withDefaults().CheckEvery) {
		t.Fatalf("%d samples", len(samples))
	}
	if samples[0].Requests == 0 || samples[0].AvgRegionLines == 0 {
		t.Fatalf("sample contents: %+v", samples[0])
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{Lines: 1 << 20}.withDefaults()
	tl, phys := cfg.TranslationArea()
	if tl == 0 || phys < tl {
		t.Fatalf("translation area: %d lines, %d phys", tl, phys)
	}
	if cfg.DeviceLines() != cfg.Lines+phys {
		t.Fatal("DeviceLines")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 64, Endurance: 1})
	for _, cfg := range []Config{
		{Lines: 63},
		{Lines: 1 << 10, InitGran: 3},
		{Lines: 4, InitGran: 8},
		{Lines: 1 << 10, MaxGranLines: 2},
		{Lines: 1 << 20}, // device too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}

// Property-style stress: random interleaving of accesses, explicit merges,
// splits and exchanges, with invariants checked throughout.
func TestStructuralOperationStress(t *testing.T) {
	dev, s := newScheme(t, small(true))
	wltest.Fill(dev, s)
	src := rng.New(77)
	for i := 0; i < 3000; i++ {
		r := src.Uint64n(100)
		lrn := src.Uint64n(1 << 8) // initial region index
		switch {
		case r < 10:
			s.tryMerge(lrn)
		case r < 20:
			s.trySplit(lrn)
		case r < 30:
			s.exchange(lrn)
		default:
			op := trace.Read
			if src.Bool(0.6) {
				op = trace.Write
			}
			s.Access(op, src.Uint64n(1<<10))
		}
		if i%100 == 0 {
			if err := s.CheckConsistency(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			wltest.CheckBijection(t, dev, s)
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}
