package core

import (
	"testing"

	"nvmwear/internal/fault"
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
	"nvmwear/internal/wl/wltest"
)

// faultSmall is small() plus an aggressive metadata-corruption rate.
func faultSmall(adaptive bool, rate float64) Config {
	cfg := small(adaptive)
	cfg.Fault = fault.Config{MetadataRate: rate, Seed: 17}
	return cfg
}

func TestMetadataCorruptionDetectedAndRebuilt(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		cfg := faultSmall(adaptive, 0.2)
		dev := nvm.New(nvm.Config{Lines: cfg.withDefaults().DeviceLines(),
			Endurance: 1 << 30, TrackData: true})
		s := New(dev, cfg)
		// Heavy write traffic triggers exchanges -> table writes -> injected
		// corruption; subsequent fetches must detect and rebuild.
		wltest.Exercise(t, dev, s, 30000, 19)
		st := s.Stats()
		if st.MetaFaults == 0 {
			t.Fatal("no metadata corruption detected at rate 0.2")
		}
		if st.MetaRebuilds != st.MetaFaults {
			t.Fatalf("rebuilds %d != detections %d", st.MetaRebuilds, st.MetaFaults)
		}
		// The mapping must still be a bijection after every rebuild.
		seen := make([]bool, s.Lines())
		for lma := uint64(0); lma < s.Lines(); lma++ {
			pma := s.Translate(lma)
			if seen[pma] {
				t.Fatalf("adaptive=%v: mapping lost bijectivity at pma %d", adaptive, pma)
			}
			seen[pma] = true
			if back := s.InverseTranslate(pma); back != lma {
				t.Fatalf("adaptive=%v: round trip %d -> %d -> %d", adaptive, lma, pma, back)
			}
		}
	}
}

func TestMetadataRebuildRestoresExactEntry(t *testing.T) {
	// Directly corrupt one entry and verify the next fetch restores the
	// exact pre-corruption word (key low bits recovered via checksum).
	cfg := faultSmall(true, 1e-9) // injector armed but effectively silent
	dev := nvm.New(nvm.Config{Lines: cfg.withDefaults().DeviceLines(),
		Endurance: 1 << 30, TrackData: true})
	s := New(dev, cfg)
	// Shuffle the mapping so entries carry nontrivial prn/key.
	for i := uint64(0); i < 64; i++ {
		s.ForceExchange(i % (s.Lines() / s.cfg.InitGran))
	}
	s.ForceMerge(0)

	tb := s.Table()
	want := tb.Get(3)
	tb.CorruptEntryForTest(3)
	got := tb.Get(3) // fetch detects the mismatch and rebuilds
	if got != want {
		t.Fatalf("rebuilt entry %+v, want %+v", got, want)
	}
	fs := tb.FaultStats()
	if fs.Corruptions != 1 || fs.Rebuilds != 1 || fs.Mismatches != 0 {
		t.Fatalf("fault stats %+v", fs)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataFaultsDeterministicBySeed(t *testing.T) {
	run := func() (wl.Stats, error) {
		cfg := faultSmall(true, 0.1)
		dev := nvm.New(nvm.Config{Lines: cfg.withDefaults().DeviceLines(),
			Endurance: 1 << 30})
		s := New(dev, cfg)
		for i := uint64(0); i < 20000; i++ {
			s.Access(trace.Write, (i*2654435761)%s.Lines())
		}
		return s.Stats(), s.CheckConsistency()
	}
	a, errA := run()
	b, errB := run()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a != b {
		t.Fatalf("same seed, different fault history:\n%+v\n%+v", a, b)
	}
	if a.MetaFaults == 0 {
		t.Fatal("no metadata faults at rate 0.1")
	}
}
