package core

import (
	"testing"

	"nvmwear/internal/nvm"
)

// FuzzRecover feeds arbitrary bytes to the checkpoint decoder: it must
// either reject them or produce a fully consistent engine — never panic,
// never accept an inconsistent mapping.
func FuzzRecover(f *testing.F) {
	cfg := Config{
		Lines: 1 << 8, InitGran: 4, MaxGranLines: 32,
		Period: 16, CMTEntries: 16, Adaptive: true, Seed: 1,
	}.withDefaults()
	mk := func() *nvm.Device {
		return nvm.New(nvm.Config{Lines: cfg.DeviceLines(), Endurance: 1 << 30})
	}
	// Seed with a valid checkpoint and mutations of it.
	dev := mk()
	s := New(dev, cfg)
	s.ForceMerge(0)
	s.ForceExchange(8)
	valid := s.Checkpoint()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[90] ^= 0x5a
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Recover(mk(), cfg, data)
		if err != nil {
			return // rejected: fine
		}
		if err := rec.CheckConsistency(); err != nil {
			t.Fatalf("accepted checkpoint yields inconsistent engine: %v", err)
		}
	})
}
