package core

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
)

// FuzzRecover feeds arbitrary bytes to the checkpoint decoder: it must
// either reject them or produce a fully consistent engine — never panic,
// never accept an inconsistent mapping.
func FuzzRecover(f *testing.F) {
	cfg := Config{
		Lines: 1 << 8, InitGran: 4, MaxGranLines: 32,
		Period: 16, CMTEntries: 16, Adaptive: true, Seed: 1,
	}.withDefaults()
	mk := func() *nvm.Device {
		return nvm.New(nvm.Config{Lines: cfg.DeviceLines(), Endurance: 1 << 30})
	}
	// Seed with a valid checkpoint and mutations of it.
	dev := mk()
	s := New(dev, cfg)
	s.ForceMerge(0)
	s.ForceExchange(8)
	valid := s.Checkpoint()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[90] ^= 0x5a
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Recover(mk(), cfg, data)
		if err != nil {
			return // rejected: fine
		}
		if err := rec.CheckConsistency(); err != nil {
			t.Fatalf("accepted checkpoint yields inconsistent engine: %v", err)
		}
	})
}

// FuzzTranslateRoundTrip drives the engine through an arbitrary sequence of
// remap operations (exchanges, merges, splits, demand writes) and asserts
// the mapping stays a bijection: logical -> physical -> logical is the
// identity for every line, via the inverse table.
func FuzzTranslateRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x10, 0x41, 0x22, 0x93, 0x07})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x01, 0x02, 0x03, 0x81, 0x44})

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{
			Lines: 1 << 8, InitGran: 4, MaxGranLines: 64,
			Period: 4, CMTEntries: 16, Adaptive: true, Seed: 5,
		}.withDefaults()
		dev := nvm.New(nvm.Config{Lines: cfg.DeviceLines(), Endurance: 1 << 30, TrackData: true})
		s := New(dev, cfg)

		nRegions := cfg.Lines / cfg.InitGran
		for i := 0; i+1 < len(data); i += 2 {
			idx := uint64(data[i+1]) % nRegions
			switch data[i] % 4 {
			case 0:
				s.ForceExchange(idx)
			case 1:
				s.ForceMerge(idx)
			case 2:
				s.ForceSplit(idx)
			default:
				s.Access(trace.Write, (uint64(data[i])<<8|uint64(data[i+1]))%cfg.Lines)
			}
		}

		seen := make([]bool, cfg.Lines)
		for lma := uint64(0); lma < cfg.Lines; lma++ {
			pma := s.Translate(lma)
			if pma >= cfg.Lines {
				t.Fatalf("Translate(%d) = %d outside data space", lma, pma)
			}
			if seen[pma] {
				t.Fatalf("Translate not injective: pma %d hit twice", pma)
			}
			seen[pma] = true
			if back := s.InverseTranslate(pma); back != lma {
				t.Fatalf("round trip %d -> %d -> %d", lma, pma, back)
			}
		}
		if err := s.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	})
}
