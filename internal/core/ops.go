package core

import (
	"nvmwear/internal/cmt"
)

// This file implements the three structural operations of the tiered
// engine:
//
//   - exchange: the periodic PCM-S-style data exchange at a region's
//     current granularity (the data exchange module of Fig 6);
//   - merge: the region-merge operation of Sec 3.2 / Fig 8;
//   - split: the region-split operation of Sec 3.2 / Fig 9 (free — no data
//     movement, thanks to the XOR intra-region mapping).
//
// Throughout, physical positions are measured in "slots" — units of the
// initial granularity P — so a region at level l occupies 1<<l contiguous,
// aligned slots. rev[slot] gives the logical initial region stored there.

// regionOf returns the descriptor of the super-region covering initial
// region index idx: its logical base, span in slots, physical base slot,
// line-level key, and level.
func (s *Scheme) regionOf(idx uint64) (base, span, physSlot, key uint64, level uint8) {
	base, span, e := s.table.Region(idx)
	qShift := s.pShift + uint(e.Level) // q = p << Level is a power of two
	prn := e.D >> qShift
	key = e.D & (uint64(1)<<qShift - 1)
	return base, span, prn * span, key, e.Level
}

// setRegion commits a region's mapping to the IMT, refreshes the CMT if the
// entry is cached, and rebuilds rev for the region's slots.
func (s *Scheme) setRegion(base, span, physSlot, key uint64, level uint8) {
	q := s.p << level
	prn := physSlot >> level // span = 1 << level
	s.table.SetRange(base, span, prn*q+key, level)
	s.cache.Update(level, base, prn, key)
	keyHigh := key >> s.pShift
	for sub := uint64(0); sub < span; sub++ {
		s.rev[physSlot+(sub^keyHigh)] = uint32(base + sub)
	}
}

// exchange relocates the region based at `base` to a uniformly random
// physical block of the same size, displacing that block's occupants into
// the region's old frame (offset-preserving), and re-keys the region. Cost:
// 2Q line writes (Q if the random target is the region's own frame).
func (s *Scheme) exchange(base uint64) {
	s.stats.Remaps++
	base, span, physSlot, key, level := s.regionOf(base)
	q := s.p << level

	target := s.src.Uint64n(s.nRegions/span) * span
	newKey := s.src.Uint64n(q)

	if target == physSlot {
		if newKey == key {
			return
		}
		// Re-key in place: stage the region, rewrite per the new key.
		for lao := uint64(0); lao < q; lao++ {
			s.bufA[lao] = s.dev.ReadData(physSlot*s.p + (lao ^ key))
		}
		for lao := uint64(0); lao < q; lao++ {
			s.dev.WriteData(physSlot*s.p+(lao^newKey), s.bufA[lao])
			s.stats.SwapWrites++
		}
		s.setRegion(base, span, physSlot, newKey, level)
		return
	}

	// Shrink any occupant of the target block larger than our region; a
	// split is free, so this never moves data.
	s.shrinkOccupants(target, span)

	// Stage our region's lines in logical order.
	for lao := uint64(0); lao < q; lao++ {
		s.bufA[lao] = s.dev.ReadData(physSlot*s.p + (lao ^ key))
	}
	// Move the target block's lines into our old frame, offset-preserving,
	// so each occupant keeps its key and only changes its prn.
	for x := uint64(0); x < q; x++ {
		s.dev.MoveData(physSlot*s.p+x, target*s.p+x)
		s.stats.SwapWrites++
	}
	s.relocateOccupants(target, physSlot, span)
	// Land our region in the target block under the new key.
	for lao := uint64(0); lao < q; lao++ {
		s.dev.WriteData(target*s.p+(lao^newKey), s.bufA[lao])
		s.stats.SwapWrites++
	}
	s.setRegion(base, span, target, newKey, level)
}

// shrinkOccupants splits every region occupying the block [blockSlot,
// blockSlot+span) until none is larger than span slots.
func (s *Scheme) shrinkOccupants(blockSlot, span uint64) {
	for t := uint64(0); t < span; {
		obase, ospan, _, _, _ := s.regionOf(uint64(s.rev[blockSlot+t]))
		if ospan > span {
			s.splitRegion(obase)
			continue // re-inspect: the occupant halved
		}
		t += ospan
	}
}

// relocateOccupants rewrites the mapping of every region that occupied the
// block at `from` (span slots) to the same offsets within the block at
// `to`. Their data has already been moved offset-preserving.
func (s *Scheme) relocateOccupants(from, to, span uint64) {
	// Snapshot rev of the source block first: setRegion rewrites rev as it
	// goes and `to` may be scanned later in the same pass. The snapshot
	// lives in a reusable buffer — exchanges are frequent enough that a
	// per-call allocation shows up in profiles.
	occ := s.revBuf[:span]
	copy(occ, s.rev[from:from+span])
	for t := uint64(0); t < span; {
		obase, ospan, _, okey, olevel := s.regionOf(uint64(occ[t]))
		s.setRegion(obase, ospan, to+t, okey, olevel)
		t += ospan
	}
}

// tryMerge merges the region covering lrn0 with its logical buddy
// (Sec 3.2 item 1, Fig 8). If the buddy is currently at a finer
// granularity, its pieces are first merged up to the same level — the
// paper's "chooses the closest non-merged logical location" rule. The
// accessed region's data stays in place; the buddy's data (and any
// occupant of the destination half) moves — 2Q line writes at most.
// It reports whether a merge happened.
func (s *Scheme) tryMerge(lrn0 uint64) bool {
	aBase, span, _, _, level := s.regionOf(lrn0)
	if level >= s.maxLevel {
		return false
	}
	bBase := aBase ^ span
	if bBase >= s.nRegions {
		return false
	}
	for {
		bEnt := s.table.Get(bBase)
		if bEnt.Level == level {
			break
		}
		if bEnt.Level > level {
			// Impossible: a coarser region at the buddy would cover aBase.
			return false
		}
		if !s.tryMerge(bBase) {
			return false
		}
	}
	// Normalizing the buddy may have displaced a's physical block
	// (relocateOccupants); re-derive the mapping.
	var aSlot, aKey uint64
	aBase, span, aSlot, aKey, level = s.regionOf(aBase)
	bEnt := s.table.Get(bBase)
	q := s.p << level
	bPrn := bEnt.D / q
	bKey := bEnt.D % q
	bSlot := bPrn * span

	other := aSlot ^ span // the other half of a's aligned physical pair

	if bSlot == other {
		// Buddy already adjacent; realign its lines to a's key if needed.
		if bKey != aKey {
			for lao := uint64(0); lao < q; lao++ {
				s.bufB[lao] = s.dev.ReadData(other*s.p + (lao ^ bKey))
			}
			for lao := uint64(0); lao < q; lao++ {
				s.dev.WriteData(other*s.p+(lao^aKey), s.bufB[lao])
				s.stats.MergeWrites++
			}
		}
	} else {
		// Stage the buddy, displace the other half's occupants into the
		// buddy's old frame, then land the buddy in the other half.
		for lao := uint64(0); lao < q; lao++ {
			s.bufB[lao] = s.dev.ReadData(bSlot*s.p + (lao ^ bKey))
		}
		s.shrinkOccupants(other, span)
		for x := uint64(0); x < q; x++ {
			s.dev.MoveData(bSlot*s.p+x, other*s.p+x)
			s.stats.MergeWrites++
		}
		s.relocateOccupants(other, bSlot, span)
		for lao := uint64(0); lao < q; lao++ {
			s.dev.WriteData(other*s.p+(lao^aKey), s.bufB[lao])
			s.stats.MergeWrites++
		}
	}

	// Commit the merged super-region. Choosing the super key as
	//   k2 = ((aLogicalHalf ^ aPhysicalHalf) << log2(Q)) | aKey
	// keeps a's lines exactly where they are and places the buddy's lines
	// in the other physical half at offsets lao ^ aKey (where they were
	// just written).
	superBase := aBase &^ (2*span - 1)
	aLH := (aBase / span) & 1
	aPH := (aSlot / span) & 1
	k2 := ((aLH ^ aPH) * q) | aKey
	superSlot := aSlot &^ (2*span - 1)

	s.cache.Remove(level, aBase)
	s.cache.Remove(level, bBase)
	s.setRegion(superBase, 2*span, superSlot, k2, level+1)
	s.cache.Insert(cmt.Entry{
		Base: superBase, Level: level + 1,
		Prn: superSlot / (2 * span), Key: k2,
	})

	// Fold the write counters.
	sum := s.ctr[aBase] + s.ctr[bBase]
	s.ctr[aBase], s.ctr[bBase] = 0, 0
	s.ctr[superBase] = sum
	s.merges++
	return true
}

// trySplit splits the region covering lrn0 into two halves if it is above
// the initial granularity.
func (s *Scheme) trySplit(lrn0 uint64) {
	base, _, _, _, level := s.regionOf(lrn0)
	if level == 0 {
		return
	}
	s.splitRegion(base)
}

// splitRegion performs the free region-split of Fig 9: the XOR mapping
// already keeps each half physically contiguous, so only the tables change.
// The new physical sub-block of each half is selected by the MSB of the old
// key; the new keys are the old key's low bits.
func (s *Scheme) splitRegion(base uint64) {
	base, span, physSlot, key, level := s.regionOf(base)
	if level == 0 {
		return
	}
	q := s.p << level
	half := q / 2
	spanH := span / 2
	kMSB := key / half // 0 or 1
	keyLow := key & (half - 1)

	lowSlot := physSlot + kMSB*spanH
	highSlot := physSlot + (1-kMSB)*spanH

	s.cache.Remove(level, base)
	s.setRegion(base, spanH, lowSlot, keyLow, level-1)
	s.setRegion(base+spanH, spanH, highSlot, keyLow, level-1)
	s.cache.Insert(cmt.Entry{Base: base, Level: level - 1, Prn: lowSlot / spanH, Key: keyLow})
	s.cache.Insert(cmt.Entry{Base: base + spanH, Level: level - 1, Prn: highSlot / spanH, Key: keyLow})

	c := s.ctr[base]
	s.ctr[base] = c / 2
	s.ctr[base+spanH] = c - c/2
	s.splits++
}
