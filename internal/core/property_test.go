package core

// Property-based tests (testing/quick) for the structural-operation
// algebra: random operation sequences must preserve the bijection, the
// level encoding, the reverse map and data integrity; merge∘split must be
// the identity on the mapping.

import (
	"testing"
	"testing/quick"

	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

// TestPropertyRandomOpSequences drives random sequences of structural
// operations over small engines and verifies every invariant after each
// sequence.
func TestPropertyRandomOpSequences(t *testing.T) {
	err := quick.Check(func(ops []uint16, seedByte uint8) bool {
		cfg := Config{
			Lines:        1 << 9,
			InitGran:     4,
			MaxGranLines: 64,
			Period:       1 << 20, // triggers controlled manually
			CMTEntries:   16,
			Adaptive:     true,
			Seed:         uint64(seedByte),
		}
		cfg = cfg.withDefaults()
		dev, s := newScheme(nil, cfg)
		wltest.Fill(dev, s)
		if len(ops) > 120 {
			ops = ops[:120]
		}
		for _, op := range ops {
			lrn := uint64(op>>2) % (cfg.Lines / cfg.InitGran)
			switch op & 3 {
			case 0:
				s.tryMerge(lrn)
			case 1:
				s.trySplit(lrn)
			case 2:
				s.exchange(lrn)
			case 3:
				s.Access(trace.Write, uint64(op)%cfg.Lines)
			}
		}
		if err := s.CheckConsistency(); err != nil {
			t.Logf("consistency: %v", err)
			return false
		}
		// Bijection + integrity.
		seen := make(map[uint64]bool, cfg.Lines)
		for lma := uint64(0); lma < cfg.Lines; lma++ {
			pma := s.Translate(lma)
			if pma >= cfg.Lines || seen[pma] {
				t.Logf("bijection broken at %d -> %d", lma, pma)
				return false
			}
			seen[pma] = true
			if dev.Peek(pma) != wltest.Tag(lma) {
				t.Logf("data lost at %d", lma)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMergeSplitRoundTrip: merging a region pair and splitting the
// result restores exactly the merged halves' mapping (data positions never
// moved back, but the *translation* of every line must be unchanged from
// the post-merge state, and the split itself moves nothing).
func TestPropertyMergeSplitRoundTrip(t *testing.T) {
	err := quick.Check(func(lrnRaw uint16, seedByte uint8) bool {
		cfg := Config{
			Lines: 1 << 9, InitGran: 4, MaxGranLines: 64,
			Period: 1 << 20, CMTEntries: 16, Adaptive: true,
			Seed: uint64(seedByte),
		}
		cfg = cfg.withDefaults()
		dev, s := newScheme(nil, cfg)
		wltest.Fill(dev, s)
		// Randomize placement a little.
		s.exchange(uint64(lrnRaw) % 128)
		s.exchange(uint64(lrnRaw/2) % 128)
		lrn := uint64(lrnRaw) % 128
		if !s.tryMerge(lrn) {
			return true // refused (cap/edge) — nothing to check
		}
		after := make([]uint64, cfg.Lines)
		for lma := uint64(0); lma < cfg.Lines; lma++ {
			after[lma] = s.Translate(lma)
		}
		pre := dev.Stats().TotalWrites
		s.trySplit(lrn)
		// Split moved no data lines (only translation lines wear).
		if dev.Stats().TotalWrites-pre > 4 {
			t.Logf("split cost %d device writes", dev.Stats().TotalWrites-pre)
			return false
		}
		for lma := uint64(0); lma < cfg.Lines; lma++ {
			if s.Translate(lma) != after[lma] {
				t.Logf("translation changed by split at %d", lma)
				return false
			}
		}
		return s.CheckConsistency() == nil
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCheckpointAlwaysRecoverable: any reachable engine state must
// checkpoint and recover to an identical mapping.
func TestPropertyCheckpointAlwaysRecoverable(t *testing.T) {
	err := quick.Check(func(ops []uint16, seedByte uint8) bool {
		cfg := Config{
			Lines: 1 << 9, InitGran: 4, MaxGranLines: 64,
			Period: 16, CMTEntries: 16, Adaptive: true,
			Seed: uint64(seedByte),
		}
		cfg = cfg.withDefaults()
		dev, s := newScheme(nil, cfg)
		if len(ops) > 80 {
			ops = ops[:80]
		}
		for _, op := range ops {
			lrn := uint64(op>>2) % 128
			switch op & 3 {
			case 0:
				s.tryMerge(lrn)
			case 1:
				s.trySplit(lrn)
			default:
				s.Access(trace.Write, uint64(op)%cfg.Lines)
			}
		}
		rec, err := Recover(dev, cfg, s.Checkpoint())
		if err != nil {
			t.Logf("recover: %v", err)
			return false
		}
		for lma := uint64(0); lma < cfg.Lines; lma++ {
			if rec.Translate(lma) != s.Translate(lma) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
