package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"nvmwear/internal/nvm"
)

// This file implements the metadata durability story the paper outlines in
// Sec 3.1: "to prevent the loss or corruption of the metadata (e.g., data
// stored in the CMT, GTD and IMT tables) due to power failures, the updated
// metadata are written back to the NVM devices ... we assume that there is
// a battery backup in the memory controller to refresh metadata during
// power failure". The paper defers the mechanism to prior work; this
// package implements it concretely:
//
//   - Checkpoint serializes the battery-flushed controller state: the GTD's
//     directory, the IMT contents (standing in for the NVM-resident
//     translation lines, which survive power loss on a real device), the
//     per-region write counters and the adaptation state. The CMT is
//     deliberately NOT included — it is a cache and is rebuilt cold.
//   - Recover reconstructs a Scheme over the surviving device from a
//     checkpoint, recomputing all derived state (the reverse map) and
//     verifying internal consistency before returning.
//
// The format is versioned and length-checked so corrupted checkpoints are
// rejected rather than silently misinterpreted.

// checkpointMagic identifies the serialized format.
const checkpointMagic = uint32(0x5a574c31) // "ZWL1"

// Checkpoint serializes the durable controller metadata.
func (s *Scheme) Checkpoint() []byte {
	var buf bytes.Buffer
	w := func(v interface{}) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			panic(err) // bytes.Buffer cannot fail
		}
	}
	w(checkpointMagic)
	w(s.cfg.Lines)
	w(s.cfg.InitGran)
	w(uint64(s.nRegions))
	w(uint8(s.mode))
	w(s.lowRun)
	w(s.highRun)
	w(s.requests)
	w(s.merges)
	w(s.splits)
	for i := uint64(0); i < s.nRegions; i++ {
		w(s.table.Get(i).D)
	}
	for i := uint64(0); i < s.nRegions; i++ {
		w(s.table.Get(i).Level)
	}
	w(s.ctr)
	gtdTable := s.dir.Snapshot()
	w(uint64(len(gtdTable)))
	w(gtdTable)
	return buf.Bytes()
}

// Recover rebuilds a Scheme over dev from a checkpoint produced by a
// previous instance with the same configuration. The device (with its wear
// state and the NVM-resident tables it represents) must be the one that
// survived the power failure.
func Recover(dev *nvm.Device, cfg Config, checkpoint []byte) (*Scheme, error) {
	s := New(dev, cfg)
	r := bytes.NewReader(checkpoint)
	read := func(v interface{}) error {
		return binary.Read(r, binary.LittleEndian, v)
	}
	var magic uint32
	if err := read(&magic); err != nil || magic != checkpointMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic")
	}
	var lines, gran, regions uint64
	if err := read(&lines); err != nil {
		return nil, err
	}
	if err := read(&gran); err != nil {
		return nil, err
	}
	if err := read(&regions); err != nil {
		return nil, err
	}
	if lines != s.cfg.Lines || gran != s.p || regions != s.nRegions {
		return nil, fmt.Errorf("core: checkpoint geometry %d/%d/%d does not match config %d/%d/%d",
			lines, gran, regions, s.cfg.Lines, s.p, s.nRegions)
	}
	var mode uint8
	if err := read(&mode); err != nil {
		return nil, err
	}
	s.mode = Mode(mode)
	for _, p := range []*uint64{&s.lowRun, &s.highRun, &s.requests, &s.merges, &s.splits} {
		if err := read(p); err != nil {
			return nil, err
		}
	}
	entries := make([]uint64, regions)
	levels := make([]uint8, regions)
	if err := read(entries); err != nil {
		return nil, err
	}
	if err := read(levels); err != nil {
		return nil, err
	}
	if err := s.table.Load(entries, levels); err != nil {
		return nil, fmt.Errorf("core: checkpoint IMT invalid: %w", err)
	}
	if err := read(s.ctr); err != nil {
		return nil, err
	}
	var gtdLen uint64
	if err := read(&gtdLen); err != nil {
		return nil, err
	}
	gtdTable := make([]uint32, gtdLen)
	if err := read(gtdTable); err != nil {
		return nil, err
	}
	if err := s.dir.Restore(gtdTable); err != nil {
		return nil, fmt.Errorf("core: checkpoint GTD invalid: %w", err)
	}
	// Derived state: rebuild the reverse map by scanning the restored IMT.
	if err := s.rebuildRev(); err != nil {
		return nil, err
	}
	if err := s.CheckConsistency(); err != nil {
		return nil, fmt.Errorf("core: recovered state inconsistent: %w", err)
	}
	return s, nil
}

// rebuildRev recomputes the physical-slot reverse map from the IMT.
func (s *Scheme) rebuildRev() error {
	seen := make([]bool, s.nRegions)
	for i := uint64(0); i < s.nRegions; {
		base, span, e := s.table.Region(i)
		if base != i {
			return fmt.Errorf("core: region scan misaligned at %d", i)
		}
		q := s.p << e.Level
		prn := e.D / q
		key := e.D % q
		keyHigh := key / s.p
		for sub := uint64(0); sub < span; sub++ {
			slot := prn*span + (sub ^ keyHigh)
			if slot >= s.nRegions || seen[slot] {
				return fmt.Errorf("core: IMT is not a bijection at region %d", base)
			}
			seen[slot] = true
			s.rev[slot] = uint32(base + sub)
		}
		i += span
	}
	return nil
}
