package core

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

// crashHarness exercises a SAWL instance (merges, splits, exchanges),
// checkpoints it, and returns everything needed to simulate the crash.
func crashHarness(t *testing.T) (cfg Config, dev *nvm.Device, s *Scheme, ckpt []byte) {
	t.Helper()
	cfg = small(true)
	dev2, s2 := newScheme(t, cfg)
	wltest.Fill(dev2, s2)
	src := rng.New(55)
	for i := 0; i < 80000; i++ {
		op := trace.Read
		if src.Bool(0.7) {
			op = trace.Write
		}
		s2.Access(op, src.Uint64n(cfg.Lines))
	}
	// Force structural variety so the checkpoint carries nontrivial state.
	s2.ForceMerge(0)
	s2.ForceMerge(8)
	s2.ForceExchange(16)
	s2.ForceMerge(16)
	s2.ForceSplit(0)
	if err := s2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	return cfg, dev2, s2, s2.Checkpoint()
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	cfg, dev, orig, ckpt := crashHarness(t)

	// "Power failure": the controller state is gone; the device and the
	// checkpoint survive.
	rec, err := Recover(dev, cfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// Every translation must be identical to the pre-crash mapping.
	for lma := uint64(0); lma < cfg.Lines; lma++ {
		if got, want := rec.Translate(lma), orig.Translate(lma); got != want {
			t.Fatalf("Translate(%d) = %d after recovery, want %d", lma, got, want)
		}
	}
	if err := rec.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Data written before the crash is still readable through the
	// recovered mapping.
	wltest.CheckIntegrity(t, dev, rec)
	if rec.CurrentMode() != orig.CurrentMode() {
		t.Fatalf("mode %v after recovery, want %v", rec.CurrentMode(), orig.CurrentMode())
	}
	if rec.Merges() != orig.Merges() || rec.Splits() != orig.Splits() {
		t.Fatal("adaptation counters not restored")
	}
	// The recovered system keeps working.
	wltest.Exercise(t, dev, rec, 20000, 77)
}

func TestRecoverRejectsCorruptedCheckpoint(t *testing.T) {
	cfg, dev, _, ckpt := crashHarness(t)
	for name, corrupt := range map[string]func([]byte) []byte{
		"empty":     func(b []byte) []byte { return nil },
		"magic":     func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"imt": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// Flip a byte inside the IMT entry area (after the 61-byte
			// header) to break the level adjacency encoding.
			c[80] ^= 0xff
			return c
		},
	} {
		if _, err := Recover(dev, cfg, corrupt(ckpt)); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
}

func TestRecoverRejectsGeometryMismatch(t *testing.T) {
	cfg, _, _, ckpt := crashHarness(t)
	other := cfg
	other.Lines = cfg.Lines * 2
	dev2, _ := newScheme(t, other)
	if _, err := Recover(dev2, other, ckpt); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	_, _, s, ckpt := crashHarness(t)
	if string(s.Checkpoint()) != string(ckpt) {
		t.Fatal("checkpoint not deterministic for unchanged state")
	}
}
