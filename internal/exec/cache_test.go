package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// mapStore is an in-memory Store for pool tests.
type mapStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newMapStore() *mapStore { return &mapStore{m: map[string][]byte{}} }

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.m[key]
	return v, ok
}

func (s *mapStore) Put(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.m[key] = append([]byte(nil), payload...)
	return nil
}

func cachedPool(st Store, workers int) *Pool {
	return &Pool{
		Workers: workers,
		Store:   st,
		Key:     func(i int) string { return fmt.Sprintf("job-%d", i) },
	}
}

func TestMapCacheHitsBypassWorkers(t *testing.T) {
	st := newMapStore()
	square := func(i int, seed uint64) (int, error) { return i * i, nil }
	first, err := Map(cachedPool(st, 4), 20, square)
	if err != nil {
		t.Fatal(err)
	}
	if st.puts != 20 {
		t.Fatalf("%d puts after cold run, want 20", st.puts)
	}
	// Second run: every result must come from the store, fn must not run.
	second, err := Map(cachedPool(st, 4), 20, func(i int, seed uint64) (int, error) {
		t.Errorf("job %d recomputed despite cached result", i)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != i*i || second[i] != first[i] {
			t.Fatalf("result[%d]: cold %d, warm %d, want %d", i, first[i], second[i], i*i)
		}
	}
	if st.puts != 20 {
		t.Fatalf("warm run wrote %d extra entries", st.puts-20)
	}
}

func TestMapCacheFiresOnDoneForHits(t *testing.T) {
	st := newMapStore()
	if _, err := Map(cachedPool(st, 2), 10, func(i int, seed uint64) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	var calls, zeroElapsed int
	p := cachedPool(st, 2)
	p.OnDone = func(done, total int, elapsed time.Duration) {
		calls++
		if total != 10 {
			t.Errorf("total %d, want 10", total)
		}
		if done != calls {
			t.Errorf("done %d on call %d: hits must count in order", done, calls)
		}
		if elapsed == 0 {
			zeroElapsed++
		}
	}
	if _, err := Map(p, 10, func(i int, seed uint64) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 10 || zeroElapsed != 10 {
		t.Fatalf("OnDone: %d calls, %d with zero elapsed; want 10/10", calls, zeroElapsed)
	}
}

func TestMapCachePartialResume(t *testing.T) {
	st := newMapStore()
	// Seed the store with only the even jobs, as a killed run would have
	// left it: each completed job was persisted individually.
	for i := 0; i < 10; i += 2 {
		data, err := encodeResult(i * 3)
		if err != nil {
			t.Fatal(err)
		}
		st.Put(fmt.Sprintf("job-%d", i), data)
	}
	ran := map[int]bool{}
	var mu sync.Mutex
	results, err := Map(cachedPool(st, 4), 10, func(i int, seed uint64) (int, error) {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		return i * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*3 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 10; i += 2 {
		if ran[i] {
			t.Fatalf("cached job %d re-ran", i)
		}
	}
	for i := 1; i < 10; i += 2 {
		if !ran[i] {
			t.Fatalf("missing job %d was not recomputed", i)
		}
	}
}

func TestMapCacheUndecodablePayloadRecomputes(t *testing.T) {
	st := newMapStore()
	st.m["job-3"] = []byte("not gob at all")
	ran := false
	results, err := Map(cachedPool(st, 1), 4, func(i int, seed uint64) (int, error) {
		if i == 3 {
			ran = true
		}
		return i + 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("undecodable entry served as a hit")
	}
	if results[3] != 103 {
		t.Fatalf("result[3] = %d", results[3])
	}
	// The recomputed value overwrote the garbage.
	if v, ok := decodeResult[int](st.m["job-3"]); !ok || v != 103 {
		t.Fatalf("store not repaired: %v %v", v, ok)
	}
}

func TestMapEmptyKeyDisablesCachingPerJob(t *testing.T) {
	st := newMapStore()
	p := &Pool{
		Workers: 1,
		Store:   st,
		Key: func(i int) string {
			if i == 0 {
				return "" // job 0 opts out
			}
			return fmt.Sprintf("k%d", i)
		},
	}
	if _, err := Map(p, 3, func(i int, seed uint64) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if st.puts != 2 {
		t.Fatalf("%d puts, want 2 (job 0 uncached)", st.puts)
	}
}

func TestMapCostDispatchesLongestFirst(t *testing.T) {
	costs := []float64{3, 9, 1, 9, 5}
	var order []int
	p := &Pool{
		Workers: 1, // serial: dispatch order observable
		Cost:    func(i int) float64 { return costs[i] },
	}
	results, err := Map(p, len(costs), func(i int, seed uint64) (int, error) {
		order = append(order, i)
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Descending cost, ties in submission order: 9(j1), 9(j3), 5(j4), 3(j0), 1(j2).
	want := []int{1, 3, 4, 0, 2}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	// Results stay in submission order regardless.
	for i, v := range results {
		if v != i*2 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestMapCostDeterministicAcrossWorkerCounts(t *testing.T) {
	costs := make([]float64, 40)
	for i := range costs {
		costs[i] = float64((i * 7) % 11)
	}
	collect := func(workers int) []uint64 {
		p := &Pool{Workers: workers, BaseSeed: 99, Cost: func(i int) float64 { return costs[i] }}
		seeds, err := Map(p, len(costs), func(i int, seed uint64) (uint64, error) {
			return seed ^ uint64(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	a, b := collect(1), collect(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result[%d] differs between -j1 and -j8 under cost ordering", i)
		}
	}
}

func TestMapBackoffWaitHonorsCancellation(t *testing.T) {
	// A cancelled sweep must not linger in a backoff sleep: the final wait
	// selects on ctx.Done() and the retry loop gives up immediately after.
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		Workers: 1,
		Context: ctx,
		Retries: 5,
		Backoff: 30 * time.Second, // would dwarf the test timeout if waited
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Map(p, 1, func(i int, seed uint64) (int, error) {
		return 0, Retryable(errors.New("flaky"))
	})
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled sweep lingered %v in backoff", elapsed)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
}

func TestMapCancelledBetweenRetriesSkipsNextAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	p := &Pool{
		Workers: 1,
		Context: ctx,
		Retries: 10,
		Sleep: func(time.Duration) {
			cancel() // cancelled during the backoff wait
		},
		Backoff: time.Millisecond,
	}
	_, err := Map(p, 1, func(i int, seed uint64) (int, error) {
		attempts++
		return 0, Retryable(errors.New("flaky"))
	})
	if attempts != 1 {
		t.Fatalf("%d attempts after cancellation mid-backoff, want 1", attempts)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
}

// OnJob must fire exactly once per job with the job's result — both for
// computed jobs and for cache-prepass hits (elapsed 0), so streaming
// consumers see every point even on a fully-cached rerun.
func TestMapOnJobFiresForComputedAndCachedJobs(t *testing.T) {
	st := newMapStore()
	square := func(i int, seed uint64) (int, error) { return i * i, nil }
	collect := func(p *Pool) map[int]int {
		var mu sync.Mutex
		got := map[int]int{}
		p.OnJob = func(i int, v any, _ time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[i]; dup {
				t.Errorf("OnJob fired twice for job %d", i)
			}
			got[i] = v.(int)
		}
		if _, err := Map(p, 10, square); err != nil {
			t.Fatal(err)
		}
		return got
	}
	check := func(got map[int]int, when string) {
		t.Helper()
		if len(got) != 10 {
			t.Fatalf("%s: OnJob fired for %d of 10 jobs", when, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("%s: OnJob job %d got %d", when, i, v)
			}
		}
	}
	check(collect(cachedPool(st, 4)), "cold run")
	// Second run: everything is a cache hit, served from the prepass.
	check(collect(cachedPool(st, 4)), "cached run")
}

// A cached-run OnJob reports zero elapsed; a computed job reports nonzero.
func TestMapOnJobElapsedDistinguishesCacheHits(t *testing.T) {
	st := newMapStore()
	slow := func(i int, seed uint64) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	}
	var mu sync.Mutex
	elapsed := map[int]time.Duration{}
	run := func() {
		p := cachedPool(st, 2)
		p.OnJob = func(i int, _ any, d time.Duration) {
			mu.Lock()
			elapsed[i] = d
			mu.Unlock()
		}
		if _, err := Map(p, 4, slow); err != nil {
			t.Fatal(err)
		}
	}
	run()
	for i, d := range elapsed {
		if d == 0 {
			t.Fatalf("computed job %d reported zero elapsed", i)
		}
	}
	run()
	for i, d := range elapsed {
		if d != 0 {
			t.Fatalf("cached job %d reported elapsed %v, want 0", i, d)
		}
	}
}
