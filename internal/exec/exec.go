// Package exec is the parallel experiment engine: a bounded worker pool
// that fans a flat list of independent simulation jobs out across cores
// and returns their results in submission order.
//
// Every data-bearing figure of the paper is a sweep of independent
// lifetime or timing runs (each drives its own nvm.Device and wl.Leveler),
// so the sweeps are embarrassingly parallel. Two rules keep parallel runs
// exactly reproducible:
//
//  1. Results are delivered in submission order, so figure tables are
//     byte-identical whatever the worker count or scheduling.
//  2. Each job receives a seed derived deterministically from
//     (BaseSeed, job index) via rng.SeedStream, so a job's random streams
//     do not depend on which worker runs it or when.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nvmwear/internal/rng"
)

// Pool describes how a sweep executes. The zero value is usable: every
// available core, base seed 0, no progress reporting.
type Pool struct {
	// Workers bounds the number of concurrently running jobs.
	// Values <= 0 select runtime.GOMAXPROCS(0).
	Workers int

	// BaseSeed is the sweep's base seed; job i runs with
	// rng.SeedStream(BaseSeed, i).
	BaseSeed uint64

	// OnDone, when non-nil, is called after each job finishes with the
	// number of completed jobs so far, the sweep size, and the job's wall
	// time. Calls are serialized; the callback must not block for long.
	OnDone func(done, total int, elapsed time.Duration)
}

// workers resolves the effective worker count for n jobs.
func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// PanicError carries a panic raised inside a job to the goroutine that
// called Map, preserving the job index and the worker's stack trace.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs jobs 0..n-1 through fn on the pool and returns the n results in
// index order. fn receives the job index and the job's derived seed.
//
// If a job returns an error, remaining unstarted jobs are skipped and the
// error with the lowest job index is returned (deterministic regardless of
// scheduling). If a job panics, Map re-panics on the calling goroutine
// with a *PanicError wrapping the original value and the worker's stack.
func Map[T any](p *Pool, n int, fn func(index int, seed uint64) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	var (
		next     atomic.Int64 // index dispenser
		stop     atomic.Bool  // set on first error/panic: skip unstarted jobs
		mu       sync.Mutex   // guards done/firstErr/errIndex/pan and OnDone calls
		done     int
		firstErr error
		errIndex int = n
		pan      *PanicError
		wg       sync.WaitGroup
	)
	next.Store(-1)
	run := func(i int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				pe := &PanicError{Index: i, Value: v, Stack: stack()}
				mu.Lock()
				if pan == nil || i < pan.Index {
					pan = pe
				}
				mu.Unlock()
				stop.Store(true)
			}
		}()
		start := time.Now()
		results[i], err = fn(i, rng.SeedStream(p.BaseSeed, uint64(i)))
		if err != nil {
			return err
		}
		mu.Lock()
		done++
		if p.OnDone != nil {
			p.OnDone(done, n, time.Since(start))
		}
		mu.Unlock()
		return nil
	}
	for w := p.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || stop.Load() {
					return
				}
				if err := run(i); err != nil {
					mu.Lock()
					if i < errIndex {
						errIndex, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	return results, firstErr
}

// stack returns the current goroutine's stack trace.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
