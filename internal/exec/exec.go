// Package exec is the parallel experiment engine: a bounded worker pool
// that fans a flat list of independent simulation jobs out across cores
// and returns their results in submission order.
//
// Every data-bearing figure of the paper is a sweep of independent
// lifetime or timing runs (each drives its own nvm.Device and wl.Leveler),
// so the sweeps are embarrassingly parallel. Two rules keep parallel runs
// exactly reproducible:
//
//  1. Results are delivered in submission order, so figure tables are
//     byte-identical whatever the worker count or scheduling.
//  2. Each job receives a seed derived deterministically from
//     (BaseSeed, job index) via rng.SeedStream, so a job's random streams
//     do not depend on which worker runs it or when.
//
// The pool is additionally context-aware: a sweep can be cancelled mid-run
// (Pool.Context — wlsim wires SIGINT/SIGTERM to this), each job can carry a
// wall-clock timeout (Pool.JobTimeout), and jobs that fail with a retryable
// error (Retryable, or a timeout) are re-attempted with exponential backoff
// up to Pool.Retries times. Cancellation reports which jobs completed via
// *CanceledError so callers can flush partial results.
//
// Two optional refinements change how jobs are scheduled without changing
// what Map returns:
//
//   - Pool.Store + Pool.Key memoize job results in a durable store
//     (internal/store). Jobs whose key already resolves to a stored result
//     bypass the workers entirely — the cached value is decoded straight
//     into the result slice and OnDone still fires (elapsed 0), so
//     progress and telemetry stay truthful. Completed jobs are written
//     back best-effort; a failed write only means a future recompute.
//     This is what turns an interrupted sweep into a checkpoint: the next
//     run re-executes only the missing jobs.
//   - Pool.Cost dispatches pending jobs longest-first, tightening the
//     parallel tail when job durations vary widely. Results are still
//     delivered in submission order.
package exec

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvmwear/internal/rng"
)

// Store memoizes completed job results across process lifetimes. Get
// returns the payload stored under key and whether one exists; Put stores
// a payload durably. Implementations must verify integrity internally (a
// corrupt entry reads as a miss, never as data) — internal/store.Store is
// the canonical implementation.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

// Pool describes how a sweep executes. The zero value is usable: every
// available core, base seed 0, no progress reporting, no cancellation, no
// timeout, no retries.
type Pool struct {
	// Workers bounds the number of concurrently running jobs.
	// Values <= 0 select runtime.GOMAXPROCS(0).
	Workers int

	// BaseSeed is the sweep's base seed; job i runs with
	// rng.SeedStream(BaseSeed, i).
	BaseSeed uint64

	// OnDone, when non-nil, is called after each job finishes with the
	// number of completed jobs so far, the sweep size, and the job's wall
	// time. Calls are serialized; the callback must not block for long.
	OnDone func(done, total int, elapsed time.Duration)

	// OnJob, when non-nil, is called with each job's index, result value and
	// wall time as the result lands — cache-prepass hits included (elapsed
	// 0). Unlike OnDone it identifies which job finished and carries the
	// value, so callers can stream per-job output (pipeline rendering)
	// instead of waiting for Map to return. Calls are serialized with
	// OnDone; the callback must not block for long. Jobs arrive in
	// completion order, not index order.
	OnJob func(index int, result any, elapsed time.Duration)

	// Context, when non-nil, cancels the sweep: unstarted jobs are skipped,
	// in-flight jobs are abandoned, and Map returns a *CanceledError
	// recording which jobs completed. A nil Context never cancels.
	Context context.Context

	// SoftContext, when non-nil, is the sweep's graceful-drain signal: once
	// it is done, no further jobs are dispatched, but in-flight attempts run
	// to completion — their results are recorded (and persisted via Store),
	// so a drained sweep checkpoints every job already burning CPU instead
	// of discarding it the way Context does. If any job was skipped, Map
	// returns a *CanceledError carrying the soft context's cause. A sweep
	// whose jobs all complete before the signal is observed returns
	// normally. wlsim serve wires its shutdown drain here; Context remains
	// the hard force-cancel behind it.
	SoftContext context.Context

	// JobTimeout, when > 0, bounds each job attempt's wall time. A timed-out
	// attempt fails with a *TimeoutError, which is retryable.
	JobTimeout time.Duration

	// Retries is the number of extra attempts a job gets after failing with
	// a retryable error (see Retryable and TimeoutError). Non-retryable
	// errors fail the sweep immediately.
	Retries int

	// Backoff is the delay before the first retry, doubling per attempt.
	// Zero retries immediately.
	Backoff time.Duration

	// Sleep replaces time.Sleep for backoff waits (test hook).
	Sleep func(time.Duration)

	// Store, together with Key, memoizes job results across runs. Before
	// dispatching, Map probes the store for every job's key; hits are
	// decoded into the result slice without running the job (OnDone fires
	// with elapsed 0). Jobs that do run have their results written back.
	// Results are encoded with encoding/gob, so the job's result type must
	// be gob-encodable (exported fields). A nil Store disables caching.
	Store Store

	// Key returns job i's cache key. Jobs whose key is "" are never
	// cached. A nil Key disables caching. The key must capture everything
	// the job's result depends on (parameters, seed, code version) — a
	// stale key silently resurrects stale results.
	Key func(i int) string

	// Cost, when non-nil, supplies a relative duration hint per job; Map
	// dispatches pending jobs in descending Cost order (ties keep
	// submission order) so long jobs start first and the parallel tail
	// stays short. Purely a scheduling hint: results, seeds, and error
	// determinism are unaffected.
	Cost func(i int) float64

	// Quarantine, when non-nil, switches the pool from abort-on-first-error
	// to per-job failure isolation: a job that exhausts its retry budget —
	// or panics — no longer stops the sweep. The failure is reported to the
	// callback instead (panics arrive as a *PanicError), the job's slot in
	// the result slice keeps the zero value, and the remaining jobs run
	// normally. OnDone still fires for a quarantined job so progress reaches
	// the sweep total, but OnJob does not, nothing is written to Store, and
	// the job reads as not-done in any later *CanceledError. Cancellation is
	// not a job failure: Context/SoftContext still end the sweep with a
	// *CanceledError. Calls are serialized with OnDone/OnJob.
	Quarantine func(index int, err error)
}

// workers resolves the effective worker count for n jobs.
func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// context resolves the effective context.
func (p *Pool) context() context.Context {
	if p.Context != nil {
		return p.Context
	}
	return context.Background()
}

// softDone reports whether the graceful-drain signal has fired.
func (p *Pool) softDone() bool {
	return p.SoftContext != nil && p.SoftContext.Err() != nil
}

// sleep waits d, honoring the Sleep test hook and the context.
func (p *Pool) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// PanicError carries a panic raised inside a job to the goroutine that
// called Map, preserving the job index and the worker's stack trace.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// retryableError marks a wrapped error as safe to retry.
type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

// Retryable wraps err so the pool re-attempts the job (up to Pool.Retries).
// A nil err returns nil.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return retryableError{err}
}

// IsRetryable reports whether err (or an error it wraps) was marked with
// Retryable or is a *TimeoutError.
func IsRetryable(err error) bool {
	var r retryableError
	if errors.As(err, &r) {
		return true
	}
	var to *TimeoutError
	return errors.As(err, &to)
}

// TimeoutError reports a job attempt that exceeded Pool.JobTimeout. It is
// retryable: a fresh attempt may hit a quieter machine.
type TimeoutError struct {
	Index   int
	Timeout time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("exec: job %d exceeded timeout %v", e.Index, e.Timeout)
}

// CanceledError reports a sweep cut short by Pool.Context. Done records,
// per job index, whether that job completed and its result slot is valid —
// callers flush the completed prefix as a partial table.
type CanceledError struct {
	Done []bool
	Err  error // the context's cancellation cause
}

// Error implements error.
func (e *CanceledError) Error() string {
	n := 0
	for _, d := range e.Done {
		if d {
			n++
		}
	}
	return fmt.Sprintf("exec: sweep canceled (%v) with %d/%d jobs complete", e.Err, n, len(e.Done))
}

// Unwrap exposes the cancellation cause (context.Canceled etc).
func (e *CanceledError) Unwrap() error { return e.Err }

// Map runs jobs 0..n-1 through fn on the pool and returns the n results in
// index order. fn receives the job index and the job's derived seed.
//
// If a job returns a non-retryable error, remaining unstarted jobs are
// skipped and the error of the earliest-dispatched failing job is returned
// (deterministic regardless of scheduling; with no Cost hint, dispatch
// order is submission order, so the lowest failing index wins). Retryable
// errors (Retryable, *TimeoutError) are re-attempted up to Retries times
// with exponential backoff before counting as failure. If the pool's
// context is cancelled, Map stops dispatching, abandons in-flight jobs,
// and returns a *CanceledError whose Done slice marks the valid entries of
// the result slice. If a job panics, Map re-panics on the calling
// goroutine with a *PanicError wrapping the original value and the
// worker's stack.
func Map[T any](p *Pool, n int, fn func(index int, seed uint64) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	ctx := p.context()
	results := make([]T, n)
	doneFlags := make([]bool, n)
	var (
		next     atomic.Int64 // dispatch-position dispenser
		stop     atomic.Bool  // set on first error/panic: skip unstarted jobs
		mu       sync.Mutex   // guards done/firstErr/errPos/pan and OnDone calls
		done     int
		firstErr error
		pan      *PanicError
		panPos   int
		wg       sync.WaitGroup
	)
	next.Store(-1)

	// Cache prepass: resolve every job whose result is already stored,
	// firing OnDone for each so progress stays truthful, then collect the
	// jobs that actually need to run. Runs before the workers start, so
	// the shared state needs no locking yet.
	caching := p.Store != nil && p.Key != nil
	pending := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if caching && ctx.Err() == nil {
			if key := p.Key(i); key != "" {
				if data, ok := p.Store.Get(key); ok {
					if v, ok := decodeResult[T](data); ok {
						results[i] = v
						doneFlags[i] = true
						done++
						if p.OnDone != nil {
							p.OnDone(done, n, 0)
						}
						if p.OnJob != nil {
							p.OnJob(i, v, 0)
						}
						continue
					}
					// Stored bytes that no longer decode as T (result-type
					// drift the key salt missed): recompute and overwrite.
				}
			}
		}
		pending = append(pending, i)
	}
	errPos := len(pending)

	// Longest-job-first: dispatch pending jobs by descending cost hint.
	// Stable, so equal-cost jobs keep submission order.
	if p.Cost != nil && len(pending) > 1 {
		sort.SliceStable(pending, func(a, b int) bool {
			return p.Cost(pending[a]) > p.Cost(pending[b])
		})
	}

	// attempt runs fn once for job i, enforcing JobTimeout and context
	// cancellation. When either can interrupt the attempt, fn runs on its
	// own goroutine and writes its result through a channel — an abandoned
	// attempt therefore never touches the shared results slice.
	attempt := func(i int, seed uint64) (T, error) {
		if err := ctx.Err(); err != nil {
			// Cancelled between dispatch and attempt (or during a backoff
			// wait): don't start work that would immediately be abandoned.
			var zero T
			return zero, context.Cause(ctx)
		}
		if p.JobTimeout <= 0 && ctx.Done() == nil {
			return fn(i, seed)
		}
		type outcome struct {
			v   T
			err error
			pan *PanicError
		}
		ch := make(chan outcome, 1)
		go func() {
			defer func() {
				if v := recover(); v != nil {
					ch <- outcome{pan: &PanicError{Index: i, Value: v, Stack: stack()}}
				}
			}()
			v, err := fn(i, seed)
			ch <- outcome{v: v, err: err}
		}()
		var timeout <-chan time.Time
		if p.JobTimeout > 0 {
			t := time.NewTimer(p.JobTimeout)
			defer t.Stop()
			timeout = t.C
		}
		// take consumes a delivered outcome, re-raising job panics.
		take := func(out outcome) (T, error) {
			if out.pan != nil {
				panic(out.pan.Value) // re-raised; worker's recover records it
			}
			return out.v, out.err
		}
		var zero T
		select {
		case out := <-ch:
			return take(out)
		case <-timeout:
			select {
			case out := <-ch:
				// The job finished in the same instant the timer fired:
				// completed work beats an arbitrary tie-break.
				return take(out)
			default:
			}
			return zero, &TimeoutError{Index: i, Timeout: p.JobTimeout}
		case <-ctx.Done():
			select {
			case out := <-ch:
				// Finished before we observed the cancellation: keep the
				// result — it still gets recorded (and cached), which is
				// exactly what checkpoint/resume wants.
				return take(out)
			default:
			}
			return zero, context.Cause(ctx)
		}
	}

	// quarantine reports a failed job without stopping the sweep: progress
	// advances (the job is accounted for), but its result slot stays zero,
	// its done flag stays false, and nothing is cached.
	quarantine := func(i int, qerr error, elapsed time.Duration) {
		mu.Lock()
		done++
		if p.OnDone != nil {
			p.OnDone(done, n, elapsed)
		}
		p.Quarantine(i, qerr)
		mu.Unlock()
	}

	run := func(pos, i int) (err error) {
		var start time.Time
		defer func() {
			if v := recover(); v != nil {
				pe, ok := v.(*PanicError)
				if !ok {
					pe = &PanicError{Index: i, Value: v, Stack: stack()}
				}
				if p.Quarantine != nil {
					quarantine(i, pe, time.Since(start))
					err = nil
					return
				}
				mu.Lock()
				if pan == nil || pos < panPos {
					pan, panPos = pe, pos
				}
				mu.Unlock()
				stop.Store(true)
			}
		}()
		seed := rng.SeedStream(p.BaseSeed, uint64(i))
		start = time.Now()
		for a := 0; ; a++ {
			var v T
			v, err = attempt(i, seed)
			if err == nil {
				if caching {
					if key := p.Key(i); key != "" {
						if data, eerr := encodeResult(v); eerr == nil {
							// Best effort: a failed write only costs a
							// future recompute, never a wrong result.
							p.Store.Put(key, data)
						}
					}
				}
				results[i] = v
				mu.Lock()
				doneFlags[i] = true
				done++
				if p.OnDone != nil {
					p.OnDone(done, n, time.Since(start))
				}
				if p.OnJob != nil {
					p.OnJob(i, v, time.Since(start))
				}
				mu.Unlock()
				return nil
			}
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			if a >= p.Retries || !IsRetryable(err) {
				if p.Quarantine != nil {
					quarantine(i, err, time.Since(start))
					return nil
				}
				return err
			}
			p.sleep(ctx, p.Backoff<<a)
			if ctx.Err() != nil {
				// The backoff wait was cut short by cancellation: give up
				// now instead of burning one more attempt.
				return context.Cause(ctx)
			}
		}
	}

	for w := p.workers(len(pending)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := int(next.Add(1))
				if pos >= len(pending) || stop.Load() || ctx.Err() != nil || p.softDone() {
					return
				}
				i := pending[pos]
				if err := run(pos, i); err != nil {
					if ctx.Err() == nil {
						mu.Lock()
						if pos < errPos {
							errPos, firstErr = pos, err
						}
						mu.Unlock()
						stop.Store(true)
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	if firstErr != nil {
		return results, firstErr
	}
	if ctx.Err() != nil {
		return results, &CanceledError{Done: doneFlags, Err: context.Cause(ctx)}
	}
	// A drain that fired only after every job completed is not an
	// interruption: the sweep's results are whole.
	if p.softDone() && done < n {
		return results, &CanceledError{Done: doneFlags, Err: context.Cause(p.SoftContext)}
	}
	return results, nil
}

// encodeResult serializes a job result for Pool.Store.
func encodeResult(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeResult deserializes a stored job result. A payload that does not
// decode cleanly as T reports false and the job recomputes.
func decodeResult[T any](data []byte) (T, bool) {
	var v T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		var zero T
		return zero, false
	}
	return v, true
}

// stack returns the current goroutine's stack trace.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
