package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nvmwear/internal/rng"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		p := &Pool{Workers: workers, BaseSeed: 42}
		got, err := Map(p, 100, func(i int, seed uint64) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyJobList(t *testing.T) {
	p := &Pool{}
	got, err := Map(p, 0, func(i int, seed uint64) (int, error) {
		t.Fatal("job ran for empty list")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("empty list: results %v, err %v", got, err)
	}
}

func TestMapSeedsMatchSeedStream(t *testing.T) {
	const base = 1234
	p := &Pool{Workers: 4, BaseSeed: base}
	seeds, err := Map(p, 32, func(i int, seed uint64) (uint64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[uint64]bool)
	for i, s := range seeds {
		if want := rng.SeedStream(base, uint64(i)); s != want {
			t.Fatalf("job %d seed = %#x, want %#x", i, s, want)
		}
		distinct[s] = true
	}
	if len(distinct) != len(seeds) {
		t.Fatalf("only %d distinct seeds for %d jobs", len(distinct), len(seeds))
	}
}

func TestMapSeedsIndependentOfWorkerCount(t *testing.T) {
	collect := func(workers int) []uint64 {
		p := &Pool{Workers: workers, BaseSeed: 7}
		seeds, err := Map(p, 16, func(i int, seed uint64) (uint64, error) {
			return seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	serial, parallel := collect(1), collect(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("job %d: seed differs between -j1 (%#x) and -j8 (%#x)",
				i, serial[i], parallel[i])
		}
	}
}

func TestMapPanicPropagation(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("job panic did not propagate")
		}
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", v)
		}
		if pe.Index != 5 || pe.Value != "boom" {
			t.Fatalf("PanicError = {index %d, value %v}", pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError carries no stack")
		}
	}()
	p := &Pool{Workers: 4}
	Map(p, 10, func(i int, seed uint64) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

func TestMapErrorLowestIndexWins(t *testing.T) {
	p := &Pool{Workers: 8}
	var started atomic.Int64
	_, err := Map(p, 64, func(i int, seed uint64) (int, error) {
		started.Add(1)
		if i%2 == 1 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// Every failing index is odd; the reported one must be the lowest
	// failing index that actually started, and job 1 always starts among
	// the first 8 dispatched with 8 workers.
	if err.Error() != "job 1 failed" {
		t.Fatalf("err = %v, want lowest-index job 1", err)
	}
	if started.Load() > 64 {
		t.Fatalf("%d jobs started for a 64-job sweep", started.Load())
	}
}

func TestMapErrorStopsUnstartedJobs(t *testing.T) {
	p := &Pool{Workers: 1}
	var started atomic.Int64
	_, err := Map(p, 1000, func(i int, seed uint64) (int, error) {
		started.Add(1)
		if i == 2 {
			return 0, errors.New("stop here")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if started.Load() != 3 {
		t.Fatalf("%d jobs started after early error with 1 worker, want 3", started.Load())
	}
}

func TestMapProgressCallback(t *testing.T) {
	p := &Pool{Workers: 4}
	var calls atomic.Int64
	var lastDone atomic.Int64
	p.OnDone = func(done, total int, elapsed time.Duration) {
		calls.Add(1)
		if total != 20 {
			t.Errorf("total = %d, want 20", total)
		}
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
		// done is monotonically increasing because calls are serialized.
		if int64(done) <= lastDone.Load() {
			t.Errorf("done went from %d to %d", lastDone.Load(), done)
		}
		lastDone.Store(int64(done))
	}
	if _, err := Map(p, 20, func(i int, seed uint64) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 {
		t.Fatalf("OnDone called %d times, want 20", calls.Load())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := &Pool{}
	if got := p.workers(1 << 20); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	capped := &Pool{Workers: 16}
	if got := capped.workers(2); got != 2 {
		t.Fatalf("16 workers for 2 jobs = %d, want cap at 2", got)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{Workers: 2, Context: ctx}
	release := make(chan struct{})
	results, err := Map(p, 100, func(i int, seed uint64) (int, error) {
		if i < 4 {
			return i * 10, nil
		}
		if i == 4 {
			cancel()
		}
		<-release // block until the sweep is torn down
		return i * 10, nil
	})
	close(release)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
	if len(ce.Done) != 100 {
		t.Fatalf("Done has %d entries, want 100", len(ce.Done))
	}
	for i, d := range ce.Done {
		if d && results[i] != i*10 {
			t.Fatalf("job %d marked done but result %d", i, results[i])
		}
		if i >= 5 && d {
			t.Fatalf("job %d done after cancellation before it could start", i)
		}
	}
	// The worker that reached job 4 had already recorded every job it ran
	// before, so at most one of jobs 0..3 (the other worker's in-flight job
	// at the instant of cancellation) may be abandoned.
	recorded := 0
	for i := 0; i < 4; i++ {
		if ce.Done[i] {
			recorded++
		}
	}
	if recorded < 3 {
		t.Fatalf("only %d of jobs 0..3 marked done; at most one may be in flight at cancel", recorded)
	}
}

func TestMapContextCancellationSkipsUnstarted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts
	p := &Pool{Workers: 4, Context: ctx}
	var started atomic.Int64
	_, err := Map(p, 50, func(i int, seed uint64) (int, error) {
		started.Add(1)
		return i, nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if started.Load() != 0 {
		t.Fatalf("%d jobs started on a pre-cancelled context", started.Load())
	}
}

func TestMapJobTimeout(t *testing.T) {
	p := &Pool{Workers: 2, JobTimeout: 10 * time.Millisecond}
	release := make(chan struct{})
	defer close(release)
	_, err := Map(p, 4, func(i int, seed uint64) (int, error) {
		if i == 2 {
			<-release // hang well past the timeout
		}
		return i, nil
	})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Index != 2 || te.Timeout != 10*time.Millisecond {
		t.Fatalf("TimeoutError = %+v", te)
	}
	if !IsRetryable(err) {
		t.Fatal("timeout not retryable")
	}
}

func TestMapRetriesRetryableErrors(t *testing.T) {
	var slept []time.Duration
	p := &Pool{
		Workers: 1, Retries: 3, Backoff: 4 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	attempts := make(map[int]int)
	results, err := Map(p, 3, func(i int, seed uint64) (int, error) {
		attempts[i]++
		if i == 1 && attempts[i] <= 2 {
			return 0, Retryable(errors.New("flaky"))
		}
		return i + attempts[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts[1] != 3 {
		t.Fatalf("job 1 attempted %d times, want 3", attempts[1])
	}
	if results[1] != 1+3 {
		t.Fatalf("result[1] = %d from attempt %d", results[1], attempts[1])
	}
	// Exponential backoff: 4ms then 8ms.
	if len(slept) != 2 || slept[0] != 4*time.Millisecond || slept[1] != 8*time.Millisecond {
		t.Fatalf("backoff sleeps %v", slept)
	}
}

func TestMapRetryBudgetExhausted(t *testing.T) {
	p := &Pool{Workers: 1, Retries: 2}
	var attempts atomic.Int64
	_, err := Map(p, 1, func(i int, seed uint64) (int, error) {
		attempts.Add(1)
		return 0, Retryable(errors.New("always fails"))
	})
	if err == nil {
		t.Fatal("exhausted retries returned nil")
	}
	if attempts.Load() != 3 { // initial + 2 retries
		t.Fatalf("%d attempts, want 3", attempts.Load())
	}
	if !IsRetryable(err) {
		t.Fatal("returned error lost its retryable marker")
	}
}

func TestMapNonRetryableErrorNotRetried(t *testing.T) {
	p := &Pool{Workers: 1, Retries: 5}
	var attempts atomic.Int64
	_, err := Map(p, 1, func(i int, seed uint64) (int, error) {
		attempts.Add(1)
		return 0, errors.New("fatal")
	})
	if err == nil || attempts.Load() != 1 {
		t.Fatalf("non-retryable error: %d attempts, err %v", attempts.Load(), err)
	}
}

func TestMapSeedStableAcrossRetries(t *testing.T) {
	p := &Pool{Workers: 1, Retries: 1}
	var seeds []uint64
	_, err := Map(p, 1, func(i int, seed uint64) (int, error) {
		seeds = append(seeds, seed)
		if len(seeds) == 1 {
			return 0, Retryable(errors.New("once"))
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 || seeds[0] != seeds[1] {
		t.Fatalf("retry changed the job seed: %v", seeds)
	}
}

func TestMapShortCircuitConcurrent(t *testing.T) {
	// With many workers and an early failure, the index dispenser must stop
	// handing out jobs: far fewer than n jobs start.
	p := &Pool{Workers: 4}
	var started atomic.Int64
	_, err := Map(p, 10000, func(i int, seed uint64) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("first job fails")
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if s := started.Load(); s > 200 {
		t.Fatalf("%d jobs started after an immediate failure", s)
	}
}

func TestIsRetryableUnwraps(t *testing.T) {
	wrapped := fmt.Errorf("context: %w", Retryable(errors.New("inner")))
	if !IsRetryable(wrapped) {
		t.Fatal("wrapped retryable not detected")
	}
	if IsRetryable(errors.New("plain")) {
		t.Fatal("plain error reported retryable")
	}
	if IsRetryable(nil) {
		t.Fatal("nil reported retryable")
	}
}
