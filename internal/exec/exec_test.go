package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nvmwear/internal/rng"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		p := &Pool{Workers: workers, BaseSeed: 42}
		got, err := Map(p, 100, func(i int, seed uint64) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyJobList(t *testing.T) {
	p := &Pool{}
	got, err := Map(p, 0, func(i int, seed uint64) (int, error) {
		t.Fatal("job ran for empty list")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("empty list: results %v, err %v", got, err)
	}
}

func TestMapSeedsMatchSeedStream(t *testing.T) {
	const base = 1234
	p := &Pool{Workers: 4, BaseSeed: base}
	seeds, err := Map(p, 32, func(i int, seed uint64) (uint64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[uint64]bool)
	for i, s := range seeds {
		if want := rng.SeedStream(base, uint64(i)); s != want {
			t.Fatalf("job %d seed = %#x, want %#x", i, s, want)
		}
		distinct[s] = true
	}
	if len(distinct) != len(seeds) {
		t.Fatalf("only %d distinct seeds for %d jobs", len(distinct), len(seeds))
	}
}

func TestMapSeedsIndependentOfWorkerCount(t *testing.T) {
	collect := func(workers int) []uint64 {
		p := &Pool{Workers: workers, BaseSeed: 7}
		seeds, err := Map(p, 16, func(i int, seed uint64) (uint64, error) {
			return seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	serial, parallel := collect(1), collect(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("job %d: seed differs between -j1 (%#x) and -j8 (%#x)",
				i, serial[i], parallel[i])
		}
	}
}

func TestMapPanicPropagation(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("job panic did not propagate")
		}
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", v)
		}
		if pe.Index != 5 || pe.Value != "boom" {
			t.Fatalf("PanicError = {index %d, value %v}", pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError carries no stack")
		}
	}()
	p := &Pool{Workers: 4}
	Map(p, 10, func(i int, seed uint64) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

func TestMapErrorLowestIndexWins(t *testing.T) {
	p := &Pool{Workers: 8}
	var started atomic.Int64
	_, err := Map(p, 64, func(i int, seed uint64) (int, error) {
		started.Add(1)
		if i%2 == 1 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// Every failing index is odd; the reported one must be the lowest
	// failing index that actually started, and job 1 always starts among
	// the first 8 dispatched with 8 workers.
	if err.Error() != "job 1 failed" {
		t.Fatalf("err = %v, want lowest-index job 1", err)
	}
	if started.Load() > 64 {
		t.Fatalf("%d jobs started for a 64-job sweep", started.Load())
	}
}

func TestMapErrorStopsUnstartedJobs(t *testing.T) {
	p := &Pool{Workers: 1}
	var started atomic.Int64
	_, err := Map(p, 1000, func(i int, seed uint64) (int, error) {
		started.Add(1)
		if i == 2 {
			return 0, errors.New("stop here")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if started.Load() != 3 {
		t.Fatalf("%d jobs started after early error with 1 worker, want 3", started.Load())
	}
}

func TestMapProgressCallback(t *testing.T) {
	p := &Pool{Workers: 4}
	var calls atomic.Int64
	var lastDone atomic.Int64
	p.OnDone = func(done, total int, elapsed time.Duration) {
		calls.Add(1)
		if total != 20 {
			t.Errorf("total = %d, want 20", total)
		}
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
		// done is monotonically increasing because calls are serialized.
		if int64(done) <= lastDone.Load() {
			t.Errorf("done went from %d to %d", lastDone.Load(), done)
		}
		lastDone.Store(int64(done))
	}
	if _, err := Map(p, 20, func(i int, seed uint64) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 {
		t.Fatalf("OnDone called %d times, want 20", calls.Load())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := &Pool{}
	if got := p.workers(1 << 20); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	capped := &Pool{Workers: 16}
	if got := capped.workers(2); got != 2 {
		t.Fatalf("16 workers for 2 jobs = %d, want cap at 2", got)
	}
}
