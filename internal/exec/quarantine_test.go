package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the Quarantine contract: with the callback set, a failing
// or panicking job is reported and isolated — the sweep completes, progress
// reaches the total, the bad slot stays zero and is never cached — while
// cancellation keeps its abort semantics untouched.

func TestMapQuarantineIsolatesErrors(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var quarantined []int
		var causes []error
		p := &Pool{Workers: workers}
		p.Quarantine = func(i int, err error) {
			quarantined = append(quarantined, i)
			causes = append(causes, err)
		}
		var doneCalls atomic.Int64
		var lastDone atomic.Int64
		p.OnDone = func(done, total int, elapsed time.Duration) {
			doneCalls.Add(1)
			lastDone.Store(int64(done))
		}
		got, err := Map(p, 20, func(i int, seed uint64) (int, error) {
			if i == 3 || i == 11 {
				return 0, fmt.Errorf("device %d died", i)
			}
			return i * 10, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: quarantined sweep returned error %v", workers, err)
		}
		if len(quarantined) != 2 {
			t.Fatalf("workers=%d: quarantined %v, want jobs 3 and 11", workers, quarantined)
		}
		for k, i := range quarantined {
			if i != 3 && i != 11 {
				t.Fatalf("workers=%d: quarantined job %d", workers, i)
			}
			if want := fmt.Sprintf("device %d died", i); causes[k].Error() != want {
				t.Fatalf("job %d cause = %v, want %q", i, causes[k], want)
			}
		}
		// Progress must account for quarantined jobs: done reaches the total.
		if doneCalls.Load() != 20 || lastDone.Load() != 20 {
			t.Fatalf("workers=%d: OnDone fired %d times, last done %d; want 20/20",
				workers, doneCalls.Load(), lastDone.Load())
		}
		for i, v := range got {
			want := i * 10
			if i == 3 || i == 11 {
				want = 0 // quarantined slots keep the zero value
			}
			if v != want {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

func TestMapQuarantineCatchesPanics(t *testing.T) {
	var quarantined []error
	p := &Pool{Workers: 4}
	p.Quarantine = func(i int, err error) { quarantined = append(quarantined, err) }
	got, err := Map(p, 10, func(i int, seed uint64) (int, error) {
		if i == 5 {
			panic("poisoned device")
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("sweep with a quarantined panic returned error %v", err)
	}
	if len(quarantined) != 1 {
		t.Fatalf("quarantine reported %d failures, want 1", len(quarantined))
	}
	var pe *PanicError
	if !errors.As(quarantined[0], &pe) {
		t.Fatalf("quarantined cause is %T, want *PanicError", quarantined[0])
	}
	if pe.Index != 5 || pe.Value != "poisoned device" {
		t.Fatalf("PanicError = {index %d, value %v}", pe.Index, pe.Value)
	}
	for i, v := range got {
		want := i
		if i == 5 {
			want = 0
		}
		if v != want {
			t.Fatalf("result[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestMapQuarantinedJobNotCached(t *testing.T) {
	st := newMapStore()
	p := cachedPool(st, 2)
	p.Quarantine = func(i int, err error) {}
	if _, err := Map(p, 6, func(i int, seed uint64) (int, error) {
		if i == 2 {
			return 0, errors.New("bad")
		}
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st.puts != 5 {
		t.Fatalf("%d puts, want 5 (quarantined job must not be cached)", st.puts)
	}
	if _, ok := st.m["job-2"]; ok {
		t.Fatal("quarantined job's key present in the store")
	}
	// A later run with the same store must re-attempt the quarantined job.
	var reran atomic.Int64
	p2 := cachedPool(st, 2)
	p2.Quarantine = func(i int, err error) { t.Errorf("job %d quarantined on retry run", i) }
	if _, err := Map(p2, 6, func(i int, seed uint64) (int, error) {
		reran.Add(1)
		if i != 2 {
			t.Errorf("cached job %d recomputed", i)
		}
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 1 {
		t.Fatalf("%d jobs ran on the warm retry, want exactly the quarantined one", reran.Load())
	}
}

func TestMapQuarantineAfterRetryBudget(t *testing.T) {
	var quarantined atomic.Int64
	p := &Pool{Workers: 1, Retries: 2}
	p.Quarantine = func(i int, err error) {
		quarantined.Add(1)
		if !IsRetryable(err) {
			t.Errorf("quarantined cause lost its retryable marker: %v", err)
		}
	}
	var attempts atomic.Int64
	if _, err := Map(p, 1, func(i int, seed uint64) (int, error) {
		attempts.Add(1)
		return 0, Retryable(errors.New("always flaky"))
	}); err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("%d attempts before quarantine, want initial + 2 retries", attempts.Load())
	}
	if quarantined.Load() != 1 {
		t.Fatalf("quarantine fired %d times, want once after the budget", quarantined.Load())
	}
}

func TestMapQuarantineDoesNotSwallowCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{Workers: 1, Context: ctx}
	p.Quarantine = func(i int, err error) {
		t.Errorf("cancellation quarantined job %d: %v", i, err)
	}
	_, err := Map(p, 100, func(i int, seed uint64) (int, error) {
		if i == 3 {
			cancel()
		}
		return i, nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError — Quarantine must not absorb cancellation", err)
	}
}
