package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapSoftCancelLetsInflightFinish is the graceful-drain contract: once
// SoftContext fires, no new jobs are dispatched, but every attempt already
// running completes, its result is recorded, and Map reports the rest as
// skipped via *CanceledError.
func TestMapSoftCancelLetsInflightFinish(t *testing.T) {
	const n = 16
	soft, drain := context.WithCancelCause(context.Background())
	started := make(chan int, n)
	release := make(chan struct{})
	inflight := make(chan [2]int, 1)
	drainCause := errors.New("test drain")
	// Wait for both workers to be mid-job, then drain and let them finish.
	go func() {
		a, b := <-started, <-started
		drain(drainCause)
		close(release)
		inflight <- [2]int{a, b}
	}()
	p := &Pool{Workers: 2, SoftContext: soft}
	results, err := Map(p, n, func(i int, seed uint64) (int, error) {
		started <- i
		<-release
		return i * 10, nil
	})
	pair := <-inflight
	a, b := pair[0], pair[1]

	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, drainCause) {
		t.Errorf("cause chain %v does not carry the drain cause", err)
	}
	done := 0
	for _, d := range ce.Done {
		if d {
			done++
		}
	}
	// Exactly the two in-flight jobs completed; nothing new was dispatched.
	if done != 2 || !ce.Done[a] || !ce.Done[b] {
		t.Fatalf("done flags %v (count %d), want exactly jobs %d and %d", ce.Done, done, a, b)
	}
	for _, i := range []int{a, b} {
		if results[i] != i*10 {
			t.Errorf("in-flight job %d result %d, want %d (drain discarded completed work)", i, results[i], i*10)
		}
	}
}

// TestMapSoftCancelPersistsInflightResults is the checkpoint half: jobs that
// complete during a drain land in the store, so a restarted run resumes warm.
func TestMapSoftCancelPersistsInflightResults(t *testing.T) {
	st := newMapStore()
	soft, drain := context.WithCancelCause(context.Background())
	p := cachedPool(st, 1)
	p.SoftContext = soft
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	go func() {
		<-started
		drain(errors.New("test drain"))
		close(release)
	}()
	_, err := Map(p, 8, func(i int, seed uint64) (int, error) {
		if i == 0 {
			started <- struct{}{}
			<-release
		}
		return i, nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	st.mu.Lock()
	stored := len(st.m)
	st.mu.Unlock()
	if stored == 0 {
		t.Fatal("drained sweep persisted nothing; in-flight work was not checkpointed")
	}
	if stored == 8 {
		t.Fatal("drained sweep persisted all jobs; soft cancel did not stop dispatch")
	}
}

// TestMapSoftCancelAfterCompletionIsNotAnError: a drain signal that fires
// once every job has finished must not turn a complete sweep into an
// interrupted one.
func TestMapSoftCancelAfterCompletionIsNotAnError(t *testing.T) {
	soft, drain := context.WithCancelCause(context.Background())
	var ran atomic.Int64
	results, err := Map(&Pool{Workers: 4, SoftContext: soft}, 8, func(i int, seed uint64) (int, error) {
		if ran.Add(1) == 8 {
			drain(errors.New("late drain"))
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("completed sweep reported %v", err)
	}
	for i, v := range results {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

// TestMapSoftCancelBeforeStartSkipsEverything: a pool whose drain signal is
// already down dispatches nothing.
func TestMapSoftCancelBeforeStartSkipsEverything(t *testing.T) {
	soft, drain := context.WithCancelCause(context.Background())
	drain(errors.New("already draining"))
	_, err := Map(&Pool{Workers: 4, SoftContext: soft}, 8, func(i int, seed uint64) (int, error) {
		t.Errorf("job %d dispatched after drain", i)
		return 0, nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	for i, d := range ce.Done {
		if d {
			t.Errorf("job %d marked done", i)
		}
	}
}

// TestMapHardCancelBeatsSoft: when both signals fire, the hard context's
// cause wins (it is the stronger promise — in-flight work was abandoned).
func TestMapHardCancelBeatsSoft(t *testing.T) {
	hardCause := errors.New("hard cause")
	ctx, cancel := context.WithCancelCause(context.Background())
	soft, drain := context.WithCancelCause(context.Background())
	drain(errors.New("soft cause"))
	cancel(hardCause)
	_, err := Map(&Pool{Workers: 2, Context: ctx, SoftContext: soft}, 4, func(i int, seed uint64) (int, error) {
		return i, nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(ce.Err, hardCause) {
		t.Fatalf("cause = %v, want the hard context's %v", ce.Err, hardCause)
	}
}

// TestMapSoftCancelDuringTimedJobs exercises soft cancel together with the
// timeout/goroutine attempt path (JobTimeout > 0), which uses a different
// code path than the inline fast path.
func TestMapSoftCancelDuringTimedJobs(t *testing.T) {
	soft, drain := context.WithCancelCause(context.Background())
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	p := &Pool{Workers: 1, SoftContext: soft, JobTimeout: time.Minute}
	go func() {
		<-started
		drain(errors.New("test drain"))
		close(release)
	}()
	results, err := Map(p, 4, func(i int, seed uint64) (int, error) {
		if i == 0 {
			started <- struct{}{}
			<-release
		}
		return i + 100, nil
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !ce.Done[0] || results[0] != 100 {
		t.Fatalf("in-flight timed job lost: done=%v results[0]=%d", ce.Done, results[0])
	}
}
