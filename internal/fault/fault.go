// Package fault is the deterministic fault-injection framework: it decides,
// from an explicit seed, when the simulated NVM misbehaves.
//
// The paper's lifetime evaluation (Figs 12-16) assumes writes either succeed
// or retire a line exactly at its endurance limit. Real MLC NVM fails
// probabilistically: programming pulses fail transiently (retry-able), cells
// get stuck before their nominal endurance, reads disturb neighbouring bits,
// and the NVM-resident wear-leveling metadata is itself subject to all of
// the above (WoLFRaM, arXiv:2010.02825; SoftWear, arXiv:2004.03244). This
// package models those four modes; the recovery paths live in the layers the
// faults attack (internal/nvm for data lines, internal/imt + internal/core
// for metadata).
//
// Determinism rules:
//
//   - Every injector draws from its own xoshiro substream, derived from
//     (Config.Seed, stream id) via rng.SeedStream. Two simulation components
//     (device, metadata) never share a stream, so adding draws in one does
//     not perturb the other, and a sweep job's fault pattern depends only on
//     its derived seed — not on worker count or scheduling.
//   - A disabled config (all rates zero) yields a nil *Injector, and a nil
//     injector performs no RNG draws at all. Fault-free runs are therefore
//     byte-identical to runs of a build without the fault layer.
package fault

import "nvmwear/internal/rng"

// Substream ids for NewInjector, one per attacked component.
const (
	StreamDevice   = 1 // data-line write/read faults (internal/nvm)
	StreamMetadata = 2 // translation-table corruption (internal/imt)
)

// Config sets the per-event fault probabilities. The zero value disables
// injection entirely.
type Config struct {
	// TransientWriteRate is the probability that a demand or wear-leveling
	// write fails transiently. Transient failures are retry-able: the
	// device re-issues the programming pulse up to its retry budget and
	// escalates to a spare-line remap when the budget is exhausted.
	TransientWriteRate float64

	// StuckAtRate is the probability that a write leaves the line hard
	// stuck — a permanent fault striking before the line's nominal
	// endurance. The device must remap the line to a spare immediately.
	StuckAtRate float64

	// ReadDisturbRate is the probability that a read returns bit errors.
	// The number of flipped bits is drawn uniformly from [1, MaxBitErrors];
	// the device's ECC model decides between silent correction, scrub +
	// remap, and uncorrectable data loss.
	ReadDisturbRate float64

	// MaxBitErrors bounds the bit errors per read-disturb event
	// (default 8 — comfortably above typical ECC budgets, so uncorrectable
	// errors are reachable).
	MaxBitErrors int

	// MetadataRate is the probability, per translation-line write, that one
	// mapping-table entry stored on that line is corrupted (a random bit of
	// its packed address word flips). Detection and rebuild are implemented
	// by internal/imt and internal/core.
	MetadataRate float64

	// Seed is the base seed; each injector derives its substream from
	// (Seed, stream id).
	Seed uint64
}

// Enabled reports whether any fault mode is active.
func (c Config) Enabled() bool {
	return c.TransientWriteRate > 0 || c.StuckAtRate > 0 ||
		c.ReadDisturbRate > 0 || c.MetadataRate > 0
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBitErrors == 0 {
		c.MaxBitErrors = 8
	}
	return c
}

// WriteFaultKind classifies the outcome of one write attempt.
type WriteFaultKind uint8

// Write outcomes.
const (
	WriteOK        WriteFaultKind = iota // the write succeeded
	WriteTransient                       // programming failed; retry-able
	WriteStuck                           // the line is permanently stuck
)

// Injector draws fault events for one component. Not safe for concurrent
// use; the simulators drive one injector per goroutine (like nvm.Device).
//
// A nil *Injector is valid and injects nothing — every method treats the
// nil receiver as "faults disabled" so call sites need no guards.
type Injector struct {
	cfg Config
	src *rng.Source

	transients  uint64
	stucks      uint64
	disturbs    uint64
	corruptions uint64
}

// NewInjector builds the injector for one component substream. It returns
// nil when cfg is disabled, so fault-free runs perform no draws.
func NewInjector(cfg Config, stream uint64) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, src: rng.New(rng.SeedStream(cfg.Seed, stream))}
}

// WriteFault draws the outcome of one write attempt. A single uniform draw
// is partitioned between the stuck and transient rates so the two modes
// stay mutually exclusive per attempt.
func (in *Injector) WriteFault() WriteFaultKind {
	if in == nil || (in.cfg.StuckAtRate == 0 && in.cfg.TransientWriteRate == 0) {
		return WriteOK
	}
	p := in.src.Float64()
	if p < in.cfg.StuckAtRate {
		in.stucks++
		return WriteStuck
	}
	if p < in.cfg.StuckAtRate+in.cfg.TransientWriteRate {
		in.transients++
		return WriteTransient
	}
	return WriteOK
}

// RetryFails draws whether a retry of a transiently failed write fails
// again (same transient rate; retries cannot hit new stuck faults — a stuck
// cell would have failed the first attempt).
func (in *Injector) RetryFails() bool {
	if in == nil {
		return false
	}
	return in.src.Bool(in.cfg.TransientWriteRate)
}

// ReadDisturb draws the number of bit errors observed by one read: 0 for a
// clean read, otherwise uniform in [1, MaxBitErrors].
func (in *Injector) ReadDisturb() int {
	if in == nil || in.cfg.ReadDisturbRate == 0 {
		return 0
	}
	if !in.src.Bool(in.cfg.ReadDisturbRate) {
		return 0
	}
	in.disturbs++
	return 1 + in.src.Intn(in.cfg.MaxBitErrors)
}

// CorruptMetadata draws whether a translation-line write corrupts one of
// the entries stored on the line.
func (in *Injector) CorruptMetadata() bool {
	if in == nil || in.cfg.MetadataRate == 0 {
		return false
	}
	if !in.src.Bool(in.cfg.MetadataRate) {
		return false
	}
	in.corruptions++
	return true
}

// Intn draws a uniform value in [0, n) — used by victims-of-corruption
// selection (which entry on the line, which bit of the word).
func (in *Injector) Intn(n int) int {
	return in.src.Intn(n)
}

// Stats counts the events an injector has produced.
type Stats struct {
	TransientWrites     uint64 // transient write failures injected
	StuckLines          uint64 // hard stuck-at faults injected
	ReadDisturbs        uint64 // read events that returned bit errors
	MetadataCorruptions uint64 // table entries corrupted
}

// Stats returns cumulative injection counters (zero for a nil injector).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		TransientWrites:     in.transients,
		StuckLines:          in.stucks,
		ReadDisturbs:        in.disturbs,
		MetadataCorruptions: in.corruptions,
	}
}
