package fault

import "testing"

func TestDisabledConfigYieldsNilInjector(t *testing.T) {
	if in := NewInjector(Config{Seed: 42}, StreamDevice); in != nil {
		t.Fatalf("disabled config produced injector %v", in)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if k := in.WriteFault(); k != WriteOK {
			t.Fatalf("nil injector write fault %v", k)
		}
		if in.ReadDisturb() != 0 {
			t.Fatal("nil injector read disturb")
		}
		if in.CorruptMetadata() {
			t.Fatal("nil injector metadata corruption")
		}
		if in.RetryFails() {
			t.Fatal("nil injector retry failure")
		}
	}
	if in.Stats() != (Stats{}) {
		t.Fatal("nil injector non-zero stats")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{
		TransientWriteRate: 0.1, StuckAtRate: 0.01,
		ReadDisturbRate: 0.05, MetadataRate: 0.02, Seed: 9,
	}
	a := NewInjector(cfg, StreamDevice)
	b := NewInjector(cfg, StreamDevice)
	for i := 0; i < 10000; i++ {
		if a.WriteFault() != b.WriteFault() {
			t.Fatalf("write fault stream diverged at %d", i)
		}
		if a.ReadDisturb() != b.ReadDisturb() {
			t.Fatalf("read disturb stream diverged at %d", i)
		}
		if a.CorruptMetadata() != b.CorruptMetadata() {
			t.Fatalf("metadata stream diverged at %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestSubstreamsIndependent(t *testing.T) {
	cfg := Config{TransientWriteRate: 0.5, Seed: 9}
	dev := NewInjector(cfg, StreamDevice)
	meta := NewInjector(cfg, StreamMetadata)
	same := true
	for i := 0; i < 64; i++ {
		if dev.WriteFault() != meta.WriteFault() {
			same = false
		}
	}
	if same {
		t.Fatal("device and metadata substreams identical")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	cfg := Config{TransientWriteRate: 0.2, StuckAtRate: 0.05, Seed: 3}
	in := NewInjector(cfg, StreamDevice)
	const n = 100000
	var transient, stuck int
	for i := 0; i < n; i++ {
		switch in.WriteFault() {
		case WriteTransient:
			transient++
		case WriteStuck:
			stuck++
		}
	}
	if f := float64(transient) / n; f < 0.18 || f > 0.22 {
		t.Errorf("transient rate %.3f, want ~0.20", f)
	}
	if f := float64(stuck) / n; f < 0.04 || f > 0.06 {
		t.Errorf("stuck rate %.3f, want ~0.05", f)
	}
	st := in.Stats()
	if st.TransientWrites != uint64(transient) || st.StuckLines != uint64(stuck) {
		t.Errorf("stats %+v disagree with observed %d/%d", st, transient, stuck)
	}
}

func TestReadDisturbBounds(t *testing.T) {
	in := NewInjector(Config{ReadDisturbRate: 0.5, MaxBitErrors: 3, Seed: 1}, StreamDevice)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		k := in.ReadDisturb()
		if k < 0 || k > 3 {
			t.Fatalf("bit errors %d outside [0,3]", k)
		}
		seen[k] = true
	}
	for k := 0; k <= 3; k++ {
		if !seen[k] {
			t.Errorf("bit-error count %d never drawn", k)
		}
	}
}
