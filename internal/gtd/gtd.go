// Package gtd implements the Global Translation Directory (paper Sec 3.1).
//
// Tiered schemes store the Integrated Mapping Table in a reserved area of
// the NVM itself, packed into "translation lines". Those lines are written
// whenever mappings change, so they must be wear-leveled too — the GTD is
// the small SRAM-resident table that maps a logical translation-line
// address (tlma) to its physical counterpart (tpma), and this package also
// performs the hybrid wear leveling of the translation lines: regions of Kt
// translation lines exchange with a uniformly random region every Period
// writes per region.
//
// Translation lines carry no simulated payload (the IMT contents live in
// the controller model); the directory's job here is exact wear accounting
// of the reserved area and a faithful on-chip overhead figure
// (Sec 4.5: l/Kt * log2(l) bits).
package gtd

import (
	"fmt"

	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
)

// Config parameterizes a directory.
type Config struct {
	Base        uint64 // first physical device line of the reserved area
	Lines       uint64 // translation lines to manage (rounded up to Granularity)
	Granularity uint64 // Kt: translation lines per wear-leveling region
	Period      uint64 // writes to a region between exchanges
	Seed        uint64
}

// Directory is a GTD instance bound to a device.
type Directory struct {
	cfg     Config
	dev     *nvm.Device
	regions uint64
	table   []uint32
	counter []uint32
	src     *rng.Source

	writes     uint64
	swapWrites uint64
	remaps     uint64
}

// New creates a directory. The device must contain the physical range
// [Base, Base+PhysLines()).
func New(dev *nvm.Device, cfg Config) *Directory {
	if cfg.Lines == 0 {
		panic("gtd: zero translation lines")
	}
	if cfg.Granularity == 0 {
		panic("gtd: zero granularity")
	}
	if cfg.Period == 0 {
		panic("gtd: zero period")
	}
	regions := (cfg.Lines + cfg.Granularity - 1) / cfg.Granularity
	d := &Directory{
		cfg:     cfg,
		dev:     dev,
		regions: regions,
		table:   make([]uint32, regions),
		counter: make([]uint32, regions),
		src:     rng.New(cfg.Seed ^ 0x67d467d467d467d4),
	}
	if dev.Lines() < cfg.Base+regions*cfg.Granularity {
		panic("gtd: device lacks reserved space")
	}
	for i := range d.table {
		d.table[i] = uint32(i)
	}
	return d
}

// PhysLines returns the physical lines the directory occupies (Lines
// rounded up to whole regions).
func (c Config) PhysLines() uint64 {
	if c.Granularity == 0 {
		return c.Lines
	}
	r := (c.Lines + c.Granularity - 1) / c.Granularity
	return r * c.Granularity
}

// Translate maps a logical translation-line address to a physical device
// line.
func (d *Directory) Translate(tlma uint64) uint64 {
	r := tlma / d.cfg.Granularity
	return d.cfg.Base + uint64(d.table[r])*d.cfg.Granularity + tlma%d.cfg.Granularity
}

// Write records one write to a translation line, wearing the device and
// triggering the reserved-area wear leveling.
func (d *Directory) Write(tlma uint64) {
	d.writes++
	d.dev.Write(d.Translate(tlma))
	r := tlma / d.cfg.Granularity
	d.counter[r]++
	if uint64(d.counter[r]) >= d.cfg.Period {
		d.counter[r] = 0
		d.exchange(r)
	}
}

// Read records one read of a translation line.
func (d *Directory) Read(tlma uint64) {
	d.dev.Read(d.Translate(tlma))
}

// exchange swaps region r's physical frame with a random region's. The
// translation-line payloads move (2*Kt device writes) but carry no
// simulated data.
func (d *Directory) exchange(r uint64) {
	p := d.src.Uint64n(d.regions)
	if p == r {
		return
	}
	d.remaps++
	baseR := d.cfg.Base + uint64(d.table[r])*d.cfg.Granularity
	baseP := d.cfg.Base + uint64(d.table[p])*d.cfg.Granularity
	for i := uint64(0); i < d.cfg.Granularity; i++ {
		d.dev.Write(baseR + i)
		d.dev.Write(baseP + i)
		d.swapWrites += 2
	}
	d.table[r], d.table[p] = d.table[p], d.table[r]
}

// Stats summarizes directory activity.
type Stats struct {
	Writes     uint64
	SwapWrites uint64
	Remaps     uint64
}

// Stats returns cumulative counters.
func (d *Directory) Stats() Stats {
	return Stats{Writes: d.writes, SwapWrites: d.swapWrites, Remaps: d.remaps}
}

// OverheadBits returns the SRAM cost of the directory: one physical region
// pointer per region (Sec 4.5: l/Kt * log2(l)).
func (d *Directory) OverheadBits() uint64 {
	bits := uint64(1)
	for uint64(1)<<bits < d.regions {
		bits++
	}
	return d.regions * bits
}

// Snapshot returns a copy of the directory table — the battery-flushed
// controller metadata of the tiered engine's checkpoint (paper Sec 3.1).
func (d *Directory) Snapshot() []uint32 {
	out := make([]uint32, len(d.table))
	copy(out, d.table)
	return out
}

// Restore replaces the directory table from a snapshot, validating that it
// is a permutation of the region indices.
func (d *Directory) Restore(table []uint32) error {
	if uint64(len(table)) != d.regions {
		return fmt.Errorf("gtd: snapshot has %d regions, directory has %d", len(table), d.regions)
	}
	seen := make([]bool, d.regions)
	for _, p := range table {
		if uint64(p) >= d.regions || seen[p] {
			return fmt.Errorf("gtd: snapshot is not a permutation")
		}
		seen[p] = true
	}
	copy(d.table, table)
	return nil
}
