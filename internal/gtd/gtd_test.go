package gtd

import (
	"testing"

	"nvmwear/internal/nvm"
)

func newDir(lines, gran, period uint64) (*nvm.Device, *Directory) {
	cfg := Config{Base: 1024, Lines: lines, Granularity: gran, Period: period, Seed: 7}
	dev := nvm.New(nvm.Config{Lines: 1024 + cfg.PhysLines(), SpareLines: 0, Endurance: 1 << 30})
	return dev, New(dev, cfg)
}

func TestTranslateInitialIdentity(t *testing.T) {
	_, d := newDir(64, 8, 100)
	for tlma := uint64(0); tlma < 64; tlma++ {
		if got := d.Translate(tlma); got != 1024+tlma {
			t.Fatalf("Translate(%d) = %d", tlma, got)
		}
	}
}

func TestTranslateBijection(t *testing.T) {
	dev, d := newDir(64, 8, 2)
	for i := 0; i < 1000; i++ {
		d.Write(uint64(i) % 64)
	}
	seen := make(map[uint64]bool)
	for tlma := uint64(0); tlma < 64; tlma++ {
		p := d.Translate(tlma)
		if p < 1024 || p >= dev.Lines() {
			t.Fatalf("Translate(%d) = %d out of reserved range", tlma, p)
		}
		if seen[p] {
			t.Fatalf("collision at %d", p)
		}
		seen[p] = true
	}
}

func TestWritesWearReservedArea(t *testing.T) {
	dev, d := newDir(64, 8, 1000000)
	for i := 0; i < 100; i++ {
		d.Write(5)
	}
	if dev.WearCounts()[1024+5] != 100 {
		t.Fatalf("translation line wear = %d", dev.WearCounts()[1024+5])
	}
	if d.Stats().Writes != 100 {
		t.Fatalf("stats writes = %d", d.Stats().Writes)
	}
}

func TestExchangeSpreadsWear(t *testing.T) {
	dev, d := newDir(64, 8, 4)
	for i := 0; i < 5000; i++ {
		d.Write(3)
	}
	st := d.Stats()
	if st.Remaps == 0 || st.SwapWrites == 0 {
		t.Fatalf("no exchanges: %+v", st)
	}
	// The hot translation line must have visited several regions.
	touched := 0
	for _, w := range dev.WearCounts()[1024:] {
		if w > 0 {
			touched++
		}
	}
	if touched < 16 {
		t.Fatalf("wear confined to %d lines", touched)
	}
}

func TestRoundUpToGranularity(t *testing.T) {
	cfg := Config{Lines: 65, Granularity: 8, Period: 1}
	if cfg.PhysLines() != 72 {
		t.Fatalf("PhysLines = %d", cfg.PhysLines())
	}
}

func TestReadDoesNotWear(t *testing.T) {
	dev, d := newDir(64, 8, 10)
	for i := 0; i < 100; i++ {
		d.Read(3)
	}
	if dev.Stats().TotalWrites != 0 {
		t.Fatal("reads wore the device")
	}
}

func TestOverheadBits(t *testing.T) {
	_, d := newDir(1024, 32, 100)
	// 32 regions, 5 bits each.
	if got := d.OverheadBits(); got != 32*5 {
		t.Fatalf("OverheadBits = %d", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 64, Endurance: 1})
	for _, cfg := range []Config{
		{Lines: 0, Granularity: 8, Period: 1},
		{Lines: 64, Granularity: 0, Period: 1},
		{Lines: 64, Granularity: 8, Period: 0},
		{Base: 32, Lines: 64, Granularity: 8, Period: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}
