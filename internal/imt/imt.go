// Package imt implements the Integrated Mapping Table (paper Sec 3.1-3.2,
// Fig 6 and Fig 10).
//
// The IMT holds one entry per initial-granularity region: the packed
// address information D = prn*Q + key, where Q is the region's *current*
// wear-leveling granularity in lines. The table's size is fixed by the
// initial granularity P (number of entries = M/P); region merges and splits
// never change the table size — a merged super-region of n*P lines simply
// stores identical address information in all n of its sub-entries, and the
// real granularity is recoverable from how many adjacent entries agree
// (Sec 3.2 item 3). This package additionally tracks each entry's level
// explicitly for O(1) access; VerifyLevels cross-checks the explicit levels
// against the adjacency encoding, and tests rely on it.
//
// Entries are packed K per translation line (K = 6 in the paper's design).
// The table lives in a reserved area of the NVM device, so every entry
// update wears a translation line; reads and writes are routed through the
// GTD, which wear-levels the reserved area itself.
package imt

import (
	"fmt"

	"nvmwear/internal/addr"
	"nvmwear/internal/fault"
	"nvmwear/internal/gtd"
)

// Entry is one region mapping at its current granularity.
type Entry struct {
	D     uint64 // packed prn*Q + key (Q = P << Level lines)
	Level uint8
}

// Table is an IMT instance.
type Table struct {
	dir            *gtd.Directory
	initGran       uint64 // P
	dataLines      uint64 // M
	entriesPerLine uint64 // K

	entries []uint64
	levels  []uint8
	fs      *faultState // nil when metadata faults are disabled
}

// faultState carries the metadata-fault machinery: the injector, the
// per-entry checksums that detect corruption, and the rebuild callback the
// engine registers (it owns the inverse table the rebuild reads).
type faultState struct {
	inj     *fault.Injector
	sums    []uint16
	rebuild RebuildFunc

	corruptions uint64 // checksum mismatches detected on fetch
	rebuilds    uint64 // entries rebuilt from the inverse table
	mismatches  uint64 // rebuilds whose candidates never matched the checksum
}

// RebuildFunc recovers entry idx (at the given level) after its stored word
// failed its checksum. want is the stored checksum the candidate must
// reproduce. ok is false when no candidate matched — the returned d is then
// the caller's best reconstruction (still a valid mapping) and the event is
// counted as a mismatch.
type RebuildFunc func(idx uint64, level uint8, want uint16) (d uint64, ok bool)

// EntrySum is the per-entry checksum stored alongside each mapping word —
// the model of the controller's metadata ECC. It covers the entry index, the
// packed address word, and the level, so a flipped bit in any of them (or an
// entry written to the wrong slot) is detected on fetch.
func EntrySum(idx, d uint64, level uint8) uint16 {
	x := idx*0x9e3779b97f4a7c15 ^ d*0xbf58476d1ce4e5b9 ^ (uint64(level)+1)*0x94d049bb133111eb
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return uint16(x)
}

// EnableFaults arms metadata-fault injection: every translation-line write
// may corrupt one entry stored on that line (a random bit of its packed
// word flips), and every entry fetch verifies the per-entry checksum,
// invoking rebuild on a mismatch and rewriting the repaired line through
// the GTD. inj must be non-nil and rebuild non-nil.
func (t *Table) EnableFaults(inj *fault.Injector, rebuild RebuildFunc) {
	if inj == nil || rebuild == nil {
		panic("imt: EnableFaults needs an injector and a rebuild callback")
	}
	fs := &faultState{inj: inj, rebuild: rebuild, sums: make([]uint16, len(t.entries))}
	for i := range t.entries {
		fs.sums[i] = EntrySum(uint64(i), t.entries[i], t.levels[i])
	}
	t.fs = fs
}

// FaultStats counts the metadata-fault events a table has seen.
type FaultStats struct {
	Corruptions uint64 // checksum mismatches detected
	Rebuilds    uint64 // entries rebuilt from the inverse table
	Mismatches  uint64 // rebuilds that fell back to a best-effort candidate
}

// FaultStats returns cumulative metadata-fault counters.
func (t *Table) FaultStats() FaultStats {
	if t.fs == nil {
		return FaultStats{}
	}
	return FaultStats{
		Corruptions: t.fs.corruptions,
		Rebuilds:    t.fs.rebuilds,
		Mismatches:  t.fs.mismatches,
	}
}

// verify checks entry idx against its checksum and rebuilds it on a
// mismatch. The repaired entry is written back to its translation line
// through the GTD (one table write), modeling the controller persisting the
// reconstruction.
func (t *Table) verify(idx uint64) {
	fs := t.fs
	if EntrySum(idx, t.entries[idx], t.levels[idx]) == fs.sums[idx] {
		return
	}
	fs.corruptions++
	d, ok := fs.rebuild(idx, t.levels[idx], fs.sums[idx])
	if !ok {
		fs.mismatches++
	}
	t.entries[idx] = d
	fs.sums[idx] = EntrySum(idx, d, t.levels[idx])
	fs.rebuilds++
	t.dir.Write(t.lineOf(idx)) // persist the repaired line
}

// corruptLine flips one random bit of one random entry stored on
// translation line l — the injected fault a later fetch must detect.
func (t *Table) corruptLine(l uint64) {
	lo := l * t.entriesPerLine
	hi := lo + t.entriesPerLine
	if n := uint64(len(t.entries)); hi > n {
		hi = n
	}
	victim := lo + uint64(t.fs.inj.Intn(int(hi-lo)))
	bit := t.fs.inj.Intn(64)
	t.entries[victim] ^= uint64(1) << bit
}

// New creates the table with the identity mapping at level 0. dir handles
// translation-line wear; entriesPerLine is K (the paper uses 6).
func New(dir *gtd.Directory, dataLines, initGran, entriesPerLine uint64) *Table {
	if !addr.IsPow2(dataLines) || !addr.IsPow2(initGran) {
		panic("imt: dataLines and initGran must be powers of two")
	}
	if initGran > dataLines {
		panic("imt: granularity exceeds memory")
	}
	if entriesPerLine == 0 {
		panic("imt: zero entries per line")
	}
	n := dataLines / initGran
	t := &Table{
		dir:            dir,
		initGran:       initGran,
		dataLines:      dataLines,
		entriesPerLine: entriesPerLine,
		entries:        make([]uint64, n),
		levels:         make([]uint8, n),
	}
	for i := uint64(0); i < n; i++ {
		t.entries[i] = i * initGran // prn=i, key=0
	}
	return t
}

// TranslationLines returns the number of translation lines the table packs
// into — the size the GTD must manage.
func TranslationLines(dataLines, initGran, entriesPerLine uint64) uint64 {
	n := dataLines / initGran
	return (n + entriesPerLine - 1) / entriesPerLine
}

// NumEntries returns the number of (initial-granularity) entries.
func (t *Table) NumEntries() uint64 { return uint64(len(t.entries)) }

// InitGran returns P.
func (t *Table) InitGran() uint64 { return t.initGran }

// lineOf returns the translation line holding entry idx.
func (t *Table) lineOf(idx uint64) uint64 { return idx / t.entriesPerLine }

// Get returns entry idx without touching the device (used when the entry
// is already cached on chip). With metadata faults enabled every fetch
// verifies the entry's checksum first — corrupted words are rebuilt before
// they can propagate into a translation or an exchange.
func (t *Table) Get(idx uint64) Entry {
	if t.fs != nil {
		t.verify(idx)
	}
	return Entry{D: t.entries[idx], Level: t.levels[idx]}
}

// Read returns entry idx, accounting one translation-line read through the
// GTD — the CMT-miss path of Fig 11 step 3.
func (t *Table) Read(idx uint64) Entry {
	t.dir.Read(t.lineOf(idx))
	return t.Get(idx)
}

// SetRange updates entries [base, base+span) to the same address info —
// one region at granularity span*P. It writes each affected translation
// line once through the GTD.
func (t *Table) SetRange(base, span uint64, d uint64, level uint8) {
	if base%span != 0 || span != uint64(1)<<level {
		panic(fmt.Sprintf("imt: SetRange base %d span %d level %d misaligned", base, span, level))
	}
	for i := base; i < base+span; i++ {
		t.entries[i] = d
		t.levels[i] = level
		if t.fs != nil {
			t.fs.sums[i] = EntrySum(i, d, level)
		}
	}
	first, last := t.lineOf(base), t.lineOf(base+span-1)
	for l := first; l <= last; l++ {
		t.dir.Write(l)
		if t.fs != nil && t.fs.inj.CorruptMetadata() {
			t.corruptLine(l)
		}
	}
}

// Region returns the super-region descriptor covering entry idx: its
// aligned base, span (in entries) and mapping.
func (t *Table) Region(idx uint64) (base, span uint64, e Entry) {
	e = t.Get(idx)
	span = uint64(1) << e.Level
	base = idx &^ (span - 1)
	return base, span, e
}

// Granularity returns the region size in lines for entry idx.
func (t *Table) Granularity(idx uint64) uint64 {
	return t.initGran << t.levels[idx]
}

// Translate maps a logical line address through the table (no device
// accounting; callers account CMT/IMT traffic). With metadata faults
// enabled the entry is checksum-verified (and repaired if needed) before
// use, like any other fetch.
func (t *Table) Translate(lma uint64) uint64 {
	idx := lma / t.initGran
	if t.fs != nil {
		t.verify(idx)
	}
	q := t.initGran << t.levels[idx]
	return addr.Translate(lma, t.entries[idx], q)
}

// VerifyLevels cross-checks the explicit level array against the paper's
// adjacency encoding: a level-l region must consist of 2^l aligned entries
// holding identical D, and its neighbors at the same alignment must differ.
// Returns the first inconsistency found, or nil.
func (t *Table) VerifyLevels() error {
	n := uint64(len(t.entries))
	for i := uint64(0); i < n; {
		lvl := t.levels[i]
		if uint64(lvl) >= 64 || uint64(1)<<lvl > n {
			return fmt.Errorf("imt: entry %d level %d exceeds table", i, lvl)
		}
		span := uint64(1) << lvl
		if i%span != 0 {
			return fmt.Errorf("imt: entry %d level %d misaligned", i, lvl)
		}
		d := t.entries[i]
		for j := i; j < i+span; j++ {
			if j >= n {
				return fmt.Errorf("imt: region at %d overruns table", i)
			}
			if t.entries[j] != d {
				return fmt.Errorf("imt: entry %d disagrees with region base %d", j, i)
			}
			if t.levels[j] != lvl {
				return fmt.Errorf("imt: entry %d level %d != region level %d", j, t.levels[j], lvl)
			}
		}
		// The buddy range must hold different info (otherwise the regions
		// would be indistinguishable from a merged region).
		buddy := i ^ span
		if buddy < n && t.levels[buddy] == lvl && t.entries[buddy] == d {
			return fmt.Errorf("imt: region %d and buddy %d identical but not merged", i, buddy)
		}
		i += span
	}
	return nil
}

// NVMBits returns the reserved-space cost of the table in bits: one
// log2(M)-bit entry per initial region (Sec 4.5).
func (t *Table) NVMBits() uint64 {
	return t.NumEntries() * uint64(addr.Log2(t.dataLines))
}

// Load replaces the table contents wholesale (crash recovery: the entries
// represent NVM-resident translation lines that survived power loss). The
// level encoding is verified before the table is accepted; no device
// writes are charged (the data is already on the device).
func (t *Table) Load(entries []uint64, levels []uint8) error {
	if uint64(len(entries)) != t.NumEntries() || uint64(len(levels)) != t.NumEntries() {
		return fmt.Errorf("imt: load size mismatch")
	}
	old := t.entries
	oldLv := t.levels
	t.entries = append([]uint64(nil), entries...)
	t.levels = append([]uint8(nil), levels...)
	if err := t.VerifyLevels(); err != nil {
		t.entries, t.levels = old, oldLv
		return err
	}
	if t.fs != nil {
		for i := range t.entries {
			t.fs.sums[i] = EntrySum(uint64(i), t.entries[i], t.levels[i])
		}
	}
	return nil
}

// CorruptEntryForTest flips one bit of entry idx without updating its
// checksum — the test hook for exercising the detection/rebuild path
// deterministically.
func (t *Table) CorruptEntryForTest(idx uint64) {
	t.entries[idx] ^= 1 << 7
}

// Scrub verifies every entry against its checksum, rebuilding any corrupted
// ones — the background-scrubber pass a controller runs before consistency
// audits. No-op when metadata faults are disabled.
func (t *Table) Scrub() {
	if t.fs == nil {
		return
	}
	for i := range t.entries {
		t.verify(uint64(i))
	}
}
