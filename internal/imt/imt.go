// Package imt implements the Integrated Mapping Table (paper Sec 3.1-3.2,
// Fig 6 and Fig 10).
//
// The IMT holds one entry per initial-granularity region: the packed
// address information D = prn*Q + key, where Q is the region's *current*
// wear-leveling granularity in lines. The table's size is fixed by the
// initial granularity P (number of entries = M/P); region merges and splits
// never change the table size — a merged super-region of n*P lines simply
// stores identical address information in all n of its sub-entries, and the
// real granularity is recoverable from how many adjacent entries agree
// (Sec 3.2 item 3). This package additionally tracks each entry's level
// explicitly for O(1) access; VerifyLevels cross-checks the explicit levels
// against the adjacency encoding, and tests rely on it.
//
// Entries are packed K per translation line (K = 6 in the paper's design).
// The table lives in a reserved area of the NVM device, so every entry
// update wears a translation line; reads and writes are routed through the
// GTD, which wear-levels the reserved area itself.
package imt

import (
	"fmt"

	"nvmwear/internal/addr"
	"nvmwear/internal/gtd"
)

// Entry is one region mapping at its current granularity.
type Entry struct {
	D     uint64 // packed prn*Q + key (Q = P << Level lines)
	Level uint8
}

// Table is an IMT instance.
type Table struct {
	dir            *gtd.Directory
	initGran       uint64 // P
	dataLines      uint64 // M
	entriesPerLine uint64 // K

	entries []uint64
	levels  []uint8
}

// New creates the table with the identity mapping at level 0. dir handles
// translation-line wear; entriesPerLine is K (the paper uses 6).
func New(dir *gtd.Directory, dataLines, initGran, entriesPerLine uint64) *Table {
	if !addr.IsPow2(dataLines) || !addr.IsPow2(initGran) {
		panic("imt: dataLines and initGran must be powers of two")
	}
	if initGran > dataLines {
		panic("imt: granularity exceeds memory")
	}
	if entriesPerLine == 0 {
		panic("imt: zero entries per line")
	}
	n := dataLines / initGran
	t := &Table{
		dir:            dir,
		initGran:       initGran,
		dataLines:      dataLines,
		entriesPerLine: entriesPerLine,
		entries:        make([]uint64, n),
		levels:         make([]uint8, n),
	}
	for i := uint64(0); i < n; i++ {
		t.entries[i] = i * initGran // prn=i, key=0
	}
	return t
}

// TranslationLines returns the number of translation lines the table packs
// into — the size the GTD must manage.
func TranslationLines(dataLines, initGran, entriesPerLine uint64) uint64 {
	n := dataLines / initGran
	return (n + entriesPerLine - 1) / entriesPerLine
}

// NumEntries returns the number of (initial-granularity) entries.
func (t *Table) NumEntries() uint64 { return uint64(len(t.entries)) }

// InitGran returns P.
func (t *Table) InitGran() uint64 { return t.initGran }

// lineOf returns the translation line holding entry idx.
func (t *Table) lineOf(idx uint64) uint64 { return idx / t.entriesPerLine }

// Get returns entry idx without touching the device (used when the entry
// is already cached on chip).
func (t *Table) Get(idx uint64) Entry {
	return Entry{D: t.entries[idx], Level: t.levels[idx]}
}

// Read returns entry idx, accounting one translation-line read through the
// GTD — the CMT-miss path of Fig 11 step 3.
func (t *Table) Read(idx uint64) Entry {
	t.dir.Read(t.lineOf(idx))
	return t.Get(idx)
}

// SetRange updates entries [base, base+span) to the same address info —
// one region at granularity span*P. It writes each affected translation
// line once through the GTD.
func (t *Table) SetRange(base, span uint64, d uint64, level uint8) {
	if base%span != 0 || span != uint64(1)<<level {
		panic(fmt.Sprintf("imt: SetRange base %d span %d level %d misaligned", base, span, level))
	}
	for i := base; i < base+span; i++ {
		t.entries[i] = d
		t.levels[i] = level
	}
	first, last := t.lineOf(base), t.lineOf(base+span-1)
	for l := first; l <= last; l++ {
		t.dir.Write(l)
	}
}

// Region returns the super-region descriptor covering entry idx: its
// aligned base, span (in entries) and mapping.
func (t *Table) Region(idx uint64) (base, span uint64, e Entry) {
	e = t.Get(idx)
	span = uint64(1) << e.Level
	base = idx &^ (span - 1)
	return base, span, e
}

// Granularity returns the region size in lines for entry idx.
func (t *Table) Granularity(idx uint64) uint64 {
	return t.initGran << t.levels[idx]
}

// Translate maps a logical line address through the table (no device
// accounting; callers account CMT/IMT traffic).
func (t *Table) Translate(lma uint64) uint64 {
	idx := lma / t.initGran
	q := t.initGran << t.levels[idx]
	return addr.Translate(lma, t.entries[idx], q)
}

// VerifyLevels cross-checks the explicit level array against the paper's
// adjacency encoding: a level-l region must consist of 2^l aligned entries
// holding identical D, and its neighbors at the same alignment must differ.
// Returns the first inconsistency found, or nil.
func (t *Table) VerifyLevels() error {
	n := uint64(len(t.entries))
	for i := uint64(0); i < n; {
		lvl := t.levels[i]
		if uint64(lvl) >= 64 || uint64(1)<<lvl > n {
			return fmt.Errorf("imt: entry %d level %d exceeds table", i, lvl)
		}
		span := uint64(1) << lvl
		if i%span != 0 {
			return fmt.Errorf("imt: entry %d level %d misaligned", i, lvl)
		}
		d := t.entries[i]
		for j := i; j < i+span; j++ {
			if j >= n {
				return fmt.Errorf("imt: region at %d overruns table", i)
			}
			if t.entries[j] != d {
				return fmt.Errorf("imt: entry %d disagrees with region base %d", j, i)
			}
			if t.levels[j] != lvl {
				return fmt.Errorf("imt: entry %d level %d != region level %d", j, t.levels[j], lvl)
			}
		}
		// The buddy range must hold different info (otherwise the regions
		// would be indistinguishable from a merged region).
		buddy := i ^ span
		if buddy < n && t.levels[buddy] == lvl && t.entries[buddy] == d {
			return fmt.Errorf("imt: region %d and buddy %d identical but not merged", i, buddy)
		}
		i += span
	}
	return nil
}

// NVMBits returns the reserved-space cost of the table in bits: one
// log2(M)-bit entry per initial region (Sec 4.5).
func (t *Table) NVMBits() uint64 {
	return t.NumEntries() * uint64(addr.Log2(t.dataLines))
}

// Load replaces the table contents wholesale (crash recovery: the entries
// represent NVM-resident translation lines that survived power loss). The
// level encoding is verified before the table is accepted; no device
// writes are charged (the data is already on the device).
func (t *Table) Load(entries []uint64, levels []uint8) error {
	if uint64(len(entries)) != t.NumEntries() || uint64(len(levels)) != t.NumEntries() {
		return fmt.Errorf("imt: load size mismatch")
	}
	old := t.entries
	oldLv := t.levels
	t.entries = append([]uint64(nil), entries...)
	t.levels = append([]uint8(nil), levels...)
	if err := t.VerifyLevels(); err != nil {
		t.entries, t.levels = old, oldLv
		return err
	}
	return nil
}
