package imt

import (
	"testing"

	"nvmwear/internal/gtd"
	"nvmwear/internal/nvm"
)

// harness builds a device + GTD + IMT for M data lines at granularity P.
func harness(dataLines, initGran uint64) (*nvm.Device, *gtd.Directory, *Table) {
	tl := TranslationLines(dataLines, initGran, 6)
	gcfg := gtd.Config{Base: dataLines, Lines: tl, Granularity: 4, Period: 128, Seed: 3}
	dev := nvm.New(nvm.Config{
		Lines: dataLines + gcfg.PhysLines(), SpareLines: 0, Endurance: 1 << 30,
	})
	dir := gtd.New(dev, gcfg)
	return dev, dir, New(dir, dataLines, initGran, 6)
}

func TestInitialIdentity(t *testing.T) {
	_, _, tab := harness(256, 4)
	if tab.NumEntries() != 64 || tab.InitGran() != 4 {
		t.Fatal("geometry")
	}
	for lma := uint64(0); lma < 256; lma++ {
		if tab.Translate(lma) != lma {
			t.Fatalf("initial Translate(%d) != identity", lma)
		}
	}
	if err := tab.VerifyLevels(); err != nil {
		t.Fatal(err)
	}
}

func TestSetRangeAndRegion(t *testing.T) {
	dev, _, tab := harness(256, 4)
	// Merge entries 4..7 into one level-2 region at physical super-region 1
	// (lines 16..31... prn=1 at Q=16), key 5.
	d := uint64(1*16 + 5)
	tab.SetRange(4, 4, d, 2)
	base, span, e := tab.Region(6)
	if base != 4 || span != 4 || e.D != d || e.Level != 2 {
		t.Fatalf("region: base=%d span=%d %+v", base, span, e)
	}
	if g := tab.Granularity(5); g != 16 {
		t.Fatalf("granularity = %d", g)
	}
	if err := tab.VerifyLevels(); err != nil {
		t.Fatal(err)
	}
	// Translation through the merged region: lma 16..31 map into lines
	// 16..31 permuted by key 5.
	seen := make(map[uint64]bool)
	for lma := uint64(16); lma < 32; lma++ {
		p := tab.Translate(lma)
		if p < 16 || p >= 32 || seen[p] {
			t.Fatalf("bad translate %d -> %d", lma, p)
		}
		seen[p] = true
	}
	_ = dev
}

func TestSetRangeWearsTranslationLines(t *testing.T) {
	dev, dir, tab := harness(4096, 4) // 1024 entries, 171 translation lines
	before := dir.Stats().Writes
	// Entries 4..7 span translation lines 0 and 1 (6 entries per line).
	tab.SetRange(4, 4, 4*4, 2)
	if writes := dir.Stats().Writes - before; writes != 2 {
		t.Fatalf("translation line writes = %d, want 2", writes)
	}
	before = dir.Stats().Writes
	// Entries 8..11 all live on translation line 1: one write.
	tab.SetRange(8, 4, 8*4, 2)
	if writes := dir.Stats().Writes - before; writes != 1 {
		t.Fatalf("translation line writes = %d, want 1", writes)
	}
	_ = dev
}

func TestReadAccountsTranslationLineRead(t *testing.T) {
	dev, _, tab := harness(256, 4)
	r0 := dev.Stats().TotalReads
	e := tab.Read(10)
	if e.D != 40 || e.Level != 0 {
		t.Fatalf("entry: %+v", e)
	}
	if dev.Stats().TotalReads != r0+1 {
		t.Fatal("read not accounted")
	}
}

func TestVerifyLevelsCatchesCorruption(t *testing.T) {
	_, _, tab := harness(256, 4)
	tab.SetRange(4, 4, 16, 2)
	// Corrupt one sub-entry.
	tab.entries[5] = 99
	if err := tab.VerifyLevels(); err == nil {
		t.Fatal("corruption not detected")
	}
	tab.entries[5] = 16
	// Misaligned level.
	tab.levels[6] = 1
	if err := tab.VerifyLevels(); err == nil {
		t.Fatal("level corruption not detected")
	}
}

func TestVerifyLevelsCatchesUnmergedTwins(t *testing.T) {
	_, _, tab := harness(256, 4)
	// Two adjacent level-0 entries with identical D are indistinguishable
	// from a merged region — VerifyLevels must flag that.
	tab.entries[3] = tab.entries[2]
	if err := tab.VerifyLevels(); err == nil {
		t.Fatal("identical buddies not detected")
	}
}

func TestTranslationLinesFormula(t *testing.T) {
	if TranslationLines(4096, 4, 6) != 171 {
		t.Fatalf("TranslationLines = %d", TranslationLines(4096, 4, 6))
	}
	if TranslationLines(24, 4, 6) != 1 {
		t.Fatal("small table")
	}
}

func TestNVMBits(t *testing.T) {
	_, _, tab := harness(256, 4)
	// 64 entries * log2(256)=8 bits.
	if got := tab.NVMBits(); got != 64*8 {
		t.Fatalf("NVMBits = %d", got)
	}
}

func TestSetRangePanicsOnMisalignment(t *testing.T) {
	_, _, tab := harness(256, 4)
	for _, f := range []func(){
		func() { tab.SetRange(3, 2, 0, 1) }, // misaligned base
		func() { tab.SetRange(4, 3, 0, 1) }, // span not 2^level
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestConstructorPanics(t *testing.T) {
	_, dir, _ := harness(256, 4)
	for _, f := range []func(){
		func() { New(dir, 255, 4, 6) },
		func() { New(dir, 256, 3, 6) },
		func() { New(dir, 4, 8, 6) },
		func() { New(dir, 256, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
