// Package lifetime drives a workload through a wear-leveling scheme until
// the NVM device fails, and reports the normalized lifetime — the fraction
// of the ideal lifetime (perfectly uniform wear) the scheme achieved. This
// is the measurement behind the paper's Figs 3, 4, 5, 15 and 16.
//
// The paper simulates 64 GB devices with 10^5-10^6 cell endurance over
// months of simulated traffic; that is far beyond a unit-test budget, so
// experiments here run on scaled-down devices (fewer lines, lower
// endurance). Normalized lifetime is scale-invariant as long as the ratio
// of endurance to swapping period and the regions-to-capacity proportions
// are preserved; EXPERIMENTS.md records the scale factors used per figure.
package lifetime

import (
	"fmt"
	"time"

	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Result summarizes one lifetime run.
type Result struct {
	Scheme        string
	Workload      string
	Normalized    float64 // fraction of ideal lifetime achieved
	Served        uint64  // demand writes served before failure
	Ideal         uint64  // device ideal writes
	WriteOverhead float64
	WearGini      float64
	HitRate       float64 // CMT hit rate (1 for non-tiered schemes)
	Elapsed       time.Duration
	TimedOut      bool // run hit MaxRequests before device death

	// Fault-injection outcomes (zero on fault-free runs).
	Reads         uint64 // device reads issued over the run
	Uncorrectable uint64 // reads lost beyond the ECC budget
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: lifetime %.1f%% (served %d / ideal %d, overhead %.2f%%, gini %.3f)",
		r.Scheme, r.Workload, 100*r.Normalized, r.Served, r.Ideal,
		100*r.WriteOverhead, r.WearGini)
}

// Options controls a run.
type Options struct {
	// MaxWrites bounds the run in demand writes; 0 means 4x the device's
	// ideal writes (a scheme cannot do better than ideal, so 4x guarantees
	// termination regardless of the workload's read share).
	MaxWrites uint64
	// Workload label for reporting.
	Workload string
}

// Run pumps requests from the stream through the scheme until the device
// dies or the write budget is exhausted.
func Run(dev *nvm.Device, lv wl.Leveler, stream trace.Stream, opts Options) Result {
	maxWrites := opts.MaxWrites
	if maxWrites == 0 {
		maxWrites = 4 * dev.IdealWrites()
	}
	start := time.Now()
	var writes uint64
	for writes < maxWrites && dev.Alive() {
		r := stream.Next()
		lv.Access(r.Op, r.Addr)
		if r.Op == trace.Write {
			writes++
		}
	}
	st := lv.Stats()
	ds := dev.Stats()
	res := Result{
		Scheme:        lv.Name(),
		Workload:      opts.Workload,
		Served:        st.DataWrites,
		Ideal:         dev.IdealWrites(),
		WriteOverhead: st.WriteOverhead(),
		WearGini:      metrics.GiniUint32(dev.WearCounts()),
		HitRate:       st.HitRate(),
		Elapsed:       time.Since(start),
		TimedOut:      dev.Alive(),
		Reads:         ds.TotalReads,
		Uncorrectable: ds.Uncorrectable,
	}
	if res.Ideal > 0 {
		res.Normalized = float64(res.Served) / float64(res.Ideal)
	}
	return res
}
