// Package lifetime drives a workload through a wear-leveling scheme until
// the NVM device fails, and reports the normalized lifetime — the fraction
// of the ideal lifetime (perfectly uniform wear) the scheme achieved. This
// is the measurement behind the paper's Figs 3, 4, 5, 15 and 16.
//
// The paper simulates 64 GB devices with 10^5-10^6 cell endurance over
// months of simulated traffic; that is far beyond a unit-test budget, so
// experiments here run on scaled-down devices (fewer lines, lower
// endurance). Normalized lifetime is scale-invariant as long as the ratio
// of endurance to swapping period and the regions-to-capacity proportions
// are preserved; EXPERIMENTS.md records the scale factors used per figure.
package lifetime

import (
	"fmt"
	"time"

	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Result summarizes one lifetime run.
type Result struct {
	Scheme        string
	Workload      string
	Normalized    float64 // fraction of ideal lifetime achieved
	Served        uint64  // demand writes served before failure
	Ideal         uint64  // device ideal writes
	WriteOverhead float64
	WearGini      float64
	HitRate       float64 // CMT hit rate (1 for non-tiered schemes)
	Elapsed       time.Duration
	TimedOut      bool // run hit MaxRequests before device death

	// Fault-injection outcomes (zero on fault-free runs).
	Reads         uint64 // device reads issued over the run
	Uncorrectable uint64 // reads lost beyond the ECC budget

	// Population accounting for fleet-style sweeps.
	SparesUsed  uint64     // spare lines consumed over the run
	FaultRemaps uint64     // spare consumptions forced by faults, not wear
	Cause       DeathCause // how (whether) the run ended the device

	// Raw accounting for callers that need more than the ratios above —
	// the fault sweep's recovery table reads retry/scrub/rebuild counters
	// here. Both are exact sums across shards in a sharded run, so the
	// counters stay meaningful whether the run decomposed or not.
	DeviceStats nvm.Stats
	SchemeStats wl.Stats
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: lifetime %.1f%% (served %d / ideal %d, overhead %.2f%%, gini %.3f)",
		r.Scheme, r.Workload, 100*r.Normalized, r.Served, r.Ideal,
		100*r.WriteOverhead, r.WearGini)
}

// Options controls a run.
type Options struct {
	// MaxWrites bounds the run in demand writes; 0 means 4x the device's
	// ideal writes (a scheme cannot do better than ideal, so 4x guarantees
	// termination regardless of the workload's read share).
	MaxWrites uint64
	// Workload label for reporting.
	Workload string
	// NoTiming skips the wall-clock measurement around the request loop
	// (Result.Elapsed stays zero). Benchmarks and the inner runs of a
	// sharded decomposition — whose Elapsed is discarded by the merge — set
	// it so short runs do not charge time.Now pairs on the hot path.
	NoTiming bool
	// DisableBatch forces the scalar request loop even for schemes that
	// implement wl.BatchLeveler. The cross-path equivalence tests use it to
	// pin the batched path to the scalar path's exact results.
	DisableBatch bool
}

// Run pumps requests from the stream through the scheme until the device
// dies or the write budget is exhausted. Schemes implementing
// wl.BatchLeveler are driven in batched epochs by default — observably
// identical to the scalar loop (see wl.BatchLeveler's contract), just
// faster.
func Run(dev *nvm.Device, lv wl.Leveler, stream trace.Stream, opts Options) Result {
	maxWrites := opts.MaxWrites
	if maxWrites == 0 {
		maxWrites = 4 * dev.IdealWrites()
	}
	var start time.Time
	if !opts.NoTiming {
		start = time.Now()
	}
	if bl, ok := lv.(wl.BatchLeveler); ok && !opts.DisableBatch {
		runBatched(dev, bl, stream, maxWrites)
	} else {
		var writes uint64
		for writes < maxWrites && dev.Alive() {
			r := stream.Next()
			lv.Access(r.Op, r.Addr)
			if r.Op == trace.Write {
				writes++
			}
		}
	}
	var elapsed time.Duration
	if !opts.NoTiming {
		elapsed = time.Since(start)
	}
	st := lv.Stats()
	ds := dev.Stats()
	res := Result{
		Scheme:        lv.Name(),
		Workload:      opts.Workload,
		Served:        st.DataWrites,
		Ideal:         dev.IdealWrites(),
		WriteOverhead: st.WriteOverhead(),
		WearGini:      metrics.GiniUint32(dev.WearCounts()),
		HitRate:       st.HitRate(),
		Elapsed:       elapsed,
		TimedOut:      dev.Alive(),
		Reads:         ds.TotalReads,
		Uncorrectable: ds.Uncorrectable,
		SparesUsed:    ds.SparesUsed,
		FaultRemaps:   FaultRemaps(ds),
		Cause:         Classify(ds),
		DeviceStats:   ds,
		SchemeStats:   st,
	}
	if res.Ideal > 0 {
		res.Normalized = float64(res.Served) / float64(res.Ideal)
	}
	return res
}

// maxEpoch bounds how many requests are prefetched from the stream and
// handed to a scheme per AccessBatch call. Prefetching ahead of consumption
// is unobservable: streams are exclusively owned by the run and a Result
// never depends on the stream's final position.
const maxEpoch = 4096

// runBatched is the batched twin of the scalar request loop: it refills a
// request buffer with trace.FillBatch, slices epochs off it at the scheme's
// preferred size, truncates the final epoch right after the write that
// exhausts the budget (requests past that write are never applied — exactly
// where the scalar loop stops), and exits on device death just like the
// scalar loop's per-request liveness check.
func runBatched(dev *nvm.Device, bl wl.BatchLeveler, stream trace.Stream, maxWrites uint64) {
	ops := make([]trace.Op, maxEpoch)
	addrs := make([]uint64, maxEpoch)
	var writes uint64
	buffered, used := 0, 0
	for writes < maxWrites && dev.Alive() {
		if used == buffered {
			buffered = trace.FillBatch(stream, ops, addrs)
			used = 0
		}
		k := bl.Advance(buffered - used)
		if k < 1 {
			k = 1
		}
		if k > buffered-used {
			k = buffered - used
		}
		o := ops[used : used+k]
		a := addrs[used : used+k]
		w := countWrites(o)
		if writes+w > maxWrites {
			cut := cutAfterWrites(o, maxWrites-writes)
			o, a = o[:cut], a[:cut]
			w = maxWrites - writes
		}
		n := bl.AccessBatch(o, a)
		if n < len(o) {
			w = countWrites(o[:n]) // device died mid-epoch; recount the prefix
		}
		writes += w
		used += n
	}
}

// countWrites returns the number of write requests in ops.
func countWrites(ops []trace.Op) uint64 {
	var w uint64
	for _, op := range ops {
		if op == trace.Write {
			w++
		}
	}
	return w
}

// cutAfterWrites returns the length of the shortest prefix of ops holding
// `target` writes (len(ops) when there are fewer).
func cutAfterWrites(ops []trace.Op, target uint64) int {
	var w uint64
	for i, op := range ops {
		if op == trace.Write {
			w++
			if w == target {
				return i + 1
			}
		}
	}
	return len(ops)
}
