package lifetime

import (
	"strings"
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/wl"
	"nvmwear/internal/wl/pcms"
	"nvmwear/internal/workload"
)

func TestBaselineUnderRAADiesFast(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 1024, SpareLines: 16, Endurance: 100})
	lv := wl.NewIdentity(dev)
	res := Run(dev, lv, workload.NewRAA(5), Options{Workload: "RAA"})
	if res.TimedOut {
		t.Fatal("RAA run timed out")
	}
	// Only 17 line-lifetimes absorb the attack out of 1040.
	if res.Normalized > 0.05 {
		t.Fatalf("baseline RAA lifetime %.3f", res.Normalized)
	}
	if res.WearGini < 0.9 {
		t.Fatalf("gini %.3f for single-line attack", res.WearGini)
	}
	if !strings.Contains(res.String(), "Baseline/RAA") {
		t.Fatalf("string: %s", res.String())
	}
}

func TestBaselineUniformApproachesIdeal(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 1024, SpareLines: 32, Endurance: 100})
	lv := wl.NewIdentity(dev)
	seq := workload.NewSequential(1, 1024, 1.0)
	res := Run(dev, lv, seq, Options{Workload: "seq"})
	if res.Normalized < 0.95 {
		t.Fatalf("sequential lifetime %.3f, want ~1", res.Normalized)
	}
}

// The paper's central observation (Sec 2.2): a hybrid scheme's lifetime
// under attack depends on how many exchanges fit within a cell's endurance.
// With SLC-like endurance the scheme approaches ideal; cutting endurance by
// an order of magnitude (MLC) collapses the lifetime.
func TestHybridLifetimeTracksEnduranceBudget(t *testing.T) {
	run := func(endurance uint32) float64 {
		dev := nvm.New(nvm.Config{Lines: 4096, SpareLines: 64, Endurance: endurance})
		lv := pcms.New(dev, pcms.Config{Lines: 4096, RegionLines: 4, Period: 4, Seed: 1})
		bpa := workload.NewBPA(3, 4096, 64)
		return Run(dev, lv, bpa, Options{Workload: "BPA"}).Normalized
	}
	slc := run(4000)
	mlc := run(200)
	if slc < 0.5 {
		t.Fatalf("high-endurance BPA lifetime only %.3f", slc)
	}
	if mlc >= slc {
		t.Fatalf("low endurance (%.3f) not worse than high endurance (%.3f)", mlc, slc)
	}
}

func TestRAABaselineVsHybrid(t *testing.T) {
	devB := nvm.New(nvm.Config{Lines: 4096, SpareLines: 64, Endurance: 500})
	base := Run(devB, wl.NewIdentity(devB), workload.NewRAA(5), Options{Workload: "RAA"})
	devP := nvm.New(nvm.Config{Lines: 4096, SpareLines: 64, Endurance: 500})
	lv := pcms.New(devP, pcms.Config{Lines: 4096, RegionLines: 4, Period: 4, Seed: 1})
	hybrid := Run(devP, lv, workload.NewRAA(5), Options{Workload: "RAA"})
	if hybrid.Normalized < 20*base.Normalized {
		t.Fatalf("hybrid RAA lifetime %.4f vs baseline %.4f: dispersion failed",
			hybrid.Normalized, base.Normalized)
	}
}

func TestMaxRequestsBudget(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 1024, SpareLines: 1 << 30, Endurance: 1 << 30})
	lv := wl.NewIdentity(dev)
	res := Run(dev, lv, workload.NewRAA(1), Options{MaxWrites: 500})
	if !res.TimedOut || res.Served != 500 {
		t.Fatalf("budget run: %+v", res)
	}
}

func TestNormalizedNeverExceedsOne(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 256, SpareLines: 4, Endurance: 50})
	lv := wl.NewIdentity(dev)
	res := Run(dev, lv, workload.NewUniform(9, 256, 1.0), Options{})
	if res.Normalized > 1.0 {
		t.Fatalf("normalized %.3f > 1", res.Normalized)
	}
	if res.TimedOut {
		t.Fatal("uniform run should kill the device within 4x ideal requests")
	}
}
