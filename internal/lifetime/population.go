// Population support for fleet-style Monte Carlo sweeps: a descriptor
// identifying one drawn device run, and a death-cause taxonomy separating
// devices worn out by traffic from devices killed by fault-driven spare
// consumption.
package lifetime

import (
	"fmt"

	"nvmwear/internal/nvm"
)

// DeathCause classifies how a lifetime run ended.
type DeathCause string

const (
	// CauseAlive: the run exhausted its write budget with the device still
	// serving — a censored observation, not a death.
	CauseAlive DeathCause = "alive"
	// CauseWearout: the device died with its spares consumed predominantly
	// by wear (cells reaching endurance under traffic).
	CauseWearout DeathCause = "wearout"
	// CauseFaults: the device died with its spares consumed predominantly
	// by fault recovery (retry escalations, stuck-at remaps, ECC scrubs).
	CauseFaults DeathCause = "faults"
	// CauseQuarantined marks a device run that errored or panicked and was
	// isolated by the sweep instead of aborting it. Run never returns it;
	// fleet runners assign it when recording quarantined devices.
	CauseQuarantined DeathCause = "quarantined"
)

// Classify derives the death cause from a device's final accounting: alive
// devices are censored; dead devices are attributed to faults when at least
// half their spare consumption was fault-driven, to wearout otherwise.
func Classify(ds nvm.Stats) DeathCause {
	if !ds.Dead {
		return CauseAlive
	}
	if remaps := FaultRemaps(ds); 2*remaps >= ds.SparesUsed && remaps > 0 {
		return CauseFaults
	}
	return CauseWearout
}

// FaultRemaps counts the spare consumptions forced by fault recovery rather
// than wear: exhausted retry budgets, hard stuck-at faults, and ECC-limit
// scrubs each retire a line to a spare.
func FaultRemaps(ds nvm.Stats) uint64 {
	return ds.RetryEscalations + ds.StuckLineFaults + ds.ECCRemaps
}

// Descriptor identifies one device run of a fleet population: which scheme
// and device slot it occupies plus the per-device draws (endurance process
// corner, cell variation, fault rate, tenant workload) that parameterize
// it. It is pure identification — fleets carry it alongside the Result so
// quarantined devices can still be reported with their drawn parameters.
type Descriptor struct {
	Scheme    string
	Device    int     // population slot within the scheme
	Workload  string  // tenant mix label
	Endurance uint32  // drawn mean cell endurance
	Variation float64 // drawn per-cell endurance variation
	FaultRate float64 // drawn transient-fault rate (0 = fault-free)
	Seed      uint64  // the device's root seed substream
}

// String implements fmt.Stringer.
func (d Descriptor) String() string {
	return fmt.Sprintf("%s/dev%03d (%s, endurance %d, var %.2f, fault %.2g)",
		d.Scheme, d.Device, d.Workload, d.Endurance, d.Variation, d.FaultRate)
}
