// Sharded lifetime runs: one large run decomposed along the device's bank
// geometry into independent per-shard runs on the exec pool, with wear and
// accounting merged back into a single Result.
//
// The decomposition is exact for wl.Partitionable schemes whose partition
// units divide evenly across shards: each shard is a closed system (its own
// device slice, scheme instance and trace substream), so the union of shard
// trajectories is a trajectory of the whole device under a bank-interleaved
// request order. Callers are responsible for that gating — this runner just
// executes whatever shard list it is handed.
package lifetime

import (
	"context"
	"fmt"
	"time"

	"nvmwear/internal/exec"
	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// ShardRun bundles one shard of a decomposed run: a slice of the device
// geometry, the scheme instance leveling it, and the shard's private trace
// stream (seeded via rng.SeedStream substreams so shards never share
// randomness).
type ShardRun struct {
	Dev    *nvm.Device
	Lv     wl.Leveler
	Stream trace.Stream
}

// ShardedOptions controls a sharded run.
type ShardedOptions struct {
	Options
	// Parallelism bounds concurrently running shards; <= 0 uses GOMAXPROCS.
	Parallelism int
	// Context, when non-nil, cancels the run.
	Context context.Context
}

// shardOutcome is the per-shard job result: the run plus the raw scheme and
// device accounting the merge needs (Result alone only carries ratios).
type shardOutcome struct {
	res Result
	st  wl.Stats
	ds  nvm.Stats
}

// RunSharded runs each shard on the exec pool and merges the outcomes:
//
//   - Served and Ideal writes are sums, so Normalized stays ΣServed/ΣIdeal.
//   - WriteOverhead and HitRate are recomputed from summed wl.Stats, not
//     averaged ratios — shards with more traffic weigh more, exactly as in
//     a serial run.
//   - WearGini is computed over the concatenated per-shard wear vectors,
//     identical to the serial Gini when the decomposition is exact.
//   - Death is latest-death: the merged device is dead only when every
//     shard has exhausted its spares, mirroring the global worn-vs-spares
//     predicate (a shard that dies early simply stops serving while the
//     rest continue, as a real bank-partitioned device would).
//
// MaxWrites is split across shards with nvm.ShareLines; 0 keeps the
// per-shard default (4x each shard's own ideal writes).
func RunSharded(shards []ShardRun, opts ShardedOptions) (Result, error) {
	if len(shards) == 0 {
		return Result{}, fmt.Errorf("lifetime: RunSharded with no shards")
	}
	if len(shards) == 1 {
		return Run(shards[0].Dev, shards[0].Lv, shards[0].Stream, opts.Options), nil
	}
	var start time.Time
	if !opts.NoTiming {
		start = time.Now()
	}
	pool := &exec.Pool{Workers: opts.Parallelism, Context: opts.Context}
	n := uint64(len(shards))
	outs, err := exec.Map(pool, len(shards), func(i int, _ uint64) (shardOutcome, error) {
		sh := shards[i]
		res := Run(sh.Dev, sh.Lv, sh.Stream, Options{
			MaxWrites: nvm.ShareLines(opts.MaxWrites, uint64(i), n),
			Workload:  opts.Workload,
			// The merge discards per-shard Elapsed; never charge the inner
			// loops for it.
			NoTiming:     true,
			DisableBatch: opts.DisableBatch,
		})
		return shardOutcome{res: res, st: sh.Lv.Stats(), ds: sh.Dev.Stats()}, nil
	})
	if err != nil {
		return Result{}, err
	}

	var st wl.Stats
	var parts []nvm.Stats
	var lines uint64
	for i, out := range outs {
		st.Add(out.st)
		parts = append(parts, out.ds)
		lines += shards[i].Dev.Lines()
	}
	ds := nvm.MergeStats(parts...)

	// Concatenated wear vector: one buffer, each shard snapshots into its
	// own capacity-bounded segment (no per-shard allocation).
	wear := make([]uint32, lines)
	off := uint64(0)
	for _, sh := range shards {
		ln := sh.Dev.Lines()
		sh.Dev.WearCountsInto(wear[off : off : off+ln])
		off += ln
	}

	var elapsed time.Duration
	if !opts.NoTiming {
		elapsed = time.Since(start)
	}
	res := Result{
		Scheme:        shards[0].Lv.Name(),
		Workload:      opts.Workload,
		WriteOverhead: st.WriteOverhead(),
		WearGini:      metrics.GiniUint32(wear),
		HitRate:       st.HitRate(),
		Elapsed:       elapsed,
		TimedOut:      !ds.Dead,
		Reads:         ds.TotalReads,
		Uncorrectable: ds.Uncorrectable,
		SparesUsed:    ds.SparesUsed,
		FaultRemaps:   FaultRemaps(ds),
		Cause:         Classify(ds),
		DeviceStats:   ds,
		SchemeStats:   st,
	}
	for _, out := range outs {
		res.Served += out.res.Served
		res.Ideal += out.res.Ideal
	}
	if res.Ideal > 0 {
		res.Normalized = float64(res.Served) / float64(res.Ideal)
	}
	return res, nil
}
