package lifetime

import (
	"sync"
	"testing"

	"nvmwear/internal/metrics"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/wl"
	"nvmwear/internal/workload"
)

// buildShards constructs n identical-geometry baseline shards with
// per-shard seed substreams, the way the root-level runner does.
func buildShards(n int, linesPerShard, spares uint64, endurance uint32, seed uint64) []ShardRun {
	shards := make([]ShardRun, n)
	for b := range shards {
		dev := nvm.New(nvm.Config{Lines: linesPerShard, SpareLines: spares, Endurance: endurance})
		shards[b] = ShardRun{
			Dev:    dev,
			Lv:     wl.NewIdentity(dev),
			Stream: workload.NewBPA(rng.SeedStream(seed, uint64(b)), linesPerShard, 8),
		}
	}
	return shards
}

// The merged result must equal what a by-hand serial merge of the same
// shard runs produces: summed Served/Ideal, Gini over the concatenated
// wear vector, recomputed overhead/hit-rate ratios, latest-death.
func TestRunShardedMergeMatchesSerialMerge(t *testing.T) {
	const n, lines = 4, 256
	run := func(parallelism int) Result {
		res, err := RunSharded(buildShards(n, lines, 8, 100, 7),
			ShardedOptions{Options: Options{Workload: "BPA"}, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	merged := run(4)

	// Serial reference: identical shards, one at a time, merged by hand.
	shards := buildShards(n, lines, 8, 100, 7)
	var served, ideal uint64
	var st wl.Stats
	var wear []uint32
	dead := true
	for _, sh := range shards {
		r := Run(sh.Dev, sh.Lv, sh.Stream, Options{Workload: "BPA"})
		served += r.Served
		ideal += r.Ideal
		st.Add(sh.Lv.Stats())
		wear = append(wear, sh.Dev.WearCounts()...)
		dead = dead && !sh.Dev.Alive()
	}
	if merged.Served != served || merged.Ideal != ideal {
		t.Fatalf("served/ideal %d/%d, want %d/%d", merged.Served, merged.Ideal, served, ideal)
	}
	if want := metrics.GiniUint32(wear); merged.WearGini != want {
		t.Fatalf("gini %v, want %v over concatenated wear", merged.WearGini, want)
	}
	if merged.WriteOverhead != st.WriteOverhead() || merged.HitRate != st.HitRate() {
		t.Fatalf("overhead/hit %v/%v, want %v/%v",
			merged.WriteOverhead, merged.HitRate, st.WriteOverhead(), st.HitRate())
	}
	if merged.TimedOut != !dead {
		t.Fatalf("TimedOut %v, want %v (latest-death)", merged.TimedOut, !dead)
	}
	if merged.Normalized != float64(served)/float64(ideal) {
		t.Fatalf("normalized %v", merged.Normalized)
	}

	// Scheduling must not affect the merge: serial pool, same answer.
	if again := run(1); again.Served != merged.Served || again.WearGini != merged.WearGini {
		t.Fatalf("parallelism changed result: %+v vs %+v", again, merged)
	}
}

// A single-shard list is the exact serial path.
func TestRunShardedSingleShardIsSerial(t *testing.T) {
	sharded, err := RunSharded(buildShards(1, 512, 8, 100, 7), ShardedOptions{Options: Options{Workload: "BPA"}})
	if err != nil {
		t.Fatal(err)
	}
	shards := buildShards(1, 512, 8, 100, 7)
	serial := Run(shards[0].Dev, shards[0].Lv, shards[0].Stream, Options{Workload: "BPA"})
	if sharded.Served != serial.Served || sharded.WearGini != serial.WearGini ||
		sharded.Normalized != serial.Normalized {
		t.Fatalf("single-shard run diverged: %+v vs %+v", sharded, serial)
	}
}

func TestRunShardedNoShards(t *testing.T) {
	if _, err := RunSharded(nil, ShardedOptions{}); err == nil {
		t.Fatal("want error for empty shard list")
	}
}

// MaxWrites splits across shards and sums back: the merged run serves
// exactly the budget when no shard dies first.
func TestRunShardedSplitsWriteBudget(t *testing.T) {
	const budget = 1000 // not divisible by 3: ShareLines must still sum exactly
	res, err := RunSharded(buildShards(3, 256, 64, 1<<30, 7),
		ShardedOptions{Options: Options{MaxWrites: budget, Workload: "BPA"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != budget {
		t.Fatalf("served %d writes, want the full budget %d", res.Served, budget)
	}
	if !res.TimedOut {
		t.Fatal("huge-endurance run should time out, not die")
	}
}

// Race hammer: many concurrent sharded runs, each fanning out on its own
// pool, all snapshotting wear and merging concurrently. Run under -race
// (CI does) this guards the merge path against shared-state regressions.
func TestRunShardedConcurrentMergeRace(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]Result, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := RunSharded(buildShards(4, 128, 4, 50, 7),
				ShardedOptions{Options: Options{Workload: "BPA"}, Parallelism: 4})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if results[g].Served != results[0].Served || results[g].WearGini != results[0].WearGini {
			t.Fatalf("concurrent run %d diverged: %+v vs %+v", g, results[g], results[0])
		}
	}
}
