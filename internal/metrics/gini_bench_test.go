package metrics

import (
	"math"
	"sort"
	"testing"

	"nvmwear/internal/rng"
)

// giniSortSlice is the pre-optimization reference implementation (copy +
// sort.Slice with a comparison closure). It is kept here so the test suite
// proves the radix-sorted GiniUint32 is numerically identical and the
// benchmark records the win.
func giniSortSlice(xs []uint32) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]uint32, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var cum, total float64
	n := float64(len(sorted))
	for i, x := range sorted {
		total += float64(x)
		cum += float64(x) * (n - float64(i))
	}
	if total == 0 {
		return 0
	}
	return (n + 1 - 2*cum/total) / n
}

// wearSample builds a realistic wear array: mostly moderate counts with a
// hot tail, like a device after a BPA run.
func wearSample(n int, seed uint64) []uint32 {
	r := rng.New(seed)
	xs := make([]uint32, n)
	for i := range xs {
		x := uint32(r.Uint64n(2500))
		if r.Bool(0.01) {
			x += uint32(r.Uint64n(1 << 20)) // hot lines, >16-bit counts
		}
		xs[i] = x
	}
	return xs
}

func TestSortUint32MatchesSortSlice(t *testing.T) {
	r := rng.New(99)
	for _, n := range []int{0, 1, 2, 3, 63, 64, 65, 1000, 1 << 14} {
		xs := make([]uint32, n)
		for i := range xs {
			switch r.Intn(3) {
			case 0:
				xs[i] = uint32(r.Uint64()) // full 32-bit range
			case 1:
				xs[i] = uint32(r.Uint64n(256)) // low byte only
			default:
				xs[i] = 7 // constant runs
			}
		}
		want := make([]uint32, n)
		copy(want, xs)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortUint32(xs)
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: sortUint32[%d] = %d, want %d", n, i, xs[i], want[i])
			}
		}
	}
}

func TestGiniMatchesReference(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 1000, 1 << 14} {
		xs := wearSample(n, uint64(n))
		got, want := GiniUint32(xs), giniSortSlice(xs)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d: GiniUint32 = %v, reference = %v", n, got, want)
		}
	}
}

func TestGiniDoesNotMutateInput(t *testing.T) {
	xs := wearSample(1024, 5)
	orig := make([]uint32, len(xs))
	copy(orig, xs)
	GiniUint32(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("GiniUint32 mutated input at %d", i)
		}
	}
}

// BenchmarkGiniRadix vs BenchmarkGiniSortSlice is the micro-benchmark for
// the sweep hot path: Gini over a device-sized (2^17 lines) wear array.
func BenchmarkGiniRadix(b *testing.B) {
	xs := wearSample(1<<17, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GiniUint32(xs)
	}
}

func BenchmarkGiniSortSlice(b *testing.B) {
	xs := wearSample(1<<17, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		giniSortSlice(xs)
	}
}
