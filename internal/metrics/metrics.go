// Package metrics provides the statistics used throughout the evaluation:
// wear-distribution summaries (Gini coefficient, min/max/mean), harmonic
// means for cross-benchmark aggregation (the paper reports Hmean in Fig 16
// and 17), histograms, and the sliding windows that SAWL uses to observe the
// runtime cache hit rate (Sec 4.2).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
		sumSq += x * x
	}
	s.Mean = sum / float64(s.N)
	variance := sumSq/float64(s.N) - s.Mean*s.Mean
	if variance > 0 {
		s.Stddev = math.Sqrt(variance)
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between order statistics, without mutating xs. The exact
// sample counterpart of Histogram.Quantile — used for the per-job wall-time
// p50/p99 the CLI reports per sweep. An empty sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// HarmonicMean returns the harmonic mean of xs, the aggregation the paper
// uses for per-benchmark lifetimes. Zero or negative entries would make the
// harmonic mean undefined; they are treated as the smallest positive value
// present (or 0 if all entries are nonpositive, yielding 0).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	minPos := math.MaxFloat64
	for _, x := range xs {
		if x > 0 && x < minPos {
			minPos = x
		}
	}
	if minPos == math.MaxFloat64 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			x = minPos
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// CycleCost builds a longest-job-first cost hint (internal/exec.Pool.Cost)
// from per-item weights, for job lists laid out in item-major cycles: job i
// is assumed to target item i%len(weights). The SPEC sweeps use it with the
// benchmarks' canonical footprints, the dominant driver of per-job wall
// time. An empty weight list yields nil (no cost ordering).
func CycleCost(weights []float64) func(i int) float64 {
	if len(weights) == 0 {
		return nil
	}
	return func(i int) float64 { return weights[i%len(weights)] }
}

// GiniUint32 computes the Gini coefficient of a non-negative integer sample
// (per-line write counts). 0 means perfectly uniform wear; values near 1
// mean writes concentrated on few lines. Returns 0 for empty or all-zero
// samples. The input is not modified.
//
// This runs on every lifetime result over the device's full wear array, so
// it is a sweep hot path: sorting uses a byte-wise LSD radix sort instead
// of a comparison sort (no per-comparison closure calls, O(n) passes), and
// skips passes whose key byte is constant across the sample.
func GiniUint32(xs []uint32) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]uint32, len(xs))
	copy(sorted, xs)
	SortUint32(sorted)
	var cum, total float64
	n := float64(len(sorted))
	for i, x := range sorted {
		total += float64(x)
		cum += float64(x) * (n - float64(i))
	}
	if total == 0 {
		return 0
	}
	return (n + 1 - 2*cum/total) / n
}

// SortUint32 sorts a in place, ascending. Small slices fall back to
// insertion sort; larger ones use a 4-pass byte-wise LSD radix sort with
// constant-byte pass skipping (wear counts rarely exceed 24 bits, so the
// high passes are usually free). Shared by every wear-distribution
// computation (Gini here, order statistics in internal/analysis).
func SortUint32(a []uint32) {
	if len(a) < 64 {
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	buf := make([]uint32, len(a))
	src, dst := a, buf
	for shift := uint(0); shift < 32; shift += 8 {
		var count [256]int
		for _, x := range src {
			count[(x>>shift)&0xff]++
		}
		if count[src[0]>>shift&0xff] == len(src) {
			continue // all keys share this byte: pass is a no-op
		}
		pos := 0
		for b := range count {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for _, x := range src {
			b := (x >> shift) & 0xff
			dst[count[b]] = x
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// CoV returns the coefficient of variation (stddev/mean) of per-line write
// counts, another standard wear-uniformity measure. Returns 0 if the mean
// is 0.
func CoV(xs []uint32) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sumSq += f * f
	}
	n := float64(len(xs))
	mean := sum / n
	if mean == 0 {
		return 0
	}
	variance := sumSq/n - mean*mean
	if variance <= 0 {
		return 0
	}
	return math.Sqrt(variance) / mean
}

// Histogram is a fixed-width histogram over [0, max).
type Histogram struct {
	Width   float64
	Buckets []uint64
	Over    uint64 // samples >= Width*len(Buckets)
	Count   uint64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("metrics: NewHistogram with nonpositive size")
	}
	return &Histogram{Width: width, Buckets: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Count++
	if x < 0 {
		x = 0
	}
	i := int(x / h.Width)
	if i >= len(h.Buckets) {
		h.Over++
		return
	}
	h.Buckets[i]++
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using
// bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum > target {
			return float64(i+1) * h.Width
		}
	}
	return float64(len(h.Buckets)) * h.Width
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d, p50=%.3g, p99=%.3g, over=%d}",
		h.Count, h.Quantile(0.5), h.Quantile(0.99), h.Over)
}
