package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

func TestHarmonicMean(t *testing.T) {
	if hm := HarmonicMean([]float64{1, 1, 1}); math.Abs(hm-1) > 1e-12 {
		t.Fatalf("hmean of ones = %v", hm)
	}
	// Classic: hmean(40, 60) = 48.
	if hm := HarmonicMean([]float64{40, 60}); math.Abs(hm-48) > 1e-9 {
		t.Fatalf("hmean(40,60) = %v", hm)
	}
	if hm := HarmonicMean(nil); hm != 0 {
		t.Fatalf("hmean(nil) = %v", hm)
	}
	if hm := HarmonicMean([]float64{0, 0}); hm != 0 {
		t.Fatalf("hmean(zeros) = %v", hm)
	}
	// A zero entry is clamped to the smallest positive value, not dropped.
	hm := HarmonicMean([]float64{0, 10})
	if hm <= 0 || hm > 10 {
		t.Fatalf("hmean(0,10) = %v", hm)
	}
}

func TestHarmonicLEQArithmetic(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= Summarize(xs).Mean*(1+1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGiniUniformIsZero(t *testing.T) {
	xs := make([]uint32, 1000)
	for i := range xs {
		xs[i] = 7
	}
	if g := GiniUint32(xs); math.Abs(g) > 1e-9 {
		t.Fatalf("gini(uniform) = %v", g)
	}
}

func TestGiniConcentratedNearOne(t *testing.T) {
	xs := make([]uint32, 1000)
	xs[0] = 1000000
	g := GiniUint32(xs)
	if g < 0.99 {
		t.Fatalf("gini(concentrated) = %v", g)
	}
}

func TestGiniRange(t *testing.T) {
	err := quick.Check(func(xs []uint32) bool {
		g := GiniUint32(xs)
		return g >= -1e-9 && g <= 1+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if GiniUint32(nil) != 0 {
		t.Error("gini(nil) != 0")
	}
	if GiniUint32([]uint32{0, 0, 0}) != 0 {
		t.Error("gini(zeros) != 0")
	}
}

func TestCoV(t *testing.T) {
	if CoV([]uint32{5, 5, 5, 5}) != 0 {
		t.Error("CoV(uniform) != 0")
	}
	if CoV(nil) != 0 {
		t.Error("CoV(nil) != 0")
	}
	if c := CoV([]uint32{0, 10}); math.Abs(c-1) > 1e-9 {
		t.Errorf("CoV(0,10) = %v, want 1", c)
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
	if q := Quantile([]float64{7}, 0.99); q != 7 {
		t.Errorf("Quantile(single, 0.99) = %v, want 7", q)
	}
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {-0.5, 1}, {1.5, 4},
		{0.5, 2.5},   // midpoint of 2 and 3
		{0.25, 1.75}, // interpolated between 1 and 2
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(xs, %v) = %v, want %v", c.q, got, c.want)
		}
	}
	if xs[0] != 4 || xs[3] != 2 {
		t.Error("Quantile mutated its input")
	}
	// Agrees with the histogram's p50 upper bound on a dense sample.
	dense := make([]float64, 1000)
	h := NewHistogram(100, 0.1)
	for i := range dense {
		dense[i] = float64(i) / 100
		h.Add(dense[i])
	}
	exact, bound := Quantile(dense, 0.5), h.Quantile(0.5)
	if exact > bound || bound-exact > 0.2 {
		t.Errorf("exact p50 %v vs histogram bound %v", exact, bound)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1.0)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if h.Count != 100 || h.Over != 0 {
		t.Fatalf("count=%d over=%d", h.Count, h.Over)
	}
	for i, b := range h.Buckets {
		if b != 10 {
			t.Fatalf("bucket %d = %d", i, b)
		}
	}
	h.Add(1e9)
	if h.Over != 1 {
		t.Fatal("overflow not recorded")
	}
	h.Add(-5)
	if h.Buckets[0] != 11 {
		t.Fatal("negative sample not clamped to bucket 0")
	}
	if q := h.Quantile(0.5); q < 4 || q > 7 {
		t.Fatalf("median = %v", q)
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestHitWindowExact(t *testing.T) {
	w := NewHitWindow(100, 10)
	for i := 0; i < 50; i++ {
		w.Record(true)
	}
	for i := 0; i < 50; i++ {
		w.Record(false)
	}
	if r := w.Rate(); math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("rate = %v", r)
	}
	if w.Events() != 100 {
		t.Fatalf("events = %d", w.Events())
	}
}

func TestHitWindowSlides(t *testing.T) {
	w := NewHitWindow(100, 10)
	for i := 0; i < 100; i++ {
		w.Record(false)
	}
	// Now fill with hits; old misses must age out.
	for i := 0; i < 200; i++ {
		w.Record(true)
	}
	if r := w.Rate(); r < 0.95 {
		t.Fatalf("stale misses not evicted: rate = %v", r)
	}
	if !w.Full() {
		t.Fatal("window not marked full")
	}
}

func TestHitWindowEmptyRateIsOne(t *testing.T) {
	w := NewHitWindow(10, 2)
	if w.Rate() != 1 {
		t.Fatalf("empty rate = %v", w.Rate())
	}
}

func TestHitWindowReset(t *testing.T) {
	w := NewHitWindow(10, 2)
	for i := 0; i < 20; i++ {
		w.Record(false)
	}
	w.Reset()
	if w.Events() != 0 || w.Full() || w.Rate() != 1 {
		t.Fatal("reset incomplete")
	}
}

func TestHitWindowDegenerateSizes(t *testing.T) {
	w := NewHitWindow(0, 0) // must clamp, not panic
	w.Record(true)
	if w.Rate() != 1 {
		t.Fatalf("rate = %v", w.Rate())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 || s.MeanY() != 15 {
		t.Fatalf("series: %+v", s)
	}
	var empty Series
	if empty.MeanY() != 0 {
		t.Fatal("empty MeanY != 0")
	}
}
