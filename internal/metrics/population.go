// Population statistics for fleet-scale Monte Carlo sweeps: batched
// quantiles, empirical survival curves over (possibly censored) death
// samples, and normal-approximation confidence intervals for partial
// populations.
package metrics

import (
	"math"
	"sort"
)

// Quantiles returns the q-quantiles of xs (same interpolation as Quantile)
// with a single sort — the fleet summary asks for p1/p50/p99 per scheme.
// An empty sample yields all zeros.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// quantileSorted is Quantile over an already-sorted non-empty sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Survival builds the empirical survival curve of a population from its
// observed death values: y[i] is the fraction of the population still alive
// after x[i] (x ascending, duplicates collapsed). population is the number
// at risk; when it exceeds len(deaths), the excess are censored survivors
// (devices still alive at sweep end), so the curve floors at their fraction
// instead of reaching zero. The curve is right-continuous and starts at 1
// before x[0]; see plot.Steps for rendering it as a step function.
// Population <= 0 or an empty death sample yields nil curves.
func Survival(deaths []float64, population int) (x, y []float64) {
	if population <= 0 || len(deaths) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), deaths...)
	sort.Float64s(sorted)
	alive := population
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		alive -= j - i
		x = append(x, sorted[i])
		y = append(y, float64(alive)/float64(population))
		i = j
	}
	return x, y
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval under the normal approximation (1.96 standard errors,
// sample standard deviation). Partial fleet populations report mean±half so
// an interrupted sweep's summary carries its own uncertainty. Samples with
// fewer than two values have zero half-width.
func MeanCI95(xs []float64) (mean, half float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}
