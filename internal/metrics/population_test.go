package metrics

import (
	"math"
	"testing"
)

func TestQuantilesMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 2, 8, 4, 6, 0}
	qs := []float64{0, 0.01, 0.25, 0.5, 0.99, 1}
	got := Quantiles(xs, qs...)
	if len(got) != len(qs) {
		t.Fatalf("%d results for %d quantiles", len(got), len(qs))
	}
	for i, q := range qs {
		if want := Quantile(xs, q); got[i] != want {
			t.Errorf("Quantiles[%v] = %v, Quantile = %v", q, got[i], want)
		}
	}
	// The input must not be reordered.
	if xs[0] != 9 || xs[len(xs)-1] != 0 {
		t.Fatalf("Quantiles sorted its input: %v", xs)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	got := Quantiles(nil, 0.01, 0.5, 0.99)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("empty sample quantile[%d] = %v, want 0", i, v)
		}
	}
}

func TestSurvivalCurve(t *testing.T) {
	// Five deaths at three distinct values in a population of five: the
	// curve must collapse duplicates and reach zero.
	x, y := Survival([]float64{3, 1, 3, 2, 1}, 5)
	wantX := []float64{1, 2, 3}
	wantY := []float64{3.0 / 5, 2.0 / 5, 0}
	if len(x) != len(wantX) {
		t.Fatalf("curve has %d points, want %d: x=%v y=%v", len(x), len(wantX), x, y)
	}
	for i := range wantX {
		if x[i] != wantX[i] || y[i] != wantY[i] {
			t.Fatalf("point %d = (%v, %v), want (%v, %v)", i, x[i], y[i], wantX[i], wantY[i])
		}
	}
}

func TestSurvivalCensored(t *testing.T) {
	// Two deaths in a population of four: the two censored survivors floor
	// the curve at 1/2 instead of letting it reach zero.
	x, y := Survival([]float64{5, 7}, 4)
	if len(x) != 2 {
		t.Fatalf("curve has %d points, want 2", len(x))
	}
	if y[0] != 3.0/4 || y[1] != 2.0/4 {
		t.Fatalf("censored curve y = %v, want [0.75 0.5]", y)
	}
}

func TestSurvivalDegenerate(t *testing.T) {
	if x, y := Survival(nil, 10); x != nil || y != nil {
		t.Fatalf("no deaths: curve (%v, %v), want nil", x, y)
	}
	if x, y := Survival([]float64{1}, 0); x != nil || y != nil {
		t.Fatalf("zero population: curve (%v, %v), want nil", x, y)
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	// Sample sd of this classic set is sqrt(32/7); half = 1.96*sd/sqrt(8).
	want := 1.96 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if math.Abs(half-want) > 1e-12 {
		t.Fatalf("half = %v, want %v", half, want)
	}
}

func TestMeanCI95Degenerate(t *testing.T) {
	if mean, half := MeanCI95(nil); mean != 0 || half != 0 {
		t.Fatalf("empty sample: %v ± %v", mean, half)
	}
	if mean, half := MeanCI95([]float64{3}); mean != 3 || half != 0 {
		t.Fatalf("single sample: %v ± %v, want 3 ± 0", mean, half)
	}
}
