package metrics

// HitWindow measures a hit rate over a fixed-size observation window of
// recent events, the mechanism SAWL uses to sample the runtime cache hit
// rate (paper Sec 4.2: "size of the observation window", SOW).
//
// To keep the per-event cost O(1) without storing SOW booleans, the window
// is maintained as a ring of coarse sub-buckets: the window slides in steps
// of window/buckets events. This matches the paper's usage, which samples
// the hit rate every 100k requests rather than continuously.
type HitWindow struct {
	bucketCap uint64 // events per sub-bucket
	hits      []uint64
	total     []uint64
	cur       int
	curCount  uint64
	filled    bool
}

// NewHitWindow returns a window covering `window` events using `buckets`
// ring slots. window must be >= buckets >= 1.
func NewHitWindow(window uint64, buckets int) *HitWindow {
	if buckets < 1 {
		buckets = 1
	}
	if window < uint64(buckets) {
		window = uint64(buckets)
	}
	return &HitWindow{
		bucketCap: window / uint64(buckets),
		hits:      make([]uint64, buckets),
		total:     make([]uint64, buckets),
	}
}

// Record adds one event.
func (w *HitWindow) Record(hit bool) {
	if w.curCount == w.bucketCap {
		w.cur++
		if w.cur == len(w.hits) {
			w.cur = 0
			w.filled = true
		}
		w.hits[w.cur] = 0
		w.total[w.cur] = 0
		w.curCount = 0
	}
	w.curCount++
	w.total[w.cur]++
	if hit {
		w.hits[w.cur]++
	}
}

// RecordRun adds n identical events at once, leaving the ring in exactly
// the state n Record(hit) calls would: whole sub-buckets are filled per
// iteration instead of per event.
func (w *HitWindow) RecordRun(hit bool, n uint64) {
	for n > 0 {
		if w.curCount == w.bucketCap {
			w.cur++
			if w.cur == len(w.hits) {
				w.cur = 0
				w.filled = true
			}
			w.hits[w.cur] = 0
			w.total[w.cur] = 0
			w.curCount = 0
		}
		take := w.bucketCap - w.curCount
		if take > n {
			take = n
		}
		w.curCount += take
		w.total[w.cur] += take
		if hit {
			w.hits[w.cur] += take
		}
		n -= take
	}
}

// Rate returns the hit rate over the window. Before any event it returns 1,
// so that a freshly reset window never looks like a low-hit-rate emergency.
func (w *HitWindow) Rate() float64 {
	var h, t uint64
	for i := range w.hits {
		h += w.hits[i]
		t += w.total[i]
	}
	if t == 0 {
		return 1
	}
	return float64(h) / float64(t)
}

// Events returns the number of events currently covered by the window.
func (w *HitWindow) Events() uint64 {
	var t uint64
	for _, v := range w.total {
		t += v
	}
	return t
}

// Full reports whether the window has seen at least one full span of events.
func (w *HitWindow) Full() bool { return w.filled }

// Reset clears the window.
func (w *HitWindow) Reset() {
	for i := range w.hits {
		w.hits[i] = 0
		w.total[i] = 0
	}
	w.cur = 0
	w.curCount = 0
	w.filled = false
}

// Series records (x, y) points for figure regeneration: the benches emit the
// same time series the paper plots (hit rate vs. runtime, region size vs.
// runtime).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// MeanY returns the average of the Y values (0 if empty).
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}
