// Package nvm models an MLC NVM main-memory device at line granularity.
//
// The model captures exactly what the paper's lifetime evaluation needs
// (Sec 2.2, 4.3): a per-line write counter, a per-line endurance limit
// (10^5-10^6 writes for MLC cells), a pool of spare lines that replace
// worn-out lines, and the failure rule — the device dies when spares are
// exhausted. Latency/energy parameters (Table 1) are carried here and
// consumed by the timing simulator in internal/sim.
//
// The device optionally stores a data word per line so integration tests can
// verify that wear-leveling remapping never loses or corrupts user data.
//
// Beyond clean wear-out, the device models probabilistic faults (Config.Fault,
// internal/fault) and the controller's recovery paths: transient write
// failures are retried up to WriteRetries programming pulses and escalate to
// a spare-line remap; stuck-at faults remap immediately; read-disturb bit
// errors pass through an ECC model with an ECCBits correctable budget —
// below the budget they are corrected silently, at the budget the line is
// scrubbed to a spare, above it the read is an uncorrectable data loss
// counted in Stats. With Config.Fault disabled none of these paths draw
// randomness and the device behaves exactly as the clean model.
package nvm

import (
	"fmt"

	"nvmwear/internal/fault"
	"nvmwear/internal/rng"
)

// Config describes a device.
type Config struct {
	Lines      uint64 // addressable data lines (power of two)
	SpareLines uint64 // replacement pool for worn-out lines
	Endurance  uint32 // nominal per-cell write limit (Wmax)

	// Variation, when > 0, draws each line's endurance from a normal
	// distribution with coefficient of variation Variation (process
	// variation in MLC cells), truncated to [Endurance/4, 2*Endurance].
	// It is consumed by the variation wear model (see Wear).
	Variation float64
	Seed      uint64

	// Wear selects the per-line endurance model (see WearModel). Nil keeps
	// the historical default: variation wear when Variation > 0, uniform
	// otherwise.
	Wear WearModel

	// TrackData allocates one uint64 of payload per line so tests can
	// verify data integrity across swaps.
	TrackData bool

	LineSizeBytes  int    // line (cache-line) size; default 64
	ReadLatencyNs  uint64 // default 50 (Table 1)
	WriteLatencyNs uint64 // default 350 for MLC PCM/RRAM (Table 1)
	Banks          int    // default 32 (paper: 32 x 2GB banks)

	// Energy per line access in picojoules. Defaults follow published MLC
	// PCM figures (~2 pJ/bit read, ~30 pJ/bit write on a 64 B line).
	ReadEnergyPJ  float64
	WriteEnergyPJ float64

	// Fault enables probabilistic fault injection (internal/fault). The
	// zero value disables it entirely: no RNG draws, behaviour identical
	// to the clean wear-out model.
	Fault fault.Config

	// ECCBits is the per-line correctable-bit budget of the ECC model
	// (default 4). A read-disturb event with fewer bit errors is corrected
	// silently; exactly ECCBits errors correct but scrub the line to a
	// spare; more are an uncorrectable loss.
	ECCBits int

	// WriteRetries bounds the programming-retry loop for transient write
	// faults before the controller gives up on the line and remaps it to a
	// spare (default 3).
	WriteRetries int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.LineSizeBytes == 0 {
		c.LineSizeBytes = 64
	}
	if c.ReadLatencyNs == 0 {
		c.ReadLatencyNs = 50
	}
	if c.WriteLatencyNs == 0 {
		c.WriteLatencyNs = 350
	}
	if c.Banks == 0 {
		c.Banks = 32
	}
	if c.ReadEnergyPJ == 0 {
		c.ReadEnergyPJ = 1024 // 2 pJ/bit * 512 bits
	}
	if c.WriteEnergyPJ == 0 {
		c.WriteEnergyPJ = 15360 // 30 pJ/bit * 512 bits
	}
	if c.ECCBits == 0 {
		c.ECCBits = 4
	}
	if c.WriteRetries == 0 {
		c.WriteRetries = 3
	}
	return c
}

// Device is a simulated NVM device. It is not safe for concurrent use; the
// simulators drive one device per goroutine.
type Device struct {
	cfg       Config
	writes    []uint32
	endurance []uint32 // nil when uniform
	data      []uint64
	inj       *fault.Injector // nil when Config.Fault is disabled
	retired   func(pma uint64) // nil unless SetRetireHook was called

	sparesUsed  uint64
	failedLines uint64
	totalWrites uint64
	totalReads  uint64
	dead        bool

	// Fault-recovery accounting (all zero in clean runs).
	transientFaults  uint64 // transient write failures observed
	writeRetries     uint64 // extra programming pulses issued
	retryEscalations uint64 // retry budgets exhausted -> remap
	stuckFaults      uint64 // hard stuck-at faults -> remap
	correctedBits    uint64 // bit errors fixed by ECC
	eccRemaps        uint64 // lines scrubbed to a spare at the ECC limit
	uncorrectable    uint64 // reads lost beyond the ECC budget
}

// EnergyPJ returns the total access energy consumed so far in picojoules:
// the dynamic-energy figure that motivates NVM adoption in Sec 1.
func (d *Device) EnergyPJ() float64 {
	return float64(d.totalReads)*d.cfg.ReadEnergyPJ +
		float64(d.totalWrites)*d.cfg.WriteEnergyPJ
}

// New constructs a device. Lines must be nonzero.
func New(cfg Config) *Device {
	cfg = cfg.withDefaults()
	if cfg.Lines == 0 {
		panic("nvm: device with zero lines")
	}
	if cfg.Endurance == 0 {
		panic("nvm: device with zero endurance")
	}
	d := &Device{
		cfg:    cfg,
		writes: make([]uint32, cfg.Lines),
	}
	model := cfg.Wear
	if model == nil {
		model = defaultWearModel()
	}
	d.endurance = model.Endurances(cfg)
	if d.endurance != nil && uint64(len(d.endurance)) != cfg.Lines {
		panic(fmt.Sprintf("nvm: wear model %q returned %d endurances for %d lines",
			model.Name(), len(d.endurance), cfg.Lines))
	}
	if cfg.TrackData {
		d.data = make([]uint64, cfg.Lines)
	}
	d.inj = fault.NewInjector(cfg.Fault, fault.StreamDevice)
	return d
}

// Config returns the (defaulted) configuration.
func (d *Device) Config() Config { return d.cfg }

// Lines returns the number of addressable data lines.
func (d *Device) Lines() uint64 { return d.cfg.Lines }

// Alive reports whether the device still has spare lines available.
func (d *Device) Alive() bool { return !d.dead }

// lineEndurance returns the write limit of line i.
func (d *Device) lineEndurance(i uint64) uint32 {
	if d.endurance != nil {
		return d.endurance[i]
	}
	return d.cfg.Endurance
}

// replaceLine retires physical line pma and replaces it with a spare,
// resetting the wear counter. When the spare pool is exhausted the device
// is marked dead and replaceLine reports false.
func (d *Device) replaceLine(pma uint64) bool {
	if d.sparesUsed >= d.cfg.SpareLines {
		d.dead = true
		return false
	}
	d.sparesUsed++
	d.writes[pma] = 0
	if d.retired != nil {
		d.retired(pma)
	}
	return true
}

// SetRetireHook registers fn to observe every successful spare replacement
// — wear-out, stuck-at, retry escalation and ECC scrub alike — with the
// retired physical line's address. Decoder-level schemes (WoLFRaM) use it
// to fold the device's spare remaps into their own remap accounting instead
// of layering a second indirection table over the spare area. The hook must
// not access the device. At most one hook; nil clears it.
func (d *Device) SetRetireHook(fn func(pma uint64)) { d.retired = fn }

// wearOne applies one programming pulse to line pma: the endurance check,
// spare replacement on wear-out, and the wear/traffic counters.
func (d *Device) wearOne(pma uint64) bool {
	if d.writes[pma] >= d.lineEndurance(pma) {
		d.failedLines++
		if !d.replaceLine(pma) {
			return false
		}
	}
	d.writes[pma]++
	d.totalWrites++
	return true
}

// Write wears physical line pma by one write. A line serves exactly its
// endurance in writes; the next write to a worn-out line transparently
// consumes a spare (resetting the wear counter), and once spares are
// exhausted the device is marked dead and the write is not served. Write
// reports whether the write was served.
//
// With fault injection enabled the write may additionally fail
// transiently — retried up to WriteRetries extra pulses (each wearing the
// line), then escalated to a spare-line remap — or hit a hard stuck-at
// fault, which remaps immediately. Either escalation can exhaust the spare
// pool and kill the device just like natural wear-out.
func (d *Device) Write(pma uint64) bool {
	if d.dead {
		return false
	}
	if !d.wearOne(pma) {
		return false
	}
	if d.inj == nil {
		return true
	}
	switch d.inj.WriteFault() {
	case fault.WriteOK:
		return true
	case fault.WriteStuck:
		// The cell is permanently stuck: retire the line and rewrite the
		// data on the replacement.
		d.stuckFaults++
		d.failedLines++
		if !d.replaceLine(pma) {
			return false
		}
		d.writes[pma]++
		d.totalWrites++
		return true
	default: // fault.WriteTransient
		d.transientFaults++
		for r := 0; r < d.cfg.WriteRetries; r++ {
			d.writeRetries++
			if !d.wearOne(pma) { // each retry pulse wears the line again
				return false
			}
			if !d.inj.RetryFails() {
				return true
			}
		}
		// Retry budget exhausted: give up on the line and remap.
		d.retryEscalations++
		d.failedLines++
		if !d.replaceLine(pma) {
			return false
		}
		d.writes[pma]++
		d.totalWrites++
		return true
	}
}

// WriteRun applies n consecutive writes to the same physical line and
// returns how many were served. It is observably identical to calling Write
// n times and counting the true returns: endurance checks, spare
// consumption, death and every counter evolve exactly as in the scalar
// sequence. Served < n means the device died at write served+1.
//
// With fault injection enabled the run falls back to per-write calls so the
// injector's RNG draw order is untouched; the clean path folds whole
// endurance spans arithmetically, which is what makes batched epochs fast.
func (d *Device) WriteRun(pma, n uint64) uint64 {
	if d.inj != nil {
		for i := uint64(0); i < n; i++ {
			if !d.Write(pma) {
				return i
			}
		}
		return n
	}
	// Clean path. Write(pma) with no injector is wearOne: replace the line
	// when its counter has reached its endurance, then count one write. A
	// line's endurance is constant across spare replacement, so a run of n
	// writes is whole spans of `room` writes between replacements.
	e := uint64(d.lineEndurance(pma))
	var served uint64
	for served < n {
		if d.dead {
			return served
		}
		room := e - uint64(d.writes[pma])
		if room == 0 {
			d.failedLines++
			if !d.replaceLine(pma) {
				return served
			}
			room = e
		}
		take := room
		if left := n - served; take > left {
			take = left
		}
		d.writes[pma] += uint32(take)
		d.totalWrites += take
		served += take
	}
	return served
}

// ReadRun applies n consecutive reads to the same physical line and returns
// how many were issued — identical to n Read calls with a liveness check
// between them (reads cannot kill a clean device, but an injected ECC remap
// can exhaust the spare pool). Issued < n means the device died during the
// last issued read; the rest of the run was not performed.
func (d *Device) ReadRun(pma, n uint64) uint64 {
	if d.inj == nil {
		d.totalReads += n
		return n
	}
	for i := uint64(0); i < n; i++ {
		if d.dead {
			return i
		}
		d.totalReads++
		d.injectRead(pma)
	}
	return n
}

// Read records a read access (reads do not wear NVM cells). With fault
// injection enabled the read may observe disturb-induced bit errors, which
// pass through the ECC model (see Config.ECCBits).
func (d *Device) Read(pma uint64) {
	d.totalReads++
	if d.inj != nil {
		d.injectRead(pma)
	}
}

// injectRead applies the ECC model to one faulted read: k bit errors are
// corrected silently below the ECC budget, scrub the line to a spare at the
// budget, and are an uncorrectable data loss above it.
func (d *Device) injectRead(pma uint64) {
	if d.dead {
		return
	}
	k := d.inj.ReadDisturb()
	if k == 0 {
		return
	}
	switch {
	case k < d.cfg.ECCBits:
		d.correctedBits += uint64(k)
	case k == d.cfg.ECCBits:
		// At the correction limit the controller treats the line as
		// failing and scrubs the (corrected) data onto a spare.
		d.correctedBits += uint64(k)
		d.eccRemaps++
		d.failedLines++
		if d.replaceLine(pma) {
			d.writes[pma]++ // the scrub rewrite
			d.totalWrites++
		}
	default:
		d.uncorrectable++
	}
}

// WriteData stores a payload word at pma and wears the line.
func (d *Device) WriteData(pma, value uint64) bool {
	if d.data != nil {
		d.data[pma] = value
	}
	return d.Write(pma)
}

// ReadData returns the payload word at pma.
func (d *Device) ReadData(pma uint64) uint64 {
	d.totalReads++
	if d.inj != nil {
		d.injectRead(pma)
	}
	if d.data == nil {
		return 0
	}
	return d.data[pma]
}

// MoveData copies the payload from src to dst, wearing dst. It is the
// primitive used by all data-exchange operations.
func (d *Device) MoveData(dst, src uint64) bool {
	if d.data != nil {
		d.data[dst] = d.data[src]
	}
	return d.Write(dst)
}

// Peek returns the payload at pma without recording an access (test hook).
func (d *Device) Peek(pma uint64) uint64 {
	if d.data == nil {
		return 0
	}
	return d.data[pma]
}

// Stats summarizes device wear.
type Stats struct {
	Lines       uint64 // physical data lines (weights MeanWear in MergeStats)
	TotalWrites uint64
	TotalReads  uint64
	FailedLines uint64
	SparesUsed  uint64
	SpareLines  uint64
	MaxWear     uint32
	MeanWear    float64
	Dead        bool

	// Fault-recovery counters (all zero when Config.Fault is disabled).
	TransientWriteFaults uint64 // transient write failures observed
	WriteRetries         uint64 // extra programming pulses issued
	RetryEscalations     uint64 // retry budgets exhausted -> spare remap
	StuckLineFaults      uint64 // hard stuck-at faults -> spare remap
	CorrectedBits        uint64 // bit errors fixed silently by ECC
	ECCRemaps            uint64 // lines scrubbed to a spare at the ECC limit
	Uncorrectable        uint64 // reads lost beyond the ECC budget
}

// Stats computes current wear statistics.
func (d *Device) Stats() Stats {
	s := Stats{
		Lines:       uint64(len(d.writes)),
		TotalWrites: d.totalWrites,
		TotalReads:  d.totalReads,
		FailedLines: d.failedLines,
		SparesUsed:  d.sparesUsed,
		SpareLines:  d.cfg.SpareLines,
		Dead:        d.dead,

		TransientWriteFaults: d.transientFaults,
		WriteRetries:         d.writeRetries,
		RetryEscalations:     d.retryEscalations,
		StuckLineFaults:      d.stuckFaults,
		CorrectedBits:        d.correctedBits,
		ECCRemaps:            d.eccRemaps,
		Uncorrectable:        d.uncorrectable,
	}
	var sum uint64
	for _, w := range d.writes {
		if w > s.MaxWear {
			s.MaxWear = w
		}
		sum += uint64(w)
	}
	s.MeanWear = float64(sum) / float64(len(d.writes))
	return s
}

// WearCounts exposes the per-line wear counters (shared slice; callers must
// not modify it). Used by metrics (Gini) and the wear visualizer. Results
// that outlive the caller's exclusive ownership of the device — anything
// returned from a parallel experiment job — must use WearCountsCopy
// instead, so no analysis aliases a slice another goroutine could mutate.
func (d *Device) WearCounts() []uint32 { return d.writes }

// WearCountsCopy returns a snapshot of the per-line wear counters. The
// returned slice is owned by the caller.
func (d *Device) WearCountsCopy() []uint32 { return d.WearCountsInto(nil) }

// WearCountsInto copies the per-line wear counters into buf, reusing its
// backing array when it has the capacity, and returns the filled slice.
// This is the allocation-free snapshot primitive for loops that take many
// snapshots (the sharded-lifetime merge concatenates every bank's wear
// vector into slices of one preallocated buffer).
func (d *Device) WearCountsInto(buf []uint32) []uint32 {
	if cap(buf) < len(d.writes) {
		buf = make([]uint32, len(d.writes))
	}
	buf = buf[:len(d.writes)]
	copy(buf, d.writes)
	return buf
}

// IdealWrites returns the total number of writes the device would absorb
// under perfectly uniform wear: every line (including spares) worn exactly
// to its endurance. Normalized lifetime = writes served / IdealWrites.
func (d *Device) IdealWrites() uint64 {
	if d.endurance == nil {
		return uint64(d.cfg.Endurance) * (d.cfg.Lines + d.cfg.SpareLines)
	}
	var sum uint64
	for _, e := range d.endurance {
		sum += uint64(e)
	}
	// Spares are assumed nominal-endurance.
	return sum + uint64(d.cfg.Endurance)*d.cfg.SpareLines
}

// DefaultBanks is the device's bank count when Config.Banks is zero — the
// paper's 32 x 2 GB geometry. It is also the finest shard layout the
// sharded lifetime runner will decompose a run into.
const DefaultBanks = 32

// ShareLines splits a line budget across banks: an even share with the
// remainder going to the lowest-numbered banks, so the per-bank shares sum
// exactly to total. It is the one place the spare-pool and write-budget
// split arithmetic lives, shared by Config.Shard and the sharded lifetime
// runner.
func ShareLines(total, bank, banks uint64) uint64 {
	share := total / banks
	if bank < total%banks {
		share++
	}
	return share
}

// Shard derives the configuration of one bank-partitioned device view:
// bank `bank` of a `banks`-way split of this device. Lines divide evenly
// (the caller must ensure divisibility), the spare pool splits via
// ShareLines, and the per-bank variation and fault streams are derived
// from the device seed with rng.SeedStream so sharded runs stay
// deterministic and independent per bank.
func (c Config) Shard(bank, banks uint64) Config {
	sub := c
	sub.Lines = c.Lines / banks
	sub.SpareLines = ShareLines(c.SpareLines, bank, banks)
	sub.Seed = rng.SeedStream(c.Seed, bank)
	sub.Banks = 1
	if c.Fault.Enabled() {
		sub.Fault.Seed = rng.SeedStream(c.Fault.Seed, bank)
	}
	return sub
}

// MergeStats folds per-bank device statistics into the global view: the
// counters sum, MaxWear is the maximum across banks, MeanWear is weighted
// by each bank's line count, and Dead — the global death predicate over the
// merged worn-vs-spares accounting — holds only when every bank's spare
// pool is exhausted (a device with any live bank still serves writes, the
// latest-death semantics of the sharded lifetime merge).
func MergeStats(parts ...Stats) Stats {
	if len(parts) == 0 {
		return Stats{}
	}
	out := Stats{Dead: true}
	var weighted float64
	for _, p := range parts {
		out.Lines += p.Lines
		out.TotalWrites += p.TotalWrites
		out.TotalReads += p.TotalReads
		out.FailedLines += p.FailedLines
		out.SparesUsed += p.SparesUsed
		out.SpareLines += p.SpareLines
		out.TransientWriteFaults += p.TransientWriteFaults
		out.WriteRetries += p.WriteRetries
		out.RetryEscalations += p.RetryEscalations
		out.StuckLineFaults += p.StuckLineFaults
		out.CorrectedBits += p.CorrectedBits
		out.ECCRemaps += p.ECCRemaps
		out.Uncorrectable += p.Uncorrectable
		if p.MaxWear > out.MaxWear {
			out.MaxWear = p.MaxWear
		}
		weighted += p.MeanWear * float64(p.Lines)
		out.Dead = out.Dead && p.Dead
	}
	if out.Lines > 0 {
		out.MeanWear = weighted / float64(out.Lines)
	}
	return out
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("nvm{lines=%d spares=%d/%d endurance=%d writes=%d dead=%v}",
		d.cfg.Lines, d.sparesUsed, d.cfg.SpareLines, d.cfg.Endurance, d.totalWrites, d.dead)
}
