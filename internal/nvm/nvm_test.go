package nvm

import (
	"testing"
	"testing/quick"
)

func TestWriteAccounting(t *testing.T) {
	d := New(Config{Lines: 16, SpareLines: 4, Endurance: 100})
	for i := 0; i < 50; i++ {
		if !d.Write(3) {
			t.Fatal("device died prematurely")
		}
	}
	s := d.Stats()
	if s.TotalWrites != 50 || s.MaxWear != 50 {
		t.Fatalf("stats: %+v", s)
	}
	if d.WearCounts()[3] != 50 {
		t.Fatalf("line 3 wear = %d", d.WearCounts()[3])
	}
}

func TestSpareReplacement(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 2, Endurance: 10})
	// Line 0 serves 10 writes, then the 11th consumes a spare.
	for i := 0; i < 11; i++ {
		if !d.Write(0) {
			t.Fatalf("died at write %d", i)
		}
	}
	s := d.Stats()
	if s.SparesUsed != 1 || s.FailedLines != 1 {
		t.Fatalf("stats after first failure: %+v", s)
	}
	if d.WearCounts()[0] != 1 {
		t.Fatalf("spare wear = %d, want 1 (reset then served one write)", d.WearCounts()[0])
	}
	if !d.Alive() {
		t.Fatal("device dead with spares remaining")
	}
}

func TestDeviceDeathWhenSparesExhausted(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 2, Endurance: 10})
	writes := 0
	for d.Alive() {
		if d.Write(1) {
			writes++
		}
		if writes > 1000 {
			t.Fatal("device never died")
		}
	}
	// 2 spares + original line = 3 lifetimes of 10 writes each.
	if writes != 30 {
		t.Fatalf("served %d writes, want 30", writes)
	}
	if d.Write(1) {
		t.Fatal("write succeeded on dead device")
	}
	if st := d.Stats(); !st.Dead {
		t.Fatal("stats not marked dead")
	}
}

func TestZeroSparesDiesOnFirstWearOut(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 0, Endurance: 5})
	n := 0
	for d.Alive() {
		if d.Write(2) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("lifetime %d writes, want 5", n)
	}
}

func TestIdealWrites(t *testing.T) {
	d := New(Config{Lines: 100, SpareLines: 10, Endurance: 1000})
	if got := d.IdealWrites(); got != 110*1000 {
		t.Fatalf("IdealWrites = %d", got)
	}
}

func TestIdealWritesWithVariation(t *testing.T) {
	d := New(Config{Lines: 1000, SpareLines: 0, Endurance: 1000, Variation: 0.1, Seed: 1})
	ideal := d.IdealWrites()
	// Mean endurance should stay near nominal.
	if ideal < 900*1000 || ideal > 1100*1000 {
		t.Fatalf("IdealWrites with variation = %d", ideal)
	}
}

func TestVariationBounds(t *testing.T) {
	d := New(Config{Lines: 10000, SpareLines: 0, Endurance: 1000, Variation: 0.3, Seed: 7})
	for i := range d.endurance {
		e := d.endurance[i]
		if e < 250 || e > 2000 {
			t.Fatalf("line %d endurance %d outside truncation", i, e)
		}
	}
}

func TestVariationDeterministicBySeed(t *testing.T) {
	a := New(Config{Lines: 100, Endurance: 1000, Variation: 0.2, Seed: 42, SpareLines: 1})
	b := New(Config{Lines: 100, Endurance: 1000, Variation: 0.2, Seed: 42, SpareLines: 1})
	for i := range a.endurance {
		if a.endurance[i] != b.endurance[i] {
			t.Fatal("same seed, different endurance map")
		}
	}
}

func TestDataIntegrity(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 8, Endurance: 100, TrackData: true})
	d.WriteData(5, 0xdead)
	if v := d.ReadData(5); v != 0xdead {
		t.Fatalf("read back %#x", v)
	}
	d.MoveData(2, 5)
	if v := d.ReadData(2); v != 0xdead {
		t.Fatalf("moved value %#x", v)
	}
	if d.Peek(5) != 0xdead {
		t.Fatal("source clobbered by move")
	}
}

func TestReadsDoNotWear(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 0, Endurance: 2})
	for i := 0; i < 100; i++ {
		d.Read(0)
		d.ReadData(0)
	}
	if !d.Alive() || d.Stats().MaxWear != 0 {
		t.Fatal("reads wore the device")
	}
	if d.Stats().TotalReads != 200 {
		t.Fatalf("reads = %d", d.Stats().TotalReads)
	}
}

func TestDefaults(t *testing.T) {
	d := New(Config{Lines: 4, Endurance: 1})
	c := d.Config()
	if c.LineSizeBytes != 64 || c.ReadLatencyNs != 50 || c.WriteLatencyNs != 350 || c.Banks != 32 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, cfg := range []Config{{Lines: 0, Endurance: 1}, {Lines: 4, Endurance: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: total writes served before death never exceeds IdealWrites, and
// with all writes focused on one line it equals (spares+1) * endurance.
func TestLifetimeNeverExceedsIdeal(t *testing.T) {
	err := quick.Check(func(linesExp uint8, spares uint8, end uint8) bool {
		lines := uint64(1) << (linesExp%4 + 1)
		e := uint32(end%50 + 2)
		d := New(Config{Lines: lines, SpareLines: uint64(spares % 8), Endurance: e})
		n := uint64(0)
		for d.Alive() && n < 1<<20 {
			d.Write(n % lines)
			n++
		}
		return d.Stats().TotalWrites <= d.IdealWrites()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// Uniform round-robin writes should achieve exactly the ideal lifetime
// (every line worn to its limit before death).
func TestUniformWritesReachIdeal(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 0, Endurance: 50})
	var n, served uint64
	for d.Alive() {
		if d.Write(n % 8) {
			served++
		}
		n++
	}
	if served != d.IdealWrites() {
		t.Fatalf("uniform lifetime %d, ideal %d", served, d.IdealWrites())
	}
}

func BenchmarkWrite(b *testing.B) {
	d := New(Config{Lines: 1 << 20, SpareLines: 1 << 20, Endurance: 1 << 30})
	mask := uint64(1<<20 - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(uint64(i) & mask)
	}
}

func TestEnergyAccounting(t *testing.T) {
	d := New(Config{Lines: 16, SpareLines: 0, Endurance: 1 << 30,
		ReadEnergyPJ: 10, WriteEnergyPJ: 100})
	for i := 0; i < 5; i++ {
		d.Read(0)
	}
	for i := 0; i < 3; i++ {
		d.Write(1)
	}
	if got := d.EnergyPJ(); got != 5*10+3*100 {
		t.Fatalf("energy = %v", got)
	}
}

func TestEnergyDefaults(t *testing.T) {
	d := New(Config{Lines: 4, Endurance: 1})
	if d.Config().ReadEnergyPJ <= 0 || d.Config().WriteEnergyPJ <= d.Config().ReadEnergyPJ {
		t.Fatalf("energy defaults: %+v", d.Config())
	}
}

func TestWearCountsCopyIsSnapshot(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 1, Endurance: 100})
	d.Write(3)
	snap := d.WearCountsCopy()
	if snap[3] != 1 {
		t.Fatalf("snapshot wear = %d, want 1", snap[3])
	}
	d.Write(3)
	if snap[3] != 1 {
		t.Fatal("snapshot aliases the live wear array")
	}
	if d.WearCounts()[3] != 2 {
		t.Fatalf("live wear = %d, want 2", d.WearCounts()[3])
	}
	snap[0] = 99
	if d.WearCounts()[0] != 0 {
		t.Fatal("mutating the snapshot reached the device")
	}
}
