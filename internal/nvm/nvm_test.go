package nvm

import (
	"testing"
	"testing/quick"

	"nvmwear/internal/fault"
)

func TestWriteAccounting(t *testing.T) {
	d := New(Config{Lines: 16, SpareLines: 4, Endurance: 100})
	for i := 0; i < 50; i++ {
		if !d.Write(3) {
			t.Fatal("device died prematurely")
		}
	}
	s := d.Stats()
	if s.TotalWrites != 50 || s.MaxWear != 50 {
		t.Fatalf("stats: %+v", s)
	}
	if d.WearCounts()[3] != 50 {
		t.Fatalf("line 3 wear = %d", d.WearCounts()[3])
	}
}

func TestSpareReplacement(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 2, Endurance: 10})
	// Line 0 serves 10 writes, then the 11th consumes a spare.
	for i := 0; i < 11; i++ {
		if !d.Write(0) {
			t.Fatalf("died at write %d", i)
		}
	}
	s := d.Stats()
	if s.SparesUsed != 1 || s.FailedLines != 1 {
		t.Fatalf("stats after first failure: %+v", s)
	}
	if d.WearCounts()[0] != 1 {
		t.Fatalf("spare wear = %d, want 1 (reset then served one write)", d.WearCounts()[0])
	}
	if !d.Alive() {
		t.Fatal("device dead with spares remaining")
	}
}

func TestDeviceDeathWhenSparesExhausted(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 2, Endurance: 10})
	writes := 0
	for d.Alive() {
		if d.Write(1) {
			writes++
		}
		if writes > 1000 {
			t.Fatal("device never died")
		}
	}
	// 2 spares + original line = 3 lifetimes of 10 writes each.
	if writes != 30 {
		t.Fatalf("served %d writes, want 30", writes)
	}
	if d.Write(1) {
		t.Fatal("write succeeded on dead device")
	}
	if st := d.Stats(); !st.Dead {
		t.Fatal("stats not marked dead")
	}
}

func TestZeroSparesDiesOnFirstWearOut(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 0, Endurance: 5})
	n := 0
	for d.Alive() {
		if d.Write(2) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("lifetime %d writes, want 5", n)
	}
}

func TestIdealWrites(t *testing.T) {
	d := New(Config{Lines: 100, SpareLines: 10, Endurance: 1000})
	if got := d.IdealWrites(); got != 110*1000 {
		t.Fatalf("IdealWrites = %d", got)
	}
}

func TestIdealWritesWithVariation(t *testing.T) {
	d := New(Config{Lines: 1000, SpareLines: 0, Endurance: 1000, Variation: 0.1, Seed: 1})
	ideal := d.IdealWrites()
	// Mean endurance should stay near nominal.
	if ideal < 900*1000 || ideal > 1100*1000 {
		t.Fatalf("IdealWrites with variation = %d", ideal)
	}
}

func TestVariationBounds(t *testing.T) {
	d := New(Config{Lines: 10000, SpareLines: 0, Endurance: 1000, Variation: 0.3, Seed: 7})
	for i := range d.endurance {
		e := d.endurance[i]
		if e < 250 || e > 2000 {
			t.Fatalf("line %d endurance %d outside truncation", i, e)
		}
	}
}

func TestVariationDeterministicBySeed(t *testing.T) {
	a := New(Config{Lines: 100, Endurance: 1000, Variation: 0.2, Seed: 42, SpareLines: 1})
	b := New(Config{Lines: 100, Endurance: 1000, Variation: 0.2, Seed: 42, SpareLines: 1})
	for i := range a.endurance {
		if a.endurance[i] != b.endurance[i] {
			t.Fatal("same seed, different endurance map")
		}
	}
}

func TestDataIntegrity(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 8, Endurance: 100, TrackData: true})
	d.WriteData(5, 0xdead)
	if v := d.ReadData(5); v != 0xdead {
		t.Fatalf("read back %#x", v)
	}
	d.MoveData(2, 5)
	if v := d.ReadData(2); v != 0xdead {
		t.Fatalf("moved value %#x", v)
	}
	if d.Peek(5) != 0xdead {
		t.Fatal("source clobbered by move")
	}
}

func TestReadsDoNotWear(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 0, Endurance: 2})
	for i := 0; i < 100; i++ {
		d.Read(0)
		d.ReadData(0)
	}
	if !d.Alive() || d.Stats().MaxWear != 0 {
		t.Fatal("reads wore the device")
	}
	if d.Stats().TotalReads != 200 {
		t.Fatalf("reads = %d", d.Stats().TotalReads)
	}
}

func TestDefaults(t *testing.T) {
	d := New(Config{Lines: 4, Endurance: 1})
	c := d.Config()
	if c.LineSizeBytes != 64 || c.ReadLatencyNs != 50 || c.WriteLatencyNs != 350 || c.Banks != 32 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, cfg := range []Config{{Lines: 0, Endurance: 1}, {Lines: 4, Endurance: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: total writes served before death never exceeds IdealWrites, and
// with all writes focused on one line it equals (spares+1) * endurance.
func TestLifetimeNeverExceedsIdeal(t *testing.T) {
	err := quick.Check(func(linesExp uint8, spares uint8, end uint8) bool {
		lines := uint64(1) << (linesExp%4 + 1)
		e := uint32(end%50 + 2)
		d := New(Config{Lines: lines, SpareLines: uint64(spares % 8), Endurance: e})
		n := uint64(0)
		for d.Alive() && n < 1<<20 {
			d.Write(n % lines)
			n++
		}
		return d.Stats().TotalWrites <= d.IdealWrites()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// Uniform round-robin writes should achieve exactly the ideal lifetime
// (every line worn to its limit before death).
func TestUniformWritesReachIdeal(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 0, Endurance: 50})
	var n, served uint64
	for d.Alive() {
		if d.Write(n % 8) {
			served++
		}
		n++
	}
	if served != d.IdealWrites() {
		t.Fatalf("uniform lifetime %d, ideal %d", served, d.IdealWrites())
	}
}

func BenchmarkWrite(b *testing.B) {
	d := New(Config{Lines: 1 << 20, SpareLines: 1 << 20, Endurance: 1 << 30})
	mask := uint64(1<<20 - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(uint64(i) & mask)
	}
}

func TestEnergyAccounting(t *testing.T) {
	d := New(Config{Lines: 16, SpareLines: 0, Endurance: 1 << 30,
		ReadEnergyPJ: 10, WriteEnergyPJ: 100})
	for i := 0; i < 5; i++ {
		d.Read(0)
	}
	for i := 0; i < 3; i++ {
		d.Write(1)
	}
	if got := d.EnergyPJ(); got != 5*10+3*100 {
		t.Fatalf("energy = %v", got)
	}
}

func TestEnergyDefaults(t *testing.T) {
	d := New(Config{Lines: 4, Endurance: 1})
	if d.Config().ReadEnergyPJ <= 0 || d.Config().WriteEnergyPJ <= d.Config().ReadEnergyPJ {
		t.Fatalf("energy defaults: %+v", d.Config())
	}
}

func TestWearCountsCopyIsSnapshot(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 1, Endurance: 100})
	d.Write(3)
	snap := d.WearCountsCopy()
	if snap[3] != 1 {
		t.Fatalf("snapshot wear = %d, want 1", snap[3])
	}
	d.Write(3)
	if snap[3] != 1 {
		t.Fatal("snapshot aliases the live wear array")
	}
	if d.WearCounts()[3] != 2 {
		t.Fatalf("live wear = %d, want 2", d.WearCounts()[3])
	}
	snap[0] = 99
	if d.WearCounts()[0] != 0 {
		t.Fatal("mutating the snapshot reached the device")
	}
}

// --- spare-line edge cases (writes exactly at lineEndurance, last-spare
// consumption, Alive transitions) -------------------------------------------

func TestSpareLineEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		spares     uint64
		endurance  uint32
		wantWrites uint64 // total served writes to a single line before death
	}{
		{"no spares", 0, 1, 1},
		{"one spare", 1, 1, 2},
		{"one spare higher endurance", 1, 7, 14},
		{"many spares", 5, 3, 18},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(Config{Lines: 2, SpareLines: tc.spares, Endurance: tc.endurance})
			var served uint64
			for i := uint64(0); i < tc.wantWrites; i++ {
				if !d.Alive() {
					t.Fatalf("dead after %d writes, want %d served", i, tc.wantWrites)
				}
				if !d.Write(0) {
					t.Fatalf("write %d rejected while alive", i)
				}
				served++
			}
			// The device is still alive at this instant: death is only
			// declared when a write *needs* a spare that does not exist.
			if !d.Alive() {
				t.Fatal("device died on the exact last endurable write")
			}
			if d.Write(0) {
				t.Fatalf("write %d served beyond (spares+1)*endurance", served+1)
			}
			if d.Alive() {
				t.Fatal("device alive after rejecting a write")
			}
			if s := d.Stats(); s.TotalWrites != tc.wantWrites {
				t.Fatalf("TotalWrites = %d, want %d", s.TotalWrites, tc.wantWrites)
			}
		})
	}
}

func TestWriteExactlyAtEnduranceDoesNotConsumeSpare(t *testing.T) {
	d := New(Config{Lines: 2, SpareLines: 3, Endurance: 10})
	for i := 0; i < 10; i++ {
		d.Write(0)
	}
	if s := d.Stats(); s.SparesUsed != 0 || s.FailedLines != 0 || s.MaxWear != 10 {
		t.Fatalf("stats after exactly-endurance writes: %+v", s)
	}
	// The very next write crosses the limit and consumes exactly one spare.
	d.Write(0)
	if s := d.Stats(); s.SparesUsed != 1 || s.FailedLines != 1 {
		t.Fatalf("stats after crossing endurance: %+v", s)
	}
}

func TestLastSpareConsumption(t *testing.T) {
	d := New(Config{Lines: 2, SpareLines: 2, Endurance: 4})
	// Burn through the original line and the first spare.
	for i := 0; i < 2*4+1; i++ {
		if !d.Write(1) {
			t.Fatalf("write %d rejected", i)
		}
	}
	s := d.Stats()
	if s.SparesUsed != 2 {
		t.Fatalf("SparesUsed = %d, want 2 (last spare in service)", s.SparesUsed)
	}
	if !d.Alive() {
		t.Fatal("device dead while the last spare still serves writes")
	}
	// The last spare serves its remaining endurance...
	for i := 0; i < 3; i++ {
		if !d.Write(1) {
			t.Fatalf("last-spare write %d rejected", i)
		}
	}
	// ...and the next write finds the pool empty.
	if d.Write(1) {
		t.Fatal("write served after the last spare wore out")
	}
	if d.Alive() {
		t.Fatal("Alive() true after spare exhaustion")
	}
}

func TestAliveTransitionIsPermanent(t *testing.T) {
	d := New(Config{Lines: 2, SpareLines: 0, Endurance: 1})
	d.Write(0)
	d.Write(0) // kills the device
	if d.Alive() {
		t.Fatal("device alive after exhaustion")
	}
	// Writes to a *different, unworn* line are still rejected: death is a
	// device-level state, not a per-line one.
	if d.Write(1) {
		t.Fatal("dead device served a write to a fresh line")
	}
}

func TestVariationEnduranceNeverZero(t *testing.T) {
	// Nominal endurance < 4 makes the lower truncation bound round to zero;
	// the constructor must clamp each line to at least one write.
	d := New(Config{Lines: 1 << 12, SpareLines: 0, Endurance: 2, Variation: 0.5, Seed: 3})
	for i, e := range d.endurance {
		if e == 0 {
			t.Fatalf("line %d drew zero endurance", i)
		}
	}
}

// --- fault injection and recovery -------------------------------------------

func TestZeroFaultConfigDrawsNothing(t *testing.T) {
	clean := New(Config{Lines: 64, SpareLines: 8, Endurance: 50})
	faulty := New(Config{Lines: 64, SpareLines: 8, Endurance: 50,
		Fault: fault.Config{Seed: 99}}) // all rates zero -> disabled
	if faulty.inj != nil {
		t.Fatal("zero-rate fault config produced an injector")
	}
	for i := uint64(0); i < 5000; i++ {
		a := clean.Write(i % 64)
		b := faulty.Write(i % 64)
		if a != b {
			t.Fatalf("write %d diverged", i)
		}
		clean.Read(i % 64)
		faulty.Read(i % 64)
	}
	if clean.Stats() != faulty.Stats() {
		t.Fatalf("stats diverged:\n%+v\n%+v", clean.Stats(), faulty.Stats())
	}
}

func TestTransientWriteRetrySucceeds(t *testing.T) {
	// Transient rate is high enough to fire but retries mostly succeed:
	// writes should still be served and retries counted.
	d := New(Config{Lines: 16, SpareLines: 1 << 20, Endurance: 1 << 30,
		Fault: fault.Config{TransientWriteRate: 0.3, Seed: 5}})
	for i := uint64(0); i < 20000; i++ {
		if !d.Write(i % 16) {
			t.Fatalf("write %d rejected", i)
		}
	}
	s := d.Stats()
	if s.TransientWriteFaults == 0 {
		t.Fatal("no transient faults fired at rate 0.3")
	}
	if s.WriteRetries < s.TransientWriteFaults {
		t.Fatalf("retries %d < faults %d", s.WriteRetries, s.TransientWriteFaults)
	}
	if s.TotalWrites < 20000+s.WriteRetries {
		t.Fatalf("retry pulses not counted as wear: total %d", s.TotalWrites)
	}
}

func TestRetryEscalationConsumesSpare(t *testing.T) {
	// With transient rate 1.0 every retry also fails, so every write
	// escalates: retry budget exhausted -> line remapped to a spare.
	d := New(Config{Lines: 4, SpareLines: 100, Endurance: 1 << 30, WriteRetries: 2,
		Fault: fault.Config{TransientWriteRate: 1.0, Seed: 5}})
	if !d.Write(0) {
		t.Fatal("write rejected with spares available")
	}
	s := d.Stats()
	if s.RetryEscalations != 1 || s.WriteRetries != 2 {
		t.Fatalf("escalation stats: %+v", s)
	}
	if s.SparesUsed != 1 {
		t.Fatalf("SparesUsed = %d, want 1 (escalation remap)", s.SparesUsed)
	}
}

func TestStuckFaultConsumesSpareAndRewrites(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 10, Endurance: 1 << 30,
		Fault: fault.Config{StuckAtRate: 1.0, Seed: 5}})
	if !d.Write(0) {
		t.Fatal("stuck write not recovered with spares available")
	}
	s := d.Stats()
	if s.StuckLineFaults != 1 || s.SparesUsed != 1 {
		t.Fatalf("stuck stats: %+v", s)
	}
	if s.TotalWrites != 2 { // original pulse + rewrite on the spare
		t.Fatalf("TotalWrites = %d, want 2", s.TotalWrites)
	}
}

func TestFaultEscalationCanKillDevice(t *testing.T) {
	d := New(Config{Lines: 4, SpareLines: 2, Endurance: 1 << 30,
		Fault: fault.Config{StuckAtRate: 1.0, Seed: 5}})
	n := 0
	for d.Alive() && n < 100 {
		d.Write(0)
		n++
	}
	if d.Alive() {
		t.Fatal("device survived unbounded stuck faults with 2 spares")
	}
	if s := d.Stats(); !s.Dead || s.SparesUsed != 2 {
		t.Fatalf("death stats: %+v", s)
	}
}

func TestECCModelThresholds(t *testing.T) {
	// MaxBitErrors=2 < ECCBits=4: every disturb is silently corrected.
	d := New(Config{Lines: 8, SpareLines: 4, Endurance: 100, ECCBits: 4,
		Fault: fault.Config{ReadDisturbRate: 1.0, MaxBitErrors: 2, Seed: 7}})
	for i := 0; i < 1000; i++ {
		d.Read(0)
	}
	s := d.Stats()
	if s.CorrectedBits == 0 {
		t.Fatal("no bits corrected at disturb rate 1.0")
	}
	if s.ECCRemaps != 0 || s.Uncorrectable != 0 {
		t.Fatalf("errors below ECC budget escalated: %+v", s)
	}

	// MaxBitErrors=1 with ECCBits=1: every disturb hits the remap threshold.
	d = New(Config{Lines: 8, SpareLines: 1 << 20, Endurance: 100, ECCBits: 1,
		Fault: fault.Config{ReadDisturbRate: 1.0, MaxBitErrors: 1, Seed: 7}})
	for i := 0; i < 100; i++ {
		d.Read(0)
	}
	s = d.Stats()
	if s.ECCRemaps != 100 || s.Uncorrectable != 0 {
		t.Fatalf("at-threshold stats: %+v", s)
	}
	if s.TotalWrites != 100 { // one scrub rewrite per remap
		t.Fatalf("scrub writes = %d, want 100", s.TotalWrites)
	}

	// ECCBits=1, MaxBitErrors=8: draws of k>=2 are uncorrectable.
	d = New(Config{Lines: 8, SpareLines: 1 << 20, Endurance: 100, ECCBits: 1,
		Fault: fault.Config{ReadDisturbRate: 1.0, MaxBitErrors: 8, Seed: 7}})
	for i := 0; i < 1000; i++ {
		d.Read(0)
	}
	if s = d.Stats(); s.Uncorrectable == 0 {
		t.Fatal("no uncorrectable losses with 8-bit disturbs and 1-bit ECC")
	}
}

func TestReadDataInjectsFaults(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 0, Endurance: 100, ECCBits: 8, TrackData: true,
		Fault: fault.Config{ReadDisturbRate: 1.0, MaxBitErrors: 4, Seed: 7}})
	for i := 0; i < 200; i++ {
		d.ReadData(0)
	}
	if d.Stats().CorrectedBits == 0 {
		t.Fatal("ReadData bypassed the fault model")
	}
}

func TestFaultDeterminismBySeed(t *testing.T) {
	run := func() Stats {
		d := New(Config{Lines: 32, SpareLines: 1 << 16, Endurance: 200,
			Fault: fault.Config{TransientWriteRate: 0.05, StuckAtRate: 0.01,
				ReadDisturbRate: 0.1, Seed: 11}})
		for i := uint64(0); i < 20000; i++ {
			d.Write(i % 32)
			d.Read((i * 7) % 32)
		}
		return d.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different fault history:\n%+v\n%+v", a, b)
	}
}
