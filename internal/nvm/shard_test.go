package nvm

import (
	"testing"

	"nvmwear/internal/fault"
	"nvmwear/internal/rng"
)

func TestShareLinesSumsExactly(t *testing.T) {
	for _, c := range []struct{ total, banks uint64 }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {1000, 3}, {1 << 16, 32}, {1<<16 + 7, 32},
	} {
		var sum uint64
		var prev uint64
		for b := uint64(0); b < c.banks; b++ {
			s := ShareLines(c.total, b, c.banks)
			if b > 0 && s > prev {
				t.Fatalf("ShareLines(%d,%d,%d)=%d grew past bank %d's %d; remainder must go low",
					c.total, b, c.banks, s, b-1, prev)
			}
			prev = s
			sum += s
		}
		if sum != c.total {
			t.Fatalf("ShareLines over %d banks sums to %d, want %d", c.banks, sum, c.total)
		}
	}
}

func TestConfigShard(t *testing.T) {
	base := Config{
		Lines:      1 << 12,
		SpareLines: 67, // not divisible by 4: remainder lands on low banks
		Endurance:  500,
		Variation:  0.1,
		Seed:       99,
		Banks:      DefaultBanks,
		Fault:      fault.Config{StuckAtRate: 1e-4, Seed: 41},
	}
	var spares uint64
	for b := uint64(0); b < 4; b++ {
		sub := base.Shard(b, 4)
		if sub.Lines != base.Lines/4 {
			t.Fatalf("bank %d lines = %d", b, sub.Lines)
		}
		if sub.Banks != 1 {
			t.Fatalf("bank %d banks = %d, want 1 (a shard is its own device)", b, sub.Banks)
		}
		if sub.Seed != rng.SeedStream(base.Seed, b) {
			t.Fatalf("bank %d seed not a substream of the device seed", b)
		}
		if sub.Fault.Seed != rng.SeedStream(base.Fault.Seed, b) {
			t.Fatalf("bank %d fault seed not a substream", b)
		}
		if sub.Endurance != base.Endurance || sub.Variation != base.Variation {
			t.Fatalf("bank %d per-line parameters changed: %+v", b, sub)
		}
		spares += sub.SpareLines
	}
	if spares != base.SpareLines {
		t.Fatalf("shard spare pools sum to %d, want %d", spares, base.SpareLines)
	}
	// Faultless devices must stay faultless (Shard must not install a seed).
	if sub := (Config{Lines: 64, Endurance: 10, Seed: 1}).Shard(0, 2); sub.Fault.Enabled() {
		t.Fatalf("fault stream appeared on a faultless shard: %+v", sub.Fault)
	}
}

func TestMergeStats(t *testing.T) {
	a := Stats{Lines: 100, TotalWrites: 1000, TotalReads: 5, MaxWear: 40, MeanWear: 10,
		FailedLines: 2, SparesUsed: 2, SpareLines: 4, Dead: false}
	b := Stats{Lines: 300, TotalWrites: 200, TotalReads: 7, MaxWear: 90, MeanWear: 2,
		FailedLines: 1, SparesUsed: 1, SpareLines: 4, Dead: true}
	m := MergeStats(a, b)
	if m.Lines != 400 || m.TotalWrites != 1200 || m.TotalReads != 12 ||
		m.FailedLines != 3 || m.SparesUsed != 3 || m.SpareLines != 8 {
		t.Fatalf("summed counters wrong: %+v", m)
	}
	if m.MaxWear != 90 {
		t.Fatalf("MaxWear = %d, want max across banks", m.MaxWear)
	}
	// Line-weighted mean: (10*100 + 2*300) / 400 = 4.
	if m.MeanWear != 4 {
		t.Fatalf("MeanWear = %v, want line-weighted 4", m.MeanWear)
	}
	if m.Dead {
		t.Fatal("merged device dead with a live bank; death must be latest-death")
	}
	if !MergeStats(b, b).Dead {
		t.Fatal("all banks dead must merge dead")
	}
	if z := MergeStats(); z != (Stats{}) {
		t.Fatalf("empty merge = %+v, want zero", z)
	}
}

// MergeStats over real shard devices must agree with one whole device
// driven identically: same uniform writes into each half vs the whole.
func TestMergeStatsMatchesWholeDevice(t *testing.T) {
	whole := New(Config{Lines: 64, SpareLines: 8, Endurance: 50})
	left := New(Config{Lines: 32, SpareLines: 4, Endurance: 50})
	right := New(Config{Lines: 32, SpareLines: 4, Endurance: 50})
	for i := uint64(0); i < 64*20; i++ {
		addr := i % 64
		whole.Write(addr)
		if addr < 32 {
			left.Write(addr)
		} else {
			right.Write(addr - 32)
		}
	}
	w, m := whole.Stats(), MergeStats(left.Stats(), right.Stats())
	if w.TotalWrites != m.TotalWrites || w.MaxWear != m.MaxWear ||
		w.MeanWear != m.MeanWear || w.Lines != m.Lines || w.Dead != m.Dead {
		t.Fatalf("merged halves diverge from whole device:\nwhole %+v\nmerge %+v", w, m)
	}
}

func TestWearCountsInto(t *testing.T) {
	d := New(Config{Lines: 8, SpareLines: 2, Endurance: 100})
	for i := 0; i < 5; i++ {
		d.Write(2)
	}
	// Nil buffer: allocates.
	got := d.WearCountsInto(nil)
	if len(got) != 8 || got[2] != 5 {
		t.Fatalf("WearCountsInto(nil) = %v", got)
	}
	// A snapshot, not an alias of the live counters.
	got[2] = 99
	if d.WearCounts()[2] != 5 {
		t.Fatal("WearCountsInto returned the live slice")
	}
	// Sufficient capacity: reused, even with zero length.
	buf := make([]uint32, 0, 16)
	out := d.WearCountsInto(buf)
	if len(out) != 8 || out[2] != 5 {
		t.Fatalf("reused-buffer snapshot = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("capacity-sufficient buffer was not reused")
	}
	// Insufficient capacity: falls back to allocating.
	small := make([]uint32, 2)
	out2 := d.WearCountsInto(small)
	if len(out2) != 8 || out2[2] != 5 {
		t.Fatalf("small-buffer snapshot = %v", out2)
	}
}
