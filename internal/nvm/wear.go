// Wear models: the pluggable per-line endurance policy of a device.
//
// Historically the device knew exactly one wear story — uniform nominal
// endurance, optionally perturbed by Gaussian process variation drawn
// inline in New. Factoring that draw behind the WearModel interface lets a
// configuration choose *how* lines wear without touching the device's wear
// accounting: a model maps a Config to a per-line endurance vector once, at
// construction, and everything downstream (Write/WriteRun span folding,
// IdealWrites, spare replacement) already consumes per-line endurance.
//
// Three models ship:
//
//   - uniform: every line wears at the nominal Config.Endurance.
//   - variation: Gaussian process variation (the historical Config.Variation
//     draw, moved here verbatim — byte-identical streams).
//   - compress: compression-aware wear (Escuin et al.): a line written with
//     fewer compressed bits wears fewer cells per write, so its effective
//     endurance in line-writes is Endurance divided by its compressed-size
//     fraction. Each line draws a fraction once (some lines are
//     incompressible), modeling data that is stable in compressibility at
//     the placement granularity.
package nvm

import (
	"fmt"

	"nvmwear/internal/rng"
)

// WearModel maps a device configuration to a per-line endurance vector.
// Returning nil means "uniform at Config.Endurance" — the device then skips
// the vector entirely and IdealWrites stays a multiplication, exactly the
// historical fast path.
//
// Models must be stateless and deterministic in Config (same Config, same
// vector): devices are rebuilt freely by the experiment engine and a model
// is consulted once per construction.
type WearModel interface {
	// Name is the model's stable identity — the -wear flag value and the
	// cache-key salt.
	Name() string
	// Endurances returns line i's write limit at index i, or nil for
	// uniform wear. Implementations must honor Config.Lines and never
	// return zero entries (a zero-endurance line would consume a spare on
	// its first write).
	Endurances(cfg Config) []uint32
}

// UniformWear is the trivial model: every line at nominal endurance.
type UniformWear struct{}

// Name implements WearModel.
func (UniformWear) Name() string { return "uniform" }

// Endurances implements WearModel: nil means uniform.
func (UniformWear) Endurances(Config) []uint32 { return nil }

// variationSeedSalt decorrelates the endurance draw from every other
// consumer of Config.Seed. The constant predates the WearModel seam and
// must never change: the variation stream is pinned by goldens.
const variationSeedSalt = 0xe7037ed1a0b428db

// VariationWear draws each line's endurance from a normal distribution with
// coefficient of variation Config.Variation (process variation in MLC
// cells), truncated to [Endurance/4, 2*Endurance]. This is the historical
// Config.Variation behaviour, moved behind the seam without reordering a
// single RNG draw; with Variation <= 0 it degrades to uniform.
type VariationWear struct{}

// Name implements WearModel.
func (VariationWear) Name() string { return "variation" }

// Endurances implements WearModel.
func (VariationWear) Endurances(cfg Config) []uint32 {
	if cfg.Variation <= 0 {
		return nil
	}
	endurance := make([]uint32, cfg.Lines)
	r := rng.New(cfg.Seed ^ variationSeedSalt)
	mean := float64(cfg.Endurance)
	sigma := mean * cfg.Variation
	for i := range endurance {
		// Box-Muller-free approximation: sum of 12 uniforms has
		// stddev 1 and is plenty for a wear model.
		var s float64
		for k := 0; k < 12; k++ {
			s += r.Float64()
		}
		e := mean + (s-6)*sigma
		if e < mean/4 {
			e = mean / 4
		}
		if e > 2*mean {
			e = 2 * mean
		}
		endurance[i] = uint32(e)
		// Truncation of tiny nominal endurances (< 4) can round to
		// zero, which would make the line consume a spare on its very
		// first write; every line serves at least one write.
		if endurance[i] == 0 {
			endurance[i] = 1
		}
	}
	return endurance
}

// compressSeedSalt decorrelates the compressed-size draw from both the
// variation stream and every other Config.Seed consumer.
const compressSeedSalt = 0x51c07a9be5ca11b7

// compressIncompressibleP is the fraction of lines whose data does not
// compress at all (encrypted/random payloads); they wear at nominal
// endurance.
const compressIncompressibleP = 0.25

// CompressWear models compression-aware wear (Escuin et al.): writing a
// line that compresses to a fraction f of its size programs only that
// fraction of its cells, so the line endures Endurance/f line-writes. Each
// line draws its fraction once from the seed — a quarter of lines are
// incompressible (f = 1), the rest uniform in (0.25, 1] — giving effective
// endurances in [Endurance, 4*Endurance).
type CompressWear struct{}

// Name implements WearModel.
func (CompressWear) Name() string { return "compress" }

// Endurances implements WearModel.
func (CompressWear) Endurances(cfg Config) []uint32 {
	endurance := make([]uint32, cfg.Lines)
	r := rng.New(cfg.Seed ^ compressSeedSalt)
	mean := float64(cfg.Endurance)
	for i := range endurance {
		f := 1.0
		if !r.Bool(compressIncompressibleP) {
			f = 0.25 + 0.75*r.Float64()
		}
		endurance[i] = uint32(mean / f)
		if endurance[i] == 0 {
			endurance[i] = 1
		}
	}
	return endurance
}

// WearModelByName resolves a -wear flag value to its model. The empty name
// is not a model: callers wanting "the config's default" resolve nil
// Config.Wear instead (see defaultWearModel).
func WearModelByName(name string) (WearModel, error) {
	switch name {
	case "uniform":
		return UniformWear{}, nil
	case "variation":
		return VariationWear{}, nil
	case "compress":
		return CompressWear{}, nil
	}
	return nil, fmt.Errorf("nvm: unknown wear model %q (have %v)", name, WearModelNames())
}

// WearModelNames lists the registered model names, CLI-help order.
func WearModelNames() []string {
	return []string{"uniform", "variation", "compress"}
}

// defaultWearModel resolves a Config with no explicit model to the
// historical behaviour: variation when Config.Variation is set, uniform
// otherwise. (VariationWear itself degrades to uniform at Variation <= 0,
// so the default is simply VariationWear.)
func defaultWearModel() WearModel { return VariationWear{} }
