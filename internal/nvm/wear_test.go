package nvm

import (
	"testing"

	"nvmwear/internal/rng"
)

// legacyVariationDraw is the endurance draw exactly as Device.New performed
// it inline before the WearModel seam existed. The byte-identity tests below
// pin VariationWear (and a default-config New) to this historical stream:
// moving the draw behind the seam must not reorder or perturb a single RNG
// consumption, or every variation-configured golden in the repository would
// drift.
func legacyVariationDraw(cfg Config) []uint32 {
	endurance := make([]uint32, cfg.Lines)
	r := rng.New(cfg.Seed ^ 0xe7037ed1a0b428db)
	mean := float64(cfg.Endurance)
	sigma := mean * cfg.Variation
	for i := range endurance {
		var s float64
		for k := 0; k < 12; k++ {
			s += r.Float64()
		}
		e := mean + (s-6)*sigma
		if e < mean/4 {
			e = mean / 4
		}
		if e > 2*mean {
			e = 2 * mean
		}
		endurance[i] = uint32(e)
		if endurance[i] == 0 {
			endurance[i] = 1
		}
	}
	return endurance
}

func TestVariationWearByteIdenticalToLegacyDraw(t *testing.T) {
	cfgs := []Config{
		{Lines: 1 << 10, SpareLines: 16, Endurance: 500, Variation: 0.2, Seed: 17},
		{Lines: 1 << 12, SpareLines: 64, Endurance: 3, Variation: 0.9, Seed: 0},
		{Lines: 257, SpareLines: 1, Endurance: 1 << 20, Variation: 0.05, Seed: 0xdeadbeef},
	}
	for _, cfg := range cfgs {
		want := legacyVariationDraw(cfg)
		got := VariationWear{}.Endurances(cfg)
		if len(got) != len(want) {
			t.Fatalf("Endurances length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d line %d: endurance %d, want legacy %d",
					cfg.Seed, i, got[i], want[i])
			}
		}
		// A device built without an explicit model resolves to the same
		// vector — the default path New used to hardcode.
		dev := New(cfg)
		for i := range want {
			if dev.lineEndurance(uint64(i)) != want[i] {
				t.Fatalf("default New line %d: endurance %d, want legacy %d",
					i, dev.lineEndurance(uint64(i)), want[i])
			}
		}
	}
}

// With Variation <= 0 the variation model degrades to uniform: no vector is
// allocated and IdealWrites stays the historical multiplication.
func TestVariationWearDegradesToUniform(t *testing.T) {
	cfg := Config{Lines: 1 << 8, SpareLines: 4, Endurance: 100, Seed: 3}
	if v := (VariationWear{}).Endurances(cfg); v != nil {
		t.Fatalf("Variation=0 drew a vector of %d entries", len(v))
	}
	dev := New(cfg)
	if got, want := dev.IdealWrites(), uint64(100)*(1<<8+4); got != want {
		t.Fatalf("IdealWrites = %d, want %d", got, want)
	}
}

func TestCompressWearShape(t *testing.T) {
	cfg := Config{Lines: 1 << 12, SpareLines: 16, Endurance: 1000, Seed: 9}
	e := CompressWear{}.Endurances(cfg)
	if uint64(len(e)) != cfg.Lines {
		t.Fatalf("%d endurances for %d lines", len(e), cfg.Lines)
	}
	nominal := 0
	for i, v := range e {
		// A line compresses to a fraction in (0.25, 1], so effective
		// endurance lands in [Endurance, 4*Endurance).
		if v < cfg.Endurance || uint64(v) >= 4*uint64(cfg.Endurance) {
			t.Fatalf("line %d: endurance %d outside [%d, %d)", i, v, cfg.Endurance, 4*cfg.Endurance)
		}
		if v == cfg.Endurance {
			nominal++
		}
	}
	// Roughly a quarter of lines are incompressible; at 4096 lines the
	// count cannot plausibly leave (1/8, 1/2).
	if frac := float64(nominal) / float64(len(e)); frac < 0.125 || frac > 0.5 {
		t.Fatalf("incompressible fraction %.3f, want ~0.25", frac)
	}
	// Deterministic in Config, distinct across seeds and decorrelated from
	// the variation stream.
	again := CompressWear{}.Endurances(cfg)
	other := CompressWear{}.Endurances(Config{Lines: cfg.Lines, Endurance: cfg.Endurance, Seed: 10})
	variation := VariationWear{}.Endurances(Config{
		Lines: cfg.Lines, Endurance: cfg.Endurance, Seed: cfg.Seed, Variation: 0.2})
	same, differSeed, differModel := true, false, false
	for i := range e {
		same = same && again[i] == e[i]
		differSeed = differSeed || other[i] != e[i]
		differModel = differModel || variation[i] != e[i]
	}
	if !same {
		t.Fatal("compress draw not deterministic")
	}
	if !differSeed {
		t.Fatal("compress draw ignores the seed")
	}
	if !differModel {
		t.Fatal("compress draw duplicates the variation stream")
	}
	// IdealWrites follows the vector: never below uniform.
	dev := New(Config{Lines: cfg.Lines, SpareLines: cfg.SpareLines,
		Endurance: cfg.Endurance, Seed: cfg.Seed, Wear: CompressWear{}})
	if dev.IdealWrites() < uint64(cfg.Endurance)*(cfg.Lines+cfg.SpareLines) {
		t.Fatalf("compress IdealWrites %d below uniform", dev.IdealWrites())
	}
}

func TestWearModelByName(t *testing.T) {
	for _, name := range WearModelNames() {
		m, err := WearModelByName(name)
		if err != nil {
			t.Fatalf("WearModelByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("model %q reports name %q", name, m.Name())
		}
	}
	if _, err := WearModelByName("nope"); err == nil {
		t.Fatal("unknown model name resolved")
	}
	if _, err := WearModelByName(""); err == nil {
		t.Fatal("empty model name resolved")
	}
}

func TestRetireHookObservesSpareReplacements(t *testing.T) {
	dev := New(Config{Lines: 8, SpareLines: 3, Endurance: 2})
	var retired []uint64
	dev.SetRetireHook(func(pma uint64) { retired = append(retired, pma) })
	for i := 0; i < 9; i++ {
		dev.Write(5) // endurance 2, spares 3: remaps at writes 3, 5, 7; dead at 9
	}
	if want := []uint64{5, 5, 5}; len(retired) != len(want) {
		t.Fatalf("hook saw %v, want %v", retired, want)
	}
	if dev.Alive() {
		t.Fatal("device should be dead after exhausting spares")
	}
	// The clean WriteRun path folds spans but must report the same remaps.
	dev2 := New(Config{Lines: 8, SpareLines: 3, Endurance: 2})
	count := 0
	dev2.SetRetireHook(func(uint64) { count++ })
	dev2.WriteRun(5, 9)
	if count != 3 {
		t.Fatalf("WriteRun hook fired %d times, want 3", count)
	}
}
