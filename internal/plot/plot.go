// Package plot renders experiment series as standalone SVG line charts —
// stdlib-only figure output for the wlsim CLI, so every regenerated paper
// figure can be viewed as an image rather than an ASCII table.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // default 800
	Height int  // default 480
	LogX   bool // log2 x axis (region-count sweeps)
	YMin   float64
	YMax   float64 // 0 = auto
	Series []Line
}

// Line is one curve.
type Line struct {
	Label string
	X     []float64
	Y     []float64
}

// palette cycles through visually distinct stroke colors.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	marginLeft   = 70.0
	marginRight  = 160.0
	marginTop    = 40.0
	marginBottom = 55.0
)

// Render writes the chart as an SVG document.
func (c Chart) Render(w io.Writer) error {
	if c.Width == 0 {
		c.Width = 800
	}
	if c.Height == 0 {
		c.Height = 480
	}
	xMin, xMax, yMin, yMax := c.bounds()
	plotW := float64(c.Width) - marginLeft - marginRight
	plotH := float64(c.Height) - marginTop - marginBottom
	if plotW <= 0 || plotH <= 0 {
		return fmt.Errorf("plot: chart too small")
	}

	xPos := func(x float64) float64 {
		if c.LogX {
			x = math.Log2(math.Max(x, 1e-12))
		}
		if xMax == xMin {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-xMin)/(xMax-xMin)*plotW
	}
	yPos := func(y float64) float64 {
		if yMax == yMin {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-yMin)/(yMax-yMin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.Width, c.Height, c.Width, c.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Y ticks (5).
	for i := 0; i <= 4; i++ {
		v := yMin + (yMax-yMin)*float64(i)/4
		y := yPos(v)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(v))
	}
	// X ticks (up to 8 from data).
	for _, x := range c.xTicks(xMin, xMax) {
		px := xPos(x)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#eee"/>`+"\n",
			px, marginTop, px, marginTop+plotH)
		label := x
		if c.LogX {
			label = math.Pow(2, x)
		}
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, marginTop+plotH+16, formatTick(label))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(c.Height)-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Curves + legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPos(xVal(c, s.X[i])), yPos(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n",
				strings.Split(p, ",")[0], strings.Split(p, ",")[1], color)
		}
		ly := marginTop + 14*float64(si)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			marginLeft+plotW+10, ly, marginLeft+plotW+30, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginLeft+plotW+35, ly+4, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Steps converts a right-continuous level curve — x ascending, y[i] the
// level after x[i], y0 the level before x[0] (1.0 for survival curves) —
// into the point list a polyline renderer needs to draw it as a step
// function: every transition emits the pre-drop corner, so the rendered
// curve is horizontal runs joined by vertical drops instead of diagonals.
func Steps(x, y []float64, y0 float64) (sx, sy []float64) {
	if len(x) == 0 {
		return nil, nil
	}
	sx = make([]float64, 0, 2*len(x))
	sy = make([]float64, 0, 2*len(x))
	level := y0
	for i := range x {
		sx = append(sx, x[i], x[i])
		sy = append(sy, level, y[i])
		level = y[i]
	}
	return sx, sy
}

// xVal applies the log transform when configured.
func xVal(c Chart, x float64) float64 {
	if c.LogX {
		return math.Log2(math.Max(x, 1e-12))
	}
	return x
}

// bounds computes the data extents (x already log-transformed when LogX).
func (c Chart) bounds() (xMin, xMax, yMin, yMax float64) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := xVal(c, s.X[i])
			if x < xMin {
				xMin = x
			}
			if x > xMax {
				xMax = x
			}
			if s.Y[i] < yMin {
				yMin = s.Y[i]
			}
			if s.Y[i] > yMax {
				yMax = s.Y[i]
			}
		}
	}
	if math.IsInf(xMin, 1) {
		xMin, xMax, yMin, yMax = 0, 1, 0, 1
	}
	if c.YMax != 0 {
		yMin, yMax = c.YMin, c.YMax
	} else if yMin > 0 {
		yMin = 0
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	return
}

// xTicks picks up to 8 tick positions across [xMin, xMax] (transformed
// space).
func (c Chart) xTicks(xMin, xMax float64) []float64 {
	seen := map[float64]bool{}
	var ticks []float64
	for _, s := range c.Series {
		for _, x := range s.X {
			v := xVal(c, x)
			if !seen[v] {
				seen[v] = true
				ticks = append(ticks, v)
			}
		}
	}
	if len(ticks) <= 8 {
		return ticks
	}
	out := make([]float64, 0, 8)
	step := float64(len(ticks)) / 8
	sortFloats(ticks)
	for i := 0.0; int(i) < len(ticks); i += step {
		out = append(out, ticks[int(i)])
	}
	return out
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// escape sanitizes text for SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
