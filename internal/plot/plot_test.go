package plot

import (
	"bytes"
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title:  "Demo & <chart>",
		XLabel: "regions",
		YLabel: "lifetime (%)",
		Series: []Line{
			{Label: "a", X: []float64{1, 2, 4, 8}, Y: []float64{10, 20, 30, 40}},
			{Label: "b", X: []float64{1, 2, 4, 8}, Y: []float64{40, 30, 20, 10}},
		},
	}
}

func TestRenderProducesValidSVGStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := demoChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Demo &amp; &lt;chart&gt;",
		"regions", "lifetime", ">a<", ">b<",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("expected 2 polylines")
	}
}

func TestRenderLogX(t *testing.T) {
	c := demoChart()
	c.LogX = true
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Log ticks label the original (power-of-two) values.
	if !strings.Contains(buf.String(), ">8<") {
		t.Fatal("log ticks missing original values")
	}
}

func TestRenderEmptyChart(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{Title: "empty"}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("no svg")
	}
}

func TestRenderTooSmall(t *testing.T) {
	c := demoChart()
	c.Width, c.Height = 10, 10
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("tiny chart accepted")
	}
}

func TestFixedYRange(t *testing.T) {
	c := demoChart()
	c.YMin, c.YMax = 0, 100
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ">100<") {
		t.Fatal("fixed y max not labeled")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		1500:    "1.5K",
		2000000: "2.0M",
		0.25:    "0.25",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestManySeriesCycleColors(t *testing.T) {
	c := Chart{Title: "many"}
	for i := 0; i < 15; i++ {
		c.Series = append(c.Series, Line{
			Label: string(rune('a' + i)),
			X:     []float64{0, 1}, Y: []float64{float64(i), float64(i)},
		})
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<polyline") != 15 {
		t.Fatal("series dropped")
	}
}

func TestXTicksCapped(t *testing.T) {
	var line Line
	for i := 0; i < 100; i++ {
		line.X = append(line.X, float64(i))
		line.Y = append(line.Y, float64(i))
	}
	c := Chart{Series: []Line{line}}
	ticks := c.xTicks(0, 99)
	if len(ticks) > 9 {
		t.Fatalf("%d ticks", len(ticks))
	}
}

func TestStepsExpansion(t *testing.T) {
	// A right-continuous survival curve: at each x the level drops from the
	// previous value, so every input point becomes a vertical segment.
	sx, sy := Steps([]float64{1, 2, 4}, []float64{0.6, 0.3, 0}, 1)
	wantX := []float64{1, 1, 2, 2, 4, 4}
	wantY := []float64{1, 0.6, 0.6, 0.3, 0.3, 0}
	if len(sx) != len(wantX) {
		t.Fatalf("steps has %d points, want %d", len(sx), len(wantX))
	}
	for i := range wantX {
		if sx[i] != wantX[i] || sy[i] != wantY[i] {
			t.Fatalf("step %d = (%v, %v), want (%v, %v)", i, sx[i], sy[i], wantX[i], wantY[i])
		}
	}
	if sx, sy := Steps(nil, nil, 1); sx != nil || sy != nil {
		t.Fatalf("empty input: (%v, %v), want nil", sx, sy)
	}
}
