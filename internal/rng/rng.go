// Package rng provides deterministic pseudo-random number generation for
// all simulation components. Every experiment in this repository is driven
// by an explicit seed so results are exactly reproducible run to run.
//
// The core generator is xoshiro256**, seeded through SplitMix64 as its
// authors recommend. The package also provides the samplers the simulators
// need: bounded integers without modulo bias, Zipf-distributed ranks,
// Bernoulli trials, and Fisher-Yates shuffles.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x by the SplitMix64 step and returns the next output.
// It is used only to expand a single seed word into the xoshiro state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// independent streams with overwhelming probability.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	// xoshiro256** must not start from the all-zero state; SplitMix64 can
	// only produce it with negligible probability, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Shuffle permutes the first n indices using the supplied swap function,
// exactly like math/rand.Shuffle but on a deterministic Source.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Fork derives a new independent Source from this one. Forking is used to
// give each simulation component (workload, leveler, device) its own stream
// so that adding draws in one component does not perturb another.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// SeedStream derives the seed of substream `stream` from a base seed by
// two SplitMix64 steps. The derivation depends only on (base, stream), so a
// sweep job indexed i always sees the same seed no matter how many workers
// execute the sweep or in what order — the reproducibility rule the
// experiment engine (internal/exec) is built on.
func SeedStream(base, stream uint64) uint64 {
	x := base
	h := splitMix64(&x)
	x = h ^ (stream * 0xd1342543de82ef95)
	return splitMix64(&x)
}
