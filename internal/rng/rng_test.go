package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("seed 0 generator looks stuck at zero")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nSmallUniform(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(5)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if r.Bool(-0.5) {
		t.Error("Bool(-0.5) returned true")
	}
	if !r.Bool(1.5) {
		t.Error("Bool(1.5) returned false")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(21)
	f := a.Fork()
	// The fork must not replay the parent's stream.
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork replayed %d parent draws", same)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(31)
	for _, n := range []uint64{1, 2, 100, 1 << 20} {
		for _, alpha := range []float64{0.5, 0.99, 1.0, 1.2, 2.5} {
			z := NewZipf(r, n, alpha)
			for i := 0; i < 2000; i++ {
				v := z.Next()
				if v >= n {
					t.Fatalf("Zipf(n=%d,a=%v) produced %d", n, alpha, v)
				}
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 1000, 1.2)
	const draws = 200000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate, and the head must be heavier than the tail.
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 (%d) not more popular than rank 10 (%d)", counts[0], counts[10])
	}
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := 990; i < 1000; i++ {
		tail += counts[i]
	}
	if head < tail*10 {
		t.Errorf("head %d not >> tail %d", head, tail)
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(41)
	for _, f := range []func(){
		func() { NewZipf(r, 0, 1.0) },
		func() { NewZipf(r, 10, 0) },
		func() { NewZipf(r, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1<<26, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

func TestSeedStreamDeterministicAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 1024; stream++ {
		s := SeedStream(42, stream)
		if s != SeedStream(42, stream) {
			t.Fatalf("stream %d: SeedStream not deterministic", stream)
		}
		if seen[s] {
			t.Fatalf("stream %d: seed %#x collides with an earlier stream", stream, s)
		}
		seen[s] = true
	}
	// Different bases must yield different substreams.
	if SeedStream(1, 0) == SeedStream(2, 0) {
		t.Fatal("bases 1 and 2 share substream 0")
	}
}
