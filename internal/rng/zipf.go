package rng

import "math"

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^alpha. It uses the rejection-inversion method of Hörmann and
// Derflinger, which needs O(1) time per sample and no per-rank tables, so a
// workload generator can model multi-gigabyte footprints without allocating
// memory proportional to the footprint.
type Zipf struct {
	src              *Source
	n                float64
	alpha            float64
	oneMinusAlpha    float64
	invOneMinusAlpha float64
	hIntegralX1      float64
	hIntegralNum     float64
	s                float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent alpha > 0,
// alpha != 1 handled exactly and alpha == 1 handled via a small epsilon
// offset. It panics if n == 0 or alpha <= 0.
func NewZipf(src *Source, n uint64, alpha float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if alpha <= 0 {
		panic("rng: NewZipf with alpha <= 0")
	}
	if alpha == 1 {
		// The rejection-inversion transform divides by (1 - alpha).
		alpha = 1 + 1e-9
	}
	z := &Zipf{
		src:              src,
		n:                float64(n),
		alpha:            alpha,
		oneMinusAlpha:    1 - alpha,
		invOneMinusAlpha: 1 / (1 - alpha),
	}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNum = z.hIntegral(z.n + 0.5)
	z.s = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// h is the (unnormalized) density x^-alpha.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.alpha * math.Log(x))
}

// hIntegral is the antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusAlpha*logX) * logX
}

// hIntegralInverse inverts hIntegral.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusAlpha
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a stable expansion near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a stable expansion near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next returns the next Zipf-distributed rank in [0, n). Rank 0 is the most
// popular.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralNum + z.src.Float64()*(z.hIntegralX1-z.hIntegralNum)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}
