package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"nvmwear"
)

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/artifacts", s.handleArtifacts)
	mux.HandleFunc("GET /runs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /quitquitquit", s.handleQuit)
	mux.HandleFunc("POST /quitquitquit", s.handleQuit)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleExperiments lists the registry catalogue.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expView struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		Figure      string `json:"figure"`
		InAll       bool   `json:"inAll"`
		Jobs        int    `json:"jobs"` // planned sweep jobs at the server's default scale
	}
	sc, _ := nvmwear.ScaleByName(s.cfg.Scale)
	sc.Shards = s.cfg.Shards
	var out []expView
	for _, e := range nvmwear.Experiments() {
		v := expView{Name: e.Name, Description: e.Description, Figure: e.Figure, InAll: e.InAll}
		if e.Plan != nil {
			v.Jobs = len(e.Plan(sc))
		}
		out = append(out, v)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSubmit is POST /runs: validate, apply backpressure, enqueue.
// 202 for a newly queued run, 200 for a coalesced duplicate, 503 (with
// Retry-After) when the queue is full or the server is draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	run, aerr := s.resolve(spec)
	if aerr == nil {
		run, coalesced, err := s.admit(run)
		if err == nil {
			status := http.StatusAccepted
			if coalesced {
				status = http.StatusOK
			}
			writeJSON(w, status, run.view())
			return
		}
		aerr = err
	}
	if aerr.retry {
		w.Header().Set("Retry-After", "5")
	}
	writeError(w, aerr.status, aerr.msg)
}

// handleRuns lists every run in submission order.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	out := []runView{}
	for _, run := range s.runs.list() {
		out = append(out, run.view())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookupRun(w http.ResponseWriter, r *http.Request) (*run, bool) {
	id := r.PathValue("id")
	run, ok := s.runs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown run %q", id))
		return nil, false
	}
	return run, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if run, ok := s.lookupRun(w, r); ok {
		writeJSON(w, http.StatusOK, run.view())
	}
}

// handleCancel is DELETE /runs/{id}: cancel a queued or running run. The
// run's partial artifacts stay available — DELETE removes the work, not
// the record. 409 once the run is terminal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	if !run.requestCancel() {
		writeError(w, http.StatusConflict, fmt.Sprintf("run %s already %s", run.id, run.view().State))
		return
	}
	writeJSON(w, http.StatusAccepted, run.view())
}

// handleEvents is GET /runs/{id}/events: an SSE stream of the run's state
// transitions, per-job progress, and per-series completions. The stream
// starts with a state snapshot, so a late subscriber is immediately
// consistent; a terminal run streams the snapshot and ends. A subscriber
// that stops reading loses events (bounded buffer) and receives a "lagged"
// marker when it resumes — it never blocks the run.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the snapshot: events published between the snapshot
	// and the first receive are buffered, not lost. (The subscriber may
	// then see a state both in the snapshot and as an event; SSE consumers
	// must treat "state" as idempotent replacement.)
	sub := run.hub.subscribe()
	defer run.hub.unsubscribe(sub)
	if !writeEvent(w, flusher, Event{Type: "state", Data: run.view()}) {
		return
	}
	for {
		select {
		case e, ok := <-sub.ch:
			if !ok {
				// Terminal state reached: one final snapshot (with the
				// artifact list) and a clean end of stream.
				writeEvent(w, flusher, Event{Type: "state", Data: run.view()})
				return
			}
			if !writeEvent(w, flusher, e) {
				return
			}
		case <-r.Context().Done():
			return // client vanished; unsubscribe stops the buffering
		case <-s.stopping:
			return // server shutting down; end the stream so Shutdown can finish
		}
	}
}

// writeEvent emits one SSE frame; false means the client is gone.
func writeEvent(w http.ResponseWriter, f http.Flusher, e Event) bool {
	payload, err := json.Marshal(e.Data)
	if err != nil {
		payload = []byte(fmt.Sprintf("%q", err.Error()))
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, payload); err != nil {
		return false
	}
	f.Flush()
	return true
}

// handleArtifacts lists a run's artifacts.
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	run.mu.Lock()
	names := run.artifactNamesLocked()
	run.mu.Unlock()
	writeJSON(w, http.StatusOK, names)
}

// handleArtifact serves one artifact: output.txt (rendered tables +
// summary), log.txt (per-run diagnostics, including any panic stack), or a
// rendered <fig>.svg. Available while the run is live too — output.txt of
// a running sweep is simply what has rendered so far (usually empty until
// the run finishes; log.txt accumulates continuously).
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	b, ctype, ok := run.artifact(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("run %s has no artifact %q", run.id, name))
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(b)
}

// handleHealthz reports liveness plus the server's degraded-mode flags:
// cache state (ok, disabled, or degraded with the reason) and run counts.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	queued := len(s.queue)
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	cache := "disabled"
	switch {
	case s.st != nil:
		cache = "ok"
	case s.degradedCache != "":
		cache = "degraded: " + s.degradedCache
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"cache":      cache,
		"queueLen":   queued,
		"queueDepth": s.cfg.QueueDepth,
		"runs":       s.runs.counts(),
	})
}

// handleReadyz answers 200 while the server admits runs, 503 once it is
// draining — the load-balancer "stop sending me work" signal.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleQuit initiates graceful shutdown over HTTP.
func (s *Server) handleQuit(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
	s.Drain("quitquitquit")
}
