package serve

import "sync"

// subBuffer is the per-subscriber event buffer. A subscriber whose buffer
// is full — a client that stopped reading, a stalled TCP window — loses
// events rather than ever blocking the publisher; the loss is surfaced to
// that client as a "lagged" event the moment its buffer frees up.
const subBuffer = 64

// Event is one server-sent event of a run's stream.
type Event struct {
	Type string // SSE event name: state, progress, series, lagged
	Data any    // JSON-encoded payload
}

// hub broadcasts one run's events to any number of SSE subscribers. The
// publisher (the run's worker goroutine) never blocks on a subscriber: a
// full subscriber buffer drops the event and marks the subscriber lagged.
// Closing the hub (the run reached a terminal state) closes every
// subscriber channel, ending their streams.
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]bool
	closed bool
}

// subscriber is one attached event stream. Its channel is owned by the
// hub: the hub (and only the hub) sends and closes; the HTTP handler
// receives until the channel closes or its client vanishes.
type subscriber struct {
	ch      chan Event
	dropped int // events lost since the last successful send
}

func newHub() *hub {
	return &hub{subs: map[*subscriber]bool{}}
}

// subscribe attaches a new subscriber. On a closed hub (the run already
// finished) the returned subscriber's channel is already closed, so the
// caller's receive loop ends immediately after it has sent its snapshot.
func (h *hub) subscribe() *subscriber {
	s := &subscriber{ch: make(chan Event, subBuffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(s.ch)
		return s
	}
	h.subs[s] = true
	return s
}

// unsubscribe detaches a subscriber (client went away). The channel is not
// closed — the handler simply stops reading; the hub stops sending.
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, s)
}

// publish broadcasts an event without ever blocking. A subscriber with no
// buffer space loses the event; once it drains enough to accept again, it
// first receives a lagged marker carrying the number of lost events, so a
// slow client knows its view has holes instead of silently trusting it.
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for s := range h.subs {
		if s.dropped > 0 {
			// Require room for the lagged marker and the event itself, so
			// the marker always precedes the first post-gap event. The
			// publisher is the only sender and holds the lock, so the
			// free-space check cannot be invalidated concurrently.
			if cap(s.ch)-len(s.ch) < 2 {
				s.dropped++
				continue
			}
			s.ch <- Event{Type: "lagged", Data: map[string]int{"dropped": s.dropped}}
			s.dropped = 0
		}
		select {
		case s.ch <- e:
		default:
			s.dropped++
		}
	}
}

// close ends every subscriber's stream. Idempotent.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
	}
	h.subs = nil
}
