package serve

import (
	"sync"
	"testing"
)

func drainEvents(s *subscriber) []Event {
	var out []Event
	for {
		select {
		case e, ok := <-s.ch:
			if !ok {
				return out
			}
			out = append(out, e)
		default:
			return out
		}
	}
}

// TestHubPublishNeverBlocks: publishing far past a subscriber's buffer
// capacity must complete (the subscriber loses events instead).
func TestHubPublishNeverBlocks(t *testing.T) {
	h := newHub()
	s := h.subscribe()
	for i := 0; i < subBuffer*10; i++ {
		h.publish(Event{Type: "progress", Data: i})
	}
	got := drainEvents(s)
	if len(got) != subBuffer {
		t.Fatalf("subscriber buffered %d events, want %d", len(got), subBuffer)
	}
}

// TestHubLaggedMarker: a subscriber that stalls and then resumes receives a
// "lagged" event counting its losses before the first post-gap event.
func TestHubLaggedMarker(t *testing.T) {
	h := newHub()
	s := h.subscribe()
	for i := 0; i < subBuffer+5; i++ { // 5 events lost
		h.publish(Event{Type: "progress", Data: i})
	}
	for i := 0; i < subBuffer; i++ { // subscriber wakes up and drains
		<-s.ch
	}
	h.publish(Event{Type: "progress", Data: "after-gap"})
	first := <-s.ch
	if first.Type != "lagged" {
		t.Fatalf("first post-gap event is %q, want lagged", first.Type)
	}
	if d := first.Data.(map[string]int)["dropped"]; d != 5 {
		t.Fatalf("lagged marker reports %d dropped, want 5", d)
	}
	if e := <-s.ch; e.Data != "after-gap" {
		t.Fatalf("event after the marker = %v, want after-gap", e.Data)
	}
}

// TestHubLaggedMarkerNeedsTwoSlots: with exactly one free slot the marker
// is withheld (it must precede the next real event), and the loss count
// keeps growing.
func TestHubLaggedMarkerNeedsTwoSlots(t *testing.T) {
	h := newHub()
	s := h.subscribe()
	for i := 0; i < subBuffer+1; i++ { // one event lost
		h.publish(Event{Type: "progress", Data: i})
	}
	<-s.ch // exactly one free slot
	h.publish(Event{Type: "progress", Data: "x"})
	if e := <-s.ch; e.Type == "lagged" {
		t.Fatal("lagged marker sent with only one free slot; the post-gap event would be lost")
	}
	if s.dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (the original loss plus the withheld publish)", s.dropped)
	}
}

// TestHubSubscribeAfterClose: a subscriber attaching to a finished run gets
// an already-closed channel, so its stream ends right after the snapshot.
func TestHubSubscribeAfterClose(t *testing.T) {
	h := newHub()
	h.close()
	h.close() // idempotent
	s := h.subscribe()
	if _, ok := <-s.ch; ok {
		t.Fatal("subscriber of a closed hub received an event")
	}
	h.publish(Event{Type: "progress", Data: 1}) // must be a no-op, not a panic
}

// TestHubUnsubscribeStopsDelivery: after unsubscribe the hub drops the
// subscriber entirely; close does not touch its channel again.
func TestHubUnsubscribeStopsDelivery(t *testing.T) {
	h := newHub()
	s := h.subscribe()
	h.unsubscribe(s)
	h.publish(Event{Type: "progress", Data: 1})
	if got := drainEvents(s); len(got) != 0 {
		t.Fatalf("unsubscribed subscriber received %d events", len(got))
	}
}

// TestHubConcurrentPublishSubscribe hammers the hub from publishers,
// subscribers and unsubscribers at once — a -race exercise.
func TestHubConcurrentPublishSubscribe(t *testing.T) {
	h := newHub()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.publish(Event{Type: "progress", Data: i})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := h.subscribe()
				drainEvents(s)
				h.unsubscribe(s)
			}
		}()
	}
	wg.Wait()
	h.close()
}
