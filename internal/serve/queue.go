package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"nvmwear"
)

// admitError is an admission rejection with its HTTP status.
type admitError struct {
	status int
	msg    string
	retry  bool // set Retry-After: transient, come back
}

func (e *admitError) Error() string { return e.msg }

// resolve validates a Spec against the registry and the server's defaults,
// producing the run ready to queue. Every rejection happens here, before
// the run exists — a queued run is always executable.
func (s *Server) resolve(spec Spec) (*run, *admitError) {
	e, ok := nvmwear.LookupExperiment(spec.Experiment)
	if !ok {
		return nil, &admitError{http.StatusNotFound, fmt.Sprintf("unknown experiment %q", spec.Experiment), false}
	}
	scaleName := spec.Scale
	if scaleName == "" {
		scaleName = s.cfg.Scale
	}
	sc, err := nvmwear.ScaleByName(scaleName)
	if err != nil {
		return nil, &admitError{http.StatusBadRequest, err.Error(), false}
	}
	sc.Seed = s.cfg.Seed
	if spec.Seed != nil {
		sc.Seed = *spec.Seed
	}
	sc.Parallelism = s.cfg.Parallelism
	shards := spec.Shards
	if shards == 0 {
		shards = s.cfg.Shards
	}
	if shards < 0 || shards > nvmwear.MaxShards {
		return nil, &admitError{http.StatusBadRequest,
			fmt.Sprintf("shards %d out of range [1,%d]", shards, nvmwear.MaxShards), false}
	}
	sc.Shards = shards
	sc.SweepScheme = nvmwear.SchemeKind(spec.Scheme)
	wear := spec.Wear
	if wear == "" {
		wear = s.cfg.Wear
	}
	if err := nvmwear.CheckWearModel(wear); err != nil {
		return nil, &admitError{http.StatusBadRequest, err.Error(), false}
	}
	sc.WearModel = wear
	format := spec.Format
	if format == "" {
		format = s.cfg.Format
	}
	switch format {
	case "text", "csv", "json":
	default:
		return nil, &admitError{http.StatusBadRequest, fmt.Sprintf("unknown format %q (text|csv|json)", format), false}
	}
	spec.Format = format
	timeout := s.cfg.RunTimeout
	if spec.Timeout != "" {
		d, err := time.ParseDuration(spec.Timeout)
		if err != nil || d <= 0 {
			return nil, &admitError{http.StatusBadRequest, fmt.Sprintf("bad timeout %q", spec.Timeout), false}
		}
		timeout = d
	}
	// Per-run job cap: reject sweeps whose planned job count exceeds the
	// server's budget before they occupy a queue slot. Same message shape
	// as the CLI's pre-run validation (nvmwear.PlanCapError).
	if s.cfg.MaxRunJobs > 0 && e.Plan != nil {
		if n := len(e.Plan(sc)); n > s.cfg.MaxRunJobs {
			return nil, &admitError{http.StatusUnprocessableEntity,
				nvmwear.PlanCapError(spec.Experiment, n, sc.Name, s.cfg.MaxRunJobs).Error(), false}
		}
	}
	return &run{spec: spec, scale: sc, timeout: timeout, hub: newHub()}, nil
}

// admit queues a resolved run, applying backpressure. Returns the admitted
// (or coalesced) run. Admission is serialized under s.mu, which makes the
// capacity check and the enqueue atomic with respect to other admissions;
// workers only ever shrink the queue, so the send below cannot block.
func (s *Server) admit(r *run) (*run, bool, *admitError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, &admitError{http.StatusServiceUnavailable, "server is draining", false}
	}
	actual, coalesced := s.runs.add(r)
	if coalesced {
		return actual, true, nil
	}
	if len(s.queue) == cap(s.queue) {
		s.runs.remove(r)
		return nil, false, &admitError{http.StatusServiceUnavailable,
			fmt.Sprintf("run queue full (%d queued)", cap(s.queue)), true}
	}
	s.queue <- r
	return r, false, nil
}

// worker executes queued runs until the drain signal; it then cancels
// whatever is still queued (those runs never started — their state says
// so) and exits, letting finishDrain observe completion via the WaitGroup.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.softCtx.Done():
			s.flushQueue()
			return
		case r := <-s.queue:
			s.execute(r)
		}
	}
}

// flushQueue cancels every still-queued run during a drain.
func (s *Server) flushQueue() {
	for {
		select {
		case r := <-s.queue:
			r.finishCanceledBeforeStart("server drained before the run started")
			s.runs.release(r)
		default:
			return
		}
	}
}

// execute runs one experiment to a terminal state. The deferred recover is
// the panic quarantine: a crashing experiment fails its own run — stack
// preserved in the run log — and the worker loop continues untouched.
func (s *Server) execute(r *run) {
	defer s.runs.release(r)
	ctx, cancel := context.WithCancelCause(s.hardCtx)
	defer cancel(nil)
	runCtx := ctx
	if r.timeout > 0 {
		var cancelTimeout context.CancelFunc
		runCtx, cancelTimeout = context.WithTimeoutCause(ctx, r.timeout,
			fmt.Errorf("run deadline %v exceeded", r.timeout))
		defer cancelTimeout()
	}
	defer func() {
		if v := recover(); v != nil {
			s.logf("run %s (%s) panicked; quarantined: %v", r.id, r.spec.Experiment, v)
			r.finishPanic(v, debug.Stack())
		}
	}()
	r.start(cancel)

	sc := r.scale
	sc.Context = runCtx
	sc.Drain = s.softCtx
	sc.Logf = r.logf
	if s.st != nil {
		// Guard the nil: assigning a nil *store.Store into the ResultCache
		// interface would make it non-nil and panic on first Get.
		sc.CacheDir = s.cfg.CacheDir
		sc.Cache = s.st
	}
	d := &nvmwear.Driver{Format: r.spec.Format}
	sinks := nvmwear.RunSinks{
		Out: r.outWriter(),
		Progress: func(name string, done, total int) {
			r.setProgress(done, total)
		},
		SeriesDone: func(fig string, series nvmwear.Series) {
			r.hub.publish(Event{Type: "series", Data: map[string]string{"fig": fig, "label": series.Label}})
		},
		Rendered: r.setRendered,
	}
	r.finish(d.RunAt(r.spec.Experiment, sc, sinks))
}
