package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nvmwear"
)

// State is a run's position in its lifecycle.
type State string

// The run states. Terminal states are done, failed, and canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a run in this state will never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is the client-supplied description of a run — the POST /runs body.
// Zero fields take the server's defaults.
type Spec struct {
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale,omitempty"`   // preset name (tiny|small|medium|large)
	Seed       *uint64 `json:"seed,omitempty"`    // nil = server default
	Shards     int     `json:"shards,omitempty"`  // 0 = server default
	Scheme     string  `json:"scheme,omitempty"`  // sweep experiment's scheme
	Wear       string  `json:"wear,omitempty"`    // wear model; "" = server default
	Timeout    string  `json:"timeout,omitempty"` // per-run deadline, time.ParseDuration syntax
	Format     string  `json:"format,omitempty"`  // artifact format: text|csv|json
}

// run is one submitted experiment run: the unit the queue schedules, the
// SSE hub streams, and /runs/{id} reports. All mutable fields are guarded
// by mu; the worker goroutine is the only writer of state transitions, but
// HTTP handlers read concurrently and DELETE cancels concurrently.
type run struct {
	id   string
	spec Spec

	mu         sync.Mutex
	state      State
	errMsg     string
	panicked   bool
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	done       int // completed sweep jobs
	total      int
	cancel     context.CancelCauseFunc // non-nil while running
	out        bytes.Buffer            // rendered tables + summary (the CLI's stdout)
	logBuf     bytes.Buffer            // per-run diagnostics (the CLI's stderr)
	svgs       map[string][]byte       // rendered figures by file name
	canceledBy string                  // non-empty once DELETE requested cancellation

	hub *hub

	// Resolved at admission so a bad request fails before it queues.
	scale   nvmwear.Scale
	timeout time.Duration
}

// ErrCanceled is the cancellation cause of a client-requested DELETE.
var ErrCanceled = errors.New("run canceled by client request")

// runView is the JSON shape of a run in every response and state event.
type runView struct {
	ID         string   `json:"id"`
	Experiment string   `json:"experiment"`
	Scale      string   `json:"scale"`
	Seed       uint64   `json:"seed"`
	Shards     int      `json:"shards,omitempty"`
	Wear       string   `json:"wear,omitempty"`
	State      State    `json:"state"`
	Error      string   `json:"error,omitempty"`
	Panicked   bool     `json:"panicked,omitempty"`
	JobsDone   int      `json:"jobsDone"`
	JobsTotal  int      `json:"jobsTotal"`
	QueuedAt   string   `json:"queuedAt,omitempty"`
	StartedAt  string   `json:"startedAt,omitempty"`
	FinishedAt string   `json:"finishedAt,omitempty"`
	Artifacts  []string `json:"artifacts,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// view snapshots the run for JSON delivery.
func (r *run) view() runView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := runView{
		ID:         r.id,
		Experiment: r.spec.Experiment,
		Scale:      r.scale.Name,
		Seed:       r.scale.Seed,
		Shards:     r.scale.Shards,
		Wear:       r.scale.WearModel,
		State:      r.state,
		Error:      r.errMsg,
		Panicked:   r.panicked,
		JobsDone:   r.done,
		JobsTotal:  r.total,
		QueuedAt:   stamp(r.queuedAt),
		StartedAt:  stamp(r.startedAt),
		FinishedAt: stamp(r.finishedAt),
	}
	if r.state.terminal() {
		v.Artifacts = r.artifactNamesLocked()
	}
	return v
}

func (r *run) artifactNamesLocked() []string {
	names := []string{"output.txt", "log.txt"}
	for name := range r.svgs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// artifact returns a named artifact's bytes and content type.
func (r *run) artifact(name string) ([]byte, string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch name {
	case "output.txt":
		return append([]byte(nil), r.out.Bytes()...), "text/plain; charset=utf-8", true
	case "log.txt":
		return append([]byte(nil), r.logBuf.Bytes()...), "text/plain; charset=utf-8", true
	default:
		if b, ok := r.svgs[name]; ok {
			return b, "image/svg+xml", true
		}
	}
	return nil, "", false
}

// logf is the run's Scale.Logf sink: per-run diagnostics land in the run's
// own buffer, so concurrent runs never interleave lines.
func (r *run) logf(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(&r.logBuf, format+"\n", args...)
}

// outWriter returns an io.Writer appending to the run's output artifact
// under the run's lock.
func (r *run) outWriter() *lockedWriter { return &lockedWriter{r: r} }

type lockedWriter struct{ r *run }

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.r.mu.Lock()
	defer w.r.mu.Unlock()
	return w.r.out.Write(p)
}

// start transitions queued -> running and installs the cancel hook.
func (r *run) start(cancel context.CancelCauseFunc) {
	r.mu.Lock()
	r.state = StateRunning
	r.startedAt = time.Now()
	r.cancel = cancel
	// A DELETE that raced admission: honor it now that a cancel exists.
	if r.canceledBy != "" {
		cancel(ErrCanceled)
	}
	r.mu.Unlock()
	r.publishState()
}

// setProgress records sweep progress and streams it.
func (r *run) setProgress(done, total int) {
	r.mu.Lock()
	r.done, r.total = done, total
	r.mu.Unlock()
	r.hub.publish(Event{Type: "progress", Data: map[string]int{"done": done, "total": total}})
}

// setRendered captures the run's rendered artifacts (invoked by the
// driver's Rendered sink, including for the partial render of an
// interrupted run).
func (r *run) setRendered(tables []nvmwear.Table, svgs []nvmwear.SVG) {
	rendered := map[string][]byte{}
	for _, g := range svgs {
		var b bytes.Buffer
		if err := g.WriteSVG(&b); err == nil {
			rendered[g.Name+".svg"] = b.Bytes()
		}
	}
	r.mu.Lock()
	r.svgs = rendered
	r.mu.Unlock()
}

// requestCancel is DELETE /runs/{id}: cancel a queued or running run. It
// reports whether the request was accepted (false once terminal).
func (r *run) requestCancel() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state.terminal() {
		return false
	}
	r.canceledBy = "client"
	if r.cancel != nil {
		r.cancel(ErrCanceled)
	}
	return true
}

// finish records the run's terminal state from the driver's error and ends
// the event stream. An interrupted sweep (drain, deadline, DELETE) counts
// as canceled — its partial artifacts remain downloadable; any other error
// is a failure.
func (r *run) finish(err error) {
	r.mu.Lock()
	r.finishedAt = time.Now()
	r.cancel = nil
	switch {
	case err == nil:
		r.state = StateDone
	case errors.Is(err, nvmwear.ErrInterrupted):
		r.state = StateCanceled
		r.errMsg = err.Error()
	default:
		r.state = StateFailed
		r.errMsg = err.Error()
	}
	r.mu.Unlock()
	r.publishState()
	r.hub.close()
}

// finishPanic quarantines a run whose experiment panicked: the run is
// failed, the panic value and stack are preserved in the run log, and the
// server keeps serving.
func (r *run) finishPanic(v any, stack []byte) {
	r.mu.Lock()
	r.finishedAt = time.Now()
	r.cancel = nil
	r.state = StateFailed
	r.panicked = true
	r.errMsg = fmt.Sprintf("experiment panicked: %v", v)
	fmt.Fprintf(&r.logBuf, "panic: %v\n\n%s\n", v, stack)
	r.mu.Unlock()
	r.publishState()
	r.hub.close()
}

// finishCanceledBeforeStart ends a run the queue never started (server
// drained first).
func (r *run) finishCanceledBeforeStart(reason string) {
	r.mu.Lock()
	r.finishedAt = time.Now()
	r.state = StateCanceled
	r.errMsg = reason
	r.mu.Unlock()
	r.publishState()
	r.hub.close()
}

func (r *run) publishState() {
	r.hub.publish(Event{Type: "state", Data: r.view()})
}

// dedupeKey is the spec identity used to coalesce concurrent duplicate
// submissions onto one run: same experiment, resolved scale, seed, shard
// layout, scheme and wear model means byte-identical work.
func (r *run) dedupeKey() string {
	return fmt.Sprintf("%s|%s|%d|%d|%s|%s|%s",
		r.spec.Experiment, r.scale.Name, r.scale.Seed, r.scale.Shards, r.spec.Scheme, r.scale.WearModel, r.spec.Format)
}

// runSet is the server's run registry.
type runSet struct {
	mu     sync.Mutex
	seq    int
	byID   map[string]*run
	order  []*run
	active map[string]*run // dedupeKey -> queued/running run
}

func newRunSet() *runSet {
	return &runSet{byID: map[string]*run{}, active: map[string]*run{}}
}

// add registers a new run, assigning its ID. If an active run with the
// same dedupe key exists, that run is returned instead and the new one is
// discarded (coalesced submission: N clients, one compute).
func (rs *runSet) add(r *run) (actual *run, coalesced bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if prev, ok := rs.active[r.dedupeKey()]; ok {
		return prev, true
	}
	rs.seq++
	r.id = fmt.Sprintf("r%06d", rs.seq)
	r.queuedAt = time.Now()
	r.state = StateQueued
	rs.byID[r.id] = r
	rs.order = append(rs.order, r)
	rs.active[r.dedupeKey()] = r
	return r, false
}

// remove rolls a just-added run back out entirely — admission failed after
// the add (queue full), so the run must not remain visible.
func (rs *runSet) remove(r *run) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	delete(rs.byID, r.id)
	if rs.active[r.dedupeKey()] == r {
		delete(rs.active, r.dedupeKey())
	}
	for i, o := range rs.order {
		if o == r {
			rs.order = append(rs.order[:i], rs.order[i+1:]...)
			break
		}
	}
}

// release drops a run from the active (dedupe) index once it reaches a
// terminal state.
func (rs *runSet) release(r *run) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.active[r.dedupeKey()] == r {
		delete(rs.active, r.dedupeKey())
	}
}

func (rs *runSet) get(id string) (*run, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r, ok := rs.byID[id]
	return r, ok
}

// list returns every run in submission order.
func (rs *runSet) list() []*run {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]*run(nil), rs.order...)
}

// counts tallies runs by state for /healthz.
func (rs *runSet) counts() map[State]int {
	out := map[State]int{}
	for _, r := range rs.list() {
		r.mu.Lock()
		out[r.state]++
		r.mu.Unlock()
	}
	return out
}
