// Package serve exposes the nvmwear experiment registry as a long-lived
// HTTP service — `wlsim serve`. The robustness posture is the point:
//
//   - Admission control: a bounded queue; a full queue or a draining server
//     answers 503 (with Retry-After) instead of accumulating unbounded work,
//     and a per-run job cap rejects oversized requests up front.
//   - Panic containment: an experiment that panics fails its own run (the
//     panic value and stack land in the run's log artifact); the server and
//     every other run keep going.
//   - Graceful shutdown: a drain stops admission, lets in-flight sweep jobs
//     complete and persist to the result store (Scale.Drain), force-cancels
//     whatever remains after the drain deadline, then exits cleanly — a
//     restarted server resumes the interrupted runs warm from the cache.
//   - Client-loss tolerance: SSE subscribers get bounded buffers; a stalled
//     or vanished client loses events (and is told so via a "lagged"
//     marker), never stalls the publisher.
//   - Cache arbitration: the store's single-writer lockfile is honored —
//     a second server on the same cache directory degrades to cache-less
//     operation with a warning instead of corrupting or crashing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"nvmwear"
	"nvmwear/internal/store"
)

// Config sizes and locates a Server. Zero fields take the documented
// defaults.
type Config struct {
	Addr         string        // listen address; "" = 127.0.0.1:8377
	Scale        string        // default scale preset; "" = tiny
	Seed         uint64        // default seed; 0 = 42 (the CLI default)
	Parallelism  int           // sweep workers per run; 0 = all cores
	Shards       int           // default -shards; 0 = 1 (serial)
	Wear         string        // default wear model; "" = historical behavior
	CacheDir     string        // result store; "" disables caching
	Format       string        // default artifact format; "" = text
	QueueDepth   int           // bounded run queue; 0 = 16
	Workers      int           // concurrent runs; 0 = 2
	MaxRunJobs   int           // per-run sweep-job admission cap; 0 = unlimited
	RunTimeout   time.Duration // default per-run deadline; 0 = none
	DrainTimeout time.Duration // in-flight grace on shutdown; 0 = 10s
	Logf         func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8377"
	}
	if c.Scale == "" {
		c.Scale = "tiny"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Format == "" {
		c.Format = "text"
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// Server is one wlsim serve instance.
type Server struct {
	cfg  Config
	runs *runSet

	// queue is the bounded admission queue. Admission (enqueue) happens
	// only under mu, so a length check under mu cannot be invalidated
	// before the send; workers dequeue freely.
	queue chan *run

	mu       sync.Mutex
	draining bool

	// softCtx is the drain signal: stops admission and job dispatch, lets
	// in-flight attempts checkpoint. hardCtx is the abandon-everything
	// signal the drain deadline escalates to. Every run's context descends
	// from hardCtx.
	softCtx    context.Context
	softCancel context.CancelCauseFunc
	hardCtx    context.Context
	hardCancel context.CancelCauseFunc

	stopping  chan struct{} // closed after workers exit; ends SSE streams
	drained   chan struct{} // closed when shutdown is complete
	drainOnce sync.Once
	wg        sync.WaitGroup

	st            *store.Store // nil: cache disabled or degraded
	degradedCache string       // non-empty: why the cache is unavailable

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a Server. With cfg.CacheDir set and the directory's lockfile
// held by another live process, the server comes up anyway — degraded to
// cache-less operation with a logged warning — rather than fighting over
// the store (single-writer arbitration). Any other store error is fatal.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if _, err := nvmwear.ScaleByName(cfg.Scale); err != nil {
		return nil, err
	}
	if err := nvmwear.CheckWearModel(cfg.Wear); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		runs:     newRunSet(),
		queue:    make(chan *run, cfg.QueueDepth),
		stopping: make(chan struct{}),
		drained:  make(chan struct{}),
	}
	s.softCtx, s.softCancel = context.WithCancelCause(context.Background())
	s.hardCtx, s.hardCancel = context.WithCancelCause(context.Background())
	if cfg.CacheDir != "" {
		st, err := store.Open(cfg.CacheDir)
		var busy *store.BusyError
		switch {
		case err == nil:
			st.Logf = s.logf
			s.st = st
		case errors.As(err, &busy):
			s.degradedCache = err.Error()
			s.logf("cache degraded: %v (continuing without result cache)", err)
		default:
			return nil, err
		}
	}
	s.httpSrv = &http.Server{Handler: s.routes()}
	return s, nil
}

// Start binds the listener and launches the HTTP serving loop and the run
// workers. It returns once the server is accepting requests.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		if s.st != nil {
			s.st.Close()
		}
		return err
	}
	s.ln = ln
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go s.httpSrv.Serve(ln)
	s.logf("wlsim serve listening on %s (scale %s, queue %d, workers %d)",
		ln.Addr(), s.cfg.Scale, s.cfg.QueueDepth, s.cfg.Workers)
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Drain initiates graceful shutdown: stop admitting, cancel queued runs,
// let in-flight sweep jobs complete and persist, force-cancel after the
// drain deadline, then close the listener and the store. Idempotent; Wait
// blocks until the sequence finishes.
func (s *Server) Drain(reason string) {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.logf("draining: %s", reason)
		s.softCancel(fmt.Errorf("server draining: %s", reason))
		go s.finishDrain()
	})
}

// Wait blocks until a Drain completes.
func (s *Server) Wait() {
	<-s.drained
}

func (s *Server) finishDrain() {
	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-time.After(s.cfg.DrainTimeout):
		// The grace period is up: abandon whatever is still running. Jobs
		// that completed during the drain are already persisted, so the
		// next server resumes from them.
		s.logf("drain deadline %v exceeded; force-canceling in-flight runs", s.cfg.DrainTimeout)
		s.hardCancel(fmt.Errorf("drain deadline %v exceeded", s.cfg.DrainTimeout))
		<-workersDone
	}
	close(s.stopping) // ends every SSE stream so Shutdown can finish
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.httpSrv.Shutdown(ctx)
	if s.st != nil {
		s.st.Close() // releases the cache lockfile for the next server
	}
	close(s.drained)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
