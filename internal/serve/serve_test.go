package serve

// The server robustness matrix (run under -race): warm drain/resume,
// queue-overflow backpressure, panic containment, per-run deadlines,
// client cancellation, stalled SSE subscribers, and degraded-cache
// arbitration between two servers sharing one store directory.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"nvmwear/internal/store"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Scale == "" {
		cfg.Scale = "tiny"
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Drain("test cleanup")
		waitDrained(t, s)
	})
	return s
}

func waitDrained(t *testing.T, s *Server) {
	t.Helper()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("server did not finish draining")
	}
}

// httpJSON performs a request and decodes the JSON response.
func httpJSON(t *testing.T, method, url string, body any) (int, http.Header, map[string]any) {
	t.Helper()
	var reqBody *strings.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reqBody = strings.NewReader(string(b))
	} else {
		reqBody = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, reqBody)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, resp.Header, out
}

// submit POSTs a run spec and returns the response.
func submit(t *testing.T, s *Server, spec map[string]any) (int, http.Header, map[string]any) {
	t.Helper()
	return httpJSON(t, "POST", "http://"+s.Addr()+"/runs", spec)
}

// waitRunState polls a run until it reaches want (failing on any other
// terminal state) and returns its final view.
func waitRunState(t *testing.T, s *Server, id string, want State) map[string]any {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		code, _, v := httpJSON(t, "GET", "http://"+s.Addr()+"/runs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /runs/%s: status %d", id, code)
		}
		got := State(v["state"].(string))
		if got == want {
			return v
		}
		if got.terminal() {
			t.Fatalf("run %s reached %q (error %v), want %q", id, got, v["error"], want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %q, want %q", id, got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func artifact(t *testing.T, s *Server, id, name string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + "/runs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, b.String()
}

// TestDrainResumesWarm is the graceful-shutdown acceptance test: drain a
// server mid-sweep, let the in-flight jobs checkpoint to the store, then
// bring up a second server on the same cache directory and resubmit. The
// resumed run must complete with every job computed exactly once across
// both server lifetimes.
func TestDrainResumesWarm(t *testing.T) {
	dir := t.TempDir()
	const seed = 1001
	c := newCtrl(seed, 6)
	cfg := Config{CacheDir: dir, Parallelism: 2, Workers: 1}

	s1 := startServer(t, cfg)
	code, _, v := submit(t, s1, map[string]any{"experiment": "serve-test-gated", "seed": seed})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, v)
	}
	// Both pool workers are now mid-job and blocked on the gate.
	<-c.started
	<-c.started
	s1.Drain("test: drain with in-flight jobs")
	close(c.release) // in-flight jobs finish and persist during the drain
	waitDrained(t, s1)
	if got := c.execs.Load(); got != 2 {
		t.Fatalf("first server computed %d jobs, want exactly the 2 in-flight ones", got)
	}

	s2 := startServer(t, cfg)
	code, _, v = submit(t, s2, map[string]any{"experiment": "serve-test-gated", "seed": seed})
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d (%v)", code, v)
	}
	id := v["id"].(string)
	final := waitRunState(t, s2, id, StateDone)
	if got := c.execs.Load(); got != 6 {
		t.Fatalf("total jobs computed across both servers = %d, want 6 (each job exactly once)", got)
	}
	if final["jobsDone"].(float64) != 6 {
		t.Fatalf("resumed run reports %v jobs done, want 6", final["jobsDone"])
	}
	if code, out := artifact(t, s2, id, "output.txt"); code != http.StatusOK || !strings.Contains(out, "serve test") {
		t.Fatalf("resumed run's output.txt (status %d):\n%s", code, out)
	}
}

// TestQueueOverflowAnswers503 is the backpressure contract: a full bounded
// queue rejects new runs with 503 + Retry-After instead of queueing
// unboundedly; identical active specs coalesce onto one run; a draining
// server rejects everything.
func TestQueueOverflowAnswers503(t *testing.T) {
	const seedA = 2001
	a := newCtrl(seedA, 6)
	s := startServer(t, Config{Workers: 1, QueueDepth: 1})

	code, _, _ := submit(t, s, map[string]any{"experiment": "serve-test-gated", "seed": seedA})
	if code != http.StatusAccepted {
		t.Fatalf("run A: status %d", code)
	}
	<-a.started // A is executing (and blocked); the single worker is busy

	code, _, vb := submit(t, s, map[string]any{"experiment": "serve-test-quick", "seed": 2002})
	if code != http.StatusAccepted {
		t.Fatalf("run B: status %d", code)
	}
	// Duplicate of queued B coalesces: same run, no new queue slot.
	code, _, dup := submit(t, s, map[string]any{"experiment": "serve-test-quick", "seed": 2002})
	if code != http.StatusOK || dup["id"] != vb["id"] {
		t.Fatalf("duplicate spec: status %d id %v, want 200 with id %v", code, dup["id"], vb["id"])
	}
	// Queue slot taken by B: the next distinct spec overflows.
	code, hdr, vc := submit(t, s, map[string]any{"experiment": "serve-test-quick", "seed": 2003})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d (%v), want 503", code, vc)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 overflow response lacks Retry-After")
	}

	// Drain while A is still in flight: admission stops immediately.
	code, _, _ = httpJSON(t, "POST", "http://"+s.Addr()+"/quitquitquit", nil)
	if code != http.StatusOK {
		t.Fatalf("quitquitquit: status %d", code)
	}
	if code, _, _ := httpJSON(t, "GET", "http://"+s.Addr()+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", code)
	}
	code, _, _ = submit(t, s, map[string]any{"experiment": "serve-test-quick", "seed": 2004})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}

	close(a.release)
	waitDrained(t, s)
	// B never ran (or was cut short by the drain): canceled, not lost. The
	// listener is down by now, so read the record directly.
	b, ok := s.runs.get(vb["id"].(string))
	if !ok {
		t.Fatal("queued run B vanished from the run set")
	}
	if st := b.view().State; st != StateCanceled {
		t.Errorf("queued run B ended %q, want canceled", st)
	}
}

// TestPanicContainment: an experiment whose jobs panic fails its own run —
// panic value and stack preserved in the run log — while the server and
// subsequent runs keep working.
func TestPanicContainment(t *testing.T) {
	s := startServer(t, Config{Workers: 1})
	code, _, v := submit(t, s, map[string]any{"experiment": "serve-test-panic"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := v["id"].(string)
	final := waitRunState(t, s, id, StateFailed)
	if final["panicked"] != true {
		t.Fatalf("failed run not marked panicked: %v", final)
	}
	if msg, _ := final["error"].(string); !strings.Contains(msg, "panicked") {
		t.Fatalf("error %q does not mention the panic", msg)
	}
	if code, logTxt := artifact(t, s, id, "log.txt"); code != http.StatusOK ||
		!strings.Contains(logTxt, "panic:") || !strings.Contains(logTxt, "boom from job") {
		t.Fatalf("log.txt lacks the panic record (status %d):\n%s", code, logTxt)
	}

	// The server survived: a normal run on the same worker completes.
	code, _, v = submit(t, s, map[string]any{"experiment": "serve-test-quick", "seed": 3001})
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: status %d", code)
	}
	waitRunState(t, s, v["id"].(string), StateDone)
	code, _, hv := httpJSON(t, "GET", "http://"+s.Addr()+"/healthz", nil)
	if code != http.StatusOK || hv["status"] != "ok" {
		t.Fatalf("healthz after panic: %d %v", code, hv)
	}
}

// TestRunDeadlineCancels: a server-wide RunTimeout bounds every run; the
// sweep stops at the deadline with the completed prefix recorded and the
// run reported canceled, not failed.
func TestRunDeadlineCancels(t *testing.T) {
	s := startServer(t, Config{Workers: 1, Parallelism: 1, RunTimeout: 80 * time.Millisecond})
	code, _, v := submit(t, s, map[string]any{"experiment": "serve-test-sleepy"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	final := waitRunState(t, s, v["id"].(string), StateCanceled)
	done := final["jobsDone"].(float64)
	if done < 1 || done >= 40 {
		t.Fatalf("deadline-canceled run completed %v/40 jobs, want a proper prefix", done)
	}
	if msg, _ := final["error"].(string); !strings.Contains(msg, "interrupted") {
		t.Fatalf("error %q does not report interruption", msg)
	}
}

// TestDeleteCancelsRun: DELETE cancels a running sweep through its context;
// the run ends canceled with the client-request cause, and a second DELETE
// on the terminal run is a 409.
func TestDeleteCancelsRun(t *testing.T) {
	const seed = 5001
	c := newCtrl(seed, 6)
	s := startServer(t, Config{Workers: 1, Parallelism: 1})
	code, _, v := submit(t, s, map[string]any{"experiment": "serve-test-gated", "seed": seed})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := v["id"].(string)
	<-c.started

	code, _, _ = httpJSON(t, "DELETE", "http://"+s.Addr()+"/runs/"+id, nil)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE: status %d, want 202", code)
	}
	close(c.release) // let the blocked job return so the cancel is observed
	final := waitRunState(t, s, id, StateCanceled)
	if msg, _ := final["error"].(string); !strings.Contains(msg, "client request") {
		t.Fatalf("error %q does not carry the client-cancel cause", msg)
	}
	code, _, _ = httpJSON(t, "DELETE", "http://"+s.Addr()+"/runs/"+id, nil)
	if code != http.StatusConflict {
		t.Fatalf("DELETE of terminal run: status %d, want 409", code)
	}
}

// TestStalledSSESubscriber: a subscriber that never reads its stream must
// not stall the run or the server — the hub's bounded buffers drop events
// for it — while a well-behaved subscriber attached to the same run
// receives the stream through to the terminal state.
func TestStalledSSESubscriber(t *testing.T) {
	const seed = 6001
	c := newCtrl(seed, 400)
	s := startServer(t, Config{Workers: 1, Parallelism: 1})
	code, _, v := submit(t, s, map[string]any{"experiment": "serve-test-quick", "seed": seed})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := v["id"].(string)
	<-c.started // job 0 is blocked; 399 jobs' worth of events are still to come

	// The stalled client: opens the stream and never reads a byte.
	stalled, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	fmt.Fprintf(stalled, "GET /runs/%s/events HTTP/1.1\r\nHost: wlsim\r\n\r\n", id)

	// The good client: reads the stream until it ends.
	good, err := http.Get("http://" + s.Addr() + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Body.Close()
	sawTerminal := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(good.Body)
		saw := false
		for sc.Scan() {
			if strings.Contains(sc.Text(), `"state":"done"`) {
				saw = true
			}
		}
		sawTerminal <- saw
	}()

	close(c.release)
	waitRunState(t, s, id, StateDone) // the run finished despite the stalled subscriber
	select {
	case saw := <-sawTerminal:
		if !saw {
			t.Error("well-behaved subscriber never saw the terminal state event")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("well-behaved subscriber's stream never ended")
	}
}

// TestSecondServerDegradesWithoutCache is the single-writer arbitration
// test: with the store's lockfile held elsewhere, the server comes up in
// degraded cache-less mode — visible in /healthz — and still runs
// experiments.
func TestSecondServerDegradesWithoutCache(t *testing.T) {
	dir := t.TempDir()
	holder, err := store.Open(dir) // stands in for a first server holding the lock
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()

	s := startServer(t, Config{CacheDir: dir, Workers: 1})
	if s.st != nil || s.degradedCache == "" {
		t.Fatalf("server with a held lockfile did not degrade: st=%v degraded=%q", s.st, s.degradedCache)
	}
	code, _, hv := httpJSON(t, "GET", "http://"+s.Addr()+"/healthz", nil)
	if code != http.StatusOK || !strings.HasPrefix(hv["cache"].(string), "degraded") {
		t.Fatalf("healthz does not surface the degraded cache: %d %v", code, hv)
	}
	code, _, v := submit(t, s, map[string]any{"experiment": "serve-test-quick", "seed": 7001})
	if code != http.StatusAccepted {
		t.Fatalf("submit on degraded server: status %d", code)
	}
	waitRunState(t, s, v["id"].(string), StateDone)
}

// TestAdmissionValidation: every malformed spec is rejected at POST time
// with the right status — nothing bad ever occupies a queue slot.
func TestAdmissionValidation(t *testing.T) {
	s := startServer(t, Config{MaxRunJobs: 1})
	cases := []struct {
		spec map[string]any
		want int
	}{
		{map[string]any{"experiment": "no-such-experiment"}, http.StatusNotFound},
		{map[string]any{"experiment": "serve-test-quick", "scale": "galactic"}, http.StatusBadRequest},
		{map[string]any{"experiment": "serve-test-quick", "timeout": "soon"}, http.StatusBadRequest},
		{map[string]any{"experiment": "serve-test-quick", "format": "yaml"}, http.StatusBadRequest},
		{map[string]any{"experiment": "serve-test-quick", "shards": 9999}, http.StatusBadRequest},
		{map[string]any{"experiment": "serve-test-quick", "bogus": true}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, v := submit(t, s, tc.spec); code != tc.want {
			t.Errorf("spec %v: status %d (%v), want %d", tc.spec, code, v, tc.want)
		}
	}
	// MaxRunJobs admission cap: find a real registered experiment planning
	// more than one job at the default scale and watch it bounce.
	resp, err := http.Get("http://" + s.Addr() + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var exps []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&exps); err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		if e["jobs"].(float64) > 1 {
			code, _, v := submit(t, s, map[string]any{"experiment": e["name"]})
			if code != http.StatusUnprocessableEntity {
				t.Errorf("%v-job experiment %v admitted with status %d (%v), want 422", e["jobs"], e["name"], code, v)
			}
			return
		}
	}
	t.Fatal("no registered experiment plans more than one job at tiny scale")
}
