package serve

// Test experiments: registered into the real nvmwear registry (this test
// binary's copy of it), driving the real exec.Pool with the Scale's
// Context/Drain/Cache wiring — so the server tests exercise the same
// cancellation, checkpointing and panic paths production experiments use.
// Per-run behavior (gates, execution counters) is keyed by the run's seed,
// which the Spec controls, so concurrent tests never share a control block.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nvmwear"
	"nvmwear/internal/exec"
)

// ctrl scripts one run's jobs: each executing job announces itself on
// started, then blocks until release is closed. execs counts jobs that
// actually computed (cache hits never reach the job function).
type ctrl struct {
	started chan int
	release chan struct{}
	execs   atomic.Int64
}

var ctrls sync.Map // seed uint64 -> *ctrl

func newCtrl(seed uint64, n int) *ctrl {
	c := &ctrl{started: make(chan int, n), release: make(chan struct{})}
	ctrls.Store(seed, c)
	return c
}

// testPool builds the pool the way Scale.cachedPool does, wired to the
// scale's cancellation and cache plumbing.
func testPool(name string, sc nvmwear.Scale) *exec.Pool {
	p := &exec.Pool{Workers: sc.Parallelism, BaseSeed: sc.Seed, Context: sc.Context, SoftContext: sc.Drain}
	if sc.Progress != nil {
		prog := sc.Progress
		p.OnDone = func(done, total int, _ time.Duration) { prog(done, total) }
	}
	if sc.Cache != nil {
		p.Store = sc.Cache
		p.Key = func(i int) string {
			return fmt.Sprintf("serve-test|%s|seed=%d|job=%d", name, sc.Seed, i)
		}
	}
	return p
}

// wrapCancel converts the pool's CanceledError into the registry contract:
// the completed prefix plus an error wrapping ErrInterrupted.
func wrapCancel(out []int, err error) (nvmwear.Result, error) {
	var ce *exec.CanceledError
	if errors.As(err, &ce) {
		done := 0
		for done < len(ce.Done) && ce.Done[done] {
			done++
		}
		return nvmwear.Result{Value: out[:done]}, fmt.Errorf("%w (%v)", nvmwear.ErrInterrupted, ce.Err)
	}
	return nvmwear.Result{Value: out}, err
}

// gatedRun is an n-job sweep whose jobs obey the seed's ctrl (if any).
func gatedRun(name string, n int, sc nvmwear.Scale) (nvmwear.Result, error) {
	out, err := exec.Map(testPool(name, sc), n, func(i int, seed uint64) (int, error) {
		if v, ok := ctrls.Load(sc.Seed); ok {
			c := v.(*ctrl)
			c.execs.Add(1)
			select {
			case c.started <- i:
			default:
			}
			<-c.release
		}
		return i * 7, nil
	})
	return wrapCancel(out, err)
}

func renderInts(r nvmwear.Result) ([]nvmwear.Table, []nvmwear.SVG) {
	vals, _ := r.Value.([]int)
	tab := nvmwear.Table{Title: "serve test", Columns: []string{"i", "v"}}
	for i, v := range vals {
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(i), fmt.Sprint(v)})
	}
	return []nvmwear.Table{tab}, nil
}

func init() {
	nvmwear.Register(nvmwear.Experiment{
		Name: "serve-test-gated", Description: "serve test: 6 gated jobs", Figure: "-", Order: 900,
		Run:    func(sc nvmwear.Scale) (nvmwear.Result, error) { return gatedRun("serve-test-gated", 6, sc) },
		Render: renderInts,
	})
	nvmwear.Register(nvmwear.Experiment{
		Name: "serve-test-quick", Description: "serve test: 400 fast jobs", Figure: "-", Order: 901,
		Run:    func(sc nvmwear.Scale) (nvmwear.Result, error) { return gatedRun("serve-test-quick", 400, sc) },
		Render: renderInts,
	})
	nvmwear.Register(nvmwear.Experiment{
		Name: "serve-test-sleepy", Description: "serve test: 40 x 10ms jobs", Figure: "-", Order: 902,
		Run: func(sc nvmwear.Scale) (nvmwear.Result, error) {
			out, err := exec.Map(testPool("serve-test-sleepy", sc), 40, func(i int, seed uint64) (int, error) {
				time.Sleep(10 * time.Millisecond)
				return i, nil
			})
			return wrapCancel(out, err)
		},
		Render: renderInts,
	})
	nvmwear.Register(nvmwear.Experiment{
		Name: "serve-test-panic", Description: "serve test: every job panics", Figure: "-", Order: 903,
		Run: func(sc nvmwear.Scale) (nvmwear.Result, error) {
			out, err := exec.Map(testPool("serve-test-panic", sc), 3, func(i int, seed uint64) (int, error) {
				panic(fmt.Sprintf("boom from job %d", i))
			})
			return wrapCancel(out, err)
		},
		Render: renderInts,
	})
}
