package sim

// Event-driven variant of the timing model. Where Run approximates bank
// contention with busy-until bookkeeping, RunEvent simulates the memory
// system as a discrete-event process: cores issue in simulated-time order,
// each bank runs an FR-FCFS scheduler over explicit read/write queues, and
// wear-leveling maintenance writes occupy their bank as distinct queue
// entries. The two models are cross-validated in tests; the event model is
// the reference, the analytic model is the fast path the experiments use.

import (
	"container/heap"

	"nvmwear/internal/cache"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// evKind discriminates event types.
type evKind uint8

const (
	evCoreIssue evKind = iota
	evBankDone
)

// event is one scheduled occurrence.
type event struct {
	time float64
	kind evKind
	id   int // core or bank index
	seq  uint64
}

// eventHeap is a time-ordered min-heap (seq breaks ties deterministically).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// bankOp is a queued bank operation.
type bankOp struct {
	write       bool
	maintenance bool // wear-leveling writes: lowest priority
	core        int  // waiting core for reads, -1 otherwise
	issue       float64
}

// bankState is one bank's FR-FCFS queues.
type bankState struct {
	busy   bool
	reads  []bankOp
	writes []bankOp
	maint  []bankOp
}

// next pops the highest-priority pending op: reads first (FR-FCFS gives
// row hits then oldest reads; with flat latency that is FCFS reads), then
// demand writes, then maintenance.
func (b *bankState) next() (bankOp, bool) {
	if len(b.reads) > 0 {
		op := b.reads[0]
		b.reads = b.reads[1:]
		return op, true
	}
	if len(b.writes) > 0 {
		op := b.writes[0]
		b.writes = b.writes[1:]
		return op, true
	}
	if len(b.maint) > 0 {
		op := b.maint[0]
		b.maint = b.maint[1:]
		return op, true
	}
	return bankOp{}, false
}

// RunEvent simulates cfg.Requests memory requests with the event-driven
// engine. It accepts the same Config as Run; WriteQueueDepth bounds the
// total buffered demand writes (0 = 128).
func RunEvent(lv wl.Leveler, stream trace.Stream, cfg Config) Result {
	cfg = cfg.withDefaults()
	wqDepth := cfg.WriteQueueDepth
	if wqDepth == 0 {
		wqDepth = 128
	}

	var l2 *cache.Cache
	if cfg.L2Lines > 0 {
		l2 = cache.New(cfg.L2Lines, cfg.L2Ways)
	}
	banks := make([]bankState, cfg.Banks)
	computeNs := cfg.InstrPerMemReq / cfg.FreqGHz
	baselineScheme := lv.Name() == "Baseline"
	prev := lv.Stats()

	var h eventHeap
	var seq uint64
	push := func(t float64, k evKind, id int) {
		seq++
		heap.Push(&h, event{time: t, kind: k, id: id, seq: seq})
	}
	for c := 0; c < cfg.Cores; c++ {
		push(computeNs, evCoreIssue, c)
	}

	var issued uint64
	var memReqs uint64
	var reads uint64
	var totalReadLat, totalTrans float64
	var pendingWrites int
	var lastTime float64
	coreDone := make([]float64, cfg.Cores)

	// startBank begins the bank's next queued op if idle.
	var startBank func(b int, now float64)
	startBank = func(b int, now float64) {
		if banks[b].busy {
			return
		}
		op, ok := banks[b].next()
		if !ok {
			return
		}
		banks[b].busy = true
		dur := cfg.ReadLatNs
		if op.write {
			dur = cfg.WriteLatNs
		}
		done := now + dur
		if op.write && !op.maintenance {
			pendingWrites--
		}
		if op.core >= 0 {
			reads++
			totalReadLat += done - op.issue
			// The waiting core resumes computing after the read returns.
			push(done+computeNs, evCoreIssue, op.core)
			coreDone[op.core] = done
		}
		push(done, evBankDone, b)
	}

	// translate performs the access and returns (pma, translation ns,
	// swap-delta, merge-delta).
	translate := func(op trace.Op, addr uint64) (uint64, float64, int, int) {
		pma := lv.Access(op, addr)
		st := lv.Stats()
		var transNs float64
		switch {
		case baselineScheme:
			transNs = 0
		case st.CMTHits != prev.CMTHits:
			transNs = cfg.TransHitNs
		case st.CMTMisses != prev.CMTMisses:
			transNs = cfg.TransMissNs
		default:
			transNs = cfg.OnChipTransNs
		}
		swap := int(st.SwapWrites - prev.SwapWrites + st.TableWrites - prev.TableWrites)
		merge := int(st.MergeWrites - prev.MergeWrites)
		prev = st
		totalTrans += transNs
		return pma, transNs, swap, merge
	}

	// sendToBank enqueues one demand op plus any wear-leveling work.
	sendToBank := func(op trace.Op, addr uint64, core int, now float64) (blockedRead bool) {
		memReqs++
		pma, transNs, swap, merge := translate(op, addr)
		b := int(pma) % cfg.Banks
		t := now + transNs
		entry := bankOp{write: op == trace.Write, core: -1, issue: t}
		if op == trace.Read {
			entry.core = core
			banks[b].reads = append(banks[b].reads, entry)
			blockedRead = true
		} else {
			pendingWrites++
			banks[b].writes = append(banks[b].writes, entry)
		}
		// Wear-leveling writes occupy the same bank (global blocking for
		// non-tiered schemes spreads them across all banks round-robin).
		for i := 0; i < swap; i++ {
			tb := b
			if cfg.GlobalSwapBlocking {
				tb = (b + i) % cfg.Banks
			}
			banks[tb].writes = append(banks[tb].writes, bankOp{write: true, maintenance: true, core: -1, issue: t})
		}
		for i := 0; i < merge; i++ {
			banks[(b+i)%cfg.Banks].maint = append(banks[(b+i)%cfg.Banks].maint,
				bankOp{write: true, maintenance: true, core: -1, issue: t})
		}
		startBank(b, t)
		return blockedRead
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		lastTime = ev.time
		switch ev.kind {
		case evBankDone:
			banks[ev.id].busy = false
			startBank(ev.id, ev.time)
		case evCoreIssue:
			if issued >= cfg.Requests {
				continue // core retires
			}
			if pendingWrites >= wqDepth {
				// Write buffer full: back-pressure, retry shortly.
				push(ev.time+cfg.WriteLatNs, evCoreIssue, ev.id)
				continue
			}
			issued++
			r := stream.Next()
			now := ev.time
			if l2 != nil {
				res := l2.Access(r.Addr, r.Op == trace.Write)
				if res.Hit {
					push(now+cfg.L2LatNs+computeNs, evCoreIssue, ev.id)
					coreDone[ev.id] = now + cfg.L2LatNs
					continue
				}
				if res.Writeback {
					sendToBank(trace.Write, res.WritebackAddr, ev.id, now)
				}
				// Miss fill read; core blocks until it completes.
				if !sendToBank(trace.Read, r.Addr, ev.id, now) {
					push(now+computeNs, evCoreIssue, ev.id)
				}
				continue
			}
			if sendToBank(r.Op, r.Addr, ev.id, now) {
				// Read: reissued by the bank completion.
				continue
			}
			push(now+computeNs, evCoreIssue, ev.id)
		}
	}

	var maxCore float64
	for _, t := range coreDone {
		if t > maxCore {
			maxCore = t
		}
	}
	if lastTime > maxCore {
		maxCore = lastTime
	}
	instr := float64(cfg.Requests) * cfg.InstrPerMemReq
	res := Result{Instructions: instr, ElapsedNs: maxCore, MemRequests: memReqs}
	if maxCore > 0 {
		res.IPC = instr / (maxCore * cfg.FreqGHz)
	}
	if l2 != nil {
		res.L2HitRate = l2.HitRate()
	}
	if reads > 0 {
		res.AvgReadLatNs = totalReadLat / float64(reads)
	}
	if memReqs > 0 {
		res.TransOverhead = totalTrans / float64(memReqs)
	}
	return res
}
