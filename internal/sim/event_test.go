package sim

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/wl"
	"nvmwear/internal/wl/pcms"
	"nvmwear/internal/workload"
)

func mkIdentity(lines uint64) wl.Leveler {
	dev := nvm.New(nvm.Config{Lines: lines, SpareLines: 1 << 30, Endurance: 1 << 30})
	return wl.NewIdentity(dev)
}

func TestEventModelBasics(t *testing.T) {
	res := RunEvent(mkIdentity(1<<14), workload.NewUniform(1, 1<<14, 0.3), Config{
		Requests: 50000, L2Lines: 1024,
	})
	if res.IPC <= 0 || res.IPC > 8 {
		t.Fatalf("IPC %v", res.IPC)
	}
	if res.MemRequests == 0 || res.ElapsedNs <= 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.TransOverhead != 0 {
		t.Fatal("baseline translation overhead")
	}
}

// TestEventVsAnalyticCrossValidation: the fast analytic model must agree
// with the event-driven reference within a factor of 2 on IPC and preserve
// the relative ordering between a baseline and a wear-leveled system.
func TestEventVsAnalyticCrossValidation(t *testing.T) {
	mkStream := func() *workload.Uniform { return workload.NewUniform(7, 1<<14, 0.4) }
	cfg := Config{Requests: 100000, L2Lines: 1024, InstrPerMemReq: 20}

	baseA := Run(mkIdentity(1<<14), mkStream(), cfg)
	baseE := RunEvent(mkIdentity(1<<14), mkStream(), cfg)
	if ratio := baseA.IPC / baseE.IPC; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("baseline IPC diverges: analytic %.3f vs event %.3f", baseA.IPC, baseE.IPC)
	}

	mkPCMS := func() wl.Leveler {
		dev := nvm.New(nvm.Config{Lines: 1 << 14, SpareLines: 1 << 30, Endurance: 1 << 30})
		return pcms.New(dev, pcms.Config{Lines: 1 << 14, RegionLines: 4, Period: 8, Seed: 1})
	}
	wlA := Run(mkPCMS(), mkStream(), cfg)
	wlE := RunEvent(mkPCMS(), mkStream(), cfg)
	if !(wlA.IPC < baseA.IPC) || !(wlE.IPC < baseE.IPC) {
		t.Fatalf("wear leveling not costly in both models: A %.3f/%.3f E %.3f/%.3f",
			wlA.IPC, baseA.IPC, wlE.IPC, baseE.IPC)
	}
	dA := wlA.Degradation(baseA)
	dE := wlE.Degradation(baseE)
	if dA <= 0 || dE <= 0 {
		t.Fatalf("degradations: analytic %.3f event %.3f", dA, dE)
	}
}

func TestEventModelReadPriority(t *testing.T) {
	// With FR-FCFS queues, a read-dominated stream should see latencies
	// near the raw device read latency despite concurrent writes.
	res := RunEvent(mkIdentity(1<<14), workload.NewUniform(3, 1<<14, 0.2), Config{
		Requests: 50000, InstrPerMemReq: 50,
	})
	if res.AvgReadLatNs > 4*50 {
		t.Fatalf("read latency %v despite read priority", res.AvgReadLatNs)
	}
}

func TestEventModelTerminates(t *testing.T) {
	// Saturating writes with a small write budget must still terminate
	// (back-pressure retries, bank drains).
	res := RunEvent(mkIdentity(1<<12), workload.NewUniform(5, 1<<12, 1.0), Config{
		Requests: 20000, InstrPerMemReq: 1, Banks: 2, WriteQueueDepth: 8,
	})
	if res.IPC <= 0 {
		t.Fatalf("IPC %v", res.IPC)
	}
	// Bandwidth-bound: 2 banks at 350ns per write.
	if res.IPC > 1 {
		t.Fatalf("write-saturated IPC %v suspiciously high", res.IPC)
	}
}
