// Package sim is the timing model standing in for the paper's gem5 +
// NVMain stack (Sec 4.1, Table 1; substitution documented in DESIGN.md).
//
// It models an 8-core 3.2 GHz system in closed loop: each core alternates
// compute phases (calibrated per benchmark by instructions-per-memory-
// request) with line-granular memory requests. Requests are filtered
// through a shared set-associative L2; misses pay address translation
// (5 ns on a CMT hit, 55 ns on a miss, 0 for the no-wear-leveling baseline,
// 5 ns flat for schemes whose whole table is on chip), queue on one of the
// banked NVM channels, and occupy the bank for the device read (50 ns) or
// write (350 ns) latency. Wear-leveling data exchanges block the issuing
// bank for their full duration — the mechanism that makes frequent
// fine-grained swaps expensive (Fig 17's BWL bar).
//
// Reads block the issuing core; writes are posted. IPC is computed from
// total instructions over the slowest core's finishing time and reported
// relative to a baseline run to reproduce Fig 17's degradation bars.
package sim

import (
	"nvmwear/internal/cache"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes a timing run.
type Config struct {
	Cores          int     // default 8 (Table 1)
	FreqGHz        float64 // default 3.2
	InstrPerMemReq float64 // compute instructions between memory requests (default 30)

	L2Lines uint64  // shared L2 capacity in lines (default 8192 = 512 KB); 0 disables
	L2Ways  int     // default 16
	L2LatNs float64 // hit latency (default 10)

	Banks      int     // default 16
	ReadLatNs  float64 // default 50
	WriteLatNs float64 // default 350 (MLC NVM, Table 1)

	TransHitNs  float64 // translation, mapping-cache hit (default 5)
	TransMissNs float64 // translation, mapping-cache miss (default 55)

	// RebuildLatNs is charged per metadata-entry rebuild (fault injection:
	// checksum mismatch -> inverse-table scan + repaired-line rewrite).
	// Default 1000 — the controller walks the reserved area, dwarfing a
	// normal table access.
	RebuildLatNs float64
	// OnChipTransNs applies to schemes with their full table on chip
	// (default 5; the Baseline scheme always pays 0).
	OnChipTransNs float64

	// GlobalSwapBlocking models a non-tiered controller whose data
	// exchanges stage whole regions through the controller SRAM, stalling
	// every bank for the exchange duration (the paper's BWL). Tiered
	// schemes charge exchanges only to the issuing bank.
	GlobalSwapBlocking bool

	// WriteQueueDepth > 0 enables the FR-FCFS posted-write buffer (Table 1
	// uses 128): demand writes park in the buffer and drain in bursts, so
	// isolated writes stop serializing in front of reads. 0 keeps the
	// simpler model where writes occupy the bank immediately.
	WriteQueueDepth int

	Requests uint64 // memory requests to simulate (default 2<<20)
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.FreqGHz == 0 {
		c.FreqGHz = 3.2
	}
	if c.InstrPerMemReq == 0 {
		c.InstrPerMemReq = 30
	}
	if c.L2Ways == 0 {
		c.L2Ways = 16
	}
	if c.L2LatNs == 0 {
		c.L2LatNs = 10
	}
	if c.Banks == 0 {
		c.Banks = 16
	}
	if c.ReadLatNs == 0 {
		c.ReadLatNs = 50
	}
	if c.WriteLatNs == 0 {
		c.WriteLatNs = 350
	}
	if c.TransHitNs == 0 {
		c.TransHitNs = 5
	}
	if c.TransMissNs == 0 {
		c.TransMissNs = 55
	}
	if c.OnChipTransNs == 0 {
		c.OnChipTransNs = 5
	}
	if c.RebuildLatNs == 0 {
		c.RebuildLatNs = 1000
	}
	if c.Requests == 0 {
		c.Requests = 2 << 20
	}
	return c
}

// Result summarizes a timing run.
type Result struct {
	IPC           float64
	Instructions  float64
	ElapsedNs     float64
	MemRequests   uint64
	L2HitRate     float64
	AvgReadLatNs  float64
	TransOverhead float64 // mean translation ns per memory access
}

// Degradation returns 1 - IPC/baselineIPC, the quantity Fig 17 plots.
func (r Result) Degradation(baseline Result) float64 {
	if baseline.IPC == 0 {
		return 0
	}
	return 1 - r.IPC/baseline.IPC
}

// Run simulates cfg.Requests memory requests from the stream through the
// scheme. The scheme performs its normal wear-leveling work; its swap and
// table writes are charged to the issuing bank.
func Run(lv wl.Leveler, stream trace.Stream, cfg Config) Result {
	cfg = cfg.withDefaults()
	coreTime := make([]float64, cfg.Cores)
	bankBusy := make([]float64, cfg.Banks)

	var l2 *cache.Cache
	if cfg.L2Lines > 0 {
		l2 = cache.New(cfg.L2Lines, cfg.L2Ways)
	}

	computeNs := cfg.InstrPerMemReq / cfg.FreqGHz // 1 instr/cycle issue rate
	baselineScheme := lv.Name() == "Baseline"

	prev := lv.Stats()
	var memReqs uint64
	var totalReadLat, totalTrans float64
	var reads uint64

	var wq *writeQueue
	if cfg.WriteQueueDepth > 0 {
		wq = newWriteQueue(cfg.WriteQueueDepth, cfg.Banks, cfg.WriteLatNs)
	}

	// issueMem sends one request to the memory system, returning the
	// completion time for reads (writes are posted).
	issueMem := func(core int, op trace.Op, addrL uint64, issue float64) float64 {
		memReqs++
		pma := lv.Access(op, addrL)
		st := lv.Stats()

		// Translation latency for this access.
		var transNs float64
		switch {
		case baselineScheme:
			transNs = 0
		case st.CMTHits != prev.CMTHits:
			transNs = cfg.TransHitNs
		case st.CMTMisses != prev.CMTMisses:
			transNs = cfg.TransMissNs
		default:
			transNs = cfg.OnChipTransNs
		}
		// Metadata rebuilds stall the translation path itself: the request
		// cannot proceed until the entry is reconstructed.
		transNs += float64(st.MetaRebuilds-prev.MetaRebuilds) * cfg.RebuildLatNs
		totalTrans += transNs

		// Wear-leveling work performed by this access occupies the bank;
		// region-merge traffic is background (the controller serves demand
		// requests from staged data while it drains), so it is scheduled
		// on the least-busy bank instead of blocking the issuing one.
		swapDelta := float64(st.SwapWrites - prev.SwapWrites +
			st.TableWrites - prev.TableWrites)
		mergeDelta := float64(st.MergeWrites - prev.MergeWrites)
		prev = st

		bank := int(pma) % cfg.Banks
		if wq != nil && op == trace.Write && swapDelta == 0 {
			// Posted write through the FR-FCFS buffer: the core only
			// stalls on back-pressure.
			stall := wq.push(bank, issue+transNs, bankBusy)
			return issue + transNs + stall
		}
		if wq != nil {
			// A read reaching an idle bank lets the queued writes that the
			// idle gap already serviced retire first.
			wq.idleDrain(bank, issue+transNs, bankBusy)
		}
		start := issue + transNs
		if bankBusy[bank] > start {
			start = bankBusy[bank]
		}
		dur := cfg.WriteLatNs
		if op == trace.Read {
			dur = cfg.ReadLatNs
		}
		finish := start + dur
		busy := finish + swapDelta*cfg.WriteLatNs
		bankBusy[bank] = busy
		if cfg.GlobalSwapBlocking && swapDelta > 0 {
			for b := range bankBusy {
				if bankBusy[b] < busy {
					bankBusy[b] = busy
				}
			}
		}
		if mergeDelta > 0 {
			idle := 0
			for b := range bankBusy {
				if bankBusy[b] < bankBusy[idle] {
					idle = b
				}
			}
			bankBusy[idle] += mergeDelta * cfg.WriteLatNs
		}
		if op == trace.Read {
			reads++
			totalReadLat += finish - issue
			return finish
		}
		return issue + transNs
	}

	for i := uint64(0); i < cfg.Requests; i++ {
		core := int(i) % cfg.Cores
		r := stream.Next()
		coreTime[core] += computeNs
		issue := coreTime[core]

		if l2 != nil {
			res := l2.Access(r.Addr, r.Op == trace.Write)
			if res.Hit {
				coreTime[core] = issue + cfg.L2LatNs
				continue
			}
			if res.Writeback {
				// Dirty eviction: a posted memory write.
				issueMem(core, trace.Write, res.WritebackAddr, issue)
			}
			// Miss fill: the line is read from memory (even for writes,
			// write-allocate fetches it); for a demand write the dirty data
			// stays in L2 until evicted.
			coreTime[core] = issueMem(core, trace.Read, r.Addr, issue)
			continue
		}
		coreTime[core] = issueMem(core, r.Op, r.Addr, issue)
	}

	var maxTime float64
	for _, t := range coreTime {
		if t > maxTime {
			maxTime = t
		}
	}
	instr := float64(cfg.Requests) * cfg.InstrPerMemReq
	res := Result{
		Instructions: instr,
		ElapsedNs:    maxTime,
		MemRequests:  memReqs,
	}
	if maxTime > 0 {
		res.IPC = instr / (maxTime * cfg.FreqGHz)
	}
	if l2 != nil {
		res.L2HitRate = l2.HitRate()
	}
	if reads > 0 {
		res.AvgReadLatNs = totalReadLat / float64(reads)
	}
	if memReqs > 0 {
		res.TransOverhead = totalTrans / float64(memReqs)
	}
	return res
}

// InstrPerMemReq maps the paper's SPEC benchmarks to a compute intensity:
// how many instructions a core executes per memory request it emits.
// Memory-bound benchmarks (mcf, lbm, libquantum, milc) sit low; compute-
// bound ones (namd, gromacs, sjeng, gobmk) sit high. These feed Fig 17.
var InstrPerMemReq = map[string]float64{
	"bzip2":      60,
	"gcc":        35,
	"mcf":        10,
	"milc":       18,
	"gromacs":    70,
	"cactusADM":  25,
	"leslie3d":   20,
	"namd":       90,
	"gobmk":      65,
	"soplex":     22,
	"hmmer":      55,
	"sjeng":      75,
	"libquantum": 12,
	"lbm":        11,
}
