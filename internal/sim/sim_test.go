package sim

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/wl"
	"nvmwear/internal/wl/pcms"
	"nvmwear/internal/workload"
)

func baselineRun(requests uint64, stream func() *workload.Uniform) Result {
	dev := nvm.New(nvm.Config{Lines: 1 << 16, SpareLines: 1 << 16, Endurance: 1 << 30})
	lv := wl.NewIdentity(dev)
	return Run(lv, stream(), Config{Requests: requests, L2Lines: 1024})
}

func TestBaselineIPCPositive(t *testing.T) {
	res := baselineRun(100000, func() *workload.Uniform {
		return workload.NewUniform(1, 1<<16, 0.3)
	})
	if res.IPC <= 0 || res.IPC > 8 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if res.ElapsedNs <= 0 || res.MemRequests == 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.TransOverhead != 0 {
		t.Fatalf("baseline translation overhead %v", res.TransOverhead)
	}
}

func TestWearLevelingDegradesIPC(t *testing.T) {
	mk := func() *workload.Uniform { return workload.NewUniform(1, 1<<16, 0.3) }
	base := baselineRun(200000, mk)

	dev := nvm.New(nvm.Config{Lines: 1 << 16, SpareLines: 1 << 16, Endurance: 1 << 30})
	lv := pcms.New(dev, pcms.Config{Lines: 1 << 16, RegionLines: 4, Period: 8, Seed: 1})
	wlRes := Run(lv, mk(), Config{Requests: 200000, L2Lines: 1024})

	if wlRes.IPC >= base.IPC {
		t.Fatalf("wear leveling did not cost anything: %v >= %v", wlRes.IPC, base.IPC)
	}
	d := wlRes.Degradation(base)
	if d <= 0 || d >= 1 {
		t.Fatalf("degradation %v", d)
	}
	if wlRes.TransOverhead <= 0 {
		t.Fatal("no translation overhead recorded")
	}
}

func TestL2FiltersTraffic(t *testing.T) {
	// A tiny footprint fits in L2: almost no memory requests.
	dev := nvm.New(nvm.Config{Lines: 1 << 16, SpareLines: 0, Endurance: 1 << 30})
	lv := wl.NewIdentity(dev)
	hot := workload.NewUniform(3, 256, 0.5)
	res := Run(lv, hot, Config{Requests: 100000, L2Lines: 1024})
	if res.L2HitRate < 0.95 {
		t.Fatalf("L2 hit rate %v for resident footprint", res.L2HitRate)
	}
	if res.MemRequests > 5000 {
		t.Fatalf("memory requests %d despite L2 residency", res.MemRequests)
	}
}

func TestNoL2Passthrough(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 1 << 12, SpareLines: 0, Endurance: 1 << 30})
	lv := wl.NewIdentity(dev)
	res := Run(lv, workload.NewUniform(5, 1<<12, 0.5), Config{Requests: 10000})
	if res.MemRequests != 10000 {
		t.Fatalf("passthrough issued %d mem requests", res.MemRequests)
	}
	if res.L2HitRate != 0 {
		t.Fatal("phantom L2")
	}
}

func TestMemoryBoundLowerIPCThanComputeBound(t *testing.T) {
	mk := func() *workload.Uniform { return workload.NewUniform(7, 1<<16, 0.4) }
	run := func(ipmr float64) float64 {
		dev := nvm.New(nvm.Config{Lines: 1 << 16, SpareLines: 0, Endurance: 1 << 30})
		return Run(wl.NewIdentity(dev), mk(), Config{
			Requests: 100000, InstrPerMemReq: ipmr, L2Lines: 1024,
		}).IPC
	}
	slowIPC := run(10)
	fastIPC := run(90)
	if fastIPC <= slowIPC {
		t.Fatalf("compute-bound IPC %v not above memory-bound %v", fastIPC, slowIPC)
	}
}

func TestInstrPerMemReqTableComplete(t *testing.T) {
	for _, name := range workload.Names() {
		if _, ok := InstrPerMemReq[name]; !ok {
			t.Errorf("missing InstrPerMemReq for %s", name)
		}
	}
	if len(InstrPerMemReq) != 14 {
		t.Fatalf("%d entries", len(InstrPerMemReq))
	}
}

func TestDegradationEdgeCases(t *testing.T) {
	if (Result{IPC: 1}).Degradation(Result{}) != 0 {
		t.Fatal("zero baseline")
	}
	d := (Result{IPC: 0.9}).Degradation(Result{IPC: 1.0})
	if d < 0.099 || d > 0.101 {
		t.Fatalf("degradation %v", d)
	}
}

func TestWriteQueueReducesReadLatency(t *testing.T) {
	// Write-heavy traffic: with the FR-FCFS buffer, reads should see lower
	// average latency than with immediate write occupancy.
	run := func(depth int) float64 {
		dev := nvm.New(nvm.Config{Lines: 1 << 14, SpareLines: 0, Endurance: 1 << 30})
		lv := wl.NewIdentity(dev)
		return Run(lv, workload.NewUniform(11, 1<<14, 0.7), Config{
			Requests: 100000, WriteQueueDepth: depth, InstrPerMemReq: 5,
		}).AvgReadLatNs
	}
	immediate := run(0)
	queued := run(128)
	if queued >= immediate {
		t.Fatalf("write queue did not help reads: %v >= %v", queued, immediate)
	}
}

func TestWriteQueueBackPressure(t *testing.T) {
	// Under pure writes, a bounded buffer must make the system bank-
	// bandwidth-bound; without a queue the old posted-write model lets
	// cores run at full speed while bankBusy grows unboundedly.
	run := func(depth int) float64 {
		dev := nvm.New(nvm.Config{Lines: 1 << 12, SpareLines: 0, Endurance: 1 << 30})
		lv := wl.NewIdentity(dev)
		return Run(lv, workload.NewUniform(13, 1<<12, 1.0), Config{
			Requests: 50000, WriteQueueDepth: depth, InstrPerMemReq: 2, Banks: 2,
		}).IPC
	}
	unbounded := run(0)
	bounded := run(64)
	if bounded >= unbounded/2 {
		t.Fatalf("back-pressure missing: bounded IPC %v vs unbounded %v", bounded, unbounded)
	}
	// Sanity: bandwidth bound ~ instr rate at 2 banks x 350ns writes.
	if bounded <= 0 {
		t.Fatal("bounded IPC is zero")
	}
}
