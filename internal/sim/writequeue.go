package sim

// writeQueue models the memory controller's posted-write buffer with
// FR-FCFS-style read priority (Table 1: queue length 128, FR-FCFS):
//
//   - posted writes join a per-bank backlog instead of occupying the bank;
//   - reads bypass the backlog (they only wait for the op in service);
//   - the backlog drains through idle gaps between reads, and in forced
//     bursts when it crosses the high watermark;
//   - when the buffer is full the issuing core stalls until a burst drains
//     (back-pressure) — so a write-saturated system is bounded by bank
//     write bandwidth, not by an infinitely deep buffer.
type writeQueue struct {
	depth     int
	highWater int
	backlog   []int // per-bank queued writes
	total     int
	writeLat  float64
}

// newWriteQueue creates a queue of the given depth over nBanks banks.
func newWriteQueue(depth, nBanks int, writeLat float64) *writeQueue {
	hw := depth * 3 / 4
	if hw < 1 {
		hw = 1
	}
	return &writeQueue{
		depth:     depth,
		highWater: hw,
		backlog:   make([]int, nBanks),
		writeLat:  writeLat,
	}
}

// push enqueues one posted write for a bank at time `now`, returning the
// back-pressure stall the issuing core suffers (0 when the buffer has
// room).
func (q *writeQueue) push(bank int, now float64, bankBusy []float64) (stall float64) {
	q.backlog[bank]++
	q.total++
	if q.total >= q.highWater {
		// Watermark burst: flush the fullest bank's backlog into its busy
		// time. Reads arriving at that bank will wait behind the burst —
		// the FR-FCFS forced write drain.
		fullest := 0
		for b, n := range q.backlog {
			if n > q.backlog[fullest] {
				fullest = b
			}
		}
		q.burst(fullest, now, bankBusy)
	}
	// Back-pressure: a core may run ahead of a bank by at most one full
	// queue of write service time. Outstanding time = committed busy time
	// plus the uncommitted backlog.
	outstanding := bankBusy[bank] - now + float64(q.backlog[bank])*q.writeLat
	if limit := float64(q.depth) * q.writeLat; outstanding > limit {
		stall = outstanding - limit
	}
	return stall
}

// burst converts a bank's backlog into bank busy time.
func (q *writeQueue) burst(bank int, now float64, bankBusy []float64) {
	n := q.backlog[bank]
	if n == 0 {
		return
	}
	start := bankBusy[bank]
	if start < now {
		start = now
	}
	bankBusy[bank] = start + float64(n)*q.writeLat
	q.backlog[bank] = 0
	q.total -= n
}

// idleDrain retires backlog that the bank could have serviced in the idle
// gap ending at `now` (reads preempt writes, so drains happen between
// reads). Called when a read finds the bank idle.
func (q *writeQueue) idleDrain(bank int, now float64, bankBusy []float64) {
	if q.backlog[bank] == 0 || bankBusy[bank] >= now {
		return
	}
	gap := now - bankBusy[bank]
	can := int(gap / q.writeLat)
	if can <= 0 {
		return
	}
	if can > q.backlog[bank] {
		can = q.backlog[bank]
	}
	q.backlog[bank] -= can
	q.total -= can
	bankBusy[bank] += float64(can) * q.writeLat
}
