package store

// Concurrent-access tests for the server workload: one process holding the
// store open for a long time while many goroutines (the serve run workers)
// read and write at once, and many processes-worth of Open calls racing
// for the lockfile.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersNoQuarantineFalsePositives: goroutines hammering Get
// on a fixed key set while writers keep adding entries must never observe a
// missing or corrupt value for a key that was fully written — racing
// readers must not trip the quarantine path on healthy entries.
func TestConcurrentReadersNoQuarantineFalsePositives(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Logf = t.Logf

	const warm = 64
	payload := func(i int) []byte { return []byte(fmt.Sprintf("payload-%d", i)) }
	for i := 0; i < warm; i++ {
		if err := s.Put(fmt.Sprintf("warm-%d", i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var misses atomic.Int64
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for i := 0; i < warm; i++ {
					b, ok := s.Get(fmt.Sprintf("warm-%d", i))
					if !ok {
						misses.Add(1)
						continue
					}
					if string(b) != string(payload(i)) {
						t.Errorf("warm-%d read %q, want %q", i, b, payload(i))
					}
				}
			}
		}()
	}
	// Writers churn fresh keys (including same-key rewrites) while the
	// readers run: write-atomicity means readers of warm keys never care.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("churn-%d-%d", w, i%10)
				if err := s.Put(key, payload(i)); err != nil {
					t.Errorf("churn put: %v", err)
				}
				s.Get(key)
			}
		}(w)
	}
	wg.Wait()

	if n := misses.Load(); n != 0 {
		t.Errorf("%d reads of fully-written entries missed", n)
	}
	if q := s.Stats().Quarantined; q != 0 {
		t.Errorf("%d healthy entries quarantined under concurrent access", q)
	}
}

// TestConcurrentOpenSingleWinner: N racing Opens of one directory admit
// exactly one holder (the link(2) lockfile is the arbiter); after the
// winner closes, the lock is free again for the next claimant.
func TestConcurrentOpenSingleWinner(t *testing.T) {
	dir := t.TempDir()
	const racers = 8
	stores := make([]*Store, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stores[i], errs[i] = Open(dir)
		}(i)
	}
	wg.Wait()

	var winner *Store
	won := 0
	for i := 0; i < racers; i++ {
		switch {
		case errs[i] == nil:
			won++
			winner = stores[i]
		default:
			var busy *BusyError
			if !errors.As(errs[i], &busy) {
				t.Errorf("loser %d got %v, want *BusyError", i, errs[i])
			}
		}
	}
	if won != 1 {
		t.Fatalf("%d racing Opens succeeded, want exactly 1", won)
	}
	if err := winner.Close(); err != nil {
		t.Fatal(err)
	}
	next, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after the winner closed: %v", err)
	}
	next.Close()
}

// TestBusyErrorWhileHeldThenReclaimAfterClose is the serve arbitration
// sequence end to end: while a long-lived holder (the first server) keeps
// the store open, every other Open fails busy — repeatedly, without ever
// stealing the lock — and the moment the holder closes, the next Open
// succeeds and reads the holder's entries.
func TestBusyErrorWhileHeldThenReclaimAfterClose(t *testing.T) {
	dir := t.TempDir()
	holder, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		_, err := Open(dir)
		var busy *BusyError
		if !errors.As(err, &busy) {
			t.Fatalf("attempt %d while held: err = %v, want *BusyError", attempt, err)
		}
	}
	if _, ok := holder.Get("k"); !ok {
		t.Fatal("holder lost its entry while rejecting claimants")
	}
	if err := holder.Close(); err != nil {
		t.Fatal(err)
	}
	successor, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after holder closed: %v", err)
	}
	defer successor.Close()
	if b, ok := successor.Get("k"); !ok || string(b) != "v" {
		t.Fatalf("successor read %q/%v, want the holder's entry", b, ok)
	}
}
