// Package store is a crash-safe, content-addressed result store: the disk
// cache behind checkpoint/resume of experiment sweeps.
//
// Every sweep job in this repository is a pure function of its cache key
// (module version salt, scale parameters, figure, job index, seed stream —
// see Scale.CacheDir in the root package), so a completed result can be
// persisted and trusted across process lifetimes. The store is built so
// that no crash — SIGKILL included — can ever make it lie:
//
//   - Entries are written to a temp file, fsynced, and atomically renamed
//     into place. A reader therefore observes an entry either completely
//     or not at all; a crash mid-write leaves only a temp file, which the
//     next Open sweeps away.
//   - Every entry carries a magic/version header, a payload length, and a
//     SHA-256 checksum. A torn, truncated, or bit-flipped entry fails
//     verification on load, is moved to the store's corrupt/ directory
//     with a logged warning, and reads as a miss — the caller recomputes.
//     Corruption is never trusted and never fatal.
//   - A per-store lockfile (atomic exclusive creation + stale-PID
//     detection) keeps
//     concurrent processes from sharing one store: a live holder makes
//     Open fail with *BusyError, a dead holder's lock is reclaimed.
//
// Keys are arbitrary strings; the store addresses entries by their SHA-256
// digest, so callers can use readable canonical key strings without
// worrying about filesystem-hostile characters.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

const (
	// magic identifies a store entry file; the trailing digit is the
	// on-disk format version (bump on any layout change).
	magic = "WLS1"

	// headerLen is magic (4) + payload length (8) + SHA-256 (32).
	headerLen = 4 + 8 + sha256.Size

	lockName    = "lock"
	objectsDir  = "objects"
	corruptDir  = "corrupt"
	tmpPrefix   = ".tmp-"
	lockRetries = 16
)

// BusyError reports a store whose lockfile is held by a live process.
type BusyError struct {
	Dir string
	PID int
}

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("store: %s is locked by running process %d", e.Dir, e.PID)
}

// Stats is a snapshot of a store's counters since Open.
type Stats struct {
	Hits        uint64 // Get calls that returned a verified entry
	Misses      uint64 // Get calls that found nothing usable (quarantines included)
	Quarantined uint64 // corrupt entries moved to corrupt/ during Get
	Puts        uint64 // entries durably written
}

// Store is an open result store. It is safe for concurrent use by multiple
// goroutines of one process; cross-process exclusion is enforced by the
// lockfile taken at Open.
type Store struct {
	dir string

	// Logf receives warnings (quarantined entries, reclaimed stale locks,
	// failed durability syscalls). Defaults to log.Printf; set to nil to
	// silence.
	Logf func(format string, args ...any)

	tmpSeq atomic.Uint64
	closed atomic.Bool

	hits, misses, quarantined, puts atomic.Uint64
}

// Open creates (if needed) and locks the store rooted at dir. It fails
// with *BusyError if another live process holds the store's lock; a lock
// left behind by a dead process is reclaimed. Leftover temp files from
// crashed writers are removed. Call Close to release the lock.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, corruptDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, Logf: log.Printf}
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	s.sweepTemps()
	return s, nil
}

// acquireLock takes the store's lockfile, reclaiming it when the recorded
// holder PID is dead or unreadable. The lock is created by linking a
// private PID file into place, so it becomes visible atomically *with* its
// content — a concurrent opener can never observe a half-written lock and
// mistake it for stale.
func (s *Store) acquireLock() error {
	path := filepath.Join(s.dir, lockName)
	tmp := fmt.Sprintf("%s.%d", path, os.Getpid())
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		return fmt.Errorf("store: writing lockfile: %w", err)
	}
	defer os.Remove(tmp)
	for attempt := 0; attempt < lockRetries; attempt++ {
		err := os.Link(tmp, path)
		if err == nil {
			return nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return fmt.Errorf("store: creating lockfile: %w", err)
		}
		pid, perr := readLockPID(path)
		if perr == nil && processAlive(pid) {
			return &BusyError{Dir: s.dir, PID: pid}
		}
		// Holder is dead (or the lock is garbage): reclaim and retry the
		// exclusive create — another process may legitimately win the race.
		s.logf("store: reclaiming stale lock %s (holder pid %d is gone)", path, pid)
		os.Remove(path)
	}
	return fmt.Errorf("store: could not acquire lock %s after %d attempts", path, lockRetries)
}

// readLockPID parses the holder PID out of a lockfile.
func readLockPID(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || pid <= 0 {
		return 0, fmt.Errorf("store: malformed lockfile %s: %q", path, data)
	}
	return pid, nil
}

// processAlive reports whether a process with the given PID exists
// (signal 0 probe; EPERM still means "exists").
func processAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, os.ErrPermission)
}

// sweepTemps removes temp files abandoned by crashed writers. Safe because
// the caller holds the lock: any temp file present now belongs to a dead
// process.
func (s *Store) sweepTemps() {
	dir := filepath.Join(s.dir, objectsDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			s.logf("store: removing abandoned temp file %s", e.Name())
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Close releases the store's lock. The Store must not be used afterwards.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return os.Remove(filepath.Join(s.dir, lockName))
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Quarantined: s.quarantined.Load(),
		Puts:        s.puts.Load(),
	}
}

// hashKey maps an arbitrary key string to its content address.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return fmt.Sprintf("%x", sum)
}

// entryPath returns the object path for a hashed key, fanned out over
// 256 prefix directories.
func (s *Store) entryPath(name string) string {
	return filepath.Join(s.dir, objectsDir, name[:2], name)
}

// Get returns the verified payload stored under key, or (nil, false) on a
// miss. An entry that fails verification — wrong magic or version, length
// mismatch, checksum mismatch — is quarantined to corrupt/ with a logged
// warning and reported as a miss; the caller recomputes, never trusts it.
func (s *Store) Get(key string) ([]byte, bool) {
	name := hashKey(key)
	path := s.entryPath(name)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, why := decodeEntry(data)
	if why != "" {
		s.quarantine(path, name, why)
		s.quarantined.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Has reports whether an entry exists under key, without reading or
// verifying it and without touching the hit/miss counters. It is a cheap
// stat(2) probe for staleness reports; a later Get may still miss if the
// entry turns out to be corrupt.
func (s *Store) Has(key string) bool {
	fi, err := os.Stat(s.entryPath(hashKey(key)))
	return err == nil && fi.Mode().IsRegular()
}

// decodeEntry verifies an entry file's header and checksum, returning the
// payload and an empty reason, or a non-empty human-readable reason why
// the entry cannot be trusted.
func decodeEntry(data []byte) (payload []byte, why string) {
	if len(data) == 0 {
		return nil, "zero-length file"
	}
	if len(data) < headerLen {
		return nil, fmt.Sprintf("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Sprintf("bad magic %q", data[:4])
	}
	length := binary.LittleEndian.Uint64(data[4:12])
	payload = data[headerLen:]
	if uint64(len(payload)) != length {
		return nil, fmt.Sprintf("length header %d but %d payload bytes", length, len(payload))
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[12:headerLen]) {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

// quarantine moves a corrupt entry into corrupt/, never deleting evidence:
// repeated corruption of one key gets numbered suffixes.
func (s *Store) quarantine(path, name, why string) {
	dst := filepath.Join(s.dir, corruptDir, name)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.dir, corruptDir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(path, dst); err != nil {
		// Last resort: a corrupt entry that cannot be moved must not be
		// read again as if valid.
		os.Remove(path)
		dst = "(removed)"
	}
	s.logf("store: quarantined corrupt entry %s (%s) -> %s; will recompute", name, why, dst)
}

// Put durably stores payload under key: write to a temp file, fsync,
// atomically rename into place, then fsync the parent directory. A crash
// at any point leaves either the complete entry or no entry.
func (s *Store) Put(key string, payload []byte) error {
	name := hashKey(key)
	dir := filepath.Dir(s.entryPath(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(s.dir, objectsDir,
		fmt.Sprintf("%s%d-%d", tmpPrefix, os.Getpid(), s.tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	header := make([]byte, headerLen)
	copy(header, magic)
	binary.LittleEndian.PutUint64(header[4:12], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(header[12:], sum[:])
	_, err = f.Write(header)
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.entryPath(name))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing entry: %w", err)
	}
	syncDir(dir)
	s.puts.Add(1)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Reset empties the store (objects and quarantine) while keeping the lock.
func (s *Store) Reset() error {
	for _, sub := range []string{objectsDir, corruptDir} {
		p := filepath.Join(s.dir, sub)
		if err := os.RemoveAll(p); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := os.MkdirAll(p, 0o755); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Clear locks the store at dir, empties it, and releases the lock — the
// implementation of wlsim's -cache-clear flag.
func Clear(dir string) error {
	s, err := Open(dir)
	if err != nil {
		return err
	}
	defer s.Close()
	return s.Reset()
}

// logf emits a warning through Logf if set.
func (s *Store) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}
