package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// open opens a store rooted in a fresh temp dir with logging routed to the
// test log.
func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = t.Logf
	t.Cleanup(func() { s.Close() })
	return s
}

// objectPath locates the single object file stored under key.
func objectPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	p := s.entryPath(hashKey(key))
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry for %q not on disk: %v", key, err)
	}
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	payload := []byte("fig3|job=7 -> 42.5")
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get("other"); ok {
		t.Fatal("hit for a key never stored")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Quarantined != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPutOverwritesAndEmptyPayload(t *testing.T) {
	s := open(t)
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
	// Zero-byte payloads are legal (length header 0, checksum of "").
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("empty"); !ok || len(got) != 0 {
		t.Fatalf("empty payload Get = %q, %v", got, ok)
	}
}

// corruptionCase mangles a stored entry file; every variant must read as a
// quarantined miss — recomputed, never trusted, never a panic.
func TestCorruptEntriesQuarantinedNotTrusted(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-mid-header", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(magic+"\x05"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-payload-byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-checksum-byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[12] ^= 0x01 // first checksum byte
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-length", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-magic", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			copy(data, "XXXX")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"length-mismatch", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[4] ^= 0xff // length header no longer matches payload size
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := open(t)
			if err := s.Put("k", []byte("precious result")); err != nil {
				t.Fatal(err)
			}
			path := objectPath(t, s, "k")
			c.mangle(t, path)
			if got, ok := s.Get("k"); ok {
				t.Fatalf("corrupt entry (%s) returned data %q", c.name, got)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("quarantined = %d, want 1", st.Quarantined)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt entry still at %s (err %v)", path, err)
			}
			quarantined, err := os.ReadDir(filepath.Join(s.dir, corruptDir))
			if err != nil || len(quarantined) != 1 {
				t.Fatalf("corrupt/ holds %d files (err %v), want the evidence", len(quarantined), err)
			}
			// The key recomputes cleanly afterwards.
			if err := s.Put("k", []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); !ok || string(got) != "recomputed" {
				t.Fatalf("recomputed Get = %q, %v", got, ok)
			}
		})
	}
}

func TestStaleLockFromDeadPIDReclaimed(t *testing.T) {
	dir := t.TempDir()
	// A PID that cannot be alive: beyond every Linux pid_max default and
	// long dead on any machine running this test.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("99999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("stale lock not reclaimed: %v", err)
	}
	defer s.Close()
	data, err := os.ReadFile(filepath.Join(dir, lockName))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != fmt.Sprint(os.Getpid()) {
		t.Fatalf("lockfile holds %q, want our pid", data)
	}
}

func TestMalformedLockReclaimed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("garbage lock not reclaimed: %v", err)
	}
	s.Close()
}

func TestLiveLockRejectsSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = Open(dir)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("second Open = %v, want *BusyError", err)
	}
	if busy.PID != os.Getpid() {
		t.Fatalf("BusyError pid %d, want %d", busy.PID, os.Getpid())
	}
	// Close releases the lock; a third Open succeeds.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestOpenSweepsAbandonedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A writer crashed mid-Put: only its temp file remains.
	tmp := filepath.Join(dir, objectsDir, tmpPrefix+"123-1")
	if err := os.WriteFile(tmp, []byte("torn half-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("abandoned temp file survived Open (err %v)", err)
	}
}

func TestResetAndClear(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("entry survived Reset")
	}
	// Reset keeps the lock: a concurrent Open must still be rejected.
	if _, err := Open(dir); err == nil {
		t.Fatal("Reset released the lock")
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if err := Clear(dir); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("k"); ok {
		t.Fatal("entry survived Clear")
	}
}

func TestKeysAreContentAddressed(t *testing.T) {
	s := open(t)
	// Filesystem-hostile key strings must be safe.
	key := "v1|fig=../../etc/passwd|job=0\nsecond line"
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "x" {
		t.Fatalf("hostile key round trip = %q, %v", got, ok)
	}
	// Nothing escaped the store root.
	if _, err := os.Stat(filepath.Join(s.dir, "..", "etc")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("key escaped the store directory")
	}
}

func TestRepeatedCorruptionKeepsNumberedEvidence(t *testing.T) {
	s := open(t)
	for round := 0; round < 3; round++ {
		if err := s.Put("k", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		path := objectPath(t, s, "k")
		if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("k"); ok {
			t.Fatal("corrupt read trusted")
		}
	}
	quarantined, err := os.ReadDir(filepath.Join(s.dir, corruptDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 3 {
		t.Fatalf("%d quarantine files, want 3 (numbered suffixes)", len(quarantined))
	}
}
