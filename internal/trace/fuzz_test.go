package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader checks that arbitrary byte streams never panic the binary
// decoder and that whatever decodes also re-encodes byte-identically.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var decoded []Request
		for {
			req, err := r.Next()
			if err != nil {
				break
			}
			decoded = append(decoded, req)
		}
		// Round-trip what decoded.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, req := range decoded {
			if err := w.Write(req); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		if len(decoded) > 0 && !bytes.Equal(buf.Bytes(), data[:len(decoded)*recordSize]) {
			t.Fatalf("re-encode mismatch for %d records", len(decoded))
		}
	})
}

// FuzzParseText checks the text parser never panics and that accepted
// input round-trips through WriteText/ParseText.
func FuzzParseText(f *testing.F) {
	f.Add("W 0x10\nR 32\n")
	f.Add("# comment\n\nw 1\n")
	f.Add("X 5\n")
	f.Add("W\n")
	f.Fuzz(func(t *testing.T, input string) {
		reqs, err := ParseText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, reqs); err != nil {
			t.Fatal(err)
		}
		again, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip lost records: %d -> %d", len(reqs), len(again))
		}
		for i := range reqs {
			if reqs[i] != again[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, reqs[i], again[i])
			}
		}
	})
}
