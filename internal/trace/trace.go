// Package trace defines the memory-request representation shared by the
// workload generators, the wear-leveling schemes and the simulators, plus
// binary/text codecs so traces can be captured to disk by cmd/tracegen and
// replayed later.
//
// A request addresses one memory line (the last-level-cache-line-sized
// atomic access unit of Sec 2.1). Streams of requests are what the paper
// calls "memory requests" arriving at the memory controller.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Op is a request type.
type Op uint8

const (
	// Read is a load of one line.
	Read Op = iota
	// Write is a store of one line.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is a single line-granular memory access. Addr is a logical line
// address (lma).
type Request struct {
	Op   Op
	Addr uint64
}

// Stream produces an unbounded request sequence. Workload generators
// implement Stream; the measurement engines pull from it until their stop
// condition (device failure, request budget) is met.
type Stream interface {
	Next() Request
}

// StreamFunc adapts a function to the Stream interface.
type StreamFunc func() Request

// Next implements Stream.
func (f StreamFunc) Next() Request { return f() }

// BatchStream is a Stream that can fill whole request batches at once,
// avoiding one interface dispatch (and one Request copy) per request on the
// lifetime hot path. NextBatch fills ops and addrs — two parallel slices of
// equal length — with the stream's next len(ops) requests and returns the
// count filled (always len(ops) for the unbounded generator streams).
//
// The sequence of requests produced must be exactly the sequence Next would
// produce: NextBatch is a vectorization, not a different stream.
type BatchStream interface {
	Stream
	NextBatch(ops []Op, addrs []uint64) int
}

// FillBatch fills ops/addrs (equal lengths) from s, using the stream's
// vectorized path when it has one and falling back to per-request Next
// calls otherwise. It returns the number of requests filled.
func FillBatch(s Stream, ops []Op, addrs []uint64) int {
	if bs, ok := s.(BatchStream); ok {
		return bs.NextBatch(ops, addrs)
	}
	for i := range ops {
		r := s.Next()
		ops[i] = r.Op
		addrs[i] = r.Addr
	}
	return len(ops)
}

// Limit wraps a Stream as a bounded Reader yielding at most n requests.
func Limit(s Stream, n uint64) *LimitedReader {
	return &LimitedReader{s: s, remaining: n}
}

// LimitedReader is a bounded view over a Stream.
type LimitedReader struct {
	s         Stream
	remaining uint64
}

// Next returns the next request, or io.EOF once exhausted.
func (l *LimitedReader) Next() (Request, error) {
	if l.remaining == 0 {
		return Request{}, io.EOF
	}
	l.remaining--
	return l.s.Next(), nil
}

// recordSize is the on-disk size of one binary record: op byte + 8-byte
// little-endian address.
const recordSize = 9

// Writer encodes requests to an io.Writer in the binary trace format.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   uint64
}

// NewWriter creates a trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one request.
func (tw *Writer) Write(r Request) error {
	tw.buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(tw.buf[1:], r.Addr)
	if _, err := tw.w.Write(tw.buf[:]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of requests written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush flushes buffered records.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes the binary trace format.
type Reader struct {
	r   *bufio.Reader
	buf [recordSize]byte
}

// NewReader creates a trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next request; io.EOF at end of trace.
func (tr *Reader) Next() (Request, error) {
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Request{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Request{}, err
	}
	op := Op(tr.buf[0])
	if op != Read && op != Write {
		return Request{}, fmt.Errorf("trace: invalid op byte %d", tr.buf[0])
	}
	return Request{Op: op, Addr: binary.LittleEndian.Uint64(tr.buf[1:])}, nil
}

// WriteText encodes requests in the human-readable "W 0x1a2b" format, one
// per line.
func WriteText(w io.Writer, rs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range rs {
		if _, err := fmt.Fprintf(bw, "%s %#x\n", r.Op, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseText decodes the text format produced by WriteText.
func ParseText(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var opStr string
		var addr uint64
		if _, err := fmt.Sscanf(line, "%s %v", &opStr, &addr); err != nil {
			return nil, fmt.Errorf("trace: line %d: %q: %w", lineNo, line, err)
		}
		var op Op
		switch opStr {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, opStr)
		}
		out = append(out, Request{Op: op, Addr: addr})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarizes a request sequence.
type Stats struct {
	Requests uint64
	Writes   uint64
	Reads    uint64
	MinAddr  uint64
	MaxAddr  uint64
	// UniqueApprox counts distinct addresses exactly up to uniqueCap and
	// saturates afterwards (a full map over a 64 GB trace is not viable).
	UniqueApprox uint64
	Saturated    bool
}

const uniqueCap = 1 << 22

// Collect consumes up to n requests from a stream and summarizes them.
func Collect(s Stream, n uint64) Stats {
	st := Stats{MinAddr: ^uint64(0)}
	seen := make(map[uint64]struct{})
	for i := uint64(0); i < n; i++ {
		r := s.Next()
		st.Requests++
		if r.Op == Write {
			st.Writes++
		} else {
			st.Reads++
		}
		if r.Addr < st.MinAddr {
			st.MinAddr = r.Addr
		}
		if r.Addr > st.MaxAddr {
			st.MaxAddr = r.Addr
		}
		if !st.Saturated {
			seen[r.Addr] = struct{}{}
			if len(seen) >= uniqueCap {
				st.Saturated = true
			}
		}
	}
	st.UniqueApprox = uint64(len(seen))
	if st.Requests == 0 {
		st.MinAddr = 0
	}
	return st
}

// WriteRatio returns the fraction of writes.
func (s Stats) WriteRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Requests)
}

// ReadAll decodes an entire binary trace.
func ReadAll(r io.Reader) ([]Request, error) {
	tr := NewReader(r)
	var out []Request
	for {
		req, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
}

// Loop adapts a finite request slice into an unbounded Stream by cycling
// through it — how captured traces replay into lifetime experiments, which
// need more requests than any finite trace holds.
type Loop struct {
	reqs []Request
	next int
}

// NewLoop creates a looping stream. The slice must be nonempty.
func NewLoop(reqs []Request) *Loop {
	if len(reqs) == 0 {
		panic("trace: empty loop")
	}
	return &Loop{reqs: reqs}
}

// Next implements Stream.
func (l *Loop) Next() Request {
	r := l.reqs[l.next]
	l.next++
	if l.next == len(l.reqs) {
		l.next = 0
	}
	return r
}

// NextBatch implements BatchStream by copying from the cycle.
func (l *Loop) NextBatch(ops []Op, addrs []uint64) int {
	for i := range ops {
		r := l.reqs[l.next]
		l.next++
		if l.next == len(l.reqs) {
			l.next = 0
		}
		ops[i] = r.Op
		addrs[i] = r.Addr
	}
	return len(ops)
}

// Len returns the underlying trace length.
func (l *Loop) Len() int { return len(l.reqs) }
