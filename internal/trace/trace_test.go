package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("op strings")
	}
	if Op(9).String() != "Op(9)" {
		t.Fatalf("bad op string: %s", Op(9))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	reqs := []Request{
		{Read, 0}, {Write, 1}, {Write, 0xdeadbeefcafe}, {Read, ^uint64(0)},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(reqs)) {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range reqs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	err := quick.Check(func(addrs []uint64, ops []bool) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var reqs []Request
		for i, a := range addrs {
			op := Read
			if i < len(ops) && ops[i] {
				op = Write
			}
			req := Request{Op: op, Addr: a}
			reqs = append(reqs, req)
			if err := w.Write(req); err != nil {
				return false
			}
		}
		w.Flush()
		r := NewReader(&buf)
		for _, want := range reqs {
			got, err := r.Next()
			if err != nil || got != want {
				return false
			}
		}
		_, err := r.Next()
		return err == io.EOF
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsTruncatedAndInvalid(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
	bad := make([]byte, 9)
	bad[0] = 77
	r = NewReader(bytes.NewReader(bad))
	if _, err := r.Next(); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	reqs := []Request{{Write, 16}, {Read, 0xff}}
	var buf bytes.Buffer
	if err := WriteText(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != reqs[0] || got[1] != reqs[1] {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestParseTextSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nW 0x10\n  r 32 \n"
	got, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (Request{Write, 16}) || got[1] != (Request{Read, 32}) {
		t.Fatalf("parsed: %+v", got)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, in := range []string{"X 12\n", "W\n", "W zzz\n"} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestLimit(t *testing.T) {
	n := uint64(0)
	s := StreamFunc(func() Request {
		n++
		return Request{Write, n}
	})
	l := Limit(s, 3)
	for i := 0; i < 3; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if n != 3 {
		t.Fatalf("stream pulled %d times", n)
	}
}

func TestCollect(t *testing.T) {
	i := uint64(0)
	s := StreamFunc(func() Request {
		i++
		op := Read
		if i%4 == 0 {
			op = Write
		}
		return Request{op, i % 10}
	})
	st := Collect(s, 100)
	if st.Requests != 100 || st.Writes != 25 || st.Reads != 75 {
		t.Fatalf("stats: %+v", st)
	}
	if st.UniqueApprox != 10 || st.MinAddr != 0 || st.MaxAddr != 9 {
		t.Fatalf("stats: %+v", st)
	}
	if wr := st.WriteRatio(); wr != 0.25 {
		t.Fatalf("write ratio %v", wr)
	}
	if (Stats{}).WriteRatio() != 0 {
		t.Fatal("empty write ratio")
	}
	if empty := Collect(s, 0); empty.MinAddr != 0 || empty.Requests != 0 {
		t.Fatalf("empty stats: %+v", empty)
	}
}

func TestReadAll(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Request{{Write, 1}, {Read, 2}, {Write, 3}}
	for _, r := range want {
		w.Write(r)
	}
	w.Flush()
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Fatalf("ReadAll: %v %v", got, err)
	}
}

func TestLoopCycles(t *testing.T) {
	l := NewLoop([]Request{{Write, 1}, {Read, 2}})
	if l.Len() != 2 {
		t.Fatal("len")
	}
	seq := []uint64{1, 2, 1, 2, 1}
	for i, want := range seq {
		if got := l.Next().Addr; got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestLoopPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLoop(nil)
}
