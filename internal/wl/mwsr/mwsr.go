// Package mwsr implements MWSR, multi-way wear leveling [Yu & Du, IEEE TC
// 2014], the paper's second hybrid wear-leveling baseline (Sec 2.1, Fig 2b).
//
// Like PCM-S, MWSR maps logical regions to physical regions with a
// per-region XOR key. The difference is how an exchange proceeds: instead
// of a blocking 2Q-line swap, MWSR migrates a region pair incrementally —
// one line pair per ψ/2 subsequent demand writes — keeping both the
// previous-round and current-round mappings live until migration finishes.
// That is why its table stores two physical addresses, two offsets and a
// write counter per region (the storage-overhead point of Sec 2.2, item 4),
// and why the paper reports lifetimes similar to PCM-S with different
// performance behaviour.
//
// A migrating pair (regions r and s, old physical frames P1 and P2, offset
// delta d) swaps physical lines (P1, u) <-> (P2, u^d) in increasing u. A
// line of r at old offset u has moved iff u < progress; a line of s at old
// offset v has moved iff v^d < progress. Choosing both regions' new keys as
// oldKey^d makes the final state a plain XOR mapping again.
package mwsr

import (
	"nvmwear/internal/addr"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes MWSR.
type Config struct {
	Lines       uint64 // logical lines (power of two)
	RegionLines uint64 // Q (power of two)
	Period      uint64 // ψ: a region starts a migration per ψ*Q writes
	Seed        uint64
}

// entry is one region's settled mapping.
type entry struct {
	prn uint32
	key uint32
}

// migration is an in-flight region-pair exchange.
type migration struct {
	r, s     uint64 // logical regions (r == s means self re-key)
	p1, p2   uint64 // their old physical frames
	d        uint64 // offset delta; new keys are oldKey ^ d
	keyR     uint64 // r's old key
	keyS     uint64 // s's old key
	progress uint64 // pairs swapped so far (sweeps u = 0..Q-1)
	writeCtr uint64 // demand writes since last step
}

// Scheme is an MWSR instance bound to a device.
type Scheme struct {
	cfg     Config
	dev     *nvm.Device
	q       uint64
	regions uint64
	trigger uint64
	advance uint64 // demand writes per migration step

	table   []entry
	counter []uint32
	migOf   []int32 // region -> index into migs, or -1
	migs    []*migration
	free    []int
	src     *rng.Source

	stats wl.Stats
}

// New creates the scheme over dev.
func New(dev *nvm.Device, cfg Config) *Scheme {
	if !addr.IsPow2(cfg.Lines) || !addr.IsPow2(cfg.RegionLines) {
		panic("mwsr: Lines and RegionLines must be powers of two")
	}
	if cfg.RegionLines > cfg.Lines {
		panic("mwsr: region larger than memory")
	}
	if cfg.Period == 0 {
		panic("mwsr: zero period")
	}
	if dev.Lines() < cfg.Lines {
		panic("mwsr: device smaller than logical space")
	}
	regions := cfg.Lines / cfg.RegionLines
	adv := cfg.Period / 2
	if adv == 0 {
		adv = 1
	}
	s := &Scheme{
		cfg:     cfg,
		dev:     dev,
		q:       cfg.RegionLines,
		regions: regions,
		trigger: cfg.Period * cfg.RegionLines,
		advance: adv,
		table:   make([]entry, regions),
		counter: make([]uint32, regions),
		migOf:   make([]int32, regions),
		src:     rng.New(cfg.Seed ^ 0x3b9d3b9d3b9d3b9d),
	}
	for i := uint64(0); i < regions; i++ {
		s.table[i].prn = uint32(i)
		s.migOf[i] = -1
	}
	return s
}

// Translate implements wl.Leveler.
func (s *Scheme) Translate(lma uint64) uint64 {
	lrn := lma / s.q
	lao := lma & (s.q - 1)
	if mi := s.migOf[lrn]; mi >= 0 {
		m := s.migs[mi]
		if lrn == m.r {
			u := lao ^ m.keyR
			if u < m.progress || (m.r == m.s && u^m.d < m.progress) {
				return m.p2*s.q + (u ^ m.d)
			}
			return m.p1*s.q + u
		}
		v := lao ^ m.keyS
		if v^m.d < m.progress {
			return m.p1*s.q + (v ^ m.d)
		}
		return m.p2*s.q + v
	}
	e := s.table[lrn]
	return uint64(e.prn)*s.q + (lao ^ uint64(e.key))
}

// Access implements wl.Leveler.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	pma := s.Translate(lma)
	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
		return pma
	}
	s.stats.DataWrites++
	s.dev.Write(pma)

	lrn := lma / s.q
	if mi := s.migOf[lrn]; mi >= 0 {
		m := s.migs[mi]
		m.writeCtr++
		if m.writeCtr >= s.advance {
			m.writeCtr = 0
			s.step(int(mi))
		}
	}
	s.counter[lrn]++
	if uint64(s.counter[lrn]) >= s.trigger {
		if s.migOf[lrn] >= 0 {
			// A round cannot start while the region is still migrating;
			// hold the counter at the threshold and retry next write.
			s.counter[lrn] = uint32(s.trigger - 1)
		} else {
			s.counter[lrn] = 0
			s.begin(lrn)
		}
	}
	return pma
}

// AccessBatch implements wl.BatchLeveler. A settled region's mapping only
// changes when its own counter triggers a migration, so runs of identical
// writes fold into one nvm.WriteRun bounded by the trigger distance. While
// the written region is migrating its mapping can shift on any write (each
// step moves one line pair), so those writes take the scalar path
// unchanged.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		c := uint64(j - i)
		if op == trace.Read {
			issued := s.dev.ReadRun(s.Translate(lma), c)
			s.stats.DataReads += issued
			i += int(issued)
			continue
		}
		lrn := lma / s.q
		if s.migOf[lrn] >= 0 {
			s.Access(op, lma)
			i++
			continue
		}
		if d := s.trigger - uint64(s.counter[lrn]); d < c {
			c = d
		}
		served := s.dev.WriteRun(s.Translate(lma), c)
		applied := c
		if served < c {
			applied = served + 1 // the killing write's bookkeeping still runs
		}
		s.stats.DataWrites += applied
		s.counter[lrn] += uint32(applied)
		if uint64(s.counter[lrn]) >= s.trigger {
			// The region is settled (checked above), so the round starts
			// unless begin defers on a migrating partner — same as scalar.
			s.counter[lrn] = 0
			s.begin(lrn)
		}
		i += int(applied)
	}
	return n
}

// Advance implements wl.BatchLeveler: epochs sized from the migration step
// interval ψ/2 (the finest-grained state change).
func (s *Scheme) Advance(k int) int { return wl.ClampEpoch(s.advance, k) }

// begin starts a migration for region r with a random partner. If the
// chosen partner is already migrating the trigger is deferred by one write.
func (s *Scheme) begin(r uint64) {
	partner := s.src.Uint64n(s.regions)
	if s.migOf[partner] >= 0 {
		// Defer: re-arm the counter so the next write retries.
		s.counter[r] = uint32(s.trigger - 1)
		return
	}
	s.stats.Remaps++
	d := uint64(0)
	for d == 0 && s.q > 1 {
		d = s.src.Uint64n(s.q)
	}
	m := &migration{
		r: r, s: partner,
		p1: uint64(s.table[r].prn), p2: uint64(s.table[partner].prn),
		d:    d,
		keyR: uint64(s.table[r].key), keyS: uint64(s.table[partner].key),
	}
	var mi int
	if len(s.free) > 0 {
		mi = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.migs[mi] = m
	} else {
		mi = len(s.migs)
		s.migs = append(s.migs, m)
	}
	s.migOf[r] = int32(mi)
	s.migOf[partner] = int32(mi)
	if s.q == 1 && d == 0 && r == partner {
		// Degenerate single-line region self-pick: nothing to do.
		s.finish(mi)
	}
}

// step performs one migration step: swap one physical line pair.
func (s *Scheme) step(mi int) {
	m := s.migs[mi]
	u := m.progress
	if m.r == m.s {
		// Self re-key: pairs (u, u^d) inside one frame; skip the second
		// visit of each pair.
		if u^m.d > u {
			a := m.p1*s.q + u
			b := m.p1*s.q + (u ^ m.d)
			tmp := s.dev.ReadData(a)
			s.dev.MoveData(a, b)
			s.dev.WriteData(b, tmp)
			s.stats.SwapWrites += 2
		}
	} else {
		a := m.p1*s.q + u
		b := m.p2*s.q + (u ^ m.d)
		tmp := s.dev.ReadData(a)
		s.dev.MoveData(a, b)
		s.dev.WriteData(b, tmp)
		s.stats.SwapWrites += 2
	}
	m.progress++
	if m.progress == s.q {
		s.finish(mi)
	}
}

// finish commits the migration into the settled table.
func (s *Scheme) finish(mi int) {
	m := s.migs[mi]
	if m.r == m.s {
		s.table[m.r].key = uint32(m.keyR ^ m.d)
	} else {
		s.table[m.r] = entry{prn: uint32(m.p2), key: uint32(m.keyR ^ m.d)}
		s.table[m.s] = entry{prn: uint32(m.p1), key: uint32(m.keyS ^ m.d)}
	}
	s.migOf[m.r] = -1
	s.migOf[m.s] = -1
	s.migs[mi] = nil
	s.free = append(s.free, mi)
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string { return "MWSR" }

// Stats implements wl.Leveler.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Regions returns the number of wear-leveling regions.
func (s *Scheme) Regions() uint64 { return s.regions }

// OverheadBits implements wl.Leveler: two physical addresses, two offsets
// and a write counter per region (Sec 2.2 item 4).
func (s *Scheme) OverheadBits() uint64 {
	rBits := uint64(addr.Log2(s.regions)) + 1
	qBits := uint64(addr.Log2(s.q)) + 1
	const counterBits = 24
	return s.regions * (2*rBits + 2*qBits + counterBits)
}

// Partitions implements wl.Partitionable: the mapping is region-granular,
// so a device slice aligned to region boundaries is a closed address space.
func (s *Scheme) Partitions() uint64 { return s.regions }

// PartitionExact implements wl.Partitionable: like PCM-S, exchange partners
// are drawn over the whole instance's regions, so per-bank instances confine
// the draw to their own bank — the bank-local modeling variant (DESIGN.md
// §15), not an exact decomposition.
func (s *Scheme) PartitionExact() bool { return false }

// EntryBits returns the on-chip bits of one mapping entry (without the
// counter) — used by the Fig 5 cache-budget experiment.
func EntryBits(regions, regionLines uint64) uint64 {
	rBits := uint64(addr.Log2(regions)) + 1
	qBits := uint64(addr.Log2(regionLines)) + 1
	return 2*rBits + 2*qBits
}
