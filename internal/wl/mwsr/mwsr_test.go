package mwsr

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

func newScheme(lines, q, period, seed uint64) (*nvm.Device, *Scheme) {
	dev := wltest.Device(lines, 0)
	return dev, New(dev, Config{Lines: lines, RegionLines: q, Period: period, Seed: seed})
}

func TestInitialIdentity(t *testing.T) {
	_, s := newScheme(256, 8, 8, 1)
	for lma := uint64(0); lma < 256; lma++ {
		if s.Translate(lma) != lma {
			t.Fatalf("initial mapping not identity at %d", lma)
		}
	}
	if s.Regions() != 32 {
		t.Fatalf("regions = %d", s.Regions())
	}
}

func TestBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(512, 8, 2, 3)
	wltest.Exercise(t, dev, s, 30000, 4)
}

func TestBijectionHeldMidMigration(t *testing.T) {
	// Force a migration and check the bijection after every single write
	// while it is in flight.
	dev, s := newScheme(128, 16, 2, 5)
	wltest.Fill(dev, s)
	for i := 0; i < 33; i++ { // hit the 2*16 = 32-write trigger
		s.Access(trace.Write, 3)
	}
	for i := 0; i < 200; i++ {
		s.Access(trace.Write, uint64(i)%32)
		wltest.CheckBijection(t, dev, s)
	}
	wltest.CheckIntegrity(t, dev, s)
}

func TestMigrationCompletes(t *testing.T) {
	dev, s := newScheme(128, 16, 2, 7)
	wltest.Fill(dev, s)
	for i := 0; i < 5000; i++ {
		s.Access(trace.Write, uint64(i)%128)
	}
	active := 0
	for _, m := range s.migs {
		if m != nil {
			active++
		}
	}
	// Steady state: most migrations must retire (free list reused).
	if active > 4 {
		t.Fatalf("%d migrations stuck in flight", active)
	}
	if s.Stats().Remaps == 0 {
		t.Fatal("no migrations started")
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestWriteOverheadIsTwoOverPeriod(t *testing.T) {
	dev, s := newScheme(4096, 16, 8, 9)
	wltest.Fill(dev, s)
	for i := uint64(0); i < 400000; i++ {
		s.Access(trace.Write, i%4096)
	}
	oh := s.Stats().WriteOverhead()
	if oh < 0.17 || oh > 0.30 {
		t.Fatalf("overhead %.4f, want ~2/8", oh)
	}
	_ = dev
}

func TestRAADisperses(t *testing.T) {
	dev, s := newScheme(1024, 4, 2, 11)
	wltest.Fill(dev, s)
	homes := make(map[uint64]bool)
	for i := 0; i < 40000; i++ {
		s.Access(trace.Write, 17)
		homes[s.Translate(17)/4] = true
	}
	if len(homes) < 80 {
		t.Fatalf("attacked line visited only %d physical regions", len(homes))
	}
}

func TestSingleLineRegions(t *testing.T) {
	// Degenerate Q=1: migrations still work (pure region permutation).
	dev, s := newScheme(64, 1, 4, 13)
	wltest.Exercise(t, dev, s, 5000, 14)
}

func TestOverheadBitsExceedPCMSLayout(t *testing.T) {
	_, s := newScheme(256, 8, 8, 15)
	// MWSR stores double mappings: must exceed a single-mapping layout.
	single := uint64(32) * (6 + 4 + 24)
	if s.OverheadBits() <= single {
		t.Fatalf("MWSR overhead %d not larger than single-mapping %d", s.OverheadBits(), single)
	}
	if s.Name() != "MWSR" || s.Lines() != 256 {
		t.Fatal("metadata")
	}
	if EntryBits(1<<20, 4) == 0 {
		t.Fatal("EntryBits")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := wltest.Device(64, 0)
	for _, cfg := range []Config{
		{Lines: 63, RegionLines: 4, Period: 8},
		{Lines: 64, RegionLines: 3, Period: 8},
		{Lines: 64, RegionLines: 128, Period: 8},
		{Lines: 64, RegionLines: 4, Period: 0},
		{Lines: 256, RegionLines: 4, Period: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}
