package mwsr

// Property-based verification of the incremental-migration translation
// math: for every combination of keys, delta and progress, the mid-flight
// mapping of a migrating region pair must be a bijection between the two
// physical frames.

import (
	"testing"
	"testing/quick"
)

func TestMidMigrationMappingIsBijection(t *testing.T) {
	const q = 64
	err := quick.Check(func(keyR, keyS, dRaw uint8, progress uint8) bool {
		m := &migration{
			r: 0, s: 1,
			p1: 0, p2: 1,
			d:        uint64(dRaw%(q-1)) + 1, // nonzero delta
			keyR:     uint64(keyR % q),
			keyS:     uint64(keyS % q),
			progress: uint64(progress) % (q + 1),
		}
		// Emulate Translate's migration branch for both regions.
		seen := make(map[uint64]bool, 2*q)
		for lao := uint64(0); lao < q; lao++ {
			u := lao ^ m.keyR
			var pma uint64
			if u < m.progress {
				pma = m.p2*q + (u ^ m.d)
			} else {
				pma = m.p1*q + u
			}
			if seen[pma] {
				return false
			}
			seen[pma] = true
		}
		for lao := uint64(0); lao < q; lao++ {
			v := lao ^ m.keyS
			var pma uint64
			if v^m.d < m.progress {
				pma = m.p1*q + (v ^ m.d)
			} else {
				pma = m.p2*q + v
			}
			if seen[pma] {
				return false
			}
			seen[pma] = true
		}
		return len(seen) == 2*q
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfMigrationMappingIsBijection(t *testing.T) {
	const q = 64
	err := quick.Check(func(key, dRaw, progress uint8) bool {
		d := uint64(dRaw%(q-1)) + 1
		k := uint64(key % q)
		p := uint64(progress) % (q + 1)
		seen := make(map[uint64]bool, q)
		for lao := uint64(0); lao < q; lao++ {
			u := lao ^ k
			var pma uint64
			if u < p || u^d < p {
				pma = u ^ d
			} else {
				pma = u
			}
			if pma >= q || seen[pma] {
				return false
			}
			seen[pma] = true
		}
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMigrationFinishMatchesXORMapping: after a migration completes, the
// settled table entry must equal the mid-flight mapping at full progress.
func TestMigrationFinishMatchesXORMapping(t *testing.T) {
	err := quick.Check(func(keyR, keyS, dRaw uint8) bool {
		const q = 32
		d := uint64(dRaw%(q-1)) + 1
		kr := uint64(keyR % q)
		ks := uint64(keyS % q)
		// Mid-flight at progress == q (everything migrated).
		for lao := uint64(0); lao < q; lao++ {
			u := lao ^ kr
			mid := uint64(1)*q + (u ^ d) // p2 frame
			settled := uint64(1)*q + (lao ^ (kr ^ d))
			if mid != settled {
				return false
			}
		}
		for lao := uint64(0); lao < q; lao++ {
			v := lao ^ ks
			mid := uint64(0)*q + (v ^ d) // p1 frame
			settled := uint64(0)*q + (lao ^ (ks ^ d))
			if mid != settled {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}
