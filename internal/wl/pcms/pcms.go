// Package pcms implements PCM-S [Seznec, WEST'10], the paper's
// representative hybrid wear-leveling (HWL) scheme (Sec 2.1, Fig 2a).
//
// Memory is split into regions of Q lines. An on-chip table maps each
// logical region number (lrn) to a physical region number (prn) and an
// intra-region XOR key; a line's physical address is
//
//	pma = prn*Q + (lao ^ key)
//
// When a region accumulates Period*Q demand writes, it exchanges places
// with a uniformly random region and both receive fresh random keys: the
// 2Q-line exchange costs 2Q device writes, i.e. a 2/Period write overhead —
// the percentages annotated in the paper's Fig 4. Random whole-memory
// exchange is what lets hybrid schemes disperse even a repeated-address
// attack across the entire device.
package pcms

import (
	"nvmwear/internal/addr"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes PCM-S.
type Config struct {
	Lines       uint64 // logical lines (power of two)
	RegionLines uint64 // Q, lines per region (power of two)
	Period      uint64 // swapping period ψ: region swap per ψ*Q writes to it
	Seed        uint64
}

// entry is one region mapping.
type entry struct {
	prn uint32
	key uint32
}

// Scheme is a PCM-S instance bound to a device.
type Scheme struct {
	cfg     Config
	dev     *nvm.Device
	q       uint64
	regions uint64
	trigger uint64

	table   []entry
	counter []uint32
	src     *rng.Source
	bufA    []uint64
	bufB    []uint64

	stats wl.Stats
}

// New creates the scheme over dev.
func New(dev *nvm.Device, cfg Config) *Scheme {
	if !addr.IsPow2(cfg.Lines) || !addr.IsPow2(cfg.RegionLines) {
		panic("pcms: Lines and RegionLines must be powers of two")
	}
	if cfg.RegionLines > cfg.Lines {
		panic("pcms: region larger than memory")
	}
	if cfg.Period == 0 {
		panic("pcms: zero period")
	}
	if dev.Lines() < cfg.Lines {
		panic("pcms: device smaller than logical space")
	}
	regions := cfg.Lines / cfg.RegionLines
	s := &Scheme{
		cfg:     cfg,
		dev:     dev,
		q:       cfg.RegionLines,
		regions: regions,
		trigger: cfg.Period * cfg.RegionLines,
		table:   make([]entry, regions),
		counter: make([]uint32, regions),
		src:     rng.New(cfg.Seed ^ 0x9c3559c3559c355),
		bufA:    make([]uint64, cfg.RegionLines),
		bufB:    make([]uint64, cfg.RegionLines),
	}
	for i := uint64(0); i < regions; i++ {
		s.table[i].prn = uint32(i)
	}
	return s
}

// Translate implements wl.Leveler.
func (s *Scheme) Translate(lma uint64) uint64 {
	lrn := lma / s.q
	e := s.table[lrn]
	return uint64(e.prn)*s.q + ((lma & (s.q - 1)) ^ uint64(e.key))
}

// Access implements wl.Leveler.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	pma := s.Translate(lma)
	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
		return pma
	}
	s.stats.DataWrites++
	s.dev.Write(pma)
	lrn := lma / s.q
	s.counter[lrn]++
	if uint64(s.counter[lrn]) >= s.trigger {
		s.counter[lrn] = 0
		s.exchange(lrn)
	}
	return pma
}

// AccessBatch implements wl.BatchLeveler. A region's mapping only changes
// at an exchange, and mid-run no other region's exchange can fire (only
// writes to a region advance its counter), so a run of identical writes
// folds into one nvm.WriteRun bounded by the region's distance to its next
// exchange trigger.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		c := uint64(j - i)
		if op == trace.Read {
			issued := s.dev.ReadRun(s.Translate(lma), c)
			s.stats.DataReads += issued
			i += int(issued)
			continue
		}
		lrn := lma / s.q
		if d := s.trigger - uint64(s.counter[lrn]); d < c {
			c = d
		}
		served := s.dev.WriteRun(s.Translate(lma), c)
		applied := c
		if served < c {
			applied = served + 1 // the killing write's bookkeeping still runs
		}
		s.stats.DataWrites += applied
		s.counter[lrn] += uint32(applied)
		if uint64(s.counter[lrn]) >= s.trigger {
			s.counter[lrn] = 0
			s.exchange(lrn)
		}
		i += int(applied)
	}
	return n
}

// Advance implements wl.BatchLeveler: epochs sized from the per-region
// exchange interval ψ*Q.
func (s *Scheme) Advance(k int) int { return wl.ClampEpoch(s.trigger, k) }

// exchange swaps region r with a uniformly random region and re-keys both.
func (s *Scheme) exchange(r uint64) {
	s.stats.Remaps++
	partner := s.src.Uint64n(s.regions)
	newKeyR := uint32(s.src.Uint64n(s.q))
	er := &s.table[r]
	baseR := uint64(er.prn) * s.q

	if partner == r {
		// Self-exchange: re-key in place. Stage the region, rewrite per the
		// new key.
		for lao := uint64(0); lao < s.q; lao++ {
			s.bufA[lao] = s.dev.ReadData(baseR + (lao ^ uint64(er.key)))
		}
		er.key = newKeyR
		for lao := uint64(0); lao < s.q; lao++ {
			s.dev.WriteData(baseR+(lao^uint64(er.key)), s.bufA[lao])
			s.stats.SwapWrites++
		}
		return
	}

	ep := &s.table[partner]
	baseP := uint64(ep.prn) * s.q
	newKeyP := uint32(s.src.Uint64n(s.q))
	for lao := uint64(0); lao < s.q; lao++ {
		s.bufA[lao] = s.dev.ReadData(baseR + (lao ^ uint64(er.key)))
		s.bufB[lao] = s.dev.ReadData(baseP + (lao ^ uint64(ep.key)))
	}
	er.prn, ep.prn = ep.prn, er.prn
	er.key, ep.key = newKeyR, newKeyP
	for lao := uint64(0); lao < s.q; lao++ {
		s.dev.WriteData(baseP+(lao^uint64(er.key)), s.bufA[lao])
		s.dev.WriteData(baseR+(lao^uint64(ep.key)), s.bufB[lao])
		s.stats.SwapWrites += 2
	}
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string { return "PCM-S" }

// Stats implements wl.Leveler.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Regions returns the number of wear-leveling regions.
func (s *Scheme) Regions() uint64 { return s.regions }

// OverheadBits implements wl.Leveler: the scheme keeps (prn, key) per
// region on chip (Sec 2.2 point 4), plus the write counter.
func (s *Scheme) OverheadBits() uint64 {
	rBits := uint64(addr.Log2(s.regions)) + 1
	qBits := uint64(addr.Log2(s.q)) + 1
	const counterBits = 24
	return s.regions * (rBits + qBits + counterBits)
}

// Partitions implements wl.Partitionable: the mapping is region-granular,
// so a device slice aligned to region boundaries is a closed address space.
func (s *Scheme) Partitions() uint64 { return s.regions }

// PartitionExact implements wl.Partitionable: exchange partners are drawn
// uniformly over the whole instance's regions, so per-bank instances draw
// partners from their own bank's regions and their own seed substream — the
// bank-local modeling variant (DESIGN.md §15), not an exact decomposition.
func (s *Scheme) PartitionExact() bool { return false }

// EntryBits returns the on-chip bits of one mapping entry (without the
// counter) — used by the Fig 5 cache-budget experiment.
func EntryBits(regions, regionLines uint64) uint64 {
	rBits := uint64(addr.Log2(regions)) + 1
	qBits := uint64(addr.Log2(regionLines)) + 1
	return rBits + qBits
}
