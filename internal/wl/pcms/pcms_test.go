package pcms

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

func newScheme(lines, q, period, seed uint64) (*nvm.Device, *Scheme) {
	dev := wltest.Device(lines, 0)
	return dev, New(dev, Config{Lines: lines, RegionLines: q, Period: period, Seed: seed})
}

func TestInitialIdentity(t *testing.T) {
	_, s := newScheme(256, 8, 8, 1)
	for lma := uint64(0); lma < 256; lma++ {
		if s.Translate(lma) != lma {
			t.Fatalf("initial mapping not identity at %d", lma)
		}
	}
	if s.Regions() != 32 {
		t.Fatalf("regions = %d", s.Regions())
	}
}

func TestBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(512, 8, 2, 3)
	wltest.Exercise(t, dev, s, 30000, 4)
}

func TestExchangeMovesRegionAcrossMemory(t *testing.T) {
	dev, s := newScheme(1024, 4, 1, 5)
	wltest.Fill(dev, s)
	homes := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		s.Access(trace.Write, 17)
		homes[s.Translate(17)/4] = true
	}
	// With uniform random partners the attacked line should visit a large
	// share of the 256 physical regions.
	if len(homes) < 100 {
		t.Fatalf("attacked line visited only %d physical regions", len(homes))
	}
}

func TestWriteOverheadIsTwoOverPeriod(t *testing.T) {
	dev, s := newScheme(4096, 16, 8, 7)
	wltest.Fill(dev, s)
	for i := uint64(0); i < 400000; i++ {
		s.Access(trace.Write, i%4096)
	}
	oh := s.Stats().WriteOverhead()
	if oh < 0.20 || oh > 0.30 {
		t.Fatalf("overhead %.4f, want ~2/8", oh)
	}
	_ = dev
}

func TestRAALifetimeFarBetterThanRBSG(t *testing.T) {
	const lines = 1024
	dev := nvm.New(nvm.Config{Lines: lines, SpareLines: lines / 16, Endurance: 200, TrackData: true})
	s := New(dev, Config{Lines: lines, RegionLines: 4, Period: 4, Seed: 9})
	var served uint64
	for dev.Alive() {
		s.Access(trace.Write, 7)
		served++
		if served > 10*dev.IdealWrites() {
			break
		}
	}
	norm := float64(dev.Stats().TotalWrites) / float64(dev.IdealWrites())
	// The random exchange disperses RAA writes across the device: expect a
	// large fraction of ideal lifetime (RBSG achieves ~1/Regions).
	if norm < 0.30 {
		t.Fatalf("PCM-S RAA lifetime only %.1f%% of ideal", 100*norm)
	}
}

func TestSelfExchangeRekeys(t *testing.T) {
	// With one region the partner is always self; trigger a few exchanges
	// and verify integrity plus a changed key.
	dev, s := newScheme(16, 16, 1, 11)
	wltest.Fill(dev, s)
	for i := 0; i < 100; i++ {
		s.Access(trace.Write, uint64(i)%16)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
	if s.Stats().Remaps == 0 {
		t.Fatal("no remaps triggered")
	}
}

func TestStatsAndOverhead(t *testing.T) {
	_, s := newScheme(256, 8, 8, 13)
	if s.OverheadBits() == 0 || s.Name() != "PCM-S" || s.Lines() != 256 {
		t.Fatal("metadata")
	}
	if EntryBits(1<<20, 4) == 0 {
		t.Fatal("EntryBits")
	}
	// MWSR-style double mapping must be bigger than PCM-S's single one.
	if EntryBits(1<<20, 4)*2 <= EntryBits(1<<20, 4) {
		t.Fatal("arithmetic sanity")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := wltest.Device(64, 0)
	for _, cfg := range []Config{
		{Lines: 63, RegionLines: 4, Period: 8},
		{Lines: 64, RegionLines: 3, Period: 8},
		{Lines: 64, RegionLines: 128, Period: 8},
		{Lines: 64, RegionLines: 4, Period: 0},
		{Lines: 256, RegionLines: 4, Period: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}
