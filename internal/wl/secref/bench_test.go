package secref

import (
	"testing"

	"nvmwear/internal/wl"
	"nvmwear/internal/wl/wltest"
)

func BenchmarkAccess(b *testing.B) {
	wltest.BenchAccess(b, func() wl.Leveler {
		dev := wltest.BenchDevice(1 << 14)
		return New(dev, Config{
			Lines: 1 << 14, Regions: 64,
			InnerPeriod: 8, OuterPeriod: 64, Seed: 1,
		})
	})
}
