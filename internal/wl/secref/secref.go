// Package secref implements Security Refresh [Seong+ ISCA'10], the paper's
// representative algebraic wear-leveling (AWL) scheme, in its single-level
// and two-level (TLSR) forms (Sec 2.1, Fig 1c).
//
// A Security Refresh instance gradually re-randomizes the mapping of a
// power-of-two space using two XOR keys: k0 from the previous round and k1
// from the current round. A refresh pointer rp sweeps the space; addresses
// the sweep has passed map through k1, the rest still map through k0:
//
//	refreshed(m) = m < rp || m^k0^k1 < rp
//	pa(m)        = m ^ (refreshed(m) ? k1 : k0)
//
// Each refresh step advances rp by one; if the address's partner under the
// key pair was not yet refreshed, the step swaps one physical line pair
// (two device writes — so a round over n lines costs n writes, i.e. a 1/ψ
// write overhead at swapping period ψ, matching the percentages the paper
// annotates in Fig 3). When rp completes the sweep, k0 <- k1 and a fresh
// random k1 starts the next round.
//
// TLSR composes two levels: an outer instance permutes subregions (moving
// whole subregions costs 2K writes per swap) and R inner instances permute
// lines within each logical subregion. The inner state travels with its
// logical subregion, so outer swaps preserve inner mappings.
package secref

import (
	"nvmwear/internal/addr"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes the scheme.
type Config struct {
	Lines   uint64 // logical lines (power of two)
	Regions uint64 // inner regions (power of two); 1 = single-level SR
	// InnerPeriod: demand writes to a region per inner refresh step.
	InnerPeriod uint64
	// OuterPeriod: one outer refresh step per OuterPeriod*K demand writes
	// to the whole memory (K = lines per region), giving the outer level a
	// 1/OuterPeriod write overhead. Ignored when Regions == 1.
	OuterPeriod uint64
	Seed        uint64
}

// sr is one Security Refresh instance over a space of n (power of two).
type sr struct {
	n      uint64
	k0, k1 uint64
	rp     uint64
	writes uint64
}

// translate maps an internal address through the instance.
func (s *sr) translate(m uint64) uint64 {
	d := s.k0 ^ s.k1
	if m < s.rp || m^d < s.rp {
		return m ^ s.k1
	}
	return m ^ s.k0
}

// Scheme is a (two-level) Security Refresh instance bound to a device.
type Scheme struct {
	cfg          Config
	dev          *nvm.Device
	k            uint64 // lines per region
	inner        []sr
	outer        sr
	outerCounter uint64
	outerTrigger uint64
	src          *rng.Source
	buf          []uint64 // staging for subregion swaps
	stats        wl.Stats
}

// New creates the scheme over dev. dev must have at least cfg.Lines lines.
func New(dev *nvm.Device, cfg Config) *Scheme {
	if !addr.IsPow2(cfg.Lines) || !addr.IsPow2(cfg.Regions) {
		panic("secref: Lines and Regions must be powers of two")
	}
	if cfg.Regions > cfg.Lines {
		panic("secref: more regions than lines")
	}
	if cfg.InnerPeriod == 0 {
		panic("secref: zero inner period")
	}
	if cfg.Regions > 1 && cfg.OuterPeriod == 0 {
		panic("secref: zero outer period with multiple regions")
	}
	if dev.Lines() < cfg.Lines {
		panic("secref: device smaller than logical space")
	}
	k := cfg.Lines / cfg.Regions
	s := &Scheme{
		cfg:          cfg,
		dev:          dev,
		k:            k,
		inner:        make([]sr, cfg.Regions),
		src:          rng.New(cfg.Seed ^ 0x5ec4ef5e5ec4ef5e),
		outerTrigger: cfg.OuterPeriod * k,
		buf:          make([]uint64, k),
	}
	for i := range s.inner {
		s.inner[i].n = k
	}
	s.outer.n = cfg.Regions
	return s
}

// newKey draws a fresh key distinct from prev when the space allows it.
func (s *Scheme) newKey(n, prev uint64) uint64 {
	if n <= 1 {
		return 0
	}
	for {
		k := s.src.Uint64n(n)
		if k != prev {
			return k
		}
	}
}

// Translate implements wl.Leveler.
func (s *Scheme) Translate(lma uint64) uint64 {
	ms, mi := lma/s.k, lma%s.k
	ps := s.outer.translate(ms)
	pi := s.inner[ms].translate(mi)
	return ps*s.k + pi
}

// Access implements wl.Leveler.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	pma := s.Translate(lma)
	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
		return pma
	}
	s.stats.DataWrites++
	s.dev.Write(pma)

	ms := lma / s.k
	in := &s.inner[ms]
	in.writes++
	if in.writes >= s.cfg.InnerPeriod {
		in.writes = 0
		s.innerStep(ms)
	}
	if s.cfg.Regions > 1 {
		s.outerCounter++
		if s.outerCounter >= s.outerTrigger {
			s.outerCounter = 0
			s.outerStep()
		}
	}
	return pma
}

// AccessBatch implements wl.BatchLeveler. A line's mapping only changes at
// an inner or outer refresh step, so a run of identical writes folds into
// one nvm.WriteRun bounded by the distance to the next step of either
// level; the step order at a shared boundary (inner, then outer) matches
// the scalar path.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		c := uint64(j - i)
		if op == trace.Read {
			issued := s.dev.ReadRun(s.Translate(lma), c)
			s.stats.DataReads += issued
			i += int(issued)
			continue
		}
		ms := lma / s.k
		in := &s.inner[ms]
		if d := s.cfg.InnerPeriod - in.writes; d < c {
			c = d
		}
		if s.cfg.Regions > 1 {
			if d := s.outerTrigger - s.outerCounter; d < c {
				c = d
			}
		}
		served := s.dev.WriteRun(s.Translate(lma), c)
		applied := c
		if served < c {
			applied = served + 1 // the killing write's bookkeeping still runs
		}
		s.stats.DataWrites += applied
		in.writes += applied
		if in.writes >= s.cfg.InnerPeriod {
			in.writes = 0
			s.innerStep(ms)
		}
		if s.cfg.Regions > 1 {
			s.outerCounter += applied
			if s.outerCounter >= s.outerTrigger {
				s.outerCounter = 0
				s.outerStep()
			}
		}
		i += int(applied)
	}
	return n
}

// Advance implements wl.BatchLeveler: epochs sized from the inner refresh
// period (the finer of the two trigger intervals).
func (s *Scheme) Advance(k int) int { return wl.ClampEpoch(s.cfg.InnerPeriod, k) }

// innerStep performs one refresh step of region ms's inner instance,
// swapping one physical line pair inside the physical subregion currently
// holding ms.
func (s *Scheme) innerStep(ms uint64) {
	in := &s.inner[ms]
	m := in.rp
	in.rp++
	d := in.k0 ^ in.k1
	if d != 0 && m^d >= m {
		// Swap the physical pair holding MAs m and m^d.
		base := s.outer.translate(ms) * s.k
		p0 := base + (m ^ in.k0)
		p1 := base + (m ^ in.k1)
		tmp := s.dev.ReadData(p0)
		s.dev.MoveData(p0, p1)
		s.dev.WriteData(p1, tmp)
		s.stats.SwapWrites += 2
		s.stats.Remaps++
	}
	if in.rp == in.n {
		in.rp = 0
		in.k0 = in.k1
		in.k1 = s.newKey(in.n, in.k0)
	}
}

// outerStep performs one refresh step of the outer instance, swapping two
// whole physical subregions (2K device writes) when the step's pair is not
// yet refreshed.
func (s *Scheme) outerStep() {
	out := &s.outer
	m := out.rp
	out.rp++
	d := out.k0 ^ out.k1
	if d != 0 && m^d >= m {
		b0 := (m ^ out.k0) * s.k
		b1 := (m ^ out.k1) * s.k
		for i := uint64(0); i < s.k; i++ {
			s.buf[i] = s.dev.ReadData(b0 + i)
		}
		for i := uint64(0); i < s.k; i++ {
			s.dev.MoveData(b0+i, b1+i)
		}
		for i := uint64(0); i < s.k; i++ {
			s.dev.WriteData(b1+i, s.buf[i])
		}
		s.stats.SwapWrites += 2 * s.k
		s.stats.Remaps++
	}
	if out.rp == out.n {
		out.rp = 0
		out.k0 = out.k1
		out.k1 = s.newKey(out.n, out.k0)
	}
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string {
	if s.cfg.Regions == 1 {
		return "SR"
	}
	return "TLSR"
}

// Stats implements wl.Leveler.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// OverheadBits implements wl.Leveler: per inner region two keys, the
// refresh pointer and a write counter; one outer instance of the same shape.
func (s *Scheme) OverheadBits() uint64 {
	kBits := uint64(addr.Log2(s.k)) + 1
	rBits := uint64(addr.Log2(s.cfg.Regions)) + 1
	const counterBits = 32
	per := 3*kBits + counterBits
	return s.cfg.Regions*per + 3*rBits + counterBits
}

// Partitions implements wl.Partitionable: inner refreshes are confined to
// one region, so regions are the instance's natural partition units.
func (s *Scheme) Partitions() uint64 { return s.cfg.Regions }

// PartitionExact implements wl.Partitionable: the outer level migrates
// subregions across the whole instance, so per-bank instances run the outer
// refresh over their own bank's regions only — the bank-local modeling
// variant (DESIGN.md §15), not an exact decomposition.
func (s *Scheme) PartitionExact() bool { return false }
