package secref

import (
	"testing"
	"testing/quick"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

func newScheme(lines, regions, innerP, outerP, seed uint64) (*nvm.Device, *Scheme) {
	dev := wltest.Device(lines, 0)
	return dev, New(dev, Config{
		Lines: lines, Regions: regions,
		InnerPeriod: innerP, OuterPeriod: outerP, Seed: seed,
	})
}

func TestInitialIdentity(t *testing.T) {
	_, s := newScheme(256, 4, 8, 32, 1)
	for lma := uint64(0); lma < 256; lma++ {
		if s.Translate(lma) != lma {
			t.Fatalf("initial mapping not identity at %d", lma)
		}
	}
}

func TestSingleLevelBijectionAndIntegrity(t *testing.T) {
	dev, s := newScheme(256, 1, 2, 0, 3)
	wltest.Exercise(t, dev, s, 20000, 4)
	if s.Name() != "SR" {
		t.Fatal("name")
	}
}

func TestTwoLevelBijectionAndIntegrity(t *testing.T) {
	dev, s := newScheme(512, 8, 3, 4, 5)
	wltest.Exercise(t, dev, s, 30000, 6)
	if s.Name() != "TLSR" {
		t.Fatal("name")
	}
}

// Property: mid-round mappings are bijections for arbitrary key pairs and
// refresh pointers — the trickiest part of Security Refresh.
func TestMidRoundMappingIsBijection(t *testing.T) {
	err := quick.Check(func(k0, k1, rp uint16) bool {
		const n = 256
		inst := sr{n: n, k0: uint64(k0 % n), k1: uint64(k1 % n), rp: uint64(rp) % (n + 1)}
		seen := make(map[uint64]bool, n)
		for m := uint64(0); m < n; m++ {
			p := inst.translate(m)
			if p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoundCompletionChangesMapping(t *testing.T) {
	dev, s := newScheme(64, 1, 1, 0, 7)
	wltest.Fill(dev, s)
	// Drive two full rounds: 128 writes with period 1.
	for i := 0; i < 128; i++ {
		s.Access(trace.Write, uint64(i)%64)
	}
	moved := 0
	for lma := uint64(0); lma < 64; lma++ {
		if s.Translate(lma) != lma {
			moved++
		}
	}
	if moved < 32 {
		t.Fatalf("only %d/64 lines moved after two refresh rounds", moved)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestRAADispersesAcrossWholeMemory(t *testing.T) {
	// Unlike RBSG, TLSR migrates the attacked line across regions via the
	// outer level: after enough rounds many distinct physical lines absorb
	// the RAA writes.
	dev, s := newScheme(256, 4, 1, 1, 9)
	wltest.Fill(dev, s)
	touched := make(map[uint64]bool)
	for i := 0; i < 100000; i++ {
		touched[s.Access(trace.Write, 13)] = true
	}
	if len(touched) < 64 {
		t.Fatalf("RAA writes landed on only %d distinct lines", len(touched))
	}
}

func TestInnerWriteOverheadMatchesPeriod(t *testing.T) {
	// Single level, period ψ: one step per ψ writes, an average of one swap
	// write per step => overhead ~1/ψ.
	dev, s := newScheme(1024, 1, 8, 0, 11)
	wltest.Fill(dev, s)
	for i := uint64(0); i < 200000; i++ {
		s.Access(trace.Write, i%1024)
	}
	oh := s.Stats().WriteOverhead()
	if oh < 0.08 || oh > 0.17 {
		t.Fatalf("overhead %.4f, want ~1/8", oh)
	}
	_ = dev
}

func TestTwoLevelOverheadApproximatesSum(t *testing.T) {
	// ψ_in = 8 (12.5%) + ψ_out = 32 (~3.1%) => ~15.6%, the paper's Fig 3
	// annotation for period 8.
	dev, s := newScheme(4096, 16, 8, 32, 13)
	wltest.Fill(dev, s)
	for i := uint64(0); i < 400000; i++ {
		s.Access(trace.Write, i%4096)
	}
	oh := s.Stats().WriteOverhead()
	if oh < 0.11 || oh > 0.20 {
		t.Fatalf("overhead %.4f, want ~0.156", oh)
	}
	_ = dev
}

func TestStatsAndOverheadBits(t *testing.T) {
	_, s := newScheme(256, 4, 8, 32, 15)
	if s.OverheadBits() == 0 {
		t.Fatal("zero overhead bits")
	}
	if s.Lines() != 256 {
		t.Fatal("lines")
	}
	st := s.Stats()
	if st.DataWrites != 0 {
		t.Fatal("fresh stats not zero")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := wltest.Device(64, 0)
	for _, cfg := range []Config{
		{Lines: 63, Regions: 1, InnerPeriod: 8},
		{Lines: 64, Regions: 3, InnerPeriod: 8, OuterPeriod: 8},
		{Lines: 64, Regions: 128, InnerPeriod: 8, OuterPeriod: 8},
		{Lines: 64, Regions: 1, InnerPeriod: 0},
		{Lines: 64, Regions: 4, InnerPeriod: 8, OuterPeriod: 0},
		{Lines: 256, Regions: 4, InnerPeriod: 8, OuterPeriod: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}

func TestDeterministicBySeed(t *testing.T) {
	devA, a := newScheme(128, 2, 2, 4, 99)
	devB, b := newScheme(128, 2, 2, 4, 99)
	for i := 0; i < 5000; i++ {
		lma := uint64(i*7) % 128
		if a.Access(trace.Write, lma) != b.Access(trace.Write, lma) {
			t.Fatalf("diverged at %d", i)
		}
	}
	_, _ = devA, devB
}

// Property: the two-level composition (outer SR over subregions, inner SR
// per logical subregion) is a bijection for arbitrary mid-round states of
// every instance.
func TestTwoLevelCompositionBijection(t *testing.T) {
	err := quick.Check(func(ok0, ok1, orp uint8, ik0s, ik1s, irps [4]uint8) bool {
		const regions, k = 4, 16
		outer := sr{n: regions, k0: uint64(ok0 % regions), k1: uint64(ok1 % regions), rp: uint64(orp) % (regions + 1)}
		var inner [regions]sr
		for i := range inner {
			inner[i] = sr{
				n:  k,
				k0: uint64(ik0s[i] % k),
				k1: uint64(ik1s[i] % k),
				rp: uint64(irps[i]) % (k + 1),
			}
		}
		seen := make(map[uint64]bool, regions*k)
		for lma := uint64(0); lma < regions*k; lma++ {
			ms, mi := lma/k, lma%k
			pma := outer.translate(ms)*k + inner[ms].translate(mi)
			if pma >= regions*k || seen[pma] {
				return false
			}
			seen[pma] = true
		}
		return true
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}
