// Package segswap implements Segment Swapping [Zhou+ ISCA'09], the paper's
// representative table-based wear-leveling (TBWL) scheme (Sec 2.1, Fig 1a).
//
// Memory is divided into segments. A table records, for every logical
// segment, its physical segment and the physical segment's accumulated
// write count. When a physical segment's writes since its last swap reach
// the swapping period, its data is exchanged with the least-written
// physical segment. The intra-segment offset never changes — the weakness
// Sec 2.2 points out: a Repeated Address Attack keeps hitting the same
// offset inside every segment it is bounced to, so the scheme fails under
// RAA (reproduced by this package's tests and examples/attack).
package segswap

import (
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes Segment Swapping.
type Config struct {
	Lines        uint64 // logical lines (multiple of SegmentLines)
	SegmentLines uint64 // lines per segment
	Period       uint64 // writes to a segment between swaps (swapping period)
}

// Scheme is a Segment Swapping instance.
type Scheme struct {
	cfg  Config
	dev  *nvm.Device
	segs uint64

	logToPhys []uint32 // logical segment -> physical segment
	physToLog []uint32 // inverse
	wearCount []uint64 // physical segment -> lifetime write count
	sinceSwap []uint64 // physical segment -> writes since last swap

	stats wl.Stats
}

// New creates the scheme over dev. dev must have at least cfg.Lines lines.
func New(dev *nvm.Device, cfg Config) *Scheme {
	if cfg.SegmentLines == 0 || cfg.Lines%cfg.SegmentLines != 0 {
		panic("segswap: Lines must be a nonzero multiple of SegmentLines")
	}
	if cfg.Period == 0 {
		panic("segswap: zero period")
	}
	if dev.Lines() < cfg.Lines {
		panic("segswap: device smaller than logical space")
	}
	segs := cfg.Lines / cfg.SegmentLines
	s := &Scheme{
		cfg:       cfg,
		dev:       dev,
		segs:      segs,
		logToPhys: make([]uint32, segs),
		physToLog: make([]uint32, segs),
		wearCount: make([]uint64, segs),
		sinceSwap: make([]uint64, segs),
	}
	for i := uint64(0); i < segs; i++ {
		s.logToPhys[i] = uint32(i)
		s.physToLog[i] = uint32(i)
	}
	return s
}

// Translate implements wl.Leveler.
func (s *Scheme) Translate(lma uint64) uint64 {
	seg := lma / s.cfg.SegmentLines
	off := lma % s.cfg.SegmentLines
	return uint64(s.logToPhys[seg])*s.cfg.SegmentLines + off
}

// Access implements wl.Leveler.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	pma := s.Translate(lma)
	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
		return pma
	}
	s.stats.DataWrites++
	s.dev.Write(pma)
	pseg := pma / s.cfg.SegmentLines
	s.wearCount[pseg]++
	s.sinceSwap[pseg]++
	if s.sinceSwap[pseg] >= s.cfg.Period {
		s.swap(pseg)
	}
	return pma
}

// AccessBatch implements wl.BatchLeveler. The segment table only changes at
// a swap, so a run of identical writes folds into one nvm.WriteRun bounded
// by the physical segment's distance to its next swap trigger.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		c := uint64(j - i)
		pma := s.Translate(lma)
		if op == trace.Read {
			issued := s.dev.ReadRun(pma, c)
			s.stats.DataReads += issued
			i += int(issued)
			continue
		}
		pseg := pma / s.cfg.SegmentLines
		if d := s.cfg.Period - s.sinceSwap[pseg]; d < c {
			c = d
		}
		served := s.dev.WriteRun(pma, c)
		applied := c
		if served < c {
			applied = served + 1 // the killing write's bookkeeping still runs
		}
		s.stats.DataWrites += applied
		s.wearCount[pseg] += applied
		s.sinceSwap[pseg] += applied
		if s.sinceSwap[pseg] >= s.cfg.Period {
			s.swap(pseg)
		}
		i += int(applied)
	}
	return n
}

// Advance implements wl.BatchLeveler: epochs sized from the swapping period.
func (s *Scheme) Advance(k int) int { return wl.ClampEpoch(s.cfg.Period, k) }

// swap exchanges the data of hot physical segment with the least-worn
// physical segment (linear scan; the table-based scheme pays this cost in
// hardware too, via sorted structures we do not need to model).
func (s *Scheme) swap(hot uint64) {
	s.sinceSwap[hot] = 0
	coldest := uint64(0)
	for i := uint64(1); i < s.segs; i++ {
		if s.wearCount[i] < s.wearCount[coldest] {
			coldest = i
		}
	}
	if coldest == hot {
		return
	}
	s.stats.Remaps++
	n := s.cfg.SegmentLines
	hotBase, coldBase := hot*n, coldest*n
	// Exchange via an SRAM buffer: hot's lines are staged, cold's lines move
	// into hot's frame, then the staged lines land in cold's frame. Each
	// line lands with one device write; 2n swap writes total.
	buf := make([]uint64, n)
	for i := uint64(0); i < n; i++ {
		buf[i] = s.dev.ReadData(hotBase + i)
	}
	for i := uint64(0); i < n; i++ {
		s.dev.MoveData(hotBase+i, coldBase+i)
		s.stats.SwapWrites++
	}
	for i := uint64(0); i < n; i++ {
		s.dev.WriteData(coldBase+i, buf[i])
		s.stats.SwapWrites++
	}
	s.wearCount[hot] += n
	s.wearCount[coldest] += n
	lHot, lCold := s.physToLog[hot], s.physToLog[coldest]
	s.logToPhys[lHot], s.logToPhys[lCold] = uint32(coldest), uint32(hot)
	s.physToLog[hot], s.physToLog[coldest] = lCold, lHot
	s.sinceSwap[coldest] = 0
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string { return "SegmentSwap" }

// Stats implements wl.Leveler.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// OverheadBits implements wl.Leveler: the full mapping table plus two
// counters per segment live on chip.
func (s *Scheme) OverheadBits() uint64 {
	segBits := uint64(1)
	for 1<<segBits < s.segs {
		segBits++
	}
	const counterBits = 32
	return s.segs * (segBits + 2*counterBits)
}

// Partitions implements wl.Partitionable: the mapping is segment-granular,
// so a device slice aligned to segment boundaries is a closed address space.
func (s *Scheme) Partitions() uint64 { return s.segs }

// PartitionExact implements wl.Partitionable: the coldest-segment scan
// ranges over the whole instance, so per-bank instances scan only their own
// bank — the bank-local modeling variant (DESIGN.md §15), not an exact
// decomposition of the device-wide scan.
func (s *Scheme) PartitionExact() bool { return false }
