package segswap

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

func newScheme(lines, segLines, period uint64) (*nvm.Device, *Scheme) {
	dev := wltest.Device(lines, 0)
	return dev, New(dev, Config{Lines: lines, SegmentLines: segLines, Period: period})
}

func TestInitialIdentity(t *testing.T) {
	_, s := newScheme(256, 16, 64)
	for lma := uint64(0); lma < 256; lma++ {
		if s.Translate(lma) != lma {
			t.Fatalf("initial mapping not identity at %d", lma)
		}
	}
}

func TestBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(512, 16, 32)
	wltest.Exercise(t, dev, s, 20000, 1)
}

func TestSwapMovesHotSegment(t *testing.T) {
	dev, s := newScheme(256, 16, 8)
	wltest.Fill(dev, s)
	before := s.Translate(5)
	for i := 0; i < 8; i++ {
		s.Access(trace.Write, 5)
	}
	after := s.Translate(5)
	if before == after {
		t.Fatal("hot segment not swapped after period writes")
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestOffsetPreservedAcrossSwaps(t *testing.T) {
	// The TBWL weakness: intra-segment offset is invariant.
	dev, s := newScheme(256, 16, 8)
	wltest.Fill(dev, s)
	for i := 0; i < 1000; i++ {
		s.Access(trace.Write, 37) // offset 5 within its segment
		if s.Translate(37)%16 != 37%16 {
			t.Fatal("segment swapping changed the intra-segment offset")
		}
	}
}

func TestRAAVulnerability(t *testing.T) {
	// Under RAA, only one line per segment ever wears: the achieved
	// lifetime is a tiny fraction of ideal because only #segments lines
	// out of all lines absorb the attack.
	lines, segLines := uint64(256), uint64(16)
	dev := nvm.New(nvm.Config{Lines: lines, SpareLines: 0, Endurance: 1000, TrackData: true})
	s := New(dev, Config{Lines: lines, SegmentLines: segLines, Period: 64})
	writes := uint64(0)
	for dev.Alive() && writes < 10*dev.IdealWrites() {
		s.Access(trace.Write, 7)
		writes++
	}
	norm := float64(dev.Stats().TotalWrites) / float64(dev.IdealWrites())
	// Only 16 of 256 lines can absorb writes => <= ~6.25% plus swap noise.
	if norm > 0.10 {
		t.Fatalf("segment swapping survived RAA too well: %.1f%% of ideal", 100*norm)
	}
	if dev.Alive() {
		t.Fatal("device survived RAA")
	}
}

func TestWriteOverheadMatchesPeriod(t *testing.T) {
	dev, s := newScheme(1024, 16, 64)
	wltest.Fill(dev, s)
	// Uniform writes: every period writes triggers at most one swap of
	// 2*16 lines => overhead <= 2*16/64 = 50%.
	for i := uint64(0); i < 100000; i++ {
		s.Access(trace.Write, i%1024)
	}
	oh := s.Stats().WriteOverhead()
	if oh > 0.5+0.05 {
		t.Fatalf("write overhead %.2f exceeds 2*S/period bound", oh)
	}
}

func TestStatsAccounting(t *testing.T) {
	dev, s := newScheme(256, 16, 1<<40)
	wltest.Fill(dev, s)
	base := dev.Stats().TotalWrites
	for i := 0; i < 10; i++ {
		s.Access(trace.Write, uint64(i))
		s.Access(trace.Read, uint64(i))
	}
	st := s.Stats()
	if st.DataWrites != 10 || st.DataReads != 10 || st.SwapWrites != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if dev.Stats().TotalWrites-base != 10 {
		t.Fatal("device writes disagree with stats")
	}
}

func TestOverheadBitsPositive(t *testing.T) {
	_, s := newScheme(256, 16, 8)
	if s.OverheadBits() == 0 {
		t.Fatal("zero on-chip overhead for a table-based scheme")
	}
	if s.Name() != "SegmentSwap" {
		t.Fatal("name")
	}
	if s.Lines() != 256 {
		t.Fatal("lines")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := wltest.Device(64, 0)
	for _, cfg := range []Config{
		{Lines: 64, SegmentLines: 0, Period: 8},
		{Lines: 63, SegmentLines: 16, Period: 8},
		{Lines: 64, SegmentLines: 16, Period: 0},
		{Lines: 128, SegmentLines: 16, Period: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}
