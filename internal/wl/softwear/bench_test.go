package softwear

import (
	"testing"

	"nvmwear/internal/wl"
	"nvmwear/internal/wl/wltest"
)

func BenchmarkAccess(b *testing.B) {
	wltest.BenchAccess(b, func() wl.Leveler {
		dev := wltest.BenchDevice(1 << 14)
		return New(dev, Config{Lines: 1 << 14, PageLines: 1 << 6, SamplePeriod: 8, Trigger: 8})
	})
}
