// Package softwear implements a SoftWear-style software-only wear-leveling
// scheme [Boukhobza et al., SoftWear — see PAPERS.md]: page-granularity
// remapping driven entirely by write counts the *software* observes, with
// no per-line hardware counters, no on-chip mapping table and no random
// keys.
//
// The OS cannot afford to count every write, so it samples: every S-th
// demand write it observes is charged twice in software (DRAM-resident
// state, hence OverheadBits() == 0 on-chip) — to the written page's epoch
// counter, which detects hotness, and to the written frame's cumulative
// wear estimate, which never resets. When a page's epoch count reaches the
// trigger T, the software concludes the page is hot and moves it to the
// least-worn physical frame (minimum wear estimate, lowest frame number on
// ties — a deterministic choice that needs no RNG at all), swapping data
// with whatever page lived there. The hot page's epoch counter resets so
// the next epoch observes fresh traffic.
//
// Compared to the hardware schemes in this catalogue, softwear trades
// precision (sampling misses short bursts below S writes) and granularity
// (whole pages move, costing 2*PageLines device writes per swap) for zero
// hardware cost — exactly the trade SoftWear argues for in-memory NVM.
package softwear

import (
	"nvmwear/internal/addr"
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes the scheme.
type Config struct {
	Lines        uint64 // logical lines (power of two)
	PageLines    uint64 // lines per remapped page (power of two)
	SamplePeriod uint64 // S: every S-th demand write is charged to its page
	Trigger      uint64 // T: sampled count at which a page is declared hot
}

// Scheme is a softwear instance bound to a device.
type Scheme struct {
	cfg    Config
	dev    *nvm.Device
	q      uint64 // lines per page
	pages  uint64
	sample uint64 // S
	trig   uint32 // T

	perm  []uint32 // logical page -> physical frame
	inv   []uint32 // physical frame -> logical page
	count []uint32 // sampled epoch write count per logical page (resets on rotate)
	wear  []uint32 // sampled cumulative wear estimate per physical frame
	g     uint64   // global demand-write counter (drives sampling)
	bufA  []uint64
	bufB  []uint64

	stats wl.Stats
}

// New creates the scheme over dev.
func New(dev *nvm.Device, cfg Config) *Scheme {
	if !addr.IsPow2(cfg.Lines) || !addr.IsPow2(cfg.PageLines) {
		panic("softwear: Lines and PageLines must be powers of two")
	}
	if cfg.PageLines > cfg.Lines {
		panic("softwear: page larger than memory")
	}
	if cfg.SamplePeriod == 0 || cfg.Trigger == 0 {
		panic("softwear: zero sample period or trigger")
	}
	if dev.Lines() < cfg.Lines {
		panic("softwear: device smaller than logical space")
	}
	pages := cfg.Lines / cfg.PageLines
	if pages < 2 {
		panic("softwear: need at least two pages to swap")
	}
	s := &Scheme{
		cfg:    cfg,
		dev:    dev,
		q:      cfg.PageLines,
		pages:  pages,
		sample: cfg.SamplePeriod,
		trig:   uint32(cfg.Trigger),
		perm:   make([]uint32, pages),
		inv:    make([]uint32, pages),
		count:  make([]uint32, pages),
		wear:   make([]uint32, pages),
		bufA:   make([]uint64, cfg.PageLines),
		bufB:   make([]uint64, cfg.PageLines),
	}
	for i := uint64(0); i < pages; i++ {
		s.perm[i] = uint32(i)
		s.inv[i] = uint32(i)
	}
	return s
}

// Translate implements wl.Leveler: pages relocate whole, line offsets
// within a page are identity (software cannot scramble a hardware row).
func (s *Scheme) Translate(lma uint64) uint64 {
	return uint64(s.perm[lma/s.q])*s.q + (lma & (s.q - 1))
}

// Access implements wl.Leveler.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	pma := s.Translate(lma)
	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
		return pma
	}
	s.stats.DataWrites++
	s.dev.Write(pma)
	s.g++
	if s.g%s.sample == 0 {
		lpn := lma / s.q
		s.count[lpn]++
		s.wear[s.perm[lpn]]++
		if s.count[lpn] >= s.trig {
			s.rotate(lpn)
		}
	}
	return pma
}

// AccessBatch implements wl.BatchLeveler. Sampling charges only the written
// page, so mid-run no other page's counter can move and the mapping is
// stable until this run's own trigger; a run of identical writes folds into
// one nvm.WriteRun clamped at the write whose sample completes the trigger.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		c := uint64(j - i)
		if op == trace.Read {
			issued := s.dev.ReadRun(s.Translate(lma), c)
			s.stats.DataReads += issued
			i += int(issued)
			continue
		}
		lpn := lma / s.q
		// The sample that fires the trigger is sample number
		// g/S + (T - count); it lands on demand write (g/S + (T-count))*S,
		// i.e. d writes from here. Writes beyond d belong to the next
		// mapping epoch.
		if d := (s.g/s.sample+uint64(s.trig-s.count[lpn]))*s.sample - s.g; d < c {
			c = d
		}
		served := s.dev.WriteRun(s.Translate(lma), c)
		applied := c
		if served < c {
			applied = served + 1 // the killing write's bookkeeping still runs
		}
		s.stats.DataWrites += applied
		samples := (s.g+applied)/s.sample - s.g/s.sample
		s.g += applied
		if samples > 0 {
			s.count[lpn] += uint32(samples)
			s.wear[s.perm[lpn]] += uint32(samples)
			if s.count[lpn] >= s.trig {
				s.rotate(lpn)
			}
		}
		i += int(applied)
	}
	return n
}

// Advance implements wl.BatchLeveler: a hot page triggers a swap per S*T
// demand writes to it, so epochs size from that interval.
func (s *Scheme) Advance(k int) int { return wl.ClampEpoch(s.sample*uint64(s.trig), k) }

// rotate moves hot page `hot` to the least-worn physical frame (minimum
// cumulative wear estimate, lowest frame number on ties, the hot page's own
// frame excluded), swapping data with the page that lived there, and resets
// the hot page's epoch counter. The coldest scan is O(pages) of DRAM —
// cheap for software, free of on-chip state.
func (s *Scheme) rotate(hot uint64) {
	s.stats.Remaps++
	s.count[hot] = 0
	fh := uint64(s.perm[hot])
	fv := uint64(0)
	if fh == 0 {
		fv = 1
	}
	for f := fv + 1; f < s.pages; f++ {
		if f != fh && s.wear[f] < s.wear[fv] {
			fv = f
		}
	}
	victim := uint64(s.inv[fv])
	baseH, baseV := fh*s.q, fv*s.q
	for lao := uint64(0); lao < s.q; lao++ {
		s.bufA[lao] = s.dev.ReadData(baseH + lao)
		s.bufB[lao] = s.dev.ReadData(baseV + lao)
	}
	s.perm[hot], s.perm[victim] = s.perm[victim], s.perm[hot]
	s.inv[fh], s.inv[fv] = s.inv[fv], s.inv[fh]
	for lao := uint64(0); lao < s.q; lao++ {
		s.dev.WriteData(baseV+lao, s.bufA[lao])
		s.dev.WriteData(baseH+lao, s.bufB[lao])
		s.stats.SwapWrites += 2
	}
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string { return "SoftWear" }

// Stats implements wl.Leveler.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Pages returns the number of remappable pages.
func (s *Scheme) Pages() uint64 { return s.pages }

// OverheadBits implements wl.Leveler: zero. The page table and the sampled
// counters live in ordinary DRAM managed by software — SoftWear's whole
// premise is that the memory controller carries no wear-leveling state.
func (s *Scheme) OverheadBits() uint64 { return 0 }

// Partitions implements wl.Partitionable: the mapping is page-granular, so
// a device slice aligned to page boundaries is a closed address space.
func (s *Scheme) Partitions() uint64 { return s.pages }

// PartitionExact implements wl.Partitionable: the coldest-page scan ranges
// over the whole instance, so per-bank instances pick bank-local victims
// and sample their own bank's write stream — the bank-local modeling
// variant (DESIGN.md §15), not an exact decomposition.
func (s *Scheme) PartitionExact() bool { return false }
