package softwear

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

func newScheme(lines, q, sample, trigger uint64) (*nvm.Device, *Scheme) {
	dev := wltest.Device(lines, 0)
	return dev, New(dev, Config{Lines: lines, PageLines: q, SamplePeriod: sample, Trigger: trigger})
}

func TestInitialIdentity(t *testing.T) {
	_, s := newScheme(256, 8, 4, 4)
	for lma := uint64(0); lma < 256; lma++ {
		if s.Translate(lma) != lma {
			t.Fatalf("initial mapping not identity at %d", lma)
		}
	}
	if s.Pages() != 32 {
		t.Fatalf("pages = %d", s.Pages())
	}
}

func TestBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(512, 8, 2, 2)
	wltest.Exercise(t, dev, s, 30000, 4)
}

func TestHotPageMigratesToColdFrames(t *testing.T) {
	dev, s := newScheme(1024, 4, 2, 2)
	wltest.Fill(dev, s)
	homes := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		s.Access(trace.Write, 17)
		homes[s.Translate(17)/4] = true
	}
	// The hot page keeps trading frames with the coldest page; over many
	// rotations it must visit many distinct physical frames.
	if len(homes) < 16 {
		t.Fatalf("hot page visited only %d physical frames", len(homes))
	}
	if s.Stats().Remaps == 0 {
		t.Fatal("no rotations triggered")
	}
}

// Sampling is the whole point: only every S-th demand write is observed, so
// a trigger of T fires after S*T writes to a hot page, not T.
func TestSamplingDelaysTrigger(t *testing.T) {
	_, s := newScheme(256, 8, 8, 4)
	for i := 0; i < 8*4-1; i++ {
		s.Access(trace.Write, 3)
	}
	if s.Stats().Remaps != 0 {
		t.Fatalf("rotated after %d writes, before the %d-write sampled trigger", 8*4-1, 8*4)
	}
	s.Access(trace.Write, 3)
	if s.Stats().Remaps != 1 {
		t.Fatal("sampled trigger did not fire on schedule")
	}
}

func TestNoHardwareOverhead(t *testing.T) {
	_, s := newScheme(256, 8, 4, 4)
	if s.OverheadBits() != 0 {
		t.Fatalf("OverheadBits = %d; softwear keeps all state in software", s.OverheadBits())
	}
	if s.Name() != "SoftWear" || s.Lines() != 256 {
		t.Fatal("metadata")
	}
	if s.Partitions() != s.Pages() || s.PartitionExact() {
		t.Fatal("partitioning contract")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := wltest.Device(64, 0)
	for _, cfg := range []Config{
		{Lines: 63, PageLines: 4, SamplePeriod: 4, Trigger: 4},
		{Lines: 64, PageLines: 3, SamplePeriod: 4, Trigger: 4},
		{Lines: 64, PageLines: 128, SamplePeriod: 4, Trigger: 4},
		{Lines: 64, PageLines: 4, SamplePeriod: 0, Trigger: 4},
		{Lines: 64, PageLines: 4, SamplePeriod: 4, Trigger: 0},
		{Lines: 64, PageLines: 64, SamplePeriod: 4, Trigger: 4}, // one page
		{Lines: 256, PageLines: 4, SamplePeriod: 4, Trigger: 4}, // device too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}
