package startgap

import (
	"testing"

	"nvmwear/internal/wl"
	"nvmwear/internal/wl/wltest"
)

func BenchmarkAccess(b *testing.B) {
	wltest.BenchAccess(b, func() wl.Leveler {
		cfg := Config{Lines: 1 << 14, Regions: 16, Period: 8}
		dev := wltest.BenchDevice(cfg.Lines + cfg.ExtraLines())
		return New(dev, cfg)
	})
}
