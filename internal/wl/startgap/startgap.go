// Package startgap implements Start-Gap wear leveling [Qureshi+ MICRO'09]
// and its region-based variant RBSG (Sec 2.1, Fig 1b).
//
// A region of N logical lines occupies N+1 physical lines; the extra line
// is the "gap". Every ψ demand writes, the line ahead of the gap moves into
// it, sliding the gap one slot down; after the gap sweeps the whole region,
// the start register advances, so every line has migrated by one slot per
// round. The mapping is the algebraic function
//
//	p = (la + start) mod N; if p >= gap { p = p + 1 }
//
// so no per-line table is needed. RBSG statically partitions the memory
// into regions by the address high bits, each with its own start/gap — but
// a line can never leave its region, the RAA weakness Sec 2.2 describes:
// an attacker repeatedly writing one address wears out the whole region at
// N+1 times the single-line rate while the rest of the device idles.
package startgap

import (
	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes RBSG. With Regions == 1 the scheme is classic
// Start-Gap over the whole memory.
type Config struct {
	Lines   uint64 // logical lines (multiple of Regions)
	Regions uint64 // independent start-gap regions
	Period  uint64 // demand writes per gap movement (per region)
}

// region is one start-gap instance.
type region struct {
	start  uint64
	gap    uint64
	writes uint64
}

// Scheme is an RBSG instance. The device must have Lines + Regions physical
// lines (one gap line per region); region r occupies the physical range
// [r*(K+1), (r+1)*(K+1)) where K = Lines/Regions.
type Scheme struct {
	cfg     Config
	dev     *nvm.Device
	k       uint64 // logical lines per region
	regions []region
	stats   wl.Stats
}

// ExtraLines returns the number of physical lines the configuration needs
// beyond the logical space (one gap line per region).
func (c Config) ExtraLines() uint64 { return c.Regions }

// New creates the scheme over dev.
func New(dev *nvm.Device, cfg Config) *Scheme {
	if cfg.Regions == 0 || cfg.Lines%cfg.Regions != 0 {
		panic("startgap: Lines must be a nonzero multiple of Regions")
	}
	if cfg.Period == 0 {
		panic("startgap: zero period")
	}
	if dev.Lines() < cfg.Lines+cfg.Regions {
		panic("startgap: device lacks gap lines")
	}
	k := cfg.Lines / cfg.Regions
	s := &Scheme{cfg: cfg, dev: dev, k: k, regions: make([]region, cfg.Regions)}
	for i := range s.regions {
		s.regions[i].gap = k // gap starts at the spare slot after the data
	}
	return s
}

// Translate implements wl.Leveler.
func (s *Scheme) Translate(lma uint64) uint64 {
	r := lma / s.k
	la := lma % s.k
	reg := &s.regions[r]
	p := la + reg.start
	if p >= s.k {
		p -= s.k
	}
	if p >= reg.gap {
		p++
	}
	return r*(s.k+1) + p
}

// Access implements wl.Leveler.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	pma := s.Translate(lma)
	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
		return pma
	}
	s.stats.DataWrites++
	s.dev.Write(pma)
	r := lma / s.k
	reg := &s.regions[r]
	reg.writes++
	if reg.writes >= s.cfg.Period {
		reg.writes = 0
		s.moveGap(r)
	}
	return pma
}

// AccessBatch implements wl.BatchLeveler. A region's mapping only changes
// at a gap movement, so a run of identical writes folds into one
// nvm.WriteRun bounded by the region's distance to its next movement; the
// translation is computed once per chunk instead of once per request.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		c := uint64(j - i)
		if op == trace.Read {
			issued := s.dev.ReadRun(s.Translate(lma), c)
			s.stats.DataReads += issued
			i += int(issued)
			continue
		}
		r := lma / s.k
		reg := &s.regions[r]
		if d := s.cfg.Period - reg.writes; d < c {
			c = d
		}
		served := s.dev.WriteRun(s.Translate(lma), c)
		applied := c
		if served < c {
			applied = served + 1 // the killing write's bookkeeping still runs
		}
		s.stats.DataWrites += applied
		reg.writes += applied
		if reg.writes >= s.cfg.Period {
			reg.writes = 0
			s.moveGap(r)
		}
		i += int(applied)
	}
	return n
}

// Advance implements wl.BatchLeveler: epochs sized from the gap-movement
// period.
func (s *Scheme) Advance(k int) int { return wl.ClampEpoch(s.cfg.Period, k) }

// moveGap performs one gap movement in region r: one line copies into the
// gap slot (one device write).
func (s *Scheme) moveGap(r uint64) {
	reg := &s.regions[r]
	base := r * (s.k + 1)
	s.stats.Remaps++
	s.stats.SwapWrites++
	if reg.gap == 0 {
		// Wrap: the line in the last slot moves to slot 0; a full round has
		// completed, so the start register advances.
		s.dev.MoveData(base, base+s.k)
		reg.gap = s.k
		reg.start++
		if reg.start == s.k {
			reg.start = 0
		}
	} else {
		s.dev.MoveData(base+reg.gap, base+reg.gap-1)
		reg.gap--
	}
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string {
	if s.cfg.Regions == 1 {
		return "StartGap"
	}
	return "RBSG"
}

// Stats implements wl.Leveler.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// OverheadBits implements wl.Leveler: two registers plus a write counter
// per region.
func (s *Scheme) OverheadBits() uint64 {
	lineBits := uint64(1)
	for 1<<lineBits < s.k+1 {
		lineBits++
	}
	const counterBits = 32
	return s.cfg.Regions * (2*lineBits + counterBits)
}

// Partitions implements wl.Partitionable: each region keeps its own gap and
// start registers and never exchanges lines with another region.
func (s *Scheme) Partitions() uint64 { return s.cfg.Regions }

// PartitionExact implements wl.Partitionable. Multi-region instances (RBSG)
// decompose exactly at region boundaries. A single-region instance
// (StartGap) has one device-global gap; its sharded form runs one
// independent gap per bank — the bank-local modeling variant (DESIGN.md
// §15).
func (s *Scheme) PartitionExact() bool { return s.cfg.Regions > 1 }
