package startgap

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

func newScheme(lines, regions, period uint64) (*nvm.Device, *Scheme) {
	cfg := Config{Lines: lines, Regions: regions, Period: period}
	dev := wltest.Device(lines, cfg.ExtraLines())
	return dev, New(dev, cfg)
}

// referenceModel tracks the physical slot of every logical line of a single
// region explicitly, applying the same gap-movement rule, to validate the
// closed-form Translate formula.
type referenceModel struct {
	slot []int64 // physical slot -> logical line (-1 = gap)
	gap  uint64
	k    uint64
}

func newReference(k uint64) *referenceModel {
	m := &referenceModel{slot: make([]int64, k+1), gap: k, k: k}
	for i := uint64(0); i < k; i++ {
		m.slot[i] = int64(i)
	}
	m.slot[k] = -1
	return m
}

func (m *referenceModel) moveGap() {
	if m.gap == 0 {
		m.slot[0] = m.slot[m.k]
		m.slot[m.k] = -1
		m.gap = m.k
	} else {
		m.slot[m.gap] = m.slot[m.gap-1]
		m.slot[m.gap-1] = -1
		m.gap--
	}
}

func TestTranslateMatchesReferenceModel(t *testing.T) {
	const k = 7
	dev, s := newScheme(k, 1, 1) // move gap on every write
	ref := newReference(k)
	for step := 0; step < 200; step++ {
		for lma := uint64(0); lma < k; lma++ {
			p := s.Translate(lma)
			if ref.slot[p] != int64(lma) {
				t.Fatalf("step %d: Translate(%d)=%d but reference has %d there (gap=%d start=%d)",
					step, lma, p, ref.slot[p], s.regions[0].gap, s.regions[0].start)
			}
		}
		s.Access(trace.Write, uint64(step)%k) // triggers one gap move
		ref.moveGap()
	}
	_ = dev
}

func TestInitialIdentity(t *testing.T) {
	_, s := newScheme(64, 4, 100)
	for lma := uint64(0); lma < 64; lma++ {
		want := (lma/16)*17 + lma%16
		if got := s.Translate(lma); got != want {
			t.Fatalf("initial Translate(%d) = %d, want %d", lma, got, want)
		}
	}
}

func TestBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(512, 8, 3)
	wltest.Exercise(t, dev, s, 20000, 2)
}

func TestSingleRegionFullRotation(t *testing.T) {
	const k = 16
	dev, s := newScheme(k, 1, 1)
	wltest.Fill(dev, s)
	// k+1 gap moves = one full round: every line shifted by one slot.
	for i := 0; i < k+1; i++ {
		s.Access(trace.Write, 0)
	}
	if s.regions[0].start != 1 {
		t.Fatalf("start = %d after full round", s.regions[0].start)
	}
	wltest.CheckBijection(t, dev, s)
	wltest.CheckIntegrity(t, dev, s)
}

func TestLinesNeverLeaveRegion(t *testing.T) {
	// The RBSG weakness: translation is confined to the static region.
	dev, s := newScheme(256, 4, 2)
	wltest.Fill(dev, s)
	for i := 0; i < 5000; i++ {
		s.Access(trace.Write, 100) // region 1 (lines 64..127 -> phys 65..129)
		p := s.Translate(100)
		if p < 65 || p >= 130 {
			t.Fatalf("line escaped its region: pma %d", p)
		}
	}
	_ = dev
}

func TestRAAWearsOutSingleRegion(t *testing.T) {
	const lines, regions = 256, 4
	dev := nvm.New(nvm.Config{
		Lines: lines + regions, SpareLines: 0, Endurance: 500, TrackData: true,
	})
	s := New(dev, Config{Lines: lines, Regions: regions, Period: 4})
	var served uint64
	for dev.Alive() && served < 10*dev.IdealWrites() {
		s.Access(trace.Write, 7)
		served++
	}
	if dev.Alive() {
		t.Fatal("device survived RAA")
	}
	norm := float64(dev.Stats().TotalWrites) / float64(dev.IdealWrites())
	// Only one region (1/4 of the device) absorbs the attack; with swap
	// overhead the served fraction stays well under 2/4.
	if norm > 0.5 {
		t.Fatalf("RBSG survived RAA too well: %.1f%% of ideal", 100*norm)
	}
}

func TestRAADispersedWithinRegion(t *testing.T) {
	// Within its region, start-gap does disperse the attack: after enough
	// rounds every line of the region has taken writes.
	dev, s := newScheme(16, 1, 1)
	wltest.Fill(dev, s)
	for i := 0; i < 17*3; i++ {
		s.Access(trace.Write, 3)
	}
	counts := dev.WearCounts()
	zero := 0
	for _, c := range counts[:17] {
		if c == 0 {
			zero++
		}
	}
	if zero > 0 {
		t.Fatalf("%d lines untouched after 3 full gap rounds", zero)
	}
}

func TestWriteOverheadIsOneOverPeriod(t *testing.T) {
	dev, s := newScheme(1024, 4, 8)
	wltest.Fill(dev, s)
	for i := uint64(0); i < 80000; i++ {
		s.Access(trace.Write, i%1024)
	}
	oh := s.Stats().WriteOverhead()
	if oh < 0.115 || oh > 0.135 {
		t.Fatalf("write overhead %.4f, want ~1/8", oh)
	}
	_ = dev
}

func TestNames(t *testing.T) {
	_, single := newScheme(16, 1, 1)
	if single.Name() != "StartGap" {
		t.Fatal("single-region name")
	}
	_, multi := newScheme(64, 4, 1)
	if multi.Name() != "RBSG" {
		t.Fatal("multi-region name")
	}
	if multi.OverheadBits() == 0 {
		t.Fatal("zero overhead bits")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := wltest.Device(64, 64)
	for _, cfg := range []Config{
		{Lines: 64, Regions: 0, Period: 8},
		{Lines: 63, Regions: 4, Period: 8},
		{Lines: 64, Regions: 4, Period: 0},
		{Lines: 1 << 20, Regions: 4, Period: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}

// Property: the closed-form start-gap translation is a bijection into the
// region's physical slots, leaving exactly the gap slot free, for every
// (start, gap) register state.
func TestStartGapFormulaBijectionAllStates(t *testing.T) {
	const k = 12
	for start := uint64(0); start < k; start++ {
		for gap := uint64(0); gap <= k; gap++ {
			s := &Scheme{cfg: Config{Lines: k, Regions: 1, Period: 1}, k: k,
				regions: []region{{start: start, gap: gap}}}
			seen := make(map[uint64]bool, k)
			for la := uint64(0); la < k; la++ {
				p := s.Translate(la)
				if p > k || seen[p] {
					t.Fatalf("start=%d gap=%d: collision/overflow at la=%d -> %d", start, gap, la, p)
				}
				seen[p] = true
			}
			if seen[gap] {
				t.Fatalf("start=%d gap=%d: data mapped onto the gap slot", start, gap)
			}
		}
	}
}
