// Package wl defines the interface every wear-leveling scheme in this
// repository implements, the shared accounting they report, and the trivial
// identity scheme (the paper's "Baseline" without any wear leveling).
//
// A wear-leveling scheme is a time-varying bijection from logical line
// addresses (what the application sees) to physical line addresses (where
// data lives on the NVM device), plus a trigger rule that re-randomizes
// parts of the mapping after a configurable number of writes (the "swapping
// period" of Sec 2.1). Schemes own the device: every access — the user's
// demand access and the scheme's own data-exchange writes — is applied to
// the device by the scheme, so the device's per-line wear counters account
// for write amplification exactly.
package wl

import (
	"fmt"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
)

// Leveler is a wear-leveling scheme bound to a device.
type Leveler interface {
	// Access serves one demand request: it translates the logical address,
	// applies the access to the device, performs any wear-leveling work the
	// access triggers, and returns the physical address the demand access
	// landed on.
	Access(op trace.Op, lma uint64) (pma uint64)

	// Translate returns the current mapping of lma without side effects.
	Translate(lma uint64) (pma uint64)

	// Lines returns the size of the logical address space.
	Lines() uint64

	// Name identifies the scheme (used in experiment output).
	Name() string

	// Stats returns accounting counters.
	Stats() Stats

	// OverheadBits returns the scheme's on-chip (SRAM) storage requirement
	// in bits — the quantity Sec 4.5 and Fig 5 reason about.
	OverheadBits() uint64
}

// BatchLeveler marks schemes that can serve whole request batches per call
// — the batched epoch-stepped hot path. The contract is absolute:
// AccessBatch must be observably identical to calling Access once per
// request with a device-liveness check between requests, exactly as the
// scalar lifetime loop does. Batching may change how state is stepped
// (folding repeated accesses, deferring counter arithmetic to a swap
// boundary), never the modeled outcome: every counter, RNG draw and death
// ordering must match the scalar path bit for bit.
type BatchLeveler interface {
	Leveler

	// AccessBatch serves ops[i]/addrs[i] in order and returns how many
	// requests were processed: len(ops) normally, fewer when the device
	// died mid-batch (the killing access still completes its bookkeeping,
	// and counts, exactly like the scalar loop).
	AccessBatch(ops []trace.Op, addrs []uint64) int

	// Advance reports the scheme's preferred epoch length given k buffered
	// requests: how many requests the driver should hand to the next
	// AccessBatch call, derived from the scheme's swap interval so an epoch
	// spans a useful number of scheme steps without the driver outrunning
	// the request generator. Must return a value in [1, k] for k >= 1.
	Advance(k int) int
}

// ClampEpoch derives a batched-epoch length from a scheme's swap interval
// (in demand writes): enough requests to span several scheme steps, bounded
// above so the driver never prefetches unreasonably far ahead of the
// request generator, and never more than the k requests available. It is
// the shared Advance implementation for interval-triggered schemes.
func ClampEpoch(interval uint64, k int) int {
	const lo, hi = 64, 4096
	e := hi
	if interval < hi/16 {
		e = int(interval) * 16
	}
	if e < lo {
		e = lo
	}
	if k < e {
		e = k
	}
	if e < 1 {
		e = 1
	}
	return e
}

// Partitionable marks schemes that can run as one independent instance per
// bank of a sliced device — the contract behind sharded lifetime runs.
// Partitions reports the number of independent units the instance's own
// leveling decomposes into (regions for region-local schemes, segments for
// segment swapping, lines for Identity); shard gating divides the device at
// unit boundaries.
//
// PartitionExact distinguishes the two decomposition models:
//
//   - Exact (true): leveling decisions never cross a partition boundary, so
//     a union of per-bank instances takes the same decisions as one
//     whole-device instance under a bank-interleaved request order
//     (Identity, RBSG, the tiered NWL/SAWL controllers).
//   - Bank-local (false): the whole-device instance has globally-coupled
//     state — segment swapping's coldest-segment scan, TLSR's outer
//     refresh, PCM-S/MWSR's device-wide random exchange partners, a single
//     start-gap region — and the per-bank instances restrict that state's
//     scope to their own bank. This is a deliberate, documented modeling
//     change (DESIGN.md §15): each bank levels itself the way a
//     per-bank-controller device would, with exchange randomness drawn from
//     per-shard seed substreams, and sharded results match serial within a
//     tolerance rather than byte for byte.
//
// Either way, every scheme in the catalogue implements this interface; only
// geometry (unit counts that do not divide across shards) or workloads with
// global state force a serial fallback.
type Partitionable interface {
	Leveler
	Partitions() uint64
	PartitionExact() bool
}

// Stats is the shared accounting every scheme reports.
type Stats struct {
	DataWrites  uint64 // demand writes served
	DataReads   uint64 // demand reads served
	SwapWrites  uint64 // device writes caused by data exchanges
	MergeWrites uint64 // device writes caused by region merges (SAWL; background traffic)
	TableWrites uint64 // device writes to NVM-resident mapping tables (tiered schemes)
	Remaps      uint64 // mapping-change events (gap moves, refreshes, region swaps)
	CMTHits     uint64 // tiered schemes: on-chip mapping-cache hits
	CMTMisses   uint64 // tiered schemes: mapping-cache misses (NVM table lookup)

	MetaFaults   uint64 // mapping-table corruptions detected by checksum (fault injection)
	MetaRebuilds uint64 // table entries rebuilt from the inverse table
}

// Add accumulates o into s. Used to merge per-shard accounting into the
// global view; every field is a sum, so merging is exact.
func (s *Stats) Add(o Stats) {
	s.DataWrites += o.DataWrites
	s.DataReads += o.DataReads
	s.SwapWrites += o.SwapWrites
	s.MergeWrites += o.MergeWrites
	s.TableWrites += o.TableWrites
	s.Remaps += o.Remaps
	s.CMTHits += o.CMTHits
	s.CMTMisses += o.CMTMisses
	s.MetaFaults += o.MetaFaults
	s.MetaRebuilds += o.MetaRebuilds
}

// WriteOverhead returns extra writes as a fraction of demand writes — the
// percentage the paper annotates next to each swapping period in Fig 3/4.
func (s Stats) WriteOverhead() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return float64(s.SwapWrites+s.MergeWrites+s.TableWrites) / float64(s.DataWrites)
}

// HitRate returns the mapping-cache hit rate for tiered schemes (1 if the
// scheme has no cache).
func (s Stats) HitRate() float64 {
	total := s.CMTHits + s.CMTMisses
	if total == 0 {
		return 1
	}
	return float64(s.CMTHits) / float64(total)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("stats{w=%d r=%d swap=%d merge=%d table=%d remaps=%d overhead=%.2f%% hit=%.1f%%}",
		s.DataWrites, s.DataReads, s.SwapWrites, s.MergeWrites, s.TableWrites, s.Remaps,
		100*s.WriteOverhead(), 100*s.HitRate())
}

// Identity is the no-wear-leveling baseline: logical address = physical
// address. Its lifetime under any non-uniform workload is the paper's
// "Baseline" bar in Fig 16.
type Identity struct {
	dev   *nvm.Device
	lines uint64
	stats Stats
}

// NewIdentity creates the baseline over the device's full line space.
func NewIdentity(dev *nvm.Device) *Identity {
	return &Identity{dev: dev, lines: dev.Lines()}
}

// Access implements Leveler.
func (l *Identity) Access(op trace.Op, lma uint64) uint64 {
	if op == trace.Write {
		l.stats.DataWrites++
		l.dev.Write(lma)
	} else {
		l.stats.DataReads++
		l.dev.Read(lma)
	}
	return lma
}

// AccessBatch implements BatchLeveler: with no mapping to maintain, runs of
// repeated requests fold directly into the device's run primitives.
func (l *Identity) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !l.dev.Alive() {
			return i
		}
		op, a := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == a {
			j++
		}
		c := uint64(j - i)
		if op == trace.Write {
			served := l.dev.WriteRun(a, c)
			applied := c
			if served < c {
				applied = served + 1 // the killing write's access still counts
			}
			l.stats.DataWrites += applied
			i += int(applied)
		} else {
			issued := l.dev.ReadRun(a, c)
			l.stats.DataReads += issued
			i += int(issued)
		}
	}
	return n
}

// Advance implements BatchLeveler. The baseline has no swap interval, so any
// epoch length works; take everything buffered.
func (l *Identity) Advance(k int) int { return k }

// Translate implements Leveler.
func (l *Identity) Translate(lma uint64) uint64 { return lma }

// Lines implements Leveler.
func (l *Identity) Lines() uint64 { return l.lines }

// Name implements Leveler.
func (l *Identity) Name() string { return "Baseline" }

// Stats implements Leveler.
func (l *Identity) Stats() Stats { return l.stats }

// OverheadBits implements Leveler.
func (l *Identity) OverheadBits() uint64 { return 0 }

// Partitions implements Partitionable: every line is independent.
func (l *Identity) Partitions() uint64 { return l.lines }

// PartitionExact implements Partitionable: with no mapping at all, any
// slicing is exact.
func (l *Identity) PartitionExact() bool { return true }
