// Package wl defines the interface every wear-leveling scheme in this
// repository implements, the shared accounting they report, and the trivial
// identity scheme (the paper's "Baseline" without any wear leveling).
//
// A wear-leveling scheme is a time-varying bijection from logical line
// addresses (what the application sees) to physical line addresses (where
// data lives on the NVM device), plus a trigger rule that re-randomizes
// parts of the mapping after a configurable number of writes (the "swapping
// period" of Sec 2.1). Schemes own the device: every access — the user's
// demand access and the scheme's own data-exchange writes — is applied to
// the device by the scheme, so the device's per-line wear counters account
// for write amplification exactly.
package wl

import (
	"fmt"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
)

// Leveler is a wear-leveling scheme bound to a device.
type Leveler interface {
	// Access serves one demand request: it translates the logical address,
	// applies the access to the device, performs any wear-leveling work the
	// access triggers, and returns the physical address the demand access
	// landed on.
	Access(op trace.Op, lma uint64) (pma uint64)

	// Translate returns the current mapping of lma without side effects.
	Translate(lma uint64) (pma uint64)

	// Lines returns the size of the logical address space.
	Lines() uint64

	// Name identifies the scheme (used in experiment output).
	Name() string

	// Stats returns accounting counters.
	Stats() Stats

	// OverheadBits returns the scheme's on-chip (SRAM) storage requirement
	// in bits — the quantity Sec 4.5 and Fig 5 reason about.
	OverheadBits() uint64
}

// Partitionable marks schemes whose leveling decisions never cross a
// partition boundary: the scheme is a product of independent sub-schemes
// over contiguous address ranges, so running one instance per shard over a
// sliced device is simulation-identical to one instance over the whole
// device. Partitions reports the number of independent units (regions for
// region-local schemes, lines for Identity); a sharded run is exact iff the
// unit count divides evenly across shards. Globally-coupled schemes
// (segment-swap's coldest-segment scan, PCM-S/MWSR global exchanges, TLSR's
// outer refresh) must NOT implement this.
type Partitionable interface {
	Leveler
	Partitions() uint64
}

// Stats is the shared accounting every scheme reports.
type Stats struct {
	DataWrites  uint64 // demand writes served
	DataReads   uint64 // demand reads served
	SwapWrites  uint64 // device writes caused by data exchanges
	MergeWrites uint64 // device writes caused by region merges (SAWL; background traffic)
	TableWrites uint64 // device writes to NVM-resident mapping tables (tiered schemes)
	Remaps      uint64 // mapping-change events (gap moves, refreshes, region swaps)
	CMTHits     uint64 // tiered schemes: on-chip mapping-cache hits
	CMTMisses   uint64 // tiered schemes: mapping-cache misses (NVM table lookup)

	MetaFaults   uint64 // mapping-table corruptions detected by checksum (fault injection)
	MetaRebuilds uint64 // table entries rebuilt from the inverse table
}

// Add accumulates o into s. Used to merge per-shard accounting into the
// global view; every field is a sum, so merging is exact.
func (s *Stats) Add(o Stats) {
	s.DataWrites += o.DataWrites
	s.DataReads += o.DataReads
	s.SwapWrites += o.SwapWrites
	s.MergeWrites += o.MergeWrites
	s.TableWrites += o.TableWrites
	s.Remaps += o.Remaps
	s.CMTHits += o.CMTHits
	s.CMTMisses += o.CMTMisses
	s.MetaFaults += o.MetaFaults
	s.MetaRebuilds += o.MetaRebuilds
}

// WriteOverhead returns extra writes as a fraction of demand writes — the
// percentage the paper annotates next to each swapping period in Fig 3/4.
func (s Stats) WriteOverhead() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return float64(s.SwapWrites+s.MergeWrites+s.TableWrites) / float64(s.DataWrites)
}

// HitRate returns the mapping-cache hit rate for tiered schemes (1 if the
// scheme has no cache).
func (s Stats) HitRate() float64 {
	total := s.CMTHits + s.CMTMisses
	if total == 0 {
		return 1
	}
	return float64(s.CMTHits) / float64(total)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("stats{w=%d r=%d swap=%d merge=%d table=%d remaps=%d overhead=%.2f%% hit=%.1f%%}",
		s.DataWrites, s.DataReads, s.SwapWrites, s.MergeWrites, s.TableWrites, s.Remaps,
		100*s.WriteOverhead(), 100*s.HitRate())
}

// Identity is the no-wear-leveling baseline: logical address = physical
// address. Its lifetime under any non-uniform workload is the paper's
// "Baseline" bar in Fig 16.
type Identity struct {
	dev   *nvm.Device
	lines uint64
	stats Stats
}

// NewIdentity creates the baseline over the device's full line space.
func NewIdentity(dev *nvm.Device) *Identity {
	return &Identity{dev: dev, lines: dev.Lines()}
}

// Access implements Leveler.
func (l *Identity) Access(op trace.Op, lma uint64) uint64 {
	if op == trace.Write {
		l.stats.DataWrites++
		l.dev.Write(lma)
	} else {
		l.stats.DataReads++
		l.dev.Read(lma)
	}
	return lma
}

// Translate implements Leveler.
func (l *Identity) Translate(lma uint64) uint64 { return lma }

// Lines implements Leveler.
func (l *Identity) Lines() uint64 { return l.lines }

// Name implements Leveler.
func (l *Identity) Name() string { return "Baseline" }

// Stats implements Leveler.
func (l *Identity) Stats() Stats { return l.stats }

// OverheadBits implements Leveler.
func (l *Identity) OverheadBits() uint64 { return 0 }

// Partitions implements Partitionable: every line is independent.
func (l *Identity) Partitions() uint64 { return l.lines }
