// Package wltest provides the invariant checks shared by every
// wear-leveling scheme's tests: the logical→physical map must always be a
// bijection, and data written at a logical address must survive arbitrary
// interleavings of demand accesses and wear-leveling data exchanges.
package wltest

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Tag returns the shadow value associated with a logical address. Nonzero
// so it is distinguishable from unwritten lines.
func Tag(lma uint64) uint64 { return lma ^ 0xa5a5a5a5a5a5a5a5 }

// Fill seeds the device with each logical line's tag at its current
// physical location. The device must have been created with TrackData.
func Fill(dev *nvm.Device, lv wl.Leveler) {
	for lma := uint64(0); lma < lv.Lines(); lma++ {
		dev.WriteData(lv.Translate(lma), Tag(lma))
	}
}

// CheckBijection verifies that every logical line maps to a distinct,
// in-range physical line.
func CheckBijection(t *testing.T, dev *nvm.Device, lv wl.Leveler) {
	t.Helper()
	seen := make(map[uint64]uint64, lv.Lines())
	for lma := uint64(0); lma < lv.Lines(); lma++ {
		pma := lv.Translate(lma)
		if pma >= dev.Lines() {
			t.Fatalf("%s: Translate(%d) = %d outside device (%d lines)",
				lv.Name(), lma, pma, dev.Lines())
		}
		if prev, dup := seen[pma]; dup {
			t.Fatalf("%s: collision: lma %d and %d both map to pma %d",
				lv.Name(), prev, lma, pma)
		}
		seen[pma] = lma
	}
}

// CheckIntegrity verifies that every logical line still reads back its tag.
// Fill must have been called before the accesses under test.
func CheckIntegrity(t *testing.T, dev *nvm.Device, lv wl.Leveler) {
	t.Helper()
	for lma := uint64(0); lma < lv.Lines(); lma++ {
		pma := lv.Translate(lma)
		if got := dev.Peek(pma); got != Tag(lma) {
			t.Fatalf("%s: lma %d (pma %d): data %#x, want %#x",
				lv.Name(), lma, pma, got, Tag(lma))
		}
	}
}

// Exercise drives n random accesses (80%% writes, Zipf-skewed addresses so
// wear-leveling triggers fire on hot lines) through the scheme, checking
// the bijection periodically and data integrity at the end.
func Exercise(t *testing.T, dev *nvm.Device, lv wl.Leveler, n int, seed uint64) {
	t.Helper()
	Fill(dev, lv)
	CheckBijection(t, dev, lv)
	src := rng.New(seed)
	z := rng.NewZipf(src.Fork(), lv.Lines(), 1.1)
	checkEvery := n / 8
	if checkEvery == 0 {
		checkEvery = 1
	}
	for i := 0; i < n; i++ {
		op := trace.Read
		if src.Bool(0.8) {
			op = trace.Write
		}
		lma := z.Next()
		pma := lv.Access(op, lma)
		if want := lv.Translate(lma); pma != want {
			// Access may remap after serving; the served pma must have been
			// the mapping at access time, which we can only bound-check.
			if pma >= dev.Lines() {
				t.Fatalf("%s: access landed outside device: %d", lv.Name(), pma)
			}
			_ = want
		}
		if (i+1)%checkEvery == 0 {
			CheckBijection(t, dev, lv)
		}
	}
	CheckBijection(t, dev, lv)
	CheckIntegrity(t, dev, lv)
}

// Device creates a TrackData device big enough for integrity testing, with
// endurance high enough that wear-out never interferes.
func Device(lines, extra uint64) *nvm.Device {
	return nvm.New(nvm.Config{
		Lines:      lines + extra,
		SpareLines: 0,
		Endurance:  1 << 30,
		TrackData:  true,
	})
}

// BenchDevice creates a wear-proof device without data tracking for
// micro-benchmarks (TrackData would charge every access for the shadow
// array, distorting the request-path cost under measurement).
func BenchDevice(lines uint64) *nvm.Device {
	return nvm.New(nvm.Config{Lines: lines, Endurance: 1 << 30})
}

// benchRunLen matches the BPA workload's default repeat count: the batch
// path's run detection targets exactly this shape.
const benchRunLen = 64

// benchRequests precomputes n requests as 64-write runs to random lines.
func benchRequests(lines uint64, n int) ([]trace.Op, []uint64) {
	src := rng.New(1)
	ops := make([]trace.Op, n)
	addrs := make([]uint64, n)
	for i := 0; i < n; {
		lma := src.Uint64n(lines)
		for j := 0; j < benchRunLen && i < n; j++ {
			ops[i] = trace.Write
			addrs[i] = lma
			i++
		}
	}
	return ops, addrs
}

// BenchAccess benchmarks a scheme's request path on the BPA request shape
// (64-write runs to random lines): once through the scalar Access loop and,
// when the scheme implements wl.BatchLeveler, once through AccessBatch in
// scheme-preferred epochs. mk must return a fresh scheme on a wear-proof
// device (BenchDevice), so the run never dies.
func BenchAccess(b *testing.B, mk func() wl.Leveler) {
	b.Run("scalar", func(b *testing.B) {
		lv := mk()
		ops, addrs := benchRequests(lv.Lines(), b.N)
		b.ResetTimer()
		for i := range ops {
			lv.Access(ops[i], addrs[i])
		}
	})
	b.Run("batch", func(b *testing.B) {
		lv := mk()
		bl, ok := lv.(wl.BatchLeveler)
		if !ok {
			b.Skipf("%s does not implement wl.BatchLeveler", lv.Name())
		}
		ops, addrs := benchRequests(lv.Lines(), b.N)
		b.ResetTimer()
		for used := 0; used < len(ops); {
			k := bl.Advance(len(ops) - used)
			if k < 1 {
				k = 1
			}
			if k > len(ops)-used {
				k = len(ops) - used
			}
			n := bl.AccessBatch(ops[used:used+k], addrs[used:used+k])
			if n == 0 {
				b.Fatalf("%s: AccessBatch made no progress (device died?)", lv.Name())
			}
			used += n
		}
	})
}
