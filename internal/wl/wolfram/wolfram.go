// Package wolfram implements a WoLFRaM-style wear-leveling scheme
// [Gómez-Luna et al., WoLFRaM — see PAPERS.md]: a programmable resistive
// address decoder (PRAD) remaps individual lines by reprogramming decoder
// match entries, which makes remapping effectively free of indirection
// tables — the decoder *is* the mapping.
//
// Wear leveling rides on that primitive: every Period demand writes, the
// decoder swaps the just-written line with a uniformly random partner line
// (write-access pattern randomization). Because remapping is line-granular
// a swap moves just two lines, so the write overhead is 2/Period — far
// finer than region- or page-granular schemes.
//
// WoLFRaM's second pitch is integrated fault tolerance: when the device
// retires a worn or faulted line to a spare, the very same decoder entry
// absorbs the replacement. This implementation models that by registering
// an nvm retire hook and folding the device's spare remaps into the
// scheme's Remaps counter — one indirection layer shared by wear leveling
// and fault remapping, instead of a second table stacked on the spare area
// (no TableWrites are charged, matching the decoder's in-place
// reprogramming).
package wolfram

import (
	"nvmwear/internal/addr"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
)

// Config parameterizes the scheme.
type Config struct {
	Lines  uint64 // logical lines (power of two)
	Period uint64 // swap the written line with a random partner per Period demand writes
	Seed   uint64
}

// Scheme is a wolfram instance bound to a device.
type Scheme struct {
	cfg Config
	dev *nvm.Device

	perm    []uint32 // logical line -> physical line (the decoder state)
	inv     []uint32 // physical line -> logical line
	counter uint64   // demand writes since the last swap
	src     *rng.Source

	stats wl.Stats
}

// New creates the scheme over dev and registers the retire hook that folds
// the device's spare remaps into the decoder's remap accounting.
func New(dev *nvm.Device, cfg Config) *Scheme {
	if !addr.IsPow2(cfg.Lines) {
		panic("wolfram: Lines must be a power of two")
	}
	if cfg.Period == 0 {
		panic("wolfram: zero period")
	}
	if dev.Lines() < cfg.Lines {
		panic("wolfram: device smaller than logical space")
	}
	s := &Scheme{
		cfg:  cfg,
		dev:  dev,
		perm: make([]uint32, cfg.Lines),
		inv:  make([]uint32, cfg.Lines),
		src:  rng.New(cfg.Seed ^ 0x3fb9d0c5a7f1744d),
	}
	for i := uint64(0); i < cfg.Lines; i++ {
		s.perm[i] = uint32(i)
		s.inv[i] = uint32(i)
	}
	// Spare replacements reprogram the same decoder entries the wear
	// leveler uses: count them as decoder remaps rather than modeling a
	// second indirection over the spare area.
	dev.SetRetireHook(func(uint64) { s.stats.Remaps++ })
	return s
}

// Translate implements wl.Leveler.
func (s *Scheme) Translate(lma uint64) uint64 { return uint64(s.perm[lma]) }

// Access implements wl.Leveler.
func (s *Scheme) Access(op trace.Op, lma uint64) uint64 {
	pma := s.Translate(lma)
	if op == trace.Read {
		s.stats.DataReads++
		s.dev.Read(pma)
		return pma
	}
	s.stats.DataWrites++
	s.dev.Write(pma)
	s.counter++
	if s.counter >= s.cfg.Period {
		s.counter = 0
		s.swap(lma)
	}
	return pma
}

// AccessBatch implements wl.BatchLeveler. The mapping only changes at a
// swap, and the swap interval is a global write counter, so a run of
// identical writes folds into one nvm.WriteRun bounded by the distance to
// the next swap.
func (s *Scheme) AccessBatch(ops []trace.Op, addrs []uint64) int {
	n := len(ops)
	i := 0
	for i < n {
		if !s.dev.Alive() {
			return i
		}
		op, lma := ops[i], addrs[i]
		j := i + 1
		for j < n && ops[j] == op && addrs[j] == lma {
			j++
		}
		c := uint64(j - i)
		if op == trace.Read {
			issued := s.dev.ReadRun(s.Translate(lma), c)
			s.stats.DataReads += issued
			i += int(issued)
			continue
		}
		if d := s.cfg.Period - s.counter; d < c {
			c = d
		}
		served := s.dev.WriteRun(s.Translate(lma), c)
		applied := c
		if served < c {
			applied = served + 1 // the killing write's bookkeeping still runs
		}
		s.stats.DataWrites += applied
		s.counter += applied
		if s.counter >= s.cfg.Period {
			s.counter = 0
			s.swap(lma)
		}
		i += int(applied)
	}
	return n
}

// Advance implements wl.BatchLeveler: epochs sized from the swap interval.
func (s *Scheme) Advance(k int) int { return wl.ClampEpoch(s.cfg.Period, k) }

// swap exchanges the just-written logical line with a uniformly random
// partner by reprogramming their two decoder entries. A self-partner draw
// reprograms the entry onto itself: no data moves.
func (s *Scheme) swap(lma uint64) {
	s.stats.Remaps++
	partner := s.src.Uint64n(s.cfg.Lines)
	if partner == lma {
		return
	}
	pa, pb := uint64(s.perm[lma]), uint64(s.perm[partner])
	da := s.dev.ReadData(pa)
	db := s.dev.ReadData(pb)
	s.perm[lma], s.perm[partner] = s.perm[partner], s.perm[lma]
	s.inv[pa], s.inv[pb] = s.inv[pb], s.inv[pa]
	s.dev.WriteData(pb, da)
	s.dev.WriteData(pa, db)
	s.stats.SwapWrites += 2
}

// Lines implements wl.Leveler.
func (s *Scheme) Lines() uint64 { return s.cfg.Lines }

// Name implements wl.Leveler.
func (s *Scheme) Name() string { return "WoLFRaM" }

// Stats implements wl.Leveler.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// OverheadBits implements wl.Leveler: the mapping lives *in* the address
// decoder, not in a table the controller must carry; the only conventional
// state is the swap counter and period register.
func (s *Scheme) OverheadBits() uint64 { return 64 }

// Partitions implements wl.Partitionable: the decoder remaps single lines,
// so any line-aligned device slice is a closed address space.
func (s *Scheme) Partitions() uint64 { return s.cfg.Lines }

// PartitionExact implements wl.Partitionable: swap partners are drawn
// uniformly over the whole instance's lines, so per-bank instances draw
// bank-local partners from their own seed substream — the bank-local
// modeling variant (DESIGN.md §15), not an exact decomposition.
func (s *Scheme) PartitionExact() bool { return false }
