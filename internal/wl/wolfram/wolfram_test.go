package wolfram

import (
	"testing"

	"nvmwear/internal/nvm"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl/wltest"
)

func newScheme(lines, period, seed uint64) (*nvm.Device, *Scheme) {
	dev := wltest.Device(lines, 0)
	return dev, New(dev, Config{Lines: lines, Period: period, Seed: seed})
}

func TestInitialIdentity(t *testing.T) {
	_, s := newScheme(256, 8, 1)
	for lma := uint64(0); lma < 256; lma++ {
		if s.Translate(lma) != lma {
			t.Fatalf("initial mapping not identity at %d", lma)
		}
	}
}

func TestBijectionAndIntegrityUnderLoad(t *testing.T) {
	dev, s := newScheme(512, 2, 3)
	wltest.Exercise(t, dev, s, 30000, 4)
}

func TestSwapDispersesAttackedLine(t *testing.T) {
	dev, s := newScheme(1024, 1, 5)
	wltest.Fill(dev, s)
	homes := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		s.Access(trace.Write, 17)
		homes[s.Translate(17)] = true
	}
	// Uniform random partners at line granularity: the attacked line should
	// visit a large share of the 1024 physical lines.
	if len(homes) < 400 {
		t.Fatalf("attacked line visited only %d physical lines", len(homes))
	}
}

func TestWriteOverheadIsTwoOverPeriod(t *testing.T) {
	dev, s := newScheme(4096, 8, 7)
	wltest.Fill(dev, s)
	for i := uint64(0); i < 400000; i++ {
		s.Access(trace.Write, i%4096)
	}
	oh := s.Stats().WriteOverhead()
	if oh < 0.20 || oh > 0.30 {
		t.Fatalf("overhead %.4f, want ~2/8", oh)
	}
	_ = dev
}

// The decoder absorbs the device's spare remaps: retiring a line to a spare
// shows up in the scheme's Remaps with no TableWrites — WoLFRaM's
// integrated fault tolerance, not a second indirection layer.
func TestSpareRemapsFoldIntoDecoder(t *testing.T) {
	dev := nvm.New(nvm.Config{Lines: 64, SpareLines: 4, Endurance: 10, TrackData: true})
	s := New(dev, Config{Lines: 64, Period: 1 << 40, Seed: 1}) // no wear-leveling swaps
	before := s.Stats().Remaps
	for i := 0; i < 25; i++ { // endurance 10: two spare consumptions by write 21
		s.Access(trace.Write, 9)
	}
	st := s.Stats()
	if st.Remaps-before < 2 {
		t.Fatalf("decoder saw %d remaps, want the device's spare replacements", st.Remaps-before)
	}
	if st.TableWrites != 0 {
		t.Fatalf("TableWrites = %d; decoder reprogramming charges no table writes", st.TableWrites)
	}
}

func TestLowOverheadMetadata(t *testing.T) {
	_, s := newScheme(256, 8, 13)
	if s.OverheadBits() != 64 {
		t.Fatalf("OverheadBits = %d; the mapping lives in the decoder", s.OverheadBits())
	}
	if s.Name() != "WoLFRaM" || s.Lines() != 256 {
		t.Fatal("metadata")
	}
	if s.Partitions() != 256 || s.PartitionExact() {
		t.Fatal("partitioning contract")
	}
}

func TestConstructorPanics(t *testing.T) {
	dev := wltest.Device(64, 0)
	for _, cfg := range []Config{
		{Lines: 63, Period: 8},
		{Lines: 64, Period: 0},
		{Lines: 256, Period: 8}, // device too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(dev, cfg)
		}()
	}
}
