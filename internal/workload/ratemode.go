package workload

import (
	"nvmwear/internal/trace"
)

// RateMode models the paper's evaluation methodology (Sec 4.1): "we perform
// evaluations by executing the benchmark in rate mode, where all the eight
// cores execute the same benchmark". Each core runs an independent copy of
// the profile in its own slice of the logical address space; requests
// round-robin across the cores, as an 8-core memory controller would see
// them.
type RateMode struct {
	gens []*Gen
	next int
	base []uint64
}

// NewRateMode instantiates `copies` independent instances of the profile
// over equal partitions of a `lines`-line space. copies must divide the
// space into partitions of at least one page.
func NewRateMode(p Profile, seed, lines uint64, copies int) *RateMode {
	if copies <= 0 {
		panic("workload: RateMode needs at least one copy")
	}
	part := lines / uint64(copies)
	if part < PageLines {
		panic("workload: RateMode partitions smaller than one page")
	}
	r := &RateMode{
		gens: make([]*Gen, copies),
		base: make([]uint64, copies),
	}
	for i := 0; i < copies; i++ {
		// Distinct seed per core: rate mode runs the same program, but the
		// copies are not in lockstep.
		r.gens[i] = p.New(seed+uint64(i)*0x9e3779b97f4a7c15, part)
		r.base[i] = uint64(i) * part
	}
	return r
}

// Next implements trace.Stream.
func (r *RateMode) Next() trace.Request {
	i := r.next
	r.next++
	if r.next == len(r.gens) {
		r.next = 0
	}
	req := r.gens[i].Next()
	req.Addr += r.base[i]
	return req
}

// Copies returns the number of benchmark instances.
func (r *RateMode) Copies() int { return len(r.gens) }
