package workload

import (
	"testing"

	"nvmwear/internal/trace"
)

func TestRateModePartitionsDisjoint(t *testing.T) {
	p, _ := ProfileByName("bzip2")
	r := NewRateMode(p, 3, 1<<16, 8)
	if r.Copies() != 8 {
		t.Fatalf("copies = %d", r.Copies())
	}
	part := uint64(1<<16) / 8
	counts := make([]int, 8)
	for i := 0; i < 80000; i++ {
		req := r.Next()
		if req.Addr >= 1<<16 {
			t.Fatalf("address %d out of space", req.Addr)
		}
		counts[req.Addr/part]++
	}
	// Round-robin issue: each partition must receive exactly 1/8 of the
	// requests.
	for i, c := range counts {
		if c != 10000 {
			t.Fatalf("partition %d received %d requests, want 10000", i, c)
		}
	}
}

func TestRateModeCopiesNotLockstep(t *testing.T) {
	p, _ := ProfileByName("gcc")
	r := NewRateMode(p, 7, 1<<16, 2)
	part := uint64(1<<16) / 2
	same := 0
	for i := 0; i < 1000; i++ {
		a := r.Next()
		b := r.Next()
		if a.Addr == b.Addr-part && a.Op == b.Op {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("copies in lockstep: %d/1000 mirrored requests", same)
	}
}

func TestRateModeDeterministic(t *testing.T) {
	p, _ := ProfileByName("mcf")
	a := NewRateMode(p, 9, 1<<14, 4)
	b := NewRateMode(p, 9, 1<<14, 4)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestRateModePanics(t *testing.T) {
	p, _ := ProfileByName("lbm")
	for _, f := range []func(){
		func() { NewRateMode(p, 1, 1<<16, 0) },
		func() { NewRateMode(p, 1, 256, 8) }, // 32-line partitions < one page
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestRateModeIsAStream(t *testing.T) {
	p, _ := ProfileByName("milc")
	var s trace.Stream = NewRateMode(p, 1, 1<<14, 2)
	if s.Next().Addr >= 1<<14 {
		t.Fatal("stream contract")
	}
}
