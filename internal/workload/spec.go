package workload

import (
	"fmt"
	"sort"

	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
)

// PageLines is the natural spatial-locality granule of the synthetic SPEC
// generators: 64 lines = one 4 KB page of 64 B cache lines. Applications
// touch memory page-wise, which is why the paper's coarse 64-line
// wear-leveling granularity (NWL-64) enjoys high CMT hit rates while the
// 4-line granularity (NWL-4) fragments each page across 16 table entries.
const PageLines = 64

// Profile parameterizes one synthetic SPEC CPU2006-like application.
type Profile struct {
	Name string

	// Pages is the canonical footprint in 4 KB pages (rounded up to a power
	// of two at generator construction). The footprint shrinks to fit when
	// the simulated logical space is smaller.
	Pages uint64

	// ZipfAlpha is the popularity skew across pages. Higher = tighter hot
	// working set.
	ZipfAlpha float64

	// HotPages/HotProb add an extra-hot subset: with probability HotProb a
	// request goes to one of HotPages pages (Zipf-selected). Models
	// benchmarks like hmmer/gromacs whose writes concentrate on a small
	// fraction of the space (paper Sec 4.3).
	HotPages uint64
	HotProb  float64

	// ScanProb is the fraction of requests served from a global sequential
	// scan cursor — streaming benchmarks (lbm, libquantum, leslie3d).
	ScanProb float64

	// SeqRun makes a non-scan access start a sequential run of this many
	// lines with probability SeqProb (spatial locality bursts).
	SeqRun  int
	SeqProb float64

	// WriteRatio is the store fraction of requests.
	WriteRatio float64

	// PhaseEvery rotates the page permutation every PhaseEvery requests
	// (0 = stable), modeling program phase changes; PhaseJump is the
	// rotation amount as a fraction of the footprint.
	PhaseEvery uint64
	PhaseJump  float64
}

// Gen is an instantiated Profile: a deterministic trace.Stream.
type Gen struct {
	p         Profile
	src       *rng.Source
	zipf      *rng.Zipf
	hotZipf   *rng.Zipf
	pages     uint64 // power of two
	pageMask  uint64
	permMul   uint64
	permAdd   uint64
	lines     uint64
	scanCur   uint64
	runLeft   int
	runCur    uint64
	count     uint64
	phaseBase uint64
}

// New instantiates the profile over a logical address space of `lines`
// lines. The generator never emits an address >= lines.
func (p Profile) New(seed, lines uint64) *Gen {
	if lines < PageLines {
		panic(fmt.Sprintf("workload: address space %d smaller than one page", lines))
	}
	pages := nextPow2(p.Pages)
	if pages == 0 {
		pages = 1
	}
	maxPages := prevPow2(lines / PageLines)
	if pages > maxPages {
		pages = maxPages
	}
	src := rng.New(seed ^ hashName(p.Name))
	g := &Gen{
		p:        p,
		src:      src,
		pages:    pages,
		pageMask: pages - 1,
		lines:    lines,
		// Odd multiplier => bijection on the power-of-two page space; it
		// scatters Zipf-popular ranks across the footprint so hot pages are
		// not artificially contiguous.
		permMul: src.Uint64() | 1,
		permAdd: src.Uint64(),
	}
	g.zipf = rng.NewZipf(src.Fork(), pages, p.ZipfAlpha)
	hot := p.HotPages
	if hot == 0 {
		hot = 1
	}
	if hot > pages {
		hot = pages
	}
	g.hotZipf = rng.NewZipf(src.Fork(), hot, 1.1)
	return g
}

// hashName folds the profile name into the seed so that two profiles run
// with the same seed still draw independent streams.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

func prevPow2(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	p := uint64(1)
	for p<<1 <= v && p<<1 != 0 {
		p <<= 1
	}
	return p
}

// Footprint returns the instantiated footprint in lines.
func (g *Gen) Footprint() uint64 { return g.pages * PageLines }

// permPage maps a Zipf rank to a scattered page index.
func (g *Gen) permPage(rank uint64) uint64 {
	return (rank*g.permMul + g.permAdd + g.phaseBase) & g.pageMask
}

// Next implements trace.Stream.
func (g *Gen) Next() trace.Request {
	g.count++
	if g.p.PhaseEvery != 0 && g.count%g.p.PhaseEvery == 0 {
		jump := uint64(float64(g.pages) * g.p.PhaseJump)
		if jump == 0 {
			jump = 1
		}
		g.phaseBase = (g.phaseBase + jump) & g.pageMask
		g.runLeft = 0
	}

	op := trace.Read
	if g.src.Bool(g.p.WriteRatio) {
		op = trace.Write
	}

	// Continue an in-progress sequential run.
	if g.runLeft > 0 {
		g.runLeft--
		g.runCur++
		if g.runCur >= g.Footprint() {
			g.runCur = 0
		}
		return trace.Request{Op: op, Addr: g.runCur}
	}

	// Global streaming scan.
	if g.p.ScanProb > 0 && g.src.Bool(g.p.ScanProb) {
		a := g.scanCur
		g.scanCur++
		if g.scanCur >= g.Footprint() {
			g.scanCur = 0
		}
		return trace.Request{Op: op, Addr: a}
	}

	// Locality-driven page pick.
	var page uint64
	if g.p.HotProb > 0 && g.src.Bool(g.p.HotProb) {
		page = g.permPage(g.hotZipf.Next())
	} else {
		page = g.permPage(g.zipf.Next())
	}
	addr := page*PageLines + g.src.Uint64n(PageLines)

	if g.p.SeqProb > 0 && g.p.SeqRun > 1 && g.src.Bool(g.p.SeqProb) {
		g.runLeft = g.p.SeqRun - 1
		g.runCur = addr
	}
	return trace.Request{Op: op, Addr: addr}
}

// NextBatch implements trace.BatchStream. The generator's per-request state
// machine (phases, runs, scans) does not vectorize, but the direct method
// call still skips the per-request interface dispatch of the scalar path.
func (g *Gen) NextBatch(ops []trace.Op, addrs []uint64) int {
	for i := range ops {
		r := g.Next()
		ops[i] = r.Op
		addrs[i] = r.Addr
	}
	return len(ops)
}

// SpecProfiles are the 14 SPEC CPU2006 applications the paper evaluates
// (Sec 4.1), modeled by locality class:
//
//   - compact hot working sets (bzip2, milc, namd): high CMT hit rates even
//     at fine granularity; slight IPC loss in Fig 17.
//   - broad, fragmented working sets (gcc, mcf, gobmk, sjeng, soplex,
//     cactusADM): fine-granularity tables thrash (low NWL-4 hit rate), the
//     cases SAWL's region-merge is designed for.
//   - streaming (libquantum, lbm, leslie3d): sequential sweeps with little
//     reuse.
//   - concentrated writers (gromacs, hmmer): writes hammer a tiny hot set —
//     worst lifetime under AWL schemes (paper: 10% of ideal under TLSR).
//
// Calibration targets from the paper: NWL-4 / NWL-64 average hit rates of
// bzip2 86.4/98.9 %, cactusADM 63/95.2 %, gcc 58.3/98.9 % (Fig 14) with a
// 256 KB CMT, and the Fig 16/17 orderings.
var SpecProfiles = []Profile{
	{Name: "bzip2", Pages: 4096, ZipfAlpha: 1.25, SeqRun: 16, SeqProb: 0.08, WriteRatio: 0.35, PhaseEvery: 40 << 20, PhaseJump: 0.25},
	{Name: "gcc", Pages: 8192, ZipfAlpha: 1.05, SeqRun: 8, SeqProb: 0.04, WriteRatio: 0.30, PhaseEvery: 30 << 20, PhaseJump: 0.30},
	{Name: "mcf", Pages: 131072, ZipfAlpha: 0.70, SeqRun: 2, SeqProb: 0.01, WriteRatio: 0.25},
	{Name: "milc", Pages: 4096, ZipfAlpha: 1.30, SeqRun: 32, SeqProb: 0.10, WriteRatio: 0.35},
	{Name: "gromacs", Pages: 16384, ZipfAlpha: 0.90, HotPages: 8, HotProb: 0.97, SeqRun: 8, SeqProb: 0.05, WriteRatio: 0.30},
	{Name: "cactusADM", Pages: 16384, ZipfAlpha: 1.00, ScanProb: 0.05, SeqRun: 16, SeqProb: 0.05, WriteRatio: 0.45, PhaseEvery: 50 << 20, PhaseJump: 0.20},
	{Name: "leslie3d", Pages: 65536, ZipfAlpha: 0.85, ScanProb: 0.35, SeqRun: 32, SeqProb: 0.10, WriteRatio: 0.40},
	{Name: "namd", Pages: 8192, ZipfAlpha: 1.15, SeqRun: 16, SeqProb: 0.08, WriteRatio: 0.20},
	{Name: "gobmk", Pages: 32768, ZipfAlpha: 0.90, SeqRun: 4, SeqProb: 0.02, WriteRatio: 0.25},
	{Name: "soplex", Pages: 65536, ZipfAlpha: 1.05, ScanProb: 0.05, SeqRun: 16, SeqProb: 0.06, WriteRatio: 0.30, PhaseEvery: 25 << 20, PhaseJump: 0.35},
	{Name: "hmmer", Pages: 32768, ZipfAlpha: 0.85, HotPages: 12, HotProb: 0.96, SeqRun: 8, SeqProb: 0.05, WriteRatio: 0.45},
	{Name: "sjeng", Pages: 32768, ZipfAlpha: 0.80, SeqRun: 2, SeqProb: 0.01, WriteRatio: 0.25},
	{Name: "libquantum", Pages: 65536, ZipfAlpha: 0.80, ScanProb: 0.60, SeqRun: 64, SeqProb: 0.10, WriteRatio: 0.15},
	{Name: "lbm", Pages: 131072, ZipfAlpha: 0.75, ScanProb: 0.55, SeqRun: 64, SeqProb: 0.10, WriteRatio: 0.50},
}

// ProfileByName returns the named profile, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range SpecProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the profile names in evaluation order.
func Names() []string {
	out := make([]string, len(SpecProfiles))
	for i, p := range SpecProfiles {
		out[i] = p.Name
	}
	return out
}

// Footprints returns each named profile's canonical footprint in pages —
// the relative per-job cost of simulating it (unknown names weigh 0).
// Feed it to metrics.CycleCost for longest-job-first sweep dispatch.
func Footprints(names []string) []float64 {
	out := make([]float64, len(names))
	for i, name := range names {
		if p, ok := ProfileByName(name); ok {
			out[i] = float64(p.Pages)
		}
	}
	return out
}

// SortedNames returns the profile names sorted alphabetically.
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}
