// Package workload generates the memory-request streams used by the paper's
// evaluation: the two attack programs (RAA and BPA, Sec 2.2) and synthetic
// stand-ins for the 14 SPEC CPU2006 applications (Sec 4.1).
//
// The SPEC substitution: the original evaluation replays gem5 traces of the
// benchmark binaries. Those traces are not redistributable, and the results
// only depend on each application's memory-locality class — footprint, hot
// set, skew, streaming behaviour, write ratio and phase changes — so each
// benchmark is modeled as a parameterized generator (Profile) calibrated to
// reproduce the paper's reported CMT hit rates and lifetime ordering. All
// generators are deterministic given a seed.
package workload

import (
	"nvmwear/internal/rng"
	"nvmwear/internal/trace"
)

// RAA is the Repeated Address Attack: it writes the same logical address
// forever (Sec 2.2). Any scheme that cannot migrate the attacked line
// across the whole device fails in hours.
type RAA struct {
	Target uint64
}

// NewRAA returns an RAA stream against the given logical line.
func NewRAA(target uint64) *RAA { return &RAA{Target: target} }

// Next implements trace.Stream.
func (a *RAA) Next() trace.Request {
	return trace.Request{Op: trace.Write, Addr: a.Target}
}

// NextBatch implements trace.BatchStream.
func (a *RAA) NextBatch(ops []trace.Op, addrs []uint64) int {
	for i := range ops {
		ops[i] = trace.Write
		addrs[i] = a.Target
	}
	return len(ops)
}

// BPA is the Birthday Paradox Attack (Seznec): it randomly selects logical
// addresses and writes each one repeatedly and precisely, defeating schemes
// whose remapping is too slow to disperse the repeated writes.
type BPA struct {
	src     *rng.Source
	lines   uint64
	repeats uint64
	cur     uint64
	left    uint64
}

// NewBPA creates a BPA stream over a logical space of `lines` lines,
// writing each randomly chosen address `repeats` times before moving on.
func NewBPA(seed, lines, repeats uint64) *BPA {
	if lines == 0 {
		panic("workload: BPA over zero lines")
	}
	if repeats == 0 {
		repeats = 1
	}
	return &BPA{src: rng.New(seed), lines: lines, repeats: repeats}
}

// Next implements trace.Stream.
func (a *BPA) Next() trace.Request {
	if a.left == 0 {
		a.cur = a.src.Uint64n(a.lines)
		a.left = a.repeats
	}
	a.left--
	return trace.Request{Op: trace.Write, Addr: a.cur}
}

// NextBatch implements trace.BatchStream: whole repeat-runs are emitted with
// one RNG draw, in exactly the order Next produces them.
func (a *BPA) NextBatch(ops []trace.Op, addrs []uint64) int {
	for i := range ops {
		ops[i] = trace.Write
	}
	i := 0
	for i < len(addrs) {
		if a.left == 0 {
			a.cur = a.src.Uint64n(a.lines)
			a.left = a.repeats
		}
		run := int(a.left)
		if rem := len(addrs) - i; run > rem {
			run = rem
		}
		for j := i; j < i+run; j++ {
			addrs[j] = a.cur
		}
		a.left -= uint64(run)
		i += run
	}
	return len(ops)
}

// Uniform writes/reads uniformly random addresses; the best case for wear
// and the worst case for locality.
type Uniform struct {
	src        *rng.Source
	lines      uint64
	writeRatio float64
}

// NewUniform creates a uniform stream over `lines` addresses.
func NewUniform(seed, lines uint64, writeRatio float64) *Uniform {
	if lines == 0 {
		panic("workload: Uniform over zero lines")
	}
	return &Uniform{src: rng.New(seed), lines: lines, writeRatio: writeRatio}
}

// Next implements trace.Stream.
func (u *Uniform) Next() trace.Request {
	op := trace.Read
	if u.src.Bool(u.writeRatio) {
		op = trace.Write
	}
	return trace.Request{Op: op, Addr: u.src.Uint64n(u.lines)}
}

// NextBatch implements trace.BatchStream.
func (u *Uniform) NextBatch(ops []trace.Op, addrs []uint64) int {
	for i := range ops {
		op := trace.Read
		if u.src.Bool(u.writeRatio) {
			op = trace.Write
		}
		ops[i] = op
		addrs[i] = u.src.Uint64n(u.lines)
	}
	return len(ops)
}

// Sequential streams through the address space in order, wrapping at the
// footprint boundary — the pattern of streaming kernels.
type Sequential struct {
	lines      uint64
	next       uint64
	writeRatio float64
	src        *rng.Source
}

// NewSequential creates a sequential stream over `lines` addresses.
func NewSequential(seed, lines uint64, writeRatio float64) *Sequential {
	if lines == 0 {
		panic("workload: Sequential over zero lines")
	}
	return &Sequential{lines: lines, writeRatio: writeRatio, src: rng.New(seed)}
}

// Next implements trace.Stream.
func (s *Sequential) Next() trace.Request {
	op := trace.Read
	if s.src.Bool(s.writeRatio) {
		op = trace.Write
	}
	a := s.next
	s.next++
	if s.next == s.lines {
		s.next = 0
	}
	return trace.Request{Op: op, Addr: a}
}

// NextBatch implements trace.BatchStream.
func (s *Sequential) NextBatch(ops []trace.Op, addrs []uint64) int {
	for i := range ops {
		op := trace.Read
		if s.src.Bool(s.writeRatio) {
			op = trace.Write
		}
		ops[i] = op
		addrs[i] = s.next
		s.next++
		if s.next == s.lines {
			s.next = 0
		}
	}
	return len(ops)
}
