package workload

import (
	"testing"

	"nvmwear/internal/trace"
)

func TestRAA(t *testing.T) {
	a := NewRAA(42)
	for i := 0; i < 100; i++ {
		r := a.Next()
		if r.Op != trace.Write || r.Addr != 42 {
			t.Fatalf("RAA emitted %+v", r)
		}
	}
}

func TestBPARepeatsPrecisely(t *testing.T) {
	a := NewBPA(1, 1<<20, 8)
	prev := a.Next()
	run := 1
	runs := make(map[uint64]int)
	for i := 0; i < 8000-1; i++ {
		r := a.Next()
		if r.Op != trace.Write {
			t.Fatal("BPA emitted a read")
		}
		if r.Addr == prev.Addr {
			run++
		} else {
			runs[prev.Addr] += run
			run = 1
			prev = r
		}
	}
	for addr, n := range runs {
		if n%8 != 0 {
			t.Fatalf("address %d written %d times (not a multiple of 8)", addr, n)
		}
	}
	if len(runs) < 500 {
		t.Fatalf("BPA only visited %d addresses", len(runs))
	}
}

func TestBPABounds(t *testing.T) {
	a := NewBPA(3, 1024, 4)
	for i := 0; i < 10000; i++ {
		if r := a.Next(); r.Addr >= 1024 {
			t.Fatalf("address %d out of range", r.Addr)
		}
	}
}

func TestBPADefaultRepeats(t *testing.T) {
	a := NewBPA(3, 1024, 0)
	if a.repeats != 1 {
		t.Fatalf("repeats = %d", a.repeats)
	}
}

func TestUniformCoversSpace(t *testing.T) {
	u := NewUniform(5, 64, 0.5)
	seen := make(map[uint64]bool)
	writes := 0
	for i := 0; i < 10000; i++ {
		r := u.Next()
		if r.Addr >= 64 {
			t.Fatalf("address %d out of range", r.Addr)
		}
		seen[r.Addr] = true
		if r.Op == trace.Write {
			writes++
		}
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d/64 addresses", len(seen))
	}
	if writes < 4000 || writes > 6000 {
		t.Fatalf("write count %d far from ratio 0.5", writes)
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential(1, 10, 1.0)
	for round := 0; round < 3; round++ {
		for want := uint64(0); want < 10; want++ {
			if r := s.Next(); r.Addr != want {
				t.Fatalf("round %d: got %d want %d", round, r.Addr, want)
			}
		}
	}
}

func TestGeneratorsPanicOnZeroLines(t *testing.T) {
	for name, f := range map[string]func(){
		"bpa":  func() { NewBPA(1, 0, 1) },
		"uni":  func() { NewUniform(1, 0, 0.5) },
		"seq":  func() { NewSequential(1, 0, 0.5) },
		"spec": func() { SpecProfiles[0].New(1, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSpecDeterministic(t *testing.T) {
	p, ok := ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	a := p.New(7, 1<<22)
	b := p.New(7, 1<<22)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSpecProfilesDistinctUnderSameSeed(t *testing.T) {
	a := SpecProfiles[0].New(7, 1<<22)
	b := SpecProfiles[1].New(7, 1<<22)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("profiles produced %d/1000 identical requests", same)
	}
}

func TestSpecAddressesInBounds(t *testing.T) {
	for _, p := range SpecProfiles {
		g := p.New(11, 1<<20)
		fp := g.Footprint()
		if fp > 1<<20 {
			t.Fatalf("%s: footprint %d exceeds space", p.Name, fp)
		}
		for i := 0; i < 20000; i++ {
			r := g.Next()
			if r.Addr >= 1<<20 {
				t.Fatalf("%s: address %d out of space", p.Name, r.Addr)
			}
		}
	}
}

func TestSpecFootprintShrinksToFit(t *testing.T) {
	p, _ := ProfileByName("lbm") // canonical 128K pages
	g := p.New(1, 1<<12)         // tiny space: 4096 lines = 64 pages
	if g.Footprint() > 1<<12 {
		t.Fatalf("footprint %d not shrunk", g.Footprint())
	}
}

func TestSpecWriteRatioRealized(t *testing.T) {
	for _, p := range SpecProfiles {
		g := p.New(13, 1<<22)
		st := trace.Collect(g, 50000)
		got := st.WriteRatio()
		if got < p.WriteRatio-0.05 || got > p.WriteRatio+0.05 {
			t.Errorf("%s: write ratio %.3f, profile %.3f", p.Name, got, p.WriteRatio)
		}
	}
}

func TestSpecLocalityClassesDiffer(t *testing.T) {
	// The concentrated writers must touch far fewer unique addresses than
	// the streaming benchmarks over the same horizon.
	hm, _ := ProfileByName("hmmer")
	lbm, _ := ProfileByName("lbm")
	const n = 200000
	hmu := trace.Collect(hm.New(17, 1<<24), n).UniqueApprox
	lbmu := trace.Collect(lbm.New(17, 1<<24), n).UniqueApprox
	if hmu*4 > lbmu {
		t.Fatalf("hmmer unique %d not << lbm unique %d", hmu, lbmu)
	}
}

func TestPhaseChangesMoveWorkingSet(t *testing.T) {
	p := Profile{Name: "phasey", Pages: 256, ZipfAlpha: 1.3, WriteRatio: 0.5, PhaseEvery: 5000, PhaseJump: 0.5}
	g := p.New(19, 1<<20)
	first := make(map[uint64]int)
	for i := 0; i < 4000; i++ {
		first[g.Next().Addr/PageLines]++
	}
	// Drain through several phase changes.
	for i := 0; i < 20000; i++ {
		g.Next()
	}
	second := make(map[uint64]int)
	for i := 0; i < 4000; i++ {
		second[g.Next().Addr/PageLines]++
	}
	// The hottest page should differ between phases.
	top := func(m map[uint64]int) uint64 {
		var best uint64
		bestN := -1
		for k, v := range m {
			if v > bestN {
				best, bestN = k, v
			}
		}
		return best
	}
	if top(first) == top(second) {
		t.Fatal("hottest page did not move across phases")
	}
}

func TestProfileByNameMiss(t *testing.T) {
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("found nonexistent profile")
	}
}

func TestNames(t *testing.T) {
	if len(Names()) != 14 {
		t.Fatalf("%d profiles, want 14", len(Names()))
	}
	sorted := SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatal("SortedNames not sorted")
		}
	}
}

func TestPow2Helpers(t *testing.T) {
	if nextPow2(0) != 0 || nextPow2(1) != 1 || nextPow2(3) != 4 || nextPow2(4) != 4 {
		t.Fatal("nextPow2")
	}
	if prevPow2(0) != 0 || prevPow2(1) != 1 || prevPow2(3) != 2 || prevPow2(5) != 4 {
		t.Fatal("prevPow2")
	}
}

func BenchmarkSpecGen(b *testing.B) {
	g := SpecProfiles[1].New(1, 1<<24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

func BenchmarkBPA(b *testing.B) {
	g := NewBPA(1, 1<<24, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
