// Package nvmwear is a line-granular simulation library for NVM wear
// leveling, reproducing "An Efficient Wear-level Architecture using
// Self-adaptive Wear Leveling" (Huang, Hua, Zuo, Zhou, Huang — ICPP 2020).
//
// The library models an MLC NVM main memory with per-line endurance and
// spare lines under pluggable wear models (uniform, process variation,
// compression-aware — see nvm.WearModel), eleven wear-leveling schemes (the
// no-op Baseline, Segment Swapping, Start-Gap/RBSG, two-level Security
// Refresh, PCM-S, MWSR, the naive tiered NWL, the paper's SAWL, the
// software-only SoftWear and the decoder-level WoLFRaM), attack and
// SPEC-like workload generators, a lifetime measurement engine and a
// timing/IPC simulator.
//
// Quick start:
//
//	sys, _ := nvmwear.NewSystem(nvmwear.SystemConfig{
//		Scheme:    nvmwear.SAWL,
//		Lines:     1 << 20, // 64 MB of 64 B lines
//		Endurance: 10000,
//	})
//	res := sys.RunLifetime(nvmwear.WorkloadSpec{Kind: nvmwear.WorkloadBPA}, 0)
//	fmt.Printf("normalized lifetime: %.1f%%\n", 100*res.Normalized)
//
// The experiment runners (RunFig3 ... RunFig17, RunOverhead) regenerate
// every data-bearing table and figure of the paper; see EXPERIMENTS.md.
package nvmwear

import (
	"fmt"
	"os"

	"nvmwear/internal/analysis"
	"nvmwear/internal/core"
	"nvmwear/internal/fault"
	"nvmwear/internal/lifetime"
	"nvmwear/internal/nvm"
	"nvmwear/internal/sim"
	"nvmwear/internal/trace"
	"nvmwear/internal/wl"
	"nvmwear/internal/wl/mwsr"
	"nvmwear/internal/wl/pcms"
	"nvmwear/internal/wl/secref"
	"nvmwear/internal/wl/segswap"
	"nvmwear/internal/wl/softwear"
	"nvmwear/internal/wl/startgap"
	"nvmwear/internal/wl/wolfram"
	"nvmwear/internal/workload"
)

// SchemeKind selects a wear-leveling scheme.
type SchemeKind string

// The available schemes.
const (
	Baseline    SchemeKind = "baseline" // no wear leveling
	SegmentSwap SchemeKind = "segswap"  // table-based [Zhou+ ISCA'09]
	StartGap    SchemeKind = "startgap" // algebraic, single region [Qureshi+ MICRO'09]
	RBSG        SchemeKind = "rbsg"     // region-based start-gap
	TLSR        SchemeKind = "tlsr"     // two-level Security Refresh [Seong+ ISCA'10]
	PCMS        SchemeKind = "pcms"     // hybrid [Seznec WEST'10]
	MWSR        SchemeKind = "mwsr"     // hybrid multi-way [Yu & Du TC'14]
	NWL         SchemeKind = "nwl"      // naive tiered (fixed granularity)
	SAWL        SchemeKind = "sawl"     // the paper's contribution
	SoftWear    SchemeKind = "softwear" // software-only sampled page remapping [PAPERS.md]
	WoLFRaM     SchemeKind = "wolfram"  // programmable-address-decoder swaps [PAPERS.md]
)

// Schemes lists every scheme kind in evaluation order. The related-work
// schemes (softwear, wolfram) follow the paper's original catalogue so the
// historical figure orderings — and their goldens — are unchanged.
func Schemes() []SchemeKind {
	return []SchemeKind{Baseline, SegmentSwap, StartGap, RBSG, TLSR, PCMS, MWSR, NWL, SAWL, SoftWear, WoLFRaM}
}

// WearModels lists the selectable wear-model names, in flag-help order.
func WearModels() []string { return nvm.WearModelNames() }

// CheckWearModel validates a wear-model name before a run starts (the
// -wear flag, serve's config): empty means "keep the historical default"
// and is always valid.
func CheckWearModel(name string) error {
	if name == "" {
		return nil
	}
	if _, err := nvm.WearModelByName(name); err != nil {
		return fmt.Errorf("nvmwear: %w", err)
	}
	return nil
}

// SystemConfig describes a simulated NVM system: the device plus one
// wear-leveling scheme. Zero values select the paper's defaults.
type SystemConfig struct {
	Scheme SchemeKind

	// Device geometry (paper Table 1 scaled; see EXPERIMENTS.md).
	Lines      uint64  // logical data lines (power of two; default 1<<16)
	SpareLines uint64  // default Lines/64 (paper: 4M spares on 256M lines)
	Endurance  uint32  // per-cell write limit Wmax (default 10000)
	Variation  float64 // optional endurance process variation (CoV)

	// Wear selects the device's per-line wear model by name ("uniform",
	// "variation", "compress"; see nvm.WearModelByName). Empty keeps the
	// historical default: variation wear when Variation > 0, uniform
	// otherwise.
	Wear string

	// Shared scheme knobs.
	RegionLines  uint64 // Q for segswap/pcms/mwsr, page size for softwear (default 4)
	Regions      uint64 // region count for rbsg/tlsr (default 1024)
	Period       uint64 // swapping period ψ (default 128)
	OuterPeriod  uint64 // TLSR outer period (default 32)
	SamplePeriod uint64 // softwear write-sampling period S (default 8)

	// Tiered-scheme knobs (NWL/SAWL).
	InitGran     uint64 // P (default 4; use 64 for NWL-64)
	MaxGranLines uint64 // SAWL region-size cap (default 256)
	CMTEntries   int    // mapping-cache capacity (default 32768 = 256 KB)

	// SAWL adaptation parameters (defaults = paper Sec 4.2).
	LowThreshold      float64
	HighThreshold     float64
	SubQueueThreshold float64
	ObservationWindow uint64
	SettlingWindow    uint64
	CheckEvery        uint64

	// TrackData stores a payload word per line so data integrity can be
	// verified (slower; tests use it, experiments usually do not).
	TrackData bool

	// Fault enables deterministic fault injection (internal/fault): device
	// write/read faults on the NVM and — for tiered schemes — metadata
	// corruption on the NVM-resident mapping table. The zero value disables
	// injection entirely and leaves every simulation byte-identical to a
	// fault-free build. When Fault.Seed is zero, Seed is used so a system's
	// fault stream follows its experiment seed.
	Fault fault.Config
	// ECCBits is the per-line ECC correction budget for read-disturb errors
	// (default 4; see nvm.Config.ECCBits).
	ECCBits int
	// WriteRetries bounds re-programming pulses after a transient write
	// fault before the line escalates to a spare remap (default 3).
	WriteRetries int

	Seed uint64

	// OnSample receives periodic hit-rate/region-size snapshots from
	// tiered schemes (Figs 12-14).
	OnSample func(core.Sample)
}

func (c SystemConfig) withDefaults() SystemConfig {
	if c.Scheme == "" {
		c.Scheme = SAWL
	}
	if c.Lines == 0 {
		c.Lines = 1 << 16
	}
	if c.SpareLines == 0 {
		c.SpareLines = c.Lines / 64
	}
	if c.Endurance == 0 {
		c.Endurance = 10000
	}
	if c.RegionLines == 0 {
		c.RegionLines = 4
	}
	if c.Regions == 0 {
		c.Regions = 1024
	}
	if c.Period == 0 {
		c.Period = 128
	}
	if c.OuterPeriod == 0 {
		c.OuterPeriod = 32
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 8
	}
	if c.InitGran == 0 {
		c.InitGran = 4
	}
	if c.MaxGranLines == 0 {
		c.MaxGranLines = 256
	}
	if c.CMTEntries == 0 {
		c.CMTEntries = 32768
	}
	if c.Fault.Enabled() && c.Fault.Seed == 0 {
		c.Fault.Seed = c.Seed
	}
	return c
}

// System is a device bound to a wear-leveling scheme.
type System struct {
	cfg SystemConfig
	dev *nvm.Device
	lv  wl.Leveler
}

// NewSystem builds the device and scheme described by cfg.
func NewSystem(cfg SystemConfig) (*System, error) {
	cfg = cfg.withDefaults()
	var coreCfg core.Config
	extra := uint64(0)
	switch cfg.Scheme {
	case StartGap:
		extra = 1
	case RBSG:
		extra = cfg.Regions
	case NWL, SAWL:
		coreCfg = core.Config{
			Lines:             cfg.Lines,
			InitGran:          cfg.InitGran,
			MaxGranLines:      cfg.MaxGranLines,
			Period:            cfg.Period,
			CMTEntries:        cfg.CMTEntries,
			Adaptive:          cfg.Scheme == SAWL,
			LowThreshold:      cfg.LowThreshold,
			HighThreshold:     cfg.HighThreshold,
			SubQueueThreshold: cfg.SubQueueThreshold,
			ObservationWindow: cfg.ObservationWindow,
			SettlingWindow:    cfg.SettlingWindow,
			CheckEvery:        cfg.CheckEvery,
			Seed:              cfg.Seed,
			Fault:             cfg.Fault,
			OnSample:          cfg.OnSample,
		}
		extra = coreCfg.DeviceLines() - cfg.Lines
	}

	var wear nvm.WearModel // nil = the historical Variation-driven default
	if cfg.Wear != "" {
		var err error
		if wear, err = nvm.WearModelByName(cfg.Wear); err != nil {
			return nil, fmt.Errorf("nvmwear: %w", err)
		}
	}

	dev := nvm.New(nvm.Config{
		Lines:        cfg.Lines + extra,
		SpareLines:   cfg.SpareLines,
		Endurance:    cfg.Endurance,
		Variation:    cfg.Variation,
		Wear:         wear,
		Seed:         cfg.Seed,
		TrackData:    cfg.TrackData,
		Fault:        cfg.Fault,
		ECCBits:      cfg.ECCBits,
		WriteRetries: cfg.WriteRetries,
	})

	var lv wl.Leveler
	switch cfg.Scheme {
	case Baseline:
		lv = wl.NewIdentity(dev)
	case SegmentSwap:
		lv = segswap.New(dev, segswap.Config{
			Lines: cfg.Lines, SegmentLines: cfg.RegionLines, Period: cfg.Period,
		})
	case StartGap:
		lv = startgap.New(dev, startgap.Config{
			Lines: cfg.Lines, Regions: 1, Period: cfg.Period,
		})
	case RBSG:
		lv = startgap.New(dev, startgap.Config{
			Lines: cfg.Lines, Regions: cfg.Regions, Period: cfg.Period,
		})
	case TLSR:
		lv = secref.New(dev, secref.Config{
			Lines: cfg.Lines, Regions: cfg.Regions,
			InnerPeriod: cfg.Period, OuterPeriod: cfg.OuterPeriod, Seed: cfg.Seed,
		})
	case PCMS:
		lv = pcms.New(dev, pcms.Config{
			Lines: cfg.Lines, RegionLines: cfg.RegionLines,
			Period: cfg.Period, Seed: cfg.Seed,
		})
	case MWSR:
		lv = mwsr.New(dev, mwsr.Config{
			Lines: cfg.Lines, RegionLines: cfg.RegionLines,
			Period: cfg.Period, Seed: cfg.Seed,
		})
	case NWL, SAWL:
		lv = core.New(dev, coreCfg)
	case SoftWear:
		lv = softwear.New(dev, softwear.Config{
			Lines: cfg.Lines, PageLines: cfg.RegionLines,
			SamplePeriod: cfg.SamplePeriod, Trigger: cfg.Period,
		})
	case WoLFRaM:
		lv = wolfram.New(dev, wolfram.Config{
			Lines: cfg.Lines, Period: cfg.Period, Seed: cfg.Seed,
		})
	default:
		return nil, fmt.Errorf("nvmwear: unknown scheme %q", cfg.Scheme)
	}
	return &System{cfg: cfg, dev: dev, lv: lv}, nil
}

// Config returns the (defaulted) configuration.
func (s *System) Config() SystemConfig { return s.cfg }

// SchemeName returns the scheme's display name.
func (s *System) SchemeName() string { return s.lv.Name() }

// Alive reports whether the device still has spares.
func (s *System) Alive() bool { return s.dev.Alive() }

// Read performs a read of a logical line, returning the physical line it
// was served from.
func (s *System) Read(addr uint64) uint64 { return s.lv.Access(trace.Read, addr) }

// Write performs a write of a logical line.
func (s *System) Write(addr uint64) uint64 { return s.lv.Access(trace.Write, addr) }

// Translate returns the current logical-to-physical mapping without side
// effects.
func (s *System) Translate(addr uint64) uint64 { return s.lv.Translate(addr) }

// Lines returns the logical address-space size.
func (s *System) Lines() uint64 { return s.cfg.Lines }

// Stats summarizes system activity.
type Stats struct {
	DataWrites    uint64
	DataReads     uint64
	SwapWrites    uint64
	MergeWrites   uint64
	TableWrites   uint64
	Remaps        uint64
	WriteOverhead float64
	CMTHitRate    float64
	MaxWear       uint32
	MeanWear      float64
	WearGini      float64
	SparesUsed    uint64
	Dead          bool
	OnChipBits    uint64

	// Fault-injection and recovery counters (all zero when Fault is
	// disabled).
	TransientWriteFaults uint64 // transient write failures observed
	WriteRetries         uint64 // extra programming pulses issued
	RetryEscalations     uint64 // retry budgets exhausted -> spare remap
	StuckLineFaults      uint64 // hard stuck-at faults -> spare remap
	CorrectedBits        uint64 // read-disturb bits fixed silently by ECC
	ECCRemaps            uint64 // lines scrubbed to a spare at the ECC limit
	Uncorrectable        uint64 // reads lost beyond the ECC budget
	MetaFaults           uint64 // mapping-table entries corrupted
	MetaRebuilds         uint64 // entries rebuilt from the inverse table
}

// Stats returns current counters.
func (s *System) Stats() Stats {
	st := s.lv.Stats()
	ds := s.dev.Stats()
	return Stats{
		DataWrites:    st.DataWrites,
		DataReads:     st.DataReads,
		SwapWrites:    st.SwapWrites,
		MergeWrites:   st.MergeWrites,
		TableWrites:   st.TableWrites,
		Remaps:        st.Remaps,
		WriteOverhead: st.WriteOverhead(),
		CMTHitRate:    st.HitRate(),
		MaxWear:       ds.MaxWear,
		MeanWear:      ds.MeanWear,
		WearGini:      wearGini(s.dev),
		SparesUsed:    ds.SparesUsed,
		Dead:          ds.Dead,
		OnChipBits:    s.lv.OverheadBits(),

		TransientWriteFaults: ds.TransientWriteFaults,
		WriteRetries:         ds.WriteRetries,
		RetryEscalations:     ds.RetryEscalations,
		StuckLineFaults:      ds.StuckLineFaults,
		CorrectedBits:        ds.CorrectedBits,
		ECCRemaps:            ds.ECCRemaps,
		Uncorrectable:        ds.Uncorrectable,
		MetaFaults:           st.MetaFaults,
		MetaRebuilds:         st.MetaRebuilds,
	}
}

// WorkloadKind selects a workload generator.
type WorkloadKind string

// The available workloads.
const (
	WorkloadRAA        WorkloadKind = "raa"
	WorkloadBPA        WorkloadKind = "bpa"
	WorkloadUniform    WorkloadKind = "uniform"
	WorkloadSequential WorkloadKind = "sequential"
	WorkloadSPEC       WorkloadKind = "spec" // set Name to a SPEC profile
	WorkloadFile       WorkloadKind = "file" // set Path to a binary trace; loops
)

// WorkloadSpec describes a workload instance.
type WorkloadSpec struct {
	Kind WorkloadKind
	Name string // SPEC profile name for WorkloadSPEC
	// BPA repeats per address (default 64); RAA target; uniform write ratio.
	Repeats    uint64
	Target     uint64
	WriteRatio float64
	// RateCopies > 0 runs a SPEC profile in the paper's rate mode: that
	// many independent copies over equal partitions of the address space
	// (Sec 4.1 uses 8, one per core).
	RateCopies int
	// Path names a binary trace file (cmd/tracegen output) for
	// WorkloadFile; the trace loops and addresses are folded into the
	// system's address space.
	Path string
	Seed uint64
}

// Build instantiates the workload over an address space of `lines`.
func (w WorkloadSpec) Build(lines uint64) (trace.Stream, string, error) {
	switch w.Kind {
	case WorkloadRAA:
		return workload.NewRAA(w.Target % lines), "RAA", nil
	case WorkloadBPA:
		rep := w.Repeats
		if rep == 0 {
			rep = 64
		}
		return workload.NewBPA(w.Seed, lines, rep), "BPA", nil
	case WorkloadUniform:
		wr := w.WriteRatio
		if wr == 0 {
			wr = 1.0
		}
		return workload.NewUniform(w.Seed, lines, wr), "uniform", nil
	case WorkloadSequential:
		wr := w.WriteRatio
		if wr == 0 {
			wr = 1.0
		}
		return workload.NewSequential(w.Seed, lines, wr), "sequential", nil
	case WorkloadSPEC:
		p, ok := workload.ProfileByName(w.Name)
		if !ok {
			return nil, "", fmt.Errorf("nvmwear: unknown SPEC profile %q", w.Name)
		}
		if w.RateCopies > 0 {
			return workload.NewRateMode(p, w.Seed, lines, w.RateCopies), p.Name, nil
		}
		return p.New(w.Seed, lines), p.Name, nil
	case WorkloadFile:
		f, err := os.Open(w.Path)
		if err != nil {
			return nil, "", fmt.Errorf("nvmwear: trace file: %w", err)
		}
		defer f.Close()
		reqs, err := trace.ReadAll(f)
		if err != nil {
			return nil, "", fmt.Errorf("nvmwear: trace file %s: %w", w.Path, err)
		}
		if len(reqs) == 0 {
			return nil, "", fmt.Errorf("nvmwear: trace file %s is empty", w.Path)
		}
		for i := range reqs {
			reqs[i].Addr %= lines
		}
		return trace.NewLoop(reqs), "trace:" + w.Path, nil
	default:
		return nil, "", fmt.Errorf("nvmwear: unknown workload kind %q", w.Kind)
	}
}

// LifetimeResult re-exports the lifetime engine's result.
type LifetimeResult = lifetime.Result

// RunLifetime drives the workload until device failure (or maxWrites
// demand writes; 0 = 4x ideal writes) and reports the normalized lifetime.
func (s *System) RunLifetime(w WorkloadSpec, maxWrites uint64) (LifetimeResult, error) {
	stream, name, err := w.Build(s.cfg.Lines)
	if err != nil {
		return LifetimeResult{}, err
	}
	return lifetime.Run(s.dev, s.lv, stream, lifetime.Options{
		MaxWrites: maxWrites, Workload: name,
	}), nil
}

// TimingResult re-exports the timing simulator's result.
type TimingResult = sim.Result

// RunTiming simulates `requests` memory requests through the timing model
// and reports IPC. instrPerMemReq <= 0 selects the per-benchmark default.
func (s *System) RunTiming(w WorkloadSpec, requests uint64, instrPerMemReq float64) (TimingResult, error) {
	stream, name, err := w.Build(s.cfg.Lines)
	if err != nil {
		return TimingResult{}, err
	}
	if instrPerMemReq <= 0 {
		if v, ok := sim.InstrPerMemReq[name]; ok {
			instrPerMemReq = v
		} else {
			instrPerMemReq = 30
		}
	}
	return sim.Run(s.lv, stream, sim.Config{
		Requests:       requests,
		InstrPerMemReq: instrPerMemReq,
	}), nil
}

// SpecBenchmarks returns the 14 SPEC CPU2006 profile names in the paper's
// evaluation order.
func SpecBenchmarks() []string { return workload.Names() }

// WearCounts exposes the device's per-line wear counters (shared slice —
// treat as read-only). Used by cmd/wearviz and analysis tooling.
func (s *System) WearCounts() []uint32 { return s.dev.WearCounts() }

// WearCountsCopy returns a caller-owned snapshot of the per-line wear
// counters — the safe accessor when the result must outlive this
// goroutine's exclusive ownership of the system (parallel sweep jobs).
func (s *System) WearCountsCopy() []uint32 { return s.dev.WearCountsCopy() }

// coreScheme returns the underlying tiered engine when the scheme is NWL
// or SAWL, or nil otherwise. Used by ablation benches and tests that need
// to drive structural operations directly.
func (s *System) coreScheme() *core.Scheme {
	if c, ok := s.lv.(*core.Scheme); ok {
		return c
	}
	return nil
}

// Merges returns the number of region-merge operations a tiered scheme has
// performed (0 for non-tiered schemes).
func (s *System) Merges() uint64 {
	if c := s.coreScheme(); c != nil {
		return c.Merges()
	}
	return 0
}

// Splits returns the number of region-split operations a tiered scheme has
// performed (0 for non-tiered schemes).
func (s *System) Splits() uint64 {
	if c := s.coreScheme(); c != nil {
		return c.Splits()
	}
	return 0
}

// Checkpoint serializes the tiered controller's battery-flushed metadata
// (GTD directory, IMT contents, counters, adaptation state) for crash
// recovery. Returns nil for non-tiered schemes.
func (s *System) Checkpoint() []byte {
	if c := s.coreScheme(); c != nil {
		return c.Checkpoint()
	}
	return nil
}

// RecoverSystem rebuilds a tiered system after a simulated power failure:
// the surviving device (with its wear state and NVM-resident tables) plus
// the last checkpoint. cfg must describe the same geometry as the original
// system. Only NWL/SAWL systems support recovery.
func RecoverSystem(old *System, checkpoint []byte) (*System, error) {
	cfg := old.cfg
	if cfg.Scheme != NWL && cfg.Scheme != SAWL {
		return nil, fmt.Errorf("nvmwear: scheme %q does not support recovery", cfg.Scheme)
	}
	coreCfg := core.Config{
		Lines:             cfg.Lines,
		InitGran:          cfg.InitGran,
		MaxGranLines:      cfg.MaxGranLines,
		Period:            cfg.Period,
		CMTEntries:        cfg.CMTEntries,
		Adaptive:          cfg.Scheme == SAWL,
		LowThreshold:      cfg.LowThreshold,
		HighThreshold:     cfg.HighThreshold,
		SubQueueThreshold: cfg.SubQueueThreshold,
		ObservationWindow: cfg.ObservationWindow,
		SettlingWindow:    cfg.SettlingWindow,
		CheckEvery:        cfg.CheckEvery,
		Seed:              cfg.Seed,
		OnSample:          cfg.OnSample,
	}
	sch, err := core.Recover(old.dev, coreCfg, checkpoint)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, dev: old.dev, lv: sch}, nil
}

// EnergyPJ returns the device's total dynamic access energy in picojoules
// (writes dominate on MLC NVM; wear-leveling write amplification shows up
// here directly).
func (s *System) EnergyPJ() float64 { return s.dev.EnergyPJ() }

// WearReport summarizes the device's per-line wear distribution.
func (s *System) WearReport() analysis.WearReport {
	return analysis.Wear(s.dev.WearCounts())
}

func init() {
	Register(Experiment{
		Name:        "project",
		Description: "wall-clock lifetime projection for a full-size device",
		Figure:      "Sec 2.2",
		Order:       240,
		Run: func(sc Scale) (Result, error) {
			p := sc.Project.withDefaults()
			return Result{ProjectLifetime(p.CapacityGB<<30, p.Endurance,
				p.BandwidthGBps*float64(1<<30), p.Normalized)}, nil
		},
		Render: func(r Result) ([]Table, []SVG) {
			p, _ := r.Value.(analysis.Projection)
			return []Table{{
				Title:   "Lifetime projection (Sec 2.2)",
				Columns: []string{"metric", "value"},
				Rows: [][]string{
					{"capacity", fmt.Sprintf("%d GB", p.CapacityBytes>>30)},
					{"endurance", fmt.Sprintf("%d", p.Endurance)},
					{"write bandwidth", fmt.Sprintf("%.2f GB/s", p.WriteBandwidth/float64(1<<30))},
					{"ideal lifetime", fmt.Sprintf("%.1f months", analysis.Months(p.Ideal()))},
					{"projected", fmt.Sprintf("%.1f months (%.1f%% of ideal)",
						analysis.Months(p.Projected()), 100*p.Normalized)},
				},
			}}, nil
		},
	})
}

// ProjectLifetime converts a measured normalized lifetime into a
// wall-clock projection for a full-size device — the paper's Sec 2.2
// arithmetic (64 GB at 10^5 endurance and 1 GBps writes = 2.5 ideal
// months).
func ProjectLifetime(capacityBytes, endurance uint64, writeBandwidthBytesPerSec, normalized float64) analysis.Projection {
	return analysis.Projection{
		CapacityBytes:  capacityBytes,
		LineBytes:      64,
		Endurance:      endurance,
		WriteBandwidth: writeBandwidthBytesPerSec,
		Normalized:     normalized,
	}
}

// RunTimingEvent is RunTiming using the event-driven reference model
// (discrete-event FR-FCFS banks) instead of the fast analytic model. The
// two are cross-validated in the test suite.
func (s *System) RunTimingEvent(w WorkloadSpec, requests uint64, instrPerMemReq float64) (TimingResult, error) {
	stream, name, err := w.Build(s.cfg.Lines)
	if err != nil {
		return TimingResult{}, err
	}
	if instrPerMemReq <= 0 {
		if v, ok := sim.InstrPerMemReq[name]; ok {
			instrPerMemReq = v
		} else {
			instrPerMemReq = 30
		}
	}
	return sim.RunEvent(s.lv, stream, sim.Config{
		Requests:       requests,
		InstrPerMemReq: instrPerMemReq,
	}), nil
}
