package nvmwear

import (
	"os"
	"strings"
	"testing"

	"nvmwear/internal/trace"
)

func TestNewSystemAllSchemes(t *testing.T) {
	for _, kind := range Schemes() {
		sys, err := NewSystem(SystemConfig{
			Scheme: kind, Lines: 1 << 12, Endurance: 1 << 30, SpareLines: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sys.SchemeName() == "" || !sys.Alive() || sys.Lines() != 1<<12 {
			t.Fatalf("%s: bad system state", kind)
		}
		// Smoke: access and translation stay in the device.
		for i := uint64(0); i < 1000; i++ {
			sys.Write(i % (1 << 12))
			sys.Read(i * 7 % (1 << 12))
		}
		st := sys.Stats()
		if st.DataWrites != 1000 || st.DataReads != 1000 {
			t.Fatalf("%s: stats %+v", kind, st)
		}
	}
}

func TestNewSystemUnknownScheme(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Scheme: "bogus"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSystemDefaults(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.Scheme != SAWL || cfg.Lines != 1<<16 || cfg.Endurance != 10000 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.CMTEntries != 32768 {
		t.Fatalf("CMT default: %d", cfg.CMTEntries)
	}
}

func TestWorkloadSpecBuild(t *testing.T) {
	cases := []WorkloadSpec{
		{Kind: WorkloadRAA, Target: 5},
		{Kind: WorkloadBPA, Seed: 1},
		{Kind: WorkloadUniform, WriteRatio: 0.5},
		{Kind: WorkloadSequential},
		{Kind: WorkloadSPEC, Name: "gcc"},
	}
	for _, w := range cases {
		stream, name, err := w.Build(1 << 12)
		if err != nil {
			t.Fatalf("%s: %v", w.Kind, err)
		}
		if name == "" {
			t.Fatalf("%s: empty name", w.Kind)
		}
		for i := 0; i < 100; i++ {
			if r := stream.Next(); r.Addr >= 1<<12 {
				t.Fatalf("%s: address out of range", w.Kind)
			}
		}
	}
	if _, _, err := (WorkloadSpec{Kind: WorkloadSPEC, Name: "nope"}).Build(1 << 12); err == nil {
		t.Fatal("unknown SPEC profile accepted")
	}
	if _, _, err := (WorkloadSpec{Kind: "bogus"}).Build(1 << 12); err == nil {
		t.Fatal("unknown workload kind accepted")
	}
}

func TestRunLifetimeSmoke(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Scheme: PCMS, Lines: 1 << 10, SpareLines: 32, Endurance: 200, RegionLines: 4, Period: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunLifetime(WorkloadSpec{Kind: WorkloadBPA, Seed: 3, Repeats: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normalized <= 0 || res.Normalized > 1 {
		t.Fatalf("normalized %v", res.Normalized)
	}
	if res.TimedOut {
		t.Fatal("BPA lifetime run timed out")
	}
}

func TestRunTimingSmoke(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Scheme: NWL, Lines: 1 << 14, SpareLines: 1, Endurance: 1 << 30, InitGran: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunTiming(WorkloadSpec{Kind: WorkloadSPEC, Name: "bzip2", Seed: 1}, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC %v", res.IPC)
	}
}

func TestSpecBenchmarksList(t *testing.T) {
	if len(SpecBenchmarks()) != 14 {
		t.Fatalf("%d benchmarks", len(SpecBenchmarks()))
	}
}

func TestScalePresets(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		sc, err := ScaleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.AttackLines == 0 || sc.SpecLines == 0 || sc.Requests == 0 || sc.CMTEntries == 0 {
			t.Fatalf("%s: incomplete preset %+v", name, sc)
		}
		if sc.lowAttackEndurance() >= sc.AttackEndurance {
			t.Fatalf("%s: low endurance not lower", name)
		}
		if sc.attackSpares() == 0 || sc.specSpares() == 0 {
			t.Fatalf("%s: zero spares", name)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestSeriesTableRender(t *testing.T) {
	a := Series{Label: "A"}
	a.Append(1, 10)
	a.Append(2, 20)
	b := Series{Label: "B"}
	b.Append(2, 99)
	tab := SeriesTable("demo", "x", []Series{a, b}, "%.0f")
	out := tab.Render()
	for _, want := range []string{"demo", "A", "B", "10", "99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4) != "4" || trimFloat(2.5) != "2.5" {
		t.Fatal("trimFloat")
	}
}

func TestRunOverheadMatchesPaper(t *testing.T) {
	// Sec 4.5: 64 GB, 64M regions => IMT 224 MB (0.3% of capacity), GTD
	// ~80 KB at translation-line wear-leveling granularity 32.
	r := RunOverhead(64<<30, 64<<20, 32)
	imtMB := float64(r.IMTBytes) / (1 << 20)
	if imtMB < 200 || imtMB > 250 {
		t.Fatalf("IMT = %.0f MB, paper says 224", imtMB)
	}
	if r.IMTFraction < 0.002 || r.IMTFraction > 0.005 {
		t.Fatalf("IMT fraction %.4f, paper says 0.003", r.IMTFraction)
	}
	gtdKB := float64(r.GTDBytes) / (1 << 10)
	if gtdKB < 40 || gtdKB > 160 {
		t.Fatalf("GTD = %.0f KB, paper says ~80", gtdKB)
	}
	// The avoided cost: a fully on-chip PCM-S table at this region count
	// is hundreds of MB.
	if r.PCMSOnChipBytes < 100<<20 {
		t.Fatalf("PCM-S on-chip %d too small", r.PCMSOnChipBytes)
	}
	if r.MWSROnChipBytes <= r.PCMSOnChipBytes {
		t.Fatal("MWSR entries must be bigger than PCM-S")
	}
	if !strings.Contains(r.Render(), "GTD") || !strings.Contains(r.Render(), "IMT") {
		t.Fatalf("render:\n%s", r.Render())
	}
}

func TestRunTable1(t *testing.T) {
	tab := RunTable1()
	if len(tab.Rows) < 6 {
		t.Fatalf("table 1 rows: %d", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"8 cores", "512 KB", "350 ns", "55 ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q", want)
		}
	}
}

func TestRegionsForBudgetMonotone(t *testing.T) {
	prev := uint64(0)
	for _, b := range []uint64{1 << 10, 1 << 12, 1 << 14} {
		r := regionsForBudget(PCMS, b, 1<<20)
		if r < prev {
			t.Fatalf("regions not monotone in budget: %d after %d", r, prev)
		}
		prev = r
	}
	// MWSR must afford fewer regions at equal budget.
	if regionsForBudget(MWSR, 1<<12, 1<<20) > regionsForBudget(PCMS, 1<<12, 1<<20) {
		t.Fatal("MWSR regions exceed PCM-S at equal budget")
	}
}

// tinyScale keeps figure-runner integration tests fast. It is the exported
// ScaleTiny preset (`wlsim -scale tiny`), whose parameters the testdata/
// goldens pin.
func tinyScale() Scale { return ScaleTiny }

func TestRunFig3Shape(t *testing.T) {
	series := must(RunFig3(tinyScale()))
	if len(series) != 8 {
		t.Fatalf("%d series", len(series))
	}
	// Lifetime must rise with the number of regions for each series.
	for _, s := range series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last < first {
			t.Errorf("%s: lifetime fell from %.1f to %.1f with more regions", s.Label, first, last)
		}
	}
}

func TestRunFig4Shape(t *testing.T) {
	series := must(RunFig4(tinyScale()))
	if len(series) != 16 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Errorf("%s: hybrid lifetime not rising with regions", s.Label)
		}
	}
}

func TestRunFig5Shape(t *testing.T) {
	series := must(RunFig5(tinyScale()))
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Errorf("%s: lifetime not improving with cache budget", s.Label)
		}
	}
}

func TestRunFig15SAWLWins(t *testing.T) {
	series := must(RunFig15(tinyScale()))
	if len(series) != 6 {
		t.Fatalf("%d series", len(series))
	}
	// At each endurance level, SAWL's best point must beat PCM-S's and
	// MWSR's best points (the paper's headline claim).
	best := map[string]float64{}
	for _, s := range series {
		for _, y := range s.Y {
			if y > best[s.Label] {
				best[s.Label] = y
			}
		}
	}
	for _, pair := range [][2]string{
		{"sawl Wmax=800", "pcms Wmax=800"},
		{"sawl Wmax=800", "mwsr Wmax=800"},
		{"sawl Wmax=160", "pcms Wmax=160"},
		{"sawl Wmax=160", "mwsr Wmax=160"},
	} {
		if best[pair[0]] <= best[pair[1]] {
			t.Errorf("%s (%.1f) does not beat %s (%.1f)",
				pair[0], best[pair[0]], pair[1], best[pair[1]])
		}
	}
}

func TestRunFig12Produces(t *testing.T) {
	series := must(RunFig12(tinyScale()))
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Y) == 0 {
			t.Fatalf("%s: empty trace", s.Label)
		}
		for _, y := range s.Y {
			if y < 0 || y > 100 {
				t.Fatalf("%s: hit rate %v", s.Label, y)
			}
		}
	}
}

func TestRunFig13Produces(t *testing.T) {
	series, avg, err := RunFig13(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 || len(avg) != 4 {
		t.Fatalf("series %d avg %d", len(series), len(avg))
	}
	for _, s := range series {
		for _, y := range s.Y {
			if y < 1 {
				t.Fatalf("%s: region size %v below one line", s.Label, y)
			}
		}
	}
}

func TestRunFig14Ordering(t *testing.T) {
	res := must(RunFig14(tinyScale()))
	if len(res) != 3 {
		t.Fatalf("%d panels", len(res))
	}
	for _, r := range res {
		// The paper's Fig 14 invariant: NWL-4 <= SAWL <= NWL-64 hit rates
		// (allowing slack for the scaled runs).
		if r.AvgNWL64 < r.AvgNWL4 {
			t.Errorf("%s: NWL-64 (%.1f) below NWL-4 (%.1f)", r.Bench, r.AvgNWL64, r.AvgNWL4)
		}
		if r.AvgSAWL < r.AvgNWL4-5 {
			t.Errorf("%s: SAWL (%.1f) below NWL-4 (%.1f)", r.Bench, r.AvgSAWL, r.AvgNWL4)
		}
	}
}

func TestWearReportAndProjection(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Scheme: Baseline, Lines: 1 << 10, SpareLines: 1, Endurance: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		sys.Write(uint64(i) % 256)
	}
	r := sys.WearReport()
	if r.Lines != 1<<10 || r.Max == 0 {
		t.Fatalf("report: %+v", r)
	}
	p := ProjectLifetime(64<<30, 1e5, 1<<30, 0.85)
	months := p.Projected().Hours() / 720
	if months < 1.8 || months > 2.6 {
		t.Fatalf("projected %.2f months for 85%% of 2.5", months)
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.trace"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for i := uint64(0); i < 100; i++ {
		w.Write(trace.Request{Op: trace.Write, Addr: i * 3})
	}
	w.Flush()
	f.Close()

	stream, name, err := WorkloadSpec{Kind: WorkloadFile, Path: path}.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Fatal("empty name")
	}
	for i := 0; i < 300; i++ { // loops past the 100-entry trace
		if r := stream.Next(); r.Addr >= 64 {
			t.Fatalf("address %d not folded", r.Addr)
		}
	}
	if _, _, err := (WorkloadSpec{Kind: WorkloadFile, Path: dir + "/missing"}).Build(64); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunTimingEventCrossCheck(t *testing.T) {
	mk := func() *System {
		sys, err := NewSystem(SystemConfig{
			Scheme: NWL, Lines: 1 << 14, SpareLines: 1, Endurance: 1 << 30,
			InitGran: 4, CMTEntries: 512, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	w := WorkloadSpec{Kind: WorkloadSPEC, Name: "milc", Seed: 5}
	analytic, err := mk().RunTiming(w, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	event, err := mk().RunTimingEvent(w, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if analytic.IPC <= 0 || event.IPC <= 0 {
		t.Fatalf("IPC: analytic %v event %v", analytic.IPC, event.IPC)
	}
	if ratio := analytic.IPC / event.IPC; ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("models diverge: analytic %.3f vs event %.3f", analytic.IPC, event.IPC)
	}
}
