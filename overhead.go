package nvmwear

import (
	"fmt"

	"nvmwear/internal/addr"
	"nvmwear/internal/wl/mwsr"
	"nvmwear/internal/wl/pcms"
)

// This file implements Sec 4.5's hardware-overhead arithmetic and Table 1.

func init() {
	Register(Experiment{
		Name:        "table1",
		Description: "simulated system configuration (Table 1)",
		Figure:      "Table 1",
		Order:       10, InAll: true,
		Run: func(Scale) (Result, error) { return Result{RunTable1()}, nil },
		Render: func(r Result) ([]Table, []SVG) {
			t, _ := r.Value.(Table)
			return []Table{t}, nil
		},
	})
	Register(Experiment{
		Name:        "overhead",
		Description: "hardware overhead arithmetic (Sec 4.5)",
		Figure:      "Sec 4.5",
		Order:       200, InAll: true,
		Run: func(Scale) (Result, error) {
			// The paper's full-size configuration: 64 GB, 64M regions, GTD
			// granularity 32 — independent of the experiment scale.
			return Result{RunOverhead(64<<30, 64<<20, 32)}, nil
		},
		Render: func(r Result) ([]Table, []SVG) {
			rep, _ := r.Value.(OverheadReport)
			return []Table{rep.Table()}, nil
		},
	})
}

// OverheadReport holds the storage costs of the tiered architecture for a
// full-size configuration.
type OverheadReport struct {
	CapacityBytes    uint64
	Lines            uint64
	Regions          uint64
	IMTBytes         uint64  // NVM reserved space for the mapping table
	IMTFraction      float64 // IMT / capacity
	TranslationLines uint64
	GTDBytes         uint64 // on-chip directory
	PCMSOnChipBytes  uint64 // what PCM-S would need fully on chip
	MWSROnChipBytes  uint64 // what MWSR would need fully on chip
}

// RunOverhead reproduces the Sec 4.5 numbers. With the paper's 64 GB
// device (2^30 lines of 64 B) and 64M regions it reports a 224 MB IMT
// (0.3% of capacity) and an ~80 KB GTD at translation-line wear-leveling
// granularity 32.
func RunOverhead(capacityBytes uint64, regions uint64, gtdGranularity uint64) OverheadReport {
	const lineBytes = 64
	lines := capacityBytes / lineBytes
	mBits := uint64(addr.Log2(lines)) // m+n bits per IMT entry (Fig 10)
	imtBits := regions * mBits
	imtBytes := imtBits / 8
	// Translation lines: entries packed into 256 B lines in the paper's
	// arithmetic (l = O(IMT) / (8*256) with O(IMT) in bits).
	transLines := imtBytes / 256
	gtdEntries := transLines / gtdGranularity
	gtdEntryBits := uint64(1)
	for uint64(1)<<gtdEntryBits < transLines {
		gtdEntryBits++
	}
	return OverheadReport{
		CapacityBytes:    capacityBytes,
		Lines:            lines,
		Regions:          regions,
		IMTBytes:         imtBytes,
		IMTFraction:      float64(imtBytes) / float64(capacityBytes),
		TranslationLines: transLines,
		GTDBytes:         gtdEntries * gtdEntryBits / 8,
		PCMSOnChipBytes:  regions * (pcms.EntryBits(regions, lines/regions) + 24) / 8,
		MWSROnChipBytes:  regions * (mwsr.EntryBits(regions, lines/regions) + 24) / 8,
	}
}

// Render formats the report.
func (r OverheadReport) Render() string {
	return fmt.Sprintf(`== Hardware overhead (Sec 4.5) ==
capacity            %d GB
lines               %d
regions             %d
IMT (NVM reserved)  %.0f MB (%.2f%% of capacity)
translation lines   %d
GTD (on-chip)       %.0f KB
PCM-S table on chip %.0f MB (the cost SAWL avoids)
MWSR table on chip  %.0f MB
`,
		r.CapacityBytes>>30, r.Lines, r.Regions,
		float64(r.IMTBytes)/(1<<20), 100*r.IMTFraction,
		r.TranslationLines,
		float64(r.GTDBytes)/(1<<10),
		float64(r.PCMSOnChipBytes)/(1<<20),
		float64(r.MWSROnChipBytes)/(1<<20))
}

// Table returns the report as a Table — the registry Render shape. The
// formatted values match Render line for line.
func (r OverheadReport) Table() Table {
	return Table{
		Title:   "Hardware overhead (Sec 4.5)",
		Columns: []string{"item", "value"},
		Rows: [][]string{
			{"capacity", fmt.Sprintf("%d GB", r.CapacityBytes>>30)},
			{"lines", fmt.Sprintf("%d", r.Lines)},
			{"regions", fmt.Sprintf("%d", r.Regions)},
			{"IMT (NVM reserved)", fmt.Sprintf("%.0f MB (%.2f%% of capacity)",
				float64(r.IMTBytes)/(1<<20), 100*r.IMTFraction)},
			{"translation lines", fmt.Sprintf("%d", r.TranslationLines)},
			{"GTD (on-chip)", fmt.Sprintf("%.0f KB", float64(r.GTDBytes)/(1<<10))},
			{"PCM-S table on chip", fmt.Sprintf("%.0f MB (the cost SAWL avoids)",
				float64(r.PCMSOnChipBytes)/(1<<20))},
			{"MWSR table on chip", fmt.Sprintf("%.0f MB", float64(r.MWSROnChipBytes)/(1<<20))},
		},
	}
}

// RunTable1 returns the paper's simulated-system configuration (Table 1)
// as implemented by this library's defaults.
func RunTable1() Table {
	return Table{
		Title:   "Table 1: simulated system configuration",
		Columns: []string{"component", "configuration"},
		Rows: [][]string{
			{"CPU", "8 cores, X86-64, 3.2 GHz (internal/sim)"},
			{"Private L1 cache", "64 KB (folded into per-benchmark instr/mem-req)"},
			{"Shared L2 cache", "512 KB, 16-way, write-back (internal/cache)"},
			{"CMT cache", "256 KB = 32768 entries (internal/cmt)"},
			{"DRAM/PCM capacity", "128 MB / 8 GB (scaled per experiment; see EXPERIMENTS.md)"},
			{"Read/Write latency", "DRAM 50/50 ns, PCM 50/350 ns (internal/nvm, internal/sim)"},
			{"Address translation", "cache hit 5 ns, miss 55 ns (internal/sim)"},
			{"Memory controller", "FR-FCFS-like banked queue, 16 banks (internal/sim)"},
		},
	}
}
