package nvmwear

import (
	"sync/atomic"
	"testing"
)

// This file holds the parallel-engine guarantees at the figure level: for
// a fixed Scale.Seed, every figure table must be byte-identical whatever
// Parallelism is — the property that makes -j N safe to default on.

// renderFig renders a figure's series as the table wlsim would print, the
// byte-exact artifact the determinism guarantee is stated over. It accepts
// a runner's (series, error) pair directly; tests here never expect an
// error.
func renderFig(series []Series, err error) string {
	if err != nil {
		panic(err)
	}
	return SeriesTable("determinism probe", "x", series, "%.6f").Render()
}

// must unwraps a figure runner's (value, error) pair in tests that expect
// no error.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// withParallelism returns the test scale at the given worker count.
func withParallelism(sc Scale, j int) Scale {
	sc.Parallelism = j
	return sc
}

func TestFig3DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := tinyScale()
	serial := renderFig(RunFig3(withParallelism(sc, 1)))
	parallel := renderFig(RunFig3(withParallelism(sc, 8)))
	if serial != parallel {
		t.Fatalf("fig3 table differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serial, parallel)
	}
}

func TestFig15DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := tinyScale()
	serial := renderFig(RunFig15(withParallelism(sc, 1)))
	parallel := renderFig(RunFig15(withParallelism(sc, 8)))
	if serial != parallel {
		t.Fatalf("fig15 table differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serial, parallel)
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := tinyScale()
	run := func(j int) string {
		series, err := RunSweep(withParallelism(sc, j), PCMS,
			[]uint64{4, 16}, []uint64{8, 32})
		return renderFig(series, err)
	}
	if a, b := run(1), run(6); a != b {
		t.Fatalf("sweep table differs between -j1 and -j6:\n%s\nvs\n%s", a, b)
	}
}

func TestAttackScoresMatchSerialAPI(t *testing.T) {
	sc := tinyScale()
	kinds := []SchemeKind{Baseline, PCMS, SAWL}
	batchJ1, err := RunAttackScores(withParallelism(sc, 1), kinds)
	if err != nil {
		t.Fatal(err)
	}
	batchJ4, err := RunAttackScores(withParallelism(sc, 4), kinds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range kinds {
		if batchJ1[i] != batchJ4[i] {
			t.Fatalf("%s: score differs between -j1 (%+v) and -j4 (%+v)",
				kinds[i], batchJ1[i], batchJ4[i])
		}
	}
}

func TestSeedChangesFigureOutput(t *testing.T) {
	// The flip side of determinism: a different base seed must actually
	// reach the jobs (guards against the pool ignoring BaseSeed).
	a := tinyScale()
	b := tinyScale()
	b.Seed = a.Seed + 1
	if renderFig(RunFig3(a)) == renderFig(RunFig3(b)) {
		t.Fatal("fig3 table identical under different seeds")
	}
}

func TestProgressReportsEveryJob(t *testing.T) {
	sc := tinyScale()
	sc.Parallelism = 4
	var calls, lastTotal atomic.Int64
	sc.Progress = func(done, total int) {
		calls.Add(1)
		lastTotal.Store(int64(total))
	}
	must(RunFig15(sc))
	// Fig 15: 2 endurances x 3 schemes x 4 periods = 24 jobs.
	if calls.Load() != 24 || lastTotal.Load() != 24 {
		t.Fatalf("progress: %d calls, total %d, want 24/24", calls.Load(), lastTotal.Load())
	}
}
