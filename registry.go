package nvmwear

import (
	"fmt"
	"sort"
)

// This file is the experiment registry — the single declaration point the
// paper's evaluation catalogue (Figs 3-5, 12-17, fault, attack, sweep,
// overhead, table1, project) hangs off. Every runner registers one
// Experiment from its file's init; cmd/wlsim dispatch, `wlsim list`, the
// cache staleness planner (CacheFreshness) and the whole-experiment skip in
// `wlsim all` are all derived from the same registration, so adding an
// experiment is one Register call and nothing else to keep in sync.

// JobSpec identifies one planned sweep job: the sweep's cache identity and
// the job's index within it — exactly the (fig, i) pair the runner passes
// to cacheKey. Experiment.Plan returns the full job list so callers can
// probe the result store without executing anything.
type JobSpec struct {
	Fig   string // the sweep's cache identity (cacheKey fig)
	Index int    // job index within the sweep
}

// Result is an experiment's opaque payload: whatever its Run produced,
// passed to the same experiment's Render. The concrete type is private to
// each experiment's registration.
type Result struct {
	Value any
}

// SVG is one renderable figure of an experiment: a labeled series bundle
// plus the axis metadata the exporters need (text table, CSV/JSON stream,
// SVG file — see Driver and SVG.WriteSVG).
type SVG struct {
	Name   string // file stem for -svg output ("fig3", "fault-loss")
	Title  string
	XName  string
	YName  string
	LogX   bool
	Series []Series
}

// Experiment declares one catalogue entry. Run must tolerate interruption
// (return the completed prefix of its payload alongside an error wrapping
// ErrInterrupted) and Render must tolerate such partial payloads — the
// contract that lets the driver flush partial tables on SIGINT.
type Experiment struct {
	Name        string
	Description string
	Figure      string // paper reference ("Fig 3", "Sec 4.5", "-")
	Order       int    // catalogue position (Experiments sorts by it)
	InAll       bool   // part of `wlsim all`
	// Sharded marks experiments whose lifetime runs go through the
	// intra-run sharder (-shards): their cache keys are salted with the
	// shard layout, because sharding changes the simulated geometry.
	// Experiments the sharder never touches keep layout-independent keys.
	Sharded bool
	// Plan predicts the exact job list Run will dispatch at the scale —
	// same fig identities, same counts — without executing anything. Nil
	// means the experiment has no sweep jobs (table1, overhead, project).
	// TestExperimentPlanMatchesDispatch pins Plan to Run's actual
	// dispatch for every registered experiment.
	Plan   func(sc Scale) []JobSpec
	Run    func(sc Scale) (Result, error)
	Render func(r Result) ([]Table, []SVG)
}

var registry = map[string]*Experiment{}

// Register adds an experiment to the package catalogue. It is called from
// init functions next to each runner; malformed or duplicate registrations
// are programmer errors and panic.
func Register(e Experiment) {
	switch {
	case e.Name == "":
		panic("nvmwear: Register: experiment without a name")
	case e.Run == nil || e.Render == nil:
		panic(fmt.Sprintf("nvmwear: Register(%q): Run and Render are mandatory", e.Name))
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("nvmwear: Register(%q): duplicate experiment", e.Name))
	}
	registry[e.Name] = &e
}

// Experiments returns the registered catalogue in Order. The slice is
// freshly allocated; the entries are shared.
func Experiments() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// LookupExperiment resolves a registered experiment by name.
func LookupExperiment(name string) (*Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// PlanCapError is the rejection for a run whose planned job count exceeds
// a -max-run-jobs budget. The serve admission check and the CLI's pre-run
// validation share it so both surfaces reject with the same message shape.
func PlanCapError(experiment string, jobs int, scale string, capJobs int) error {
	return fmt.Errorf("experiment %q plans %d jobs at scale %s, over the %d-job cap (-max-run-jobs)",
		experiment, jobs, scale, capJobs)
}

// planJobs enumerates an n-job sweep under one fig identity — the Plan
// shape of every single-sweep experiment.
func planJobs(fig string, n int) []JobSpec {
	out := make([]JobSpec, n)
	for i := range out {
		out[i] = JobSpec{Fig: fig, Index: i}
	}
	return out
}

// figTable renders an SVG's series as its text-table twin, marked so the
// machine-readable formats (csv, json) emit the series stream instead of
// a redundant table.
func figTable(g SVG, fmtY string) Table {
	t := SeriesTable(g.Title, g.XName, g.Series, fmtY)
	t.fromSeries = true
	return t
}

// renderSeries builds the Render of a single-figure series experiment:
// one SVG bundle and its text-table twin. The payload must be []Series
// (possibly a completed prefix of an interrupted sweep).
func renderSeries(name, title, xName string, logX bool) func(Result) ([]Table, []SVG) {
	return func(r Result) ([]Table, []SVG) {
		series, _ := r.Value.([]Series)
		g := SVG{Name: name, Title: title, XName: xName, YName: "value", LogX: logX, Series: series}
		return []Table{figTable(g, "%.2f")}, []SVG{g}
	}
}

// relabelBenchRows replaces a SPEC table's numeric benchmark indices with
// benchmark names; the final row is the harmonic mean (the paper's
// "Hmean" bar in Figs 16 and 17).
func relabelBenchRows(tab *Table) {
	names := SpecBenchmarks()
	for i := range tab.Rows {
		if i < len(names) {
			tab.Rows[i][0] = names[i]
		} else {
			tab.Rows[i][0] = "Hmean"
		}
	}
}
