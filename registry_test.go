package nvmwear

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// This file pins the experiment registry's core invariant: an Experiment's
// registered Plan predicts exactly the jobs its Run dispatches — same fig
// identities, same counts, same cache-key salting — for every entry in the
// catalogue. Everything built on the registry (CLI dispatch, `wlsim list`,
// the staleness report, the whole-experiment skip in `wlsim all`) rests on
// that prediction being exact.

// TestRegistryCatalogue pins the catalogue's shape: the expected names are
// registered, Experiments() is ordered, and the `all` membership matches
// the historical `wlsim all` list.
func TestRegistryCatalogue(t *testing.T) {
	exps := Experiments()
	if len(exps) == 0 {
		t.Fatal("empty registry")
	}
	for i := 1; i < len(exps); i++ {
		if exps[i-1].Order > exps[i].Order {
			t.Errorf("catalogue out of order: %s (%d) before %s (%d)",
				exps[i-1].Name, exps[i-1].Order, exps[i].Name, exps[i].Order)
		}
	}
	inAll := map[string]bool{
		"table1": true, "fig3": true, "fig4": true, "fig5": true,
		"fig12": true, "fig13": true, "fig14": true, "fig15": true,
		"fig16": true, "fig17": true, "overhead": true,
		"fault": false, "fleet": false, "attack": false, "sweep": false,
		"project": false,
	}
	for name, want := range inAll {
		e, ok := LookupExperiment(name)
		if !ok {
			t.Errorf("experiment %q not registered", name)
			continue
		}
		if e.InAll != want {
			t.Errorf("%s: InAll = %v, want %v", name, e.InAll, want)
		}
	}
	if len(exps) != len(inAll) {
		t.Errorf("registry holds %d experiments, want %d", len(exps), len(inAll))
	}
	if _, ok := LookupExperiment("no-such"); ok {
		t.Error("LookupExperiment resolved an unknown name")
	}
}

// TestRegisterValidates pins Register's programmer-error panics.
func TestRegisterValidates(t *testing.T) {
	run := func(Scale) (Result, error) { return Result{}, nil }
	render := func(Result) ([]Table, []SVG) { return nil, nil }
	expectPanic := func(name string, e Experiment) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(e)
	}
	expectPanic("empty name", Experiment{Run: run, Render: render})
	expectPanic("nil run", Experiment{Name: "x-incomplete", Render: render})
	expectPanic("nil render", Experiment{Name: "x-incomplete", Run: run})
	expectPanic("duplicate", Experiment{Name: "fig3", Run: run, Render: render})
}

// TestExperimentPlanMatchesDispatch runs every registered experiment at the
// tiny scale against a cold store and verifies, end to end, that (a) the
// staleness planner covers exactly the planned job list, (b) Run dispatches
// exactly len(Plan) jobs, and (c) afterwards every planned key — fig
// identity, index, and shard salting included — is present in the store.
// Planless experiments must run, render, and report no freshness.
func TestExperimentPlanMatchesDispatch(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			sc := withParallelism(tinyScale(), 8)
			sc.Cache = openCache(t, t.TempDir())

			// Render must tolerate the zero payload: an interrupted Run can
			// return an empty or partial Result.
			e.Render(Result{})

			if e.Plan == nil {
				if f := sc.CacheFreshness(e.Name); f != nil {
					t.Fatalf("planless experiment reports freshness %+v", f)
				}
				res, err := e.Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if tables, _ := e.Render(res); len(tables) == 0 {
					t.Fatal("no tables rendered")
				}
				return
			}

			plan := e.Plan(sc)
			if len(plan) == 0 {
				t.Fatal("registered Plan is empty at the tiny scale")
			}
			jobs := 0
			for _, f := range sc.CacheFreshness(e.Name) {
				jobs += f.Jobs
				if f.Cached != 0 {
					t.Fatalf("cold cache reports %d cached jobs for %s", f.Cached, f.Fig)
				}
			}
			if jobs != len(plan) {
				t.Fatalf("freshness covers %d jobs, Plan has %d", jobs, len(plan))
			}

			var completed int
			sc.Progress = func(done, total int) { completed++ }
			res, err := e.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if completed != len(plan) {
				t.Fatalf("Run dispatched %d jobs, Plan predicts %d", completed, len(plan))
			}
			for _, f := range sc.CacheFreshness(e.Name) {
				if f.Stale() != 0 {
					t.Fatalf("%s: %d/%d planned keys missing after Run — planner and runner disagree on keys",
						f.Fig, f.Stale(), f.Jobs)
				}
			}
			if tables, _ := e.Render(res); len(tables) == 0 {
				t.Fatal("no tables rendered")
			}
		})
	}
}

// TestRunAllSkipsFreshExperiments exercises the whole-experiment skip at
// the library level: a fully cached experiment is skipped with a notice and
// prints nothing; Force re-runs it from cache hits, byte-identically.
func TestRunAllSkipsFreshExperiments(t *testing.T) {
	sc := tinyScale()
	st := openCache(t, t.TempDir())
	sc.Cache = st
	var logs strings.Builder
	sc.Logf = func(f string, a ...any) { fmt.Fprintf(&logs, f+"\n", a...) }
	e, ok := LookupExperiment("sweep")
	if !ok {
		t.Fatal("sweep not registered")
	}
	n := len(e.Plan(sc))

	var cold bytes.Buffer
	if err := (&Driver{Scale: sc, Out: &cold}).runAll([]*Experiment{e}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(logs.String(), "skipped") {
		t.Fatalf("cold run skipped the experiment:\n%s", logs.String())
	}
	if cold.Len() == 0 {
		t.Fatal("cold run printed nothing")
	}

	logs.Reset()
	var warm bytes.Buffer
	if err := (&Driver{Scale: sc, Out: &warm}).runAll([]*Experiment{e}); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("skipped sweep (%d/%d cached)", n, n); !strings.Contains(logs.String(), want) {
		t.Fatalf("no %q notice:\n%s", want, logs.String())
	}
	if warm.Len() != 0 {
		t.Fatalf("skipped experiment printed output:\n%s", warm.String())
	}

	logs.Reset()
	hitsBefore := st.Stats().Hits
	var forced bytes.Buffer
	if err := (&Driver{Scale: sc, Out: &forced, Force: true}).runAll([]*Experiment{e}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(logs.String(), "skipped") {
		t.Fatalf("Force still skipped the experiment:\n%s", logs.String())
	}
	if st.Stats().Hits == hitsBefore {
		t.Fatal("forced re-run served no cache hits")
	}
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "[") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(forced.String()) != strip(cold.String()) {
		t.Fatalf("forced tables differ from the cold run:\n--- cold ---\n%s\n--- forced ---\n%s",
			cold.String(), forced.String())
	}
}
