package nvmwear

import (
	"context"
	"fmt"
	"sync"

	"nvmwear/internal/lifetime"
	"nvmwear/internal/nvm"
	"nvmwear/internal/rng"
	"nvmwear/internal/wl"
)

// MaxShards caps how finely a single lifetime run decomposes — the device's
// 32-bank geometry (nvm.DefaultBanks). Requesting more shards than banks
// would split below the hardware's natural parallel cut.
const MaxShards = 32

// ShardPlan is the outcome of gating a run for sharded execution. Shards is
// the shard count the run will actually use; when it is 1 despite a larger
// request, Reason says why the run fell back to the serial path
// (indivisible geometry, workload with global state).
type ShardPlan struct {
	Shards int
	Reason string
}

// PlanShards decides whether the (cfg, w) run can shard `requested` ways.
// The rule: a shard must be a closed system. Every scheme in the catalogue
// is wl.Partitionable; what varies is the decomposition model (see
// wl.Partitionable and DESIGN.md §15). Exact schemes (Baseline, RBSG,
// NWL/SAWL) shard without changing what is simulated; bank-local schemes
// (start-gap, segment swap, TLSR, PCM-S, MWSR) shard by confining their
// globally-scoped state — coldest-segment scan, outer refresh, the gap,
// random exchange partners — to each bank, an explicit modeling change
// pinned within tolerance by the sharded test suite. Either way the split
// must keep each shard's invariants: unit counts that divide evenly, enough
// partner units inside a bank, at least one spare line per shard, a CMT
// slice per tiered controller. Workloads with global state (RAA's single
// hot address, file traces with one replay order) always fall back to
// serial with a reason rather than silently simulating something else.
func PlanShards(cfg SystemConfig, w WorkloadSpec, requested int) ShardPlan {
	if requested <= 1 {
		return ShardPlan{Shards: 1}
	}
	if requested > MaxShards {
		requested = MaxShards
	}
	cfg = cfg.withDefaults()
	s := uint64(requested)

	serial := func(why string) ShardPlan { return ShardPlan{Shards: 1, Reason: why} }
	switch w.Kind {
	case WorkloadRAA:
		return serial("RAA hammers a single global address; splitting it changes the attack")
	case WorkloadFile:
		return serial("a file trace has one global replay order")
	}
	if cfg.Lines%s != 0 {
		return serial(fmt.Sprintf("%d lines do not divide into %d shards", cfg.Lines, s))
	}
	if cfg.SpareLines < s {
		return serial(fmt.Sprintf("%d spare lines cannot cover %d shards", cfg.SpareLines, s))
	}
	perShard := cfg.Lines / s

	switch cfg.Scheme {
	case Baseline:
		// Identity: every line independent; divisibility already checked.
	case StartGap:
		// Bank-local gap: each shard is its own single-region start-gap
		// instance with its own gap line, so any line-divisible slice works.
	case RBSG:
		if cfg.Regions%s != 0 {
			return serial(fmt.Sprintf("%d RBSG regions do not divide into %d shards", cfg.Regions, s))
		}
	case SegmentSwap:
		// Bank-local coldest-segment scan: shards must align to segment
		// boundaries and keep at least two segments so a bank's hottest
		// segment still has a cold partner to swap with.
		if perShard%cfg.RegionLines != 0 {
			return serial(fmt.Sprintf("shard of %d lines does not align to the %d-line segment", perShard, cfg.RegionLines))
		}
		if perShard/cfg.RegionLines < 2 {
			return serial(fmt.Sprintf("a %d-segment bank has no swap partner", perShard/cfg.RegionLines))
		}
	case TLSR:
		// Bank-local outer refresh: each shard runs a two-level instance
		// over Regions/s subregions, so the split must keep at least two
		// regions per bank (a one-region bank would degenerate to
		// single-level SR and change the scheme under measurement).
		if cfg.Regions%s != 0 {
			return serial(fmt.Sprintf("%d TLSR regions do not divide into %d shards", cfg.Regions, s))
		}
		if cfg.Regions/s < 2 {
			return serial(fmt.Sprintf("%d TLSR regions leave no outer level across %d banks", cfg.Regions, s))
		}
	case PCMS, MWSR:
		// Bank-local random exchanges: shards must align to region
		// boundaries and keep at least two regions so the per-bank partner
		// draw (from the shard's own seed substream) has somewhere to go.
		if perShard%cfg.RegionLines != 0 {
			return serial(fmt.Sprintf("shard of %d lines does not align to the %d-line region", perShard, cfg.RegionLines))
		}
		if perShard/cfg.RegionLines < 2 {
			return serial(fmt.Sprintf("a %d-region bank has no exchange partner", perShard/cfg.RegionLines))
		}
	case NWL, SAWL:
		// Tiered schemes partition at maximum-granularity-region boundaries;
		// each shard runs its own controller (CMT + GTD) over its bank — the
		// per-bank-controller model.
		if perShard%cfg.MaxGranLines != 0 {
			return serial(fmt.Sprintf("shard of %d lines does not align to the %d-line max region", perShard, cfg.MaxGranLines))
		}
		if uint64(cfg.CMTEntries) < s {
			return serial(fmt.Sprintf("%d CMT entries cannot split %d ways", cfg.CMTEntries, s))
		}
	case SoftWear:
		// Bank-local sampling and coldest-frame scans: shards must align to
		// page boundaries and keep at least two pages so a bank's hot page
		// still has a cold frame to move to.
		if perShard%cfg.RegionLines != 0 {
			return serial(fmt.Sprintf("shard of %d lines does not align to the %d-line page", perShard, cfg.RegionLines))
		}
		if perShard/cfg.RegionLines < 2 {
			return serial(fmt.Sprintf("a %d-page bank has no swap victim", perShard/cfg.RegionLines))
		}
	case WoLFRaM:
		// Bank-local decoder swaps at line granularity: any line-divisible
		// slice with at least two lines keeps a partner to swap with.
		if perShard < 2 {
			return serial(fmt.Sprintf("a %d-line bank has no swap partner", perShard))
		}
	default:
		return serial(fmt.Sprintf("scheme %q has no shard analysis", cfg.Scheme))
	}
	return ShardPlan{Shards: requested}
}

// Shard decomposition models, as reported by SchemeShardability and
// rendered by `wlsim list`: "exact" means a sharded run takes the same
// leveling decisions as a serial one (wl.Partitionable.PartitionExact);
// "bank-local" means the scheme's globally-scoped state is confined to each
// bank — a documented modeling change (DESIGN.md §15) pinned within
// tolerance, not byte-identical to serial.
const (
	ShardModelExact     = "exact"
	ShardModelBankLocal = "bank-local"
)

// SchemeShardability reports whether a scheme's lifetime runs can
// decompose across the bank geometry at all, which decomposition model they
// use (ShardModelExact or ShardModelBankLocal), and PlanShards' reason when
// they cannot shard. It probes the scheme on a representative divisible
// geometry (default-sized device, uniform workload), so a "yes" means the
// scheme is wl.Partitionable — a concrete run can still fall back serial
// when its own geometry does not divide. `wlsim list` renders this per
// scheme.
func SchemeShardability(kind SchemeKind) (ok bool, model, reason string) {
	probe := SystemConfig{Scheme: kind, Lines: 1 << 15}
	plan := PlanShards(probe, WorkloadSpec{Kind: WorkloadUniform, WriteRatio: 0.5}, MaxShards)
	if plan.Shards <= 1 {
		return false, "", plan.Reason
	}
	model = ShardModelExact
	if sys, err := NewSystem(probe); err == nil {
		if p, isP := sys.lv.(wl.Partitionable); isP && !p.PartitionExact() {
			model = ShardModelBankLocal
		}
	}
	return true, model, ""
}

// shardSystemConfig derives shard `bank`'s system configuration from the
// defaulted whole-device configuration: a 1/banks slice of lines and
// regions, a ShareLines share of the spare pool, per-shard CMT capacity,
// and seed substreams (device variation and fault injection) so shards
// never share randomness. Adaptation windows and periods are deliberately
// NOT scaled: each shard models one bank's controller keeping the paper's
// time constants, not a 1/banks-speed miniature.
func shardSystemConfig(cfg SystemConfig, bank, banks uint64) SystemConfig {
	sub := cfg
	sub.Lines = cfg.Lines / banks
	sub.SpareLines = nvm.ShareLines(cfg.SpareLines, bank, banks)
	sub.Seed = rng.SeedStream(cfg.Seed, bank)
	if cfg.Scheme == RBSG || cfg.Scheme == TLSR {
		sub.Regions = cfg.Regions / banks
	}
	if cfg.Scheme == NWL || cfg.Scheme == SAWL {
		if sub.CMTEntries = cfg.CMTEntries / int(banks); sub.CMTEntries < 1 {
			sub.CMTEntries = 1
		}
	}
	if cfg.Fault.Enabled() {
		sub.Fault.Seed = rng.SeedStream(cfg.Fault.Seed, bank)
	}
	return sub
}

// ShardedRunOptions controls RunShardedLifetime.
type ShardedRunOptions struct {
	// Shards is the requested shard count; <= 1 runs serial, values above
	// MaxShards are capped. The plan may still fall back to 1 (see
	// PlanShards).
	Shards int
	// Parallelism bounds concurrently running shards; <= 0 uses GOMAXPROCS.
	Parallelism int
	// Context, when non-nil, cancels the run.
	Context context.Context
}

// RunShardedLifetime is RunLifetime decomposed across the bank geometry:
// it gates the run with PlanShards, builds one System and workload
// substream per shard, runs them on the exec pool, and merges the results
// (lifetime.RunSharded). The returned plan tells the caller what actually
// ran — callers surface plan.Reason so a serial fallback is never silent.
//
// A fixed (cfg, w, shards) triple is fully deterministic: shard b's device,
// scheme, fault and workload streams are all derived with
// rng.SeedStream(seed, b), so neither the parallelism level nor scheduling
// affects the merged result.
func RunShardedLifetime(cfg SystemConfig, w WorkloadSpec, maxWrites uint64, opts ShardedRunOptions) (LifetimeResult, ShardPlan, error) {
	plan := PlanShards(cfg, w, opts.Shards)
	if plan.Shards <= 1 {
		sys, err := NewSystem(cfg)
		if err != nil {
			return LifetimeResult{}, plan, err
		}
		res, err := sys.RunLifetime(w, maxWrites)
		return res, plan, err
	}

	dcfg := cfg.withDefaults()
	banks := uint64(plan.Shards)
	shards := make([]lifetime.ShardRun, plan.Shards)
	wname := ""
	for b := uint64(0); b < banks; b++ {
		scfg := shardSystemConfig(dcfg, b, banks)
		sys, err := NewSystem(scfg)
		if err != nil {
			return LifetimeResult{}, plan, fmt.Errorf("shard %d/%d: %w", b, banks, err)
		}
		if _, ok := sys.lv.(wl.Partitionable); !ok && b == 0 {
			// PlanShards and the scheme registry must agree; catching a
			// mismatch here keeps a future scheme from sharding by accident.
			return LifetimeResult{}, plan, fmt.Errorf("nvmwear: scheme %q planned for sharding but is not wl.Partitionable", dcfg.Scheme)
		}
		wb := w
		wb.Seed = rng.SeedStream(w.Seed, b)
		stream, name, err := wb.Build(scfg.Lines)
		if err != nil {
			return LifetimeResult{}, plan, fmt.Errorf("shard %d/%d: %w", b, banks, err)
		}
		wname = name
		shards[b] = lifetime.ShardRun{Dev: sys.dev, Lv: sys.lv, Stream: stream}
	}
	res, err := lifetime.RunSharded(shards, lifetime.ShardedOptions{
		Options:     lifetime.Options{MaxWrites: maxWrites, Workload: wname},
		Parallelism: opts.Parallelism,
		Context:     opts.Context,
	})
	return res, plan, err
}

// sharder threads the sweep-level -shards knob through a figure's jobs. It
// deduplicates fallback log lines — a fig16 sweep runs the same scheme
// across 14 benchmarks, and when its geometry cannot divide, one reason
// line per scheme is signal while 14 are noise.
type sharder struct {
	sc   Scale
	mu   sync.Mutex
	seen map[string]bool
}

func newSharder(sc Scale) *sharder { return &sharder{sc: sc, seen: map[string]bool{}} }

// run executes one lifetime job under the sweep's shard policy, logging
// any serial fallback once per (scheme, reason).
func (s *sharder) run(cfg SystemConfig, w WorkloadSpec, maxWrites uint64) (LifetimeResult, error) {
	if cfg.Wear == "" {
		cfg.Wear = s.sc.WearModel
	}
	res, plan, err := RunShardedLifetime(cfg, w, maxWrites, ShardedRunOptions{
		Shards:  s.sc.Shards,
		Context: s.sc.Context,
	})
	if err == nil && plan.Reason != "" && s.sc.Logf != nil {
		key := string(cfg.Scheme) + "\x00" + plan.Reason
		s.mu.Lock()
		first := !s.seen[key]
		s.seen[key] = true
		s.mu.Unlock()
		if first {
			s.sc.Logf("shards: %s runs serial: %s", cfg.Scheme, plan.Reason)
		}
	}
	return res, err
}
