package nvmwear

import (
	"math"
	"os"
	"sync"
	"testing"

	"nvmwear/internal/wl"
)

// This file holds the sharded-execution guarantees at the system level:
// PlanShards' gating must agree with the scheme registry's Partitionable
// capability, -shards 1 must stay byte-identical to the serial goldens, a
// fixed shard count must be fully deterministic, and sharded runs of
// every scheme in the catalogue — exact and bank-local alike — must
// reproduce the serial lifetime within tolerance (see DESIGN.md Sec 10
// and Sec 15 for why exact equality is not the contract across shard
// counts).

// attackConfig is a shard-friendly BPA attack system: lines, spares,
// regions, and max-granularity units all divide evenly at 4 shards.
func attackConfig(scheme SchemeKind) SystemConfig {
	return SystemConfig{
		Scheme:     scheme,
		Lines:      1 << 12,
		SpareLines: 64,
		Endurance:  400,
		Regions:    1024,
		Period:     8,
		CMTEntries: 256,
		Seed:       7,
	}
}

func bpaSpec() WorkloadSpec { return WorkloadSpec{Kind: WorkloadBPA, Seed: 7} }

func TestPlanShards(t *testing.T) {
	cases := []struct {
		name      string
		cfg       SystemConfig
		w         WorkloadSpec
		requested int
		shards    int
		serial    bool // expect a fallback reason
	}{
		{"requested zero", attackConfig(SAWL), bpaSpec(), 0, 1, false},
		{"requested one", attackConfig(SAWL), bpaSpec(), 1, 1, false},
		{"capped at banks", attackConfig(Baseline), bpaSpec(), 64, MaxShards, false},
		{"raa is global", attackConfig(Baseline), WorkloadSpec{Kind: WorkloadRAA}, 4, 1, true},
		{"file trace is global", attackConfig(Baseline), WorkloadSpec{Kind: WorkloadFile, Path: "x"}, 4, 1, true},
		{"indivisible lines", SystemConfig{Scheme: Baseline, Lines: 100, SpareLines: 16, Endurance: 100}, bpaSpec(), 8, 1, true},
		{"too few spares", SystemConfig{Scheme: Baseline, Lines: 1 << 10, SpareLines: 2, Endurance: 100}, bpaSpec(), 4, 1, true},
		{"baseline shards", attackConfig(Baseline), bpaSpec(), 4, 4, false},
		{"rbsg shards", attackConfig(RBSG), bpaSpec(), 4, 4, false},
		{"rbsg indivisible regions", SystemConfig{Scheme: RBSG, Lines: 1 << 12, SpareLines: 64, Endurance: 100, Regions: 6}, bpaSpec(), 4, 1, true},
		{"startgap shards bank-local gaps", attackConfig(StartGap), bpaSpec(), 4, 4, false},
		{"segswap shards bank-local scans", attackConfig(SegmentSwap), bpaSpec(), 4, 4, false},
		{"tlsr shards bank-local outer levels", attackConfig(TLSR), bpaSpec(), 4, 4, false},
		{"pcms shards bank-local exchanges", attackConfig(PCMS), bpaSpec(), 4, 4, false},
		{"mwsr shards bank-local exchanges", attackConfig(MWSR), bpaSpec(), 4, 4, false},
		{"segswap one-segment bank", SystemConfig{Scheme: SegmentSwap, Lines: 1 << 10, SpareLines: 64, Endurance: 100, RegionLines: 128}, bpaSpec(), 8, 1, true},
		{"segswap misaligned segment", SystemConfig{Scheme: SegmentSwap, Lines: 1 << 12, SpareLines: 64, Endurance: 100, RegionLines: 384}, bpaSpec(), 4, 1, true},
		{"tlsr indivisible regions", SystemConfig{Scheme: TLSR, Lines: 1 << 12, SpareLines: 64, Endurance: 100, Regions: 6}, bpaSpec(), 4, 1, true},
		{"tlsr one-region bank", SystemConfig{Scheme: TLSR, Lines: 1 << 12, SpareLines: 64, Endurance: 100, Regions: 8}, bpaSpec(), 8, 1, true},
		{"pcms one-region bank", SystemConfig{Scheme: PCMS, Lines: 1 << 10, SpareLines: 64, Endurance: 100, RegionLines: 128}, bpaSpec(), 8, 1, true},
		{"sawl shards", attackConfig(SAWL), bpaSpec(), 4, 4, false},
		{"nwl shards", attackConfig(NWL), bpaSpec(), 4, 4, false},
		{"sawl misaligned max region", attackConfig(SAWL), bpaSpec(), 32, 1, true}, // 128-line shard < 256-line max region
		{"sawl cmt too small", SystemConfig{Scheme: SAWL, Lines: 1 << 12, SpareLines: 64, Endurance: 100, CMTEntries: 2}, bpaSpec(), 4, 1, true},
		{"softwear shards bank-local sampling", attackConfig(SoftWear), bpaSpec(), 4, 4, false},
		{"softwear one-page bank", SystemConfig{Scheme: SoftWear, Lines: 1 << 10, SpareLines: 64, Endurance: 100, RegionLines: 128}, bpaSpec(), 8, 1, true},
		{"softwear misaligned page", SystemConfig{Scheme: SoftWear, Lines: 1 << 12, SpareLines: 64, Endurance: 100, RegionLines: 384}, bpaSpec(), 4, 1, true},
		{"wolfram shards bank-local swaps", attackConfig(WoLFRaM), bpaSpec(), 4, 4, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plan := PlanShards(c.cfg, c.w, c.requested)
			if plan.Shards != c.shards {
				t.Fatalf("Shards = %d, want %d (reason %q)", plan.Shards, c.shards, plan.Reason)
			}
			if (plan.Reason != "") != c.serial {
				t.Fatalf("Reason = %q, want fallback reason: %v", plan.Reason, c.serial)
			}
		})
	}
}

// PlanShards' per-scheme gating and the scheme registry's Partitionable
// capability must never disagree: a scheme planned for sharding whose
// instance cannot partition would simulate something else entirely (the
// runner double-checks at build time; this pins the table itself).
func TestPlanShardsAgreesWithPartitionable(t *testing.T) {
	for _, scheme := range Schemes() {
		cfg := attackConfig(scheme)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, partitionable := sys.lv.(wl.Partitionable)
		planned := PlanShards(cfg, bpaSpec(), 4).Shards > 1
		if planned && !partitionable {
			t.Errorf("%s: planned for sharding but the scheme is not wl.Partitionable", scheme)
		}
		if !planned && partitionable {
			t.Errorf("%s: wl.Partitionable but PlanShards refuses a friendly geometry", scheme)
		}
	}
}

// -shards 1 (and 0, and any unset Scale.Shards) is the serial path, bit for
// bit: the pre-shard golden tables must keep reproducing.
func TestShardsOneByteIdenticalToSerialGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/fig16a_tiny.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1} {
		sc := tinyScale()
		sc.Shards = shards
		got := renderFig(RunFig16(sc, true))
		if got != string(want) {
			t.Errorf("-shards %d deviates from the serial golden:\n--- got ---\n%s--- want ---\n%s",
				shards, got, want)
		}
	}
}

// The sharded goldens pin the -shards 4 tables byte for bit, the way the
// serial goldens pin -shards 1: a fixed shard count is a fully specified
// simulation, so any drift — in the exact decompositions or the bank-local
// ones (TLSR, PCM-S, MWSR appear in both figures) — is a regression or an
// intentional modeling change that must regenerate the golden (see
// EXPERIMENTS.md for the regeneration rule).
func TestShardsFourMatchesShardedGoldens(t *testing.T) {
	cases := []struct {
		golden string
		run    func(sc Scale) ([]Series, error)
	}{
		{"testdata/fig15_tiny_shards4.golden", RunFig15},
		{"testdata/fig16a_tiny_shards4.golden", func(sc Scale) ([]Series, error) { return RunFig16(sc, true) }},
	}
	for _, c := range cases {
		want, err := os.ReadFile(c.golden)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range []int{1, 8} {
			sc := withParallelism(tinyScale(), j)
			sc.Shards = 4
			if got := renderFig(c.run(sc)); got != string(want) {
				t.Errorf("-shards 4 -j %d deviates from %s:\n--- got ---\n%s--- want ---\n%s",
					j, c.golden, got, want)
			}
		}
	}
}

// A fixed shard count is as deterministic as the serial path: the table is
// byte-identical across worker counts and repeated runs.
func TestFixedShardsDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(j int) string {
		sc := tinyScale()
		sc.Shards = 4
		return renderFig(RunFig15(withParallelism(sc, j)))
	}
	first := run(1)
	if again := run(1); again != first {
		t.Fatalf("-shards 4 table differs between repeated -j1 runs:\n%s\nvs\n%s", first, again)
	}
	if parallel := run(8); parallel != first {
		t.Fatalf("-shards 4 table differs between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s",
			first, parallel)
	}
}

// A sharded run of every scheme in the catalogue reproduces the serial
// lifetime within tolerance — the serial-vs-sharded equivalence matrix.
// Exact equality is not the contract even for exact-model schemes: shards
// draw from per-bank seed substreams and split the spare pool, so the
// sharded run is a statistically equivalent bank-interleaved device, not a
// replay. Bank-local schemes additionally confine their global state to
// each bank (DESIGN.md Sec 15), which shifts leveling quality a little
// more; both models must stay inside the same 30% band. Each scheme's
// sharded result is also replayed at a different parallelism to pin
// scheduling-free determinism.
func TestShardedLifetimeWithinToleranceOfSerial(t *testing.T) {
	w := bpaSpec()
	for _, scheme := range Schemes() {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := attackConfig(scheme)
			serial, plan, err := RunShardedLifetime(cfg, w, 0, ShardedRunOptions{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Shards != 1 {
				t.Fatalf("serial plan = %+v", plan)
			}
			sharded, plan, err := RunShardedLifetime(cfg, w, 0, ShardedRunOptions{Shards: 4, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Shards != 4 || plan.Reason != "" {
				t.Fatalf("sharded plan = %+v, want 4 shards with no fallback", plan)
			}
			if serial.Normalized <= 0 || sharded.Normalized <= 0 {
				t.Fatalf("degenerate lifetimes: serial %v sharded %v", serial.Normalized, sharded.Normalized)
			}
			if rel := math.Abs(sharded.Normalized-serial.Normalized) / serial.Normalized; rel > 0.30 {
				t.Fatalf("sharded lifetime %.4f deviates %.0f%% from serial %.4f (tolerance 30%%)",
					sharded.Normalized, 100*rel, serial.Normalized)
			}

			// The sharded result itself is deterministic: scheduling-free replay.
			again, _, err := RunShardedLifetime(cfg, w, 0, ShardedRunOptions{Shards: 4, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if again.Served != sharded.Served || again.WearGini != sharded.WearGini ||
				again.Normalized != sharded.Normalized {
				t.Fatalf("sharded run not deterministic: %+v vs %+v", again, sharded)
			}
		})
	}
}

// A workload that cannot split (RAA's single global hot address) must run
// serial under -shards — and produce exactly the serial result, reason
// attached. With every scheme Partitionable, workload-level fallbacks are
// the only ones left.
func TestShardedFallbackIsExactlySerial(t *testing.T) {
	cfg := attackConfig(Baseline)
	w := WorkloadSpec{Kind: WorkloadRAA, Seed: 7}
	serial, _, err := RunShardedLifetime(cfg, w, 0, ShardedRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fallback, plan, err := RunShardedLifetime(cfg, w, 0, ShardedRunOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards != 1 || plan.Reason == "" {
		t.Fatalf("plan = %+v, want serial fallback with reason", plan)
	}
	if fallback.Normalized != serial.Normalized || fallback.WearGini != serial.WearGini {
		t.Fatalf("fallback differs from serial: %+v vs %+v", fallback, serial)
	}
}

// Streaming must deliver every series, each exactly equal to its final
// returned form, as soon as it completes — the contract wlsim's partial-SVG
// rendering builds on.
func TestSeriesDoneStreamsFinalSeries(t *testing.T) {
	sc := tinyScale()
	sc.Parallelism = 4
	var mu sync.Mutex
	streamed := map[string]Series{}
	sc.SeriesDone = func(fig string, s Series) {
		mu.Lock()
		defer mu.Unlock()
		if fig != "fig3" {
			t.Errorf("SeriesDone fig = %q", fig)
		}
		if _, dup := streamed[s.Label]; dup {
			t.Errorf("series %q streamed twice", s.Label)
		}
		streamed[s.Label] = s
	}
	final := must(RunFig3(sc))
	if len(streamed) != len(final) {
		t.Fatalf("%d series streamed, %d returned", len(streamed), len(final))
	}
	for _, f := range final {
		s, ok := streamed[f.Label]
		if !ok {
			t.Fatalf("series %q never streamed", f.Label)
		}
		if len(s.X) != len(f.X) {
			t.Fatalf("series %q streamed with %d points, final has %d", f.Label, len(s.X), len(f.X))
		}
		for i := range f.X {
			if s.X[i] != f.X[i] || s.Y[i] != f.Y[i] {
				t.Fatalf("series %q point %d: streamed (%v,%v) != final (%v,%v)",
					f.Label, i, s.X[i], s.Y[i], f.X[i], f.Y[i])
			}
		}
	}
}

// CacheFreshness probes real store entries: all-stale before a run, fully
// cached after; shard-layout key salting follows the experiment's Sharded
// capability flag. (TestExperimentPlanMatchesDispatch pins the planner's
// job lists against every runner's actual dispatch.)
func TestCacheFreshnessTracksStore(t *testing.T) {
	sc := tinyScale()
	st := openCache(t, t.TempDir())
	sc.Cache = st

	before := sc.CacheFreshness("fig12")
	if len(before) != 1 || before[0].Cached != 0 || before[0].Stale() != before[0].Jobs {
		t.Fatalf("cold-cache freshness = %+v, want all stale", before)
	}
	if _, err := RunFig12(sc); err != nil {
		t.Fatal(err)
	}
	after := sc.CacheFreshness("fig12")
	if len(after) != 1 || after[0].Stale() != 0 || after[0].Cached != after[0].Jobs {
		t.Fatalf("warm-cache freshness = %+v, want fully cached", after)
	}

	// fig12's lifetime runs never go through the sharder: its keys — and so
	// its freshness — are layout-independent, and a -shards run correctly
	// reuses the serial entries.
	sharded := sc
	sharded.Shards = 4
	if f := sharded.CacheFreshness("fig12"); f[0].Cached != f[0].Jobs {
		t.Fatalf("unsharded experiment lost freshness under -shards: %+v", f)
	}

	// A sharded experiment's keys are salted with the layout: entries under
	// the serial keys are invisible to a sharded probe.
	fig3, ok := LookupExperiment("fig3")
	if !ok || !fig3.Sharded {
		t.Fatalf("fig3 not registered as a sharded experiment")
	}
	for _, j := range fig3.Plan(sc) {
		if err := st.Put(sc.cacheKey(j.Fig, true, j.Index), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if f := sc.CacheFreshness("fig3"); len(f) != 1 || f[0].Stale() != 0 {
		t.Fatalf("planted serial entries not fresh: %+v", f)
	}
	if f := sharded.CacheFreshness("fig3"); f[0].Cached != 0 {
		t.Fatalf("sharded layout reports %d serial entries as fresh", f[0].Cached)
	}

	// No cache open, no plan, or no such experiment: nil, not a panic.
	if f := tinyScale().CacheFreshness("fig12"); f != nil {
		t.Fatalf("cacheless freshness = %+v, want nil", f)
	}
	if f := sc.CacheFreshness("table1"); f != nil {
		t.Fatalf("planless freshness = %+v, want nil", f)
	}
	if f := sc.CacheFreshness("no-such-experiment"); f != nil {
		t.Fatalf("unknown-experiment freshness = %+v, want nil", f)
	}
}
