package nvmwear

import (
	"fmt"

	"nvmwear/internal/workload"
)

// This file implements the pre-run cache staleness report behind
// `wlsim all`: before an experiment executes, the planner below predicts
// its exact job list (same fig identities, counts, and cache-key salting as
// the runners) and probes the open result store for each key — so a whole
// experiment that is fully cached is visibly "0 stale" before any
// simulation starts.

// FigFreshness reports one sweep's cache coverage: how many of its jobs
// already have a stored result under the current scale, seed and shard
// layout.
type FigFreshness struct {
	Fig    string // the sweep's cache identity (cacheKey fig)
	Jobs   int    // total jobs the sweep will submit
	Cached int    // jobs whose key is already in the store
}

// Stale returns the number of jobs that will actually execute.
func (f FigFreshness) Stale() int { return f.Jobs - f.Cached }

// cacheProber is the optional fast-probe face of a ResultCache: a stat-only
// existence check that does not read, verify, or count as a hit/miss.
// internal/store.Store implements it.
type cacheProber interface{ Has(key string) bool }

// CacheFreshness predicts the named experiment's sweeps and probes the open
// result store for every job key, without executing anything. It returns
// nil when the scale has no cache open, the cache cannot probe cheaply, or
// the experiment has no cacheable sweep (table1, overhead, project).
//
// The per-figure job counts mirror the runners' job-list construction; a
// regression test pins them to the counts the runners actually submit.
func (sc Scale) CacheFreshness(experiment string) []FigFreshness {
	probe, ok := sc.Cache.(cacheProber)
	if !ok {
		return nil
	}
	var out []FigFreshness
	for _, p := range sc.sweepPlan(experiment) {
		f := FigFreshness{Fig: p.fig, Jobs: p.jobs}
		for i := 0; i < p.jobs; i++ {
			if probe.Has(sc.cacheKey(p.fig, i)) {
				f.Cached++
			}
		}
		out = append(out, f)
	}
	return out
}

// sweepSpec is one planned sweep: its cache identity and job count.
type sweepSpec struct {
	fig  string
	jobs int
}

// sweepPlan returns the sweeps the named experiment will run. Counts are
// derived from the same inputs the runners use (regionSweep, the shared
// scheme/benchmark lists), so planner and runner cannot drift silently —
// and TestSweepPlanMatchesRunners pins the rest.
func (sc Scale) sweepPlan(experiment string) []sweepSpec {
	rs := len(regionSweep(sc.AttackLines))
	nb := len(workload.Names())
	one := func(fig string, jobs int) []sweepSpec { return []sweepSpec{{fig, jobs}} }
	switch experiment {
	case "fig3":
		return one("fig3", 2*4*rs) // 2 endurance panels x 4 periods
	case "fig4":
		return one("fig4", 2*2*4*rs) // 2 panels x 2 schemes x 4 periods
	case "fig5":
		return one("fig5", 2*2*len(fig5Budgets))
	case "fig12":
		return one("fig12", len(scaledWindows(sc)))
	case "fig13":
		return one("fig13", len(scaledWindows(sc)))
	case "fig14":
		return one("fig14", 3*len(fig14Benches)) // NWL-4, NWL-64, SAWL per bench
	case "fig15":
		return one("fig15", 2*3*4) // 2 panels x {PCMS,MWSR,SAWL} x 4 periods
	case "fig16":
		return []sweepSpec{
			{"fig16a", len(fig16Schemes) * nb},
			{"fig16b", len(fig16Schemes) * nb},
		}
	case "fig17":
		return one("fig17", (1+len(Fig17Schemes))*nb) // baseline row + schemes
	case "fault":
		return one(fmt.Sprintf("fault:%v:%v", FaultSchemes, FaultRates),
			len(FaultSchemes)*len(FaultRates))
	}
	return nil
}
