package nvmwear

// This file implements the pre-run cache staleness report behind
// `wlsim all`: before an experiment executes, its registered Plan predicts
// the exact job list (same fig identities, counts, and cache-key salting as
// the runner) and every key is probed against the open result store — so a
// whole experiment that is fully cached is visibly "0 stale", and skipped,
// before any simulation starts.

// FigFreshness reports one sweep's cache coverage: how many of its jobs
// already have a stored result under the current scale, seed and shard
// layout.
type FigFreshness struct {
	Fig    string // the sweep's cache identity (cacheKey fig)
	Jobs   int    // total jobs the sweep will submit
	Cached int    // jobs whose key is already in the store
}

// Stale returns the number of jobs that will actually execute.
func (f FigFreshness) Stale() int { return f.Jobs - f.Cached }

// cacheProber is the optional fast-probe face of a ResultCache: a stat-only
// existence check that does not read, verify, or count as a hit/miss.
// internal/store.Store implements it.
type cacheProber interface{ Has(key string) bool }

// CacheFreshness probes the open result store for every job key of the
// named experiment's registered Plan, without executing anything. Jobs are
// grouped per fig identity in plan order (fig16 plans two sweeps, most
// experiments one). It returns nil when the scale has no cache open, the
// cache cannot probe cheaply, or the experiment is unregistered or has no
// sweep plan (table1, overhead, project).
//
// The plan mirrors the runner's job-list construction by contract;
// TestExperimentPlanMatchesDispatch pins Plan to the jobs Run actually
// submits for every registered experiment.
func (sc Scale) CacheFreshness(experiment string) []FigFreshness {
	probe, ok := sc.Cache.(cacheProber)
	if !ok {
		return nil
	}
	e, ok := LookupExperiment(experiment)
	if !ok || e.Plan == nil {
		return nil
	}
	var out []FigFreshness
	idx := map[string]int{}
	for _, j := range e.Plan(sc) {
		k, seen := idx[j.Fig]
		if !seen {
			k = len(out)
			idx[j.Fig] = k
			out = append(out, FigFreshness{Fig: j.Fig})
		}
		out[k].Jobs++
		if probe.Has(sc.cacheKey(j.Fig, e.Sharded, j.Index)) {
			out[k].Cached++
		}
	}
	return out
}
